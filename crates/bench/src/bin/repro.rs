//! Regenerate every table and figure of the paper.
//!
//! ```text
//! repro                    # run all 20 paper artifacts
//! repro --only table3      # run one artifact (also accepts ablation slugs)
//! repro --ablations        # run the ablation / extension studies
//! repro --export [DIR]     # export every labeled dataset as JSONL
//! repro --audit            # statically audit every ground-truth label
//! repro --faults heavy     # run the benchmark through a fault-injecting transport
//! repro --faults none --fault-gate 0.02   # CI gate on the needs_review rate
//! repro --fault-seed 7     # reseed the fault injector (default 0)
//! repro --fuzz 500         # run 500 differential/metamorphic fuzz cases
//! repro --fuzz 500 --fuzz-seed 7          # reseed the fuzz generator (default 0)
//! repro --fuzz 500 --dialect tsql         # per-dialect corpus (sqlite/postgres/mysql/tsql)
//! repro --synth 1000000    # stream-synthesize 1M queries, write synth.json
//! repro --synth 1000000 --shards 8        # build each round as 8 shard partitions
//! repro --synth 50000 --target spec.json  # steer toward a distribution target
//! repro --serve 127.0.0.1:0               # serve /eval /suite /healthz /statz
//! repro --serve ADDR --serve-store DIR    # serve over an explicit store root
//! repro --serve ADDR --serve-inflight 4   # cap concurrent evaluations
//! repro --seed 7           # different master seed
//! repro --jobs 4           # worker threads (default: all cores, 1 = sequential)
//! repro --resume           # reuse fingerprint-matched stages from target/repro/store
//! repro --store-stats      # print per-stage store hit/miss/byte counters
//! repro --timings          # print a per-phase wall-clock report
//! repro --list             # list artifact slugs
//! ```
//!
//! Output goes to stdout and to `target/repro/<slug>.txt` (+ `.csv` for
//! tabular artifacts). Suite construction and artifact execution fan out
//! over `--jobs` threads; output order and content are identical for
//! every job count. Each run also writes machine-readable span timings to
//! `target/repro/timings.json`; `--faults` writes `target/repro/faults.json`,
//! byte-identical for any `--jobs` count.
//!
//! `--resume` routes every stage — sampled workloads, derived task
//! datasets, paper artifacts, audit, fault, and fuzz reports — through the
//! content-addressed store under `target/repro/store/`: stages whose
//! fingerprint (seed + builder versions + upstream fingerprints) already
//! has a verified entry are loaded instead of rebuilt, byte-identically.
//! A warm resume performs no suite-build or model-call work at all.
//!
//! `--synth N` also skips the suite: it streams N accepted queries in the
//! character of the SDSS workload (seeded by `--seed`) through the
//! sharded synthesis pipeline and writes `target/repro/synth.json` —
//! sketch summaries, histograms, chunk fingerprints, acceptance rates —
//! byte-identical for any `--jobs` *and any `--shards`* value. Peak
//! memory is bounded by the round budget, not N. With `--target` the run
//! additionally steers the accepted distribution toward the spec and
//! exits 1 if it cannot converge; a failed sketch spot-check or an
//! exhausted round budget also exits 1.
//!
//! `--fuzz N` skips the suite entirely and instead runs N cases of the
//! `squ-fuzz` subsystem (grammar-generated queries through the round-trip,
//! differential, and metamorphic oracles), writing `target/repro/fuzz.json`
//! — byte-identical for any `--jobs` count — and exiting 1 on any oracle
//! violation. The same case stream is then replayed single-threaded
//! through the compiled engine and the tree-walking interpreter side by
//! side; the phase timings, speedup ratio, and deterministic engine
//! counters land in `timings.json`, and any compiled-vs-interpreter
//! divergence also exits 1.

use squ::llm::FaultProfile;
use squ::store::{fp_artifact, fp_audit, fp_faults};
use squ::{
    run_ablation, run_experiment, AblationId, Artifact, AuditReport, ExperimentId, FaultReport,
    Store, Suite, PAPER_SEED,
};
use squ_parser::Dialect;
use std::fs;
use std::path::{Path, PathBuf};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
struct Opts {
    list: bool,
    ablations: bool,
    audit: bool,
    timings: bool,
    export: Option<String>,
    only: Option<String>,
    /// Fault-injection profile name (`none`, `light`, `heavy`, `flaky`).
    faults: Option<String>,
    /// Seed for the fault injector (independent of the suite seed).
    fault_seed: u64,
    /// Fail (exit 1) if the needs_review rate exceeds this bound.
    fault_gate: Option<f64>,
    /// Fuzz-case budget; `Some` switches the binary into fuzz mode.
    fuzz: Option<u64>,
    /// Seed for the fuzz generator (independent of the suite seed).
    fuzz_seed: u64,
    /// Corpus dialect for fuzz mode (`squ`, `sqlite`, `postgres`,
    /// `mysql`, `tsql`); `None` means the default `squ` corpus.
    dialect: Option<String>,
    /// Accepted-query budget; `Some` switches into synthesis mode.
    synth: Option<u64>,
    /// Shard count for synthesis mode (default 1).
    shards: Option<usize>,
    /// Path of a distribution-target spec for synthesis mode.
    target: Option<String>,
    /// Bind address for server mode (`--serve`); port 0 is ephemeral.
    serve: Option<String>,
    /// Store root for server mode (default `target/repro/store`).
    serve_store: Option<String>,
    /// In-flight evaluation cap for server mode (default 8).
    serve_inflight: Option<usize>,
    seed: u64,
    /// Worker threads; `None` means all available cores.
    jobs: Option<usize>,
    /// Reuse fingerprint-matched stages from the artifact store.
    resume: bool,
    /// Print per-stage store counters (implies using the store).
    store_stats: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            list: false,
            ablations: false,
            audit: false,
            timings: false,
            export: None,
            only: None,
            faults: None,
            fault_seed: 0,
            fault_gate: None,
            fuzz: None,
            fuzz_seed: 0,
            dialect: None,
            synth: None,
            shards: None,
            target: None,
            serve: None,
            serve_store: None,
            serve_inflight: None,
            seed: PAPER_SEED,
            jobs: None,
            resume: false,
            store_stats: false,
        }
    }
}

/// Parse arguments (everything after the binary name).
///
/// Every flag may appear at most once, and the mode-selecting flags
/// (`--list`, `--ablations`, `--audit`, `--export`, `--faults`, `--fuzz`,
/// `--only`) are mutually exclusive — a repeated or conflicting flag is a
/// hard error, never silently last-one-wins. Dependent flags
/// (`--fault-seed`/`--fault-gate`, `--fuzz-seed`) require their parent
/// mode, in any argument order.
fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts::default();
    let mut seen: Vec<String> = Vec::new();
    let mut i = 0;
    // a flag's value is the next token unless it is another flag
    let value_of =
        |args: &[String], i: usize| args.get(i + 1).filter(|a| !a.starts_with("--")).cloned();
    while i < args.len() {
        let flag = &args[i];
        if flag.starts_with("--") {
            if seen.contains(flag) {
                return Err(format!("duplicate flag {flag}"));
            }
            seen.push(flag.clone());
        }
        match args[i].as_str() {
            "--list" => opts.list = true,
            "--ablations" => opts.ablations = true,
            "--audit" => opts.audit = true,
            "--timings" => opts.timings = true,
            "--resume" => opts.resume = true,
            "--store-stats" => opts.store_stats = true,
            "--export" => {
                let dir = value_of(args, i);
                if dir.is_some() {
                    i += 1;
                }
                opts.export = Some(dir.unwrap_or_else(|| "target/benchmark-export".to_string()));
            }
            "--only" => {
                opts.only =
                    Some(value_of(args, i).ok_or_else(|| "--only needs a slug".to_string())?);
                i += 1;
            }
            "--faults" => {
                let name = value_of(args, i).ok_or_else(|| {
                    format!(
                        "--faults needs a profile name (one of {})",
                        FaultProfile::NAMES.join(", ")
                    )
                })?;
                if FaultProfile::by_name(&name).is_none() {
                    return Err(format!(
                        "unknown fault profile {name:?} (one of {})",
                        FaultProfile::NAMES.join(", ")
                    ));
                }
                opts.faults = Some(name);
                i += 1;
            }
            "--fault-seed" => {
                let raw =
                    value_of(args, i).ok_or_else(|| "--fault-seed needs an integer".to_string())?;
                opts.fault_seed = raw
                    .parse()
                    .map_err(|_| format!("--fault-seed needs an integer, got {raw:?}"))?;
                i += 1;
            }
            "--fault-gate" => {
                let raw = value_of(args, i)
                    .ok_or_else(|| "--fault-gate needs a rate in [0,1]".to_string())?;
                let rate: f64 = raw
                    .parse()
                    .map_err(|_| format!("--fault-gate needs a rate in [0,1], got {raw:?}"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("--fault-gate needs a rate in [0,1], got {raw:?}"));
                }
                opts.fault_gate = Some(rate);
                i += 1;
            }
            "--fuzz" => {
                let raw =
                    value_of(args, i).ok_or_else(|| "--fuzz needs a case count".to_string())?;
                let n: u64 = raw
                    .parse()
                    .map_err(|_| format!("--fuzz needs a case count, got {raw:?}"))?;
                if n == 0 {
                    return Err("--fuzz needs a positive case count, got 0".to_string());
                }
                opts.fuzz = Some(n);
                i += 1;
            }
            "--serve" => {
                opts.serve = Some(
                    value_of(args, i)
                        .ok_or_else(|| "--serve needs a bind address (host:port)".to_string())?,
                );
                i += 1;
            }
            "--serve-store" => {
                opts.serve_store = Some(
                    value_of(args, i)
                        .ok_or_else(|| "--serve-store needs a directory".to_string())?,
                );
                i += 1;
            }
            "--serve-inflight" => {
                let raw = value_of(args, i)
                    .ok_or_else(|| "--serve-inflight needs an integer".to_string())?;
                opts.serve_inflight = Some(
                    raw.parse()
                        .map_err(|_| format!("--serve-inflight needs an integer, got {raw:?}"))?,
                );
                i += 1;
            }
            "--dialect" => {
                let name = value_of(args, i).ok_or_else(|| {
                    format!(
                        "--dialect needs a dialect name (one of {})",
                        Dialect::NAMES.join(", ")
                    )
                })?;
                if Dialect::by_name(&name).is_none() {
                    return Err(format!(
                        "unknown dialect {name:?} (one of {})",
                        Dialect::NAMES.join(", ")
                    ));
                }
                opts.dialect = Some(name);
                i += 1;
            }
            "--synth" => {
                let raw =
                    value_of(args, i).ok_or_else(|| "--synth needs a query count".to_string())?;
                let n: u64 = raw
                    .parse()
                    .map_err(|_| format!("--synth needs a query count, got {raw:?}"))?;
                if n == 0 {
                    return Err("--synth needs a positive query count, got 0".to_string());
                }
                opts.synth = Some(n);
                i += 1;
            }
            "--shards" => {
                let raw = value_of(args, i)
                    .ok_or_else(|| "--shards needs a positive integer".to_string())?;
                let n: usize = raw
                    .parse()
                    .map_err(|_| format!("--shards needs a positive integer, got {raw:?}"))?;
                if n == 0 {
                    return Err("--shards needs a positive integer, got 0".to_string());
                }
                opts.shards = Some(n);
                i += 1;
            }
            "--target" => {
                opts.target = Some(
                    value_of(args, i)
                        .ok_or_else(|| "--target needs a spec file path".to_string())?,
                );
                i += 1;
            }
            "--fuzz-seed" => {
                let raw =
                    value_of(args, i).ok_or_else(|| "--fuzz-seed needs an integer".to_string())?;
                opts.fuzz_seed = raw
                    .parse()
                    .map_err(|_| format!("--fuzz-seed needs an integer, got {raw:?}"))?;
                i += 1;
            }
            "--seed" => {
                let raw = value_of(args, i).ok_or_else(|| "--seed needs an integer".to_string())?;
                opts.seed = raw
                    .parse()
                    .map_err(|_| format!("--seed needs an integer, got {raw:?}"))?;
                i += 1;
            }
            "--jobs" => {
                let raw = value_of(args, i)
                    .ok_or_else(|| "--jobs needs a positive integer".to_string())?;
                let n: usize = raw
                    .parse()
                    .map_err(|_| format!("--jobs needs a positive integer, got {raw:?}"))?;
                if n == 0 {
                    return Err("--jobs needs a positive integer, got 0".to_string());
                }
                opts.jobs = Some(n);
                i += 1;
            }
            other => return Err(format!("unknown argument {other:?} (try --list)")),
        }
        i += 1;
    }

    // Mode flags are mutually exclusive. Checked after the full parse so
    // the diagnosis is order-independent.
    let mut modes: Vec<&str> = Vec::new();
    if opts.list {
        modes.push("--list");
    }
    if opts.ablations {
        modes.push("--ablations");
    }
    if opts.audit {
        modes.push("--audit");
    }
    if opts.export.is_some() {
        modes.push("--export");
    }
    if opts.faults.is_some() {
        modes.push("--faults");
    }
    if opts.fuzz.is_some() {
        modes.push("--fuzz");
    }
    if opts.synth.is_some() {
        modes.push("--synth");
    }
    if opts.only.is_some() {
        modes.push("--only");
    }
    if opts.serve.is_some() {
        modes.push("--serve");
    }
    if modes.len() > 1 {
        return Err(format!(
            "conflicting flags: {} select different modes; pick one",
            modes.join(" and ")
        ));
    }

    // Dependent flags need their parent mode.
    let was_given = |flag: &str| seen.iter().any(|f| f == flag);
    if opts.faults.is_none() {
        for dep in ["--fault-seed", "--fault-gate"] {
            if was_given(dep) {
                return Err(format!("{dep} requires --faults"));
            }
        }
    }
    if was_given("--fuzz-seed") && opts.fuzz.is_none() {
        return Err("--fuzz-seed requires --fuzz".to_string());
    }
    if was_given("--dialect") && opts.fuzz.is_none() {
        return Err("--dialect requires --fuzz".to_string());
    }
    if opts.serve.is_none() {
        for dep in ["--serve-store", "--serve-inflight"] {
            if was_given(dep) {
                return Err(format!("{dep} requires --serve"));
            }
        }
    }
    if opts.synth.is_none() {
        for dep in ["--shards", "--target"] {
            if was_given(dep) {
                return Err(format!("{dep} requires --synth"));
            }
        }
    }

    Ok(opts)
}

#[derive(Clone, Copy)]
enum Job {
    Paper(ExperimentId),
    Ablation(AblationId),
}

impl Job {
    /// `(store stage, entry name, is_ablation)` for the artifact store.
    fn store_key(&self) -> (&'static str, &'static str, bool) {
        match self {
            Job::Paper(id) => ("artifact", id.slug(), false),
            Job::Ablation(id) => ("ablation", id.slug(), true),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args).unwrap_or_else(|e| die(&e));

    if opts.list {
        for id in ExperimentId::ALL {
            println!("{}", id.slug());
        }
        for id in AblationId::ALL {
            println!("{}", id.slug());
        }
        return;
    }

    // Server mode: stand up the evaluation service and never return.
    // The bound address is printed to stdout (and flushed) first, so a
    // harness binding port 0 can discover the real port.
    if let Some(addr) = &opts.serve {
        use std::io::Write as _;
        let config = squ_serve::ServerConfig {
            store_root: opts
                .serve_store
                .clone()
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("target/repro/store")),
            max_in_flight: opts
                .serve_inflight
                .unwrap_or(squ_serve::ServerConfig::default().max_in_flight),
            ..squ_serve::ServerConfig::default()
        };
        let server = squ_serve::Server::bind(addr, config)
            .unwrap_or_else(|e| die(&format!("cannot bind {addr}: {e}")));
        let bound = server
            .local_addr()
            .unwrap_or_else(|e| die(&format!("cannot read bound address: {e}")));
        println!("serving on {bound}");
        std::io::stdout().flush().expect("flush bound address");
        if let Err(e) = server.run() {
            die(&format!("server failed: {e}"));
        }
        return;
    }

    let jobs_n = opts.jobs.unwrap_or_else(squ::par::available_jobs);
    let run_start = std::time::Instant::now();

    let queue: Vec<Job> = match &opts.only {
        Some(slug) => match ExperimentId::from_slug(slug) {
            Some(id) => vec![Job::Paper(id)],
            None => vec![Job::Ablation(AblationId::from_slug(slug).unwrap_or_else(
                || die(&format!("unknown artifact {slug:?} (try --list)")),
            ))],
        },
        None if opts.ablations => AblationId::ALL.iter().map(|a| Job::Ablation(*a)).collect(),
        None => ExperimentId::ALL.iter().map(|e| Job::Paper(*e)).collect(),
    };

    let out_dir = PathBuf::from("target/repro");
    fs::create_dir_all(&out_dir).expect("create target/repro");
    let mut store: Option<Store> =
        (opts.resume || opts.store_stats).then(|| Store::open(out_dir.join("store")));

    // Synthesis mode needs no suite either: the stream is its own
    // substrate. Base workload is fixed to SDSS (the paper's primary
    // log-derived workload); the stream seed is --seed.
    if let Some(n) = opts.synth {
        let shards = opts.shards.unwrap_or(1);
        let target_json = opts.target.as_ref().map(|path| {
            fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("cannot read --target {path}: {e}")))
        });
        let cfg = squ::SynthConfig {
            base: squ::workload::Workload::Sdss,
            seed: opts.seed,
            n,
            shards,
            jobs: jobs_n,
            target_json,
        };
        eprintln!(
            "synthesizing {n} quer{} (seed {}, {shards} shard(s), {jobs_n} jobs{})…",
            if n == 1 { "y" } else { "ies" },
            opts.seed,
            if cfg.target_json.is_some() {
                ", targeted"
            } else {
                ""
            }
        );
        let report = squ::timing::time("synth.total", || {
            squ::run_synth(&cfg, store.as_mut()).unwrap_or_else(|e| die(&e))
        });
        let path = out_dir.join("synth.json");
        fs::write(&path, report.to_json()).expect("write synth.json");
        println!(
            "synthesized {} of {} requested ({} candidates, {} rounds, acceptance {:.1}%), \
             fingerprint {} over {} chunk(s)",
            report.accepted_considered.min(report.requested),
            report.requested,
            report.candidates,
            report.rounds,
            100.0 * report.acceptance_rate,
            report.fingerprint,
            report.chunks.len(),
        );
        for axis in &report.axes {
            println!(
                "  axis {:<16} deviation {:.4} (tolerance {:.4})",
                axis.property,
                axis.deviation,
                report.target.as_ref().map(|t| t.tolerance).unwrap_or(0.0)
            );
        }
        if let Some(check) = &report.sketch_check {
            println!(
                "  sketch check: max rel err {:.5} (bound {:.5}) — {}",
                check.max_rel_err,
                check.bound,
                if check.pass { "pass" } else { "FAIL" }
            );
        }
        println!("synth report written to {}", path.display());
        finish_store(&opts, store.as_ref());
        finish_timings(&opts, &out_dir, jobs_n, run_start);
        let mut failed = false;
        if report.exhausted {
            eprintln!(
                "error: round budget exhausted after {} rounds with {} of {} accepted",
                report.rounds, report.accepted_considered, report.requested
            );
            failed = true;
        }
        if report.sketch_check.as_ref().is_some_and(|c| !c.pass) {
            eprintln!("error: sketch spot-check exceeded its error bound");
            failed = true;
        }
        if report.target.is_some() && !report.converged {
            eprintln!("error: accepted distribution did not reach the target tolerance");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }

    // Fuzz mode needs no suite: cases are self-contained (generated
    // schemas + witness databases), so it runs before suite construction.
    if let Some(cases) = opts.fuzz {
        // parse_args validated the name, so the lookup cannot fail here
        let dialect = opts
            .dialect
            .as_deref()
            .and_then(Dialect::by_name)
            .unwrap_or(Dialect::Squ);
        eprintln!(
            "fuzzing {cases} case(s) (fuzz seed {}, {} corpus, {jobs_n} jobs)…",
            opts.fuzz_seed,
            dialect.name()
        );
        let report = squ::timing::time("fuzz.total", || {
            squ::run_fuzz_dialect(cases, opts.fuzz_seed, jobs_n, store.as_mut(), dialect)
        });
        let path = out_dir.join("fuzz.json");
        fs::write(&path, report.to_json()).expect("write fuzz.json");
        println!("{}", report.summary_line());
        for f in &report.failures {
            println!(
                "  case {} [{}{}]: {}\n    sql: {}\n    minimized ({} tokens): {}",
                f.case,
                f.oracle,
                f.transform
                    .as_deref()
                    .map(|t| format!(" / {t}"))
                    .unwrap_or_default(),
                f.detail,
                f.sql,
                f.minimized_tokens,
                f.minimized
            );
        }
        println!("fuzz report written to {}", path.display());

        // surface the run's deterministic engine counters in timings.json
        let e = &report.engine;
        squ::timing::count("fuzz.engine.rows_scanned", e.rows_scanned);
        squ::timing::count("fuzz.engine.join_pairs", e.join_pairs);
        squ::timing::count("fuzz.engine.batches", e.batches);
        squ::timing::count("fuzz.engine.index_probes", e.index_probes);
        squ::timing::count("fuzz.engine.index_hits", e.index_hits);
        squ::timing::count("fuzz.engine.subquery_evals", e.subquery_evals);
        squ::timing::count("fuzz.engine.compiled", e.compiled);
        squ::timing::count("fuzz.engine.fallbacks", e.fallbacks);
        squ::timing::count("fuzz.engine.empty_prunes", e.empty_prunes);

        // ... and the semantic-analysis oracle's counters
        let s = &report.sema;
        squ::timing::count("fuzz.sema.queries_analyzed", s.queries_analyzed);
        squ::timing::count("fuzz.sema.empties_proven", s.empties_proven);
        squ::timing::count("fuzz.sema.empty_checks", s.empty_checks);
        squ::timing::count("fuzz.sema.redundancy_checks", s.redundancy_checks);
        squ::timing::count("fuzz.sema.bound_checks", s.bound_checks);
        squ::timing::count("fuzz.sema.certified_equivalent", s.certified_equivalent);
        squ::timing::count("fuzz.sema.certified_inequivalent", s.certified_inequivalent);
        squ::timing::count("fuzz.sema.certified_unknown", s.certified_unknown);
        squ::timing::count("fuzz.sema.soundness_pass", s.soundness_pass);
        squ::timing::count("fuzz.sema.soundness_fail", s.soundness_fail);

        // compiled-vs-interpreter benchmark over the same case stream
        // (single-threaded: the ratio is a per-core comparison)
        eprintln!("benchmarking compiled engine vs interpreter over the same stream…");
        let bench = squ::run_engine_bench(cases, opts.fuzz_seed);
        println!(
            "engine bench: {} execution(s) per engine, differential {:.1?} compiled vs {:.1?} \
             interpreted ({:.1}x), equiv-verify {:.1?} vs {:.1?} ({:.1}x), overall {:.1}x, \
             {} divergence(s)",
            bench.executions,
            bench.differential_compiled,
            bench.differential_interpreted,
            bench.differential_speedup(),
            bench.equiv_compiled,
            bench.equiv_interpreted,
            bench.equiv_speedup(),
            bench.overall_speedup(),
            bench.divergences,
        );

        finish_store(&opts, store.as_ref());
        finish_timings(&opts, &out_dir, jobs_n, run_start);
        if bench.divergences > 0 {
            eprintln!(
                "error: compiled engine diverged from the interpreter on {} run(s)",
                bench.divergences
            );
            std::process::exit(1);
        }
        if !report.is_clean() {
            std::process::exit(1);
        }
        return;
    }

    eprintln!(
        "building benchmark suite (seed {}, {} jobs)…",
        opts.seed, jobs_n
    );
    let t0 = std::time::Instant::now();
    let suite = match store.as_mut() {
        Some(store) => Suite::load_or_build(opts.seed, jobs_n, store),
        None => Suite::new_with_jobs(opts.seed, jobs_n),
    };
    eprintln!("suite ready in {:.1?}", t0.elapsed());

    if opts.audit {
        let fp = fp_audit(opts.seed);
        let cached = store
            .as_mut()
            .and_then(|s| s.load_value::<AuditReport>("audit", "audit", fp));
        let report = cached.unwrap_or_else(|| {
            let report = squ::timing::time("audit.total", || squ::audit_suite(&suite, jobs_n));
            if let Some(s) = store.as_mut() {
                s.save_value("audit", "audit", fp, &report);
            }
            report
        });
        let path = out_dir.join("audit.json");
        fs::write(&path, report.to_json()).expect("write audit.json");
        println!(
            "audited {} artifacts: {} rule hits across {} rules, {} violations",
            report.checked,
            report.rule_hits.values().sum::<usize>(),
            report.rule_hits.len(),
            report.violations.len()
        );
        let c = &report.certs;
        println!(
            "sema certifier: {} pairs ({} equivalent / {} inequivalent / {} unknown), \
             statically convicted {}/{} non-equivalence labels ({:.1}%) without execution",
            c.pairs,
            c.certified_equivalent,
            c.certified_inequivalent,
            c.certified_unknown,
            c.noneq_convicted,
            c.noneq_pairs,
            c.conviction_rate(),
        );
        squ::timing::count("audit.sema.pairs", c.pairs as u64);
        squ::timing::count(
            "audit.sema.certified_equivalent",
            c.certified_equivalent as u64,
        );
        squ::timing::count(
            "audit.sema.certified_inequivalent",
            c.certified_inequivalent as u64,
        );
        squ::timing::count("audit.sema.certified_unknown", c.certified_unknown as u64);
        squ::timing::count("audit.sema.noneq_pairs", c.noneq_pairs as u64);
        squ::timing::count("audit.sema.noneq_convicted", c.noneq_convicted as u64);
        for v in &report.violations {
            println!(
                "  {} {} {}: {}",
                v.dataset, v.query_id, v.invariant, v.detail
            );
        }
        println!("audit report written to {}", path.display());
        finish_store(&opts, store.as_ref());
        finish_timings(&opts, &out_dir, jobs_n, run_start);
        if !report.is_clean() {
            std::process::exit(1);
        }
        return;
    }

    if let Some(name) = &opts.faults {
        let profile = FaultProfile::by_name(name)
            .unwrap_or_else(|| die(&format!("unknown fault profile {name:?}")));
        let fp = fp_faults(opts.seed, name, opts.fault_seed);
        let cached = store
            .as_mut()
            .and_then(|s| s.load_value::<FaultReport>("faults", name, fp));
        let report = cached.unwrap_or_else(|| {
            let report = squ::timing::time("faults.total", || {
                squ::run_fault_report(&suite, profile, opts.fault_seed, jobs_n)
            });
            if let Some(s) = store.as_mut() {
                s.save_value("faults", name, fp, &report);
            }
            report
        });
        let path = out_dir.join("faults.json");
        fs::write(&path, report.to_json()).expect("write faults.json");
        println!(
            "fault profile {:?} (fault seed {}): {} calls, {} attempts, {} exhausted, {} needs_review ({:.2}%)",
            report.profile,
            report.fault_seed,
            report.calls,
            report.attempts,
            report.exhausted,
            report.needs_review,
            100.0 * report.needs_review_rate
        );
        for stats in &report.by_fault {
            if stats.calls > 0 {
                println!(
                    "  {:<14} {:>5} calls, {:>5} survived extraction ({:.1}%)",
                    stats.kind,
                    stats.calls,
                    stats.survived,
                    100.0 * stats.survival_rate
                );
            }
        }
        println!("fault report written to {}", path.display());
        finish_store(&opts, store.as_ref());
        finish_timings(&opts, &out_dir, jobs_n, run_start);
        if let Some(gate) = opts.fault_gate {
            if report.needs_review_rate > gate {
                eprintln!(
                    "error: needs_review rate {:.4} exceeds --fault-gate {gate}",
                    report.needs_review_rate
                );
                std::process::exit(1);
            }
            println!(
                "gate ok: needs_review rate {:.4} <= {gate}",
                report.needs_review_rate
            );
        }
        return;
    }

    if let Some(dir) = &opts.export {
        let dir = PathBuf::from(dir);
        let manifest =
            squ::export_suite(&suite, &dir).unwrap_or_else(|e| die(&format!("export failed: {e}")));
        println!(
            "exported {} files / {} records to {}",
            manifest.files.len(),
            manifest.files.iter().map(|f| f.records).sum::<usize>(),
            dir.display()
        );
        finish_store(&opts, store.as_ref());
        finish_timings(&opts, &out_dir, jobs_n, run_start);
        return;
    }

    // run artifacts on the worker pool; results come back in queue order,
    // so stdout is identical whatever the job count. With a store, cached
    // artifacts fill their queue slot up front and only misses hit the pool.
    let mut slots: Vec<Option<(Artifact, std::time::Duration)>> =
        queue.iter().map(|_| None).collect();
    let mut misses: Vec<(usize, Job)> = Vec::new();
    for (i, job) in queue.iter().enumerate() {
        let (stage, slug, ablation) = job.store_key();
        let t = std::time::Instant::now();
        let cached = store.as_mut().and_then(|s| {
            s.load_value::<Artifact>(stage, slug, fp_artifact(opts.seed, slug, ablation))
        });
        match cached {
            Some(artifact) => slots[i] = Some((artifact, t.elapsed())),
            None => misses.push((i, *job)),
        }
    }
    let computed = squ::par::map(jobs_n, misses, |(i, job)| {
        let t = std::time::Instant::now();
        let artifact = match job {
            Job::Paper(id) => squ::timing::time(&format!("artifact.{}", id.slug()), || {
                run_experiment(&suite, id)
            }),
            Job::Ablation(id) => squ::timing::time(&format!("artifact.{}", id.slug()), || {
                run_ablation(&suite, id)
            }),
        };
        (i, job, artifact, t.elapsed())
    });
    for (i, job, artifact, elapsed) in computed {
        if let Some(s) = store.as_mut() {
            let (stage, slug, ablation) = job.store_key();
            s.save_value(
                stage,
                slug,
                fp_artifact(opts.seed, slug, ablation),
                &artifact,
            );
        }
        slots[i] = Some((artifact, elapsed));
    }
    let artifacts: Vec<(Artifact, std::time::Duration)> = slots
        .into_iter()
        .map(|s| s.expect("every artifact slot is filled"))
        .collect();

    for (artifact, elapsed) in &artifacts {
        println!("\n================================================================");
        println!("{}  ({:.1?})", artifact.title, elapsed);
        println!("================================================================");
        println!("{}", artifact.body);
        fs::write(
            out_dir.join(format!("{}.txt", artifact.id)),
            format!("{}\n\n{}", artifact.title, artifact.body),
        )
        .expect("write artifact text");
        if let Some(csv) = &artifact.csv {
            fs::write(out_dir.join(format!("{}.csv", artifact.id)), csv)
                .expect("write artifact csv");
        }
    }
    eprintln!("\nartifacts written to {}", out_dir.display());
    finish_store(&opts, store.as_ref());
    finish_timings(&opts, &out_dir, jobs_n, run_start);
}

/// Print the artifact-store counters when `--store-stats` was given.
fn finish_store(opts: &Opts, store: Option<&Store>) {
    let Some(store) = store else { return };
    if opts.store_stats {
        println!("\n{}", store.render_stats());
    }
}

/// Drain the span registry: always persist `timings.json`, and print the
/// plain-text report when `--timings` was given.
fn finish_timings(opts: &Opts, out_dir: &Path, jobs_n: usize, run_start: std::time::Instant) {
    let spans = squ::timing::drain();
    let counters = squ::timing::drain_counters();
    let json = squ::timing::to_json(&spans, &counters, jobs_n, run_start.elapsed());
    let path = out_dir.join("timings.json");
    fs::write(&path, &json).expect("write timings.json");
    if opts.timings {
        eprintln!("\nphase timings ({jobs_n} jobs):");
        eprint!("{}", squ::timing::report(&spans));
        eprintln!("timings written to {}", path.display());
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let opts = parse_args(&[]).unwrap();
        assert_eq!(opts, Opts::default());
        assert_eq!(opts.seed, PAPER_SEED);
    }

    #[test]
    fn export_with_and_without_directory() {
        // bare --export falls back to the default directory
        let opts = parse_args(&argv(&["--export"])).unwrap();
        assert_eq!(opts.export.as_deref(), Some("target/benchmark-export"));
        // --export DIR consumes the directory
        let opts = parse_args(&argv(&["--export", "out/data"])).unwrap();
        assert_eq!(opts.export.as_deref(), Some("out/data"));
        // a following flag is not swallowed as the directory
        let opts = parse_args(&argv(&["--export", "--timings"])).unwrap();
        assert_eq!(opts.export.as_deref(), Some("target/benchmark-export"));
        assert!(opts.timings);
    }

    #[test]
    fn only_seed_jobs() {
        let opts = parse_args(&argv(&[
            "--only",
            "table3",
            "--seed",
            "7",
            "--jobs",
            "4",
            "--timings",
        ]))
        .unwrap();
        assert_eq!(opts.only.as_deref(), Some("table3"));
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.jobs, Some(4));
        assert!(opts.timings);
    }

    #[test]
    fn flag_values_are_validated() {
        assert!(parse_args(&argv(&["--only"])).is_err());
        assert!(parse_args(&argv(&["--seed"])).is_err());
        assert!(parse_args(&argv(&["--seed", "abc"])).is_err());
        assert!(parse_args(&argv(&["--jobs"])).is_err());
        assert!(parse_args(&argv(&["--jobs", "0"])).is_err());
        assert!(parse_args(&argv(&["--jobs", "-2"])).is_err());
        assert!(parse_args(&argv(&["--frobnicate"])).is_err());
        // flags as values are rejected, not consumed
        assert!(parse_args(&argv(&["--seed", "--jobs"])).is_err());
    }

    #[test]
    fn audit_flag() {
        let opts = parse_args(&argv(&["--audit"])).unwrap();
        assert!(opts.audit);
        // composes with seed/jobs like the other standalone modes
        let opts = parse_args(&argv(&["--audit", "--jobs", "2", "--seed", "9"])).unwrap();
        assert!(opts.audit);
        assert_eq!(opts.jobs, Some(2));
        assert_eq!(opts.seed, 9);
    }

    #[test]
    fn faults_flags() {
        let opts = parse_args(&argv(&["--faults", "heavy"])).unwrap();
        assert_eq!(opts.faults.as_deref(), Some("heavy"));
        assert_eq!(opts.fault_seed, 0);
        assert_eq!(opts.fault_gate, None);
        // composes with the fault seed, gate, and the shared seed/jobs flags
        let opts = parse_args(&argv(&[
            "--faults",
            "none",
            "--fault-seed",
            "9",
            "--fault-gate",
            "0.02",
            "--jobs",
            "4",
        ]))
        .unwrap();
        assert_eq!(opts.faults.as_deref(), Some("none"));
        assert_eq!(opts.fault_seed, 9);
        assert_eq!(opts.fault_gate, Some(0.02));
        assert_eq!(opts.jobs, Some(4));
        // every profile name parses; anything else is rejected up front
        for name in FaultProfile::NAMES {
            assert!(parse_args(&argv(&["--faults", name])).is_ok());
        }
        assert!(parse_args(&argv(&["--faults"])).is_err());
        assert!(parse_args(&argv(&["--faults", "catastrophic"])).is_err());
        assert!(parse_args(&argv(&["--fault-seed"])).is_err());
        assert!(parse_args(&argv(&["--fault-seed", "abc"])).is_err());
        assert!(parse_args(&argv(&["--fault-gate"])).is_err());
        assert!(parse_args(&argv(&["--fault-gate", "1.5"])).is_err());
        assert!(parse_args(&argv(&["--fault-gate", "-0.1"])).is_err());
    }

    #[test]
    fn resume_and_store_stats_flags() {
        let opts = parse_args(&argv(&["--resume"])).unwrap();
        assert!(opts.resume);
        assert!(!opts.store_stats);
        let opts = parse_args(&argv(&["--store-stats"])).unwrap();
        assert!(opts.store_stats);
        assert!(!opts.resume);
        // compose with each other and with the standalone modes
        let opts = parse_args(&argv(&[
            "--resume",
            "--store-stats",
            "--audit",
            "--jobs",
            "2",
        ]))
        .unwrap();
        assert!(opts.resume && opts.store_stats && opts.audit);
        assert_eq!(opts.jobs, Some(2));
        let opts = parse_args(&argv(&["--faults", "none", "--resume"])).unwrap();
        assert!(opts.resume);
        assert_eq!(opts.faults.as_deref(), Some("none"));
    }

    #[test]
    fn list_and_ablations_flags() {
        let opts = parse_args(&argv(&["--list"])).unwrap();
        assert!(opts.list);
        let opts = parse_args(&argv(&["--ablations", "--jobs", "2"])).unwrap();
        assert!(opts.ablations);
        assert_eq!(opts.jobs, Some(2));
    }

    #[test]
    fn fuzz_flags() {
        let opts = parse_args(&argv(&["--fuzz", "500"])).unwrap();
        assert_eq!(opts.fuzz, Some(500));
        assert_eq!(opts.fuzz_seed, 0);
        let opts = parse_args(&argv(&["--fuzz", "500", "--fuzz-seed", "7"])).unwrap();
        assert_eq!(opts.fuzz, Some(500));
        assert_eq!(opts.fuzz_seed, 7);
        // order-independent: the dependent flag may come first
        let opts = parse_args(&argv(&["--fuzz-seed", "7", "--fuzz", "500"])).unwrap();
        assert_eq!(opts.fuzz_seed, 7);
        // composes with the shared execution flags
        let opts = parse_args(&argv(&[
            "--fuzz",
            "100",
            "--jobs",
            "8",
            "--resume",
            "--store-stats",
            "--timings",
        ]))
        .unwrap();
        assert_eq!(opts.fuzz, Some(100));
        assert_eq!(opts.jobs, Some(8));
        assert!(opts.resume && opts.store_stats && opts.timings);
        // value validation
        assert!(parse_args(&argv(&["--fuzz"])).is_err());
        assert!(parse_args(&argv(&["--fuzz", "0"])).is_err());
        assert!(parse_args(&argv(&["--fuzz", "abc"])).is_err());
        assert!(parse_args(&argv(&["--fuzz-seed", "7"])).is_err());
    }

    #[test]
    fn dialect_flag() {
        let opts = parse_args(&argv(&["--fuzz", "100"])).unwrap();
        assert_eq!(opts.dialect, None);
        // every dialect name parses, in any argument order
        for name in Dialect::NAMES {
            let opts = parse_args(&argv(&["--fuzz", "100", "--dialect", name])).unwrap();
            assert_eq!(opts.dialect.as_deref(), Some(name));
            let opts = parse_args(&argv(&["--dialect", name, "--fuzz", "100"])).unwrap();
            assert_eq!(opts.dialect.as_deref(), Some(name));
        }
        // unknown values and a missing value are rejected with the list
        let err = parse_args(&argv(&["--fuzz", "100", "--dialect", "oracle"])).unwrap_err();
        assert!(
            err.contains("unknown dialect") && err.contains("tsql"),
            "{err}"
        );
        let err = parse_args(&argv(&["--fuzz", "100", "--dialect"])).unwrap_err();
        assert!(err.contains("--dialect needs a dialect name"), "{err}");
        // the dependent flag demands its parent mode
        let err = parse_args(&argv(&["--dialect", "tsql"])).unwrap_err();
        assert!(err.contains("--dialect requires --fuzz"), "{err}");
        let err = parse_args(&argv(&["--audit", "--dialect", "tsql"])).unwrap_err();
        assert!(err.contains("--dialect requires --fuzz"), "{err}");
    }

    #[test]
    fn synth_flags() {
        let opts = parse_args(&argv(&["--synth", "1000000"])).unwrap();
        assert_eq!(opts.synth, Some(1_000_000));
        assert_eq!(opts.shards, None);
        assert_eq!(opts.target, None);
        let opts = parse_args(&argv(&[
            "--synth",
            "50000",
            "--shards",
            "8",
            "--target",
            "spec.json",
        ]))
        .unwrap();
        assert_eq!(opts.synth, Some(50_000));
        assert_eq!(opts.shards, Some(8));
        assert_eq!(opts.target.as_deref(), Some("spec.json"));
        // order-independent: dependents may come first
        let opts = parse_args(&argv(&["--shards", "3", "--synth", "5000"])).unwrap();
        assert_eq!(opts.shards, Some(3));
        // composes with the shared execution flags
        let opts = parse_args(&argv(&[
            "--synth",
            "5000",
            "--jobs",
            "4",
            "--seed",
            "7",
            "--resume",
            "--timings",
        ]))
        .unwrap();
        assert_eq!(opts.synth, Some(5000));
        assert_eq!(opts.jobs, Some(4));
        assert_eq!(opts.seed, 7);
        assert!(opts.resume && opts.timings);
        // value validation
        assert!(parse_args(&argv(&["--synth"])).is_err());
        assert!(parse_args(&argv(&["--synth", "0"])).is_err());
        assert!(parse_args(&argv(&["--synth", "abc"])).is_err());
        assert!(parse_args(&argv(&["--synth", "10", "--shards", "0"])).is_err());
        assert!(parse_args(&argv(&["--synth", "10", "--shards"])).is_err());
        assert!(parse_args(&argv(&["--synth", "10", "--target"])).is_err());
        // dependents demand their parent mode
        for dep in [&["--shards", "4"][..], &["--target", "spec.json"][..]] {
            let err = parse_args(&argv(dep)).unwrap_err();
            assert!(err.contains("--synth"), "{dep:?}: {err}");
        }
        let err = parse_args(&argv(&["--audit", "--shards", "4"])).unwrap_err();
        assert!(err.contains("--shards requires --synth"), "{err}");
        // --synth is a mode: it conflicts with the others
        let err = parse_args(&argv(&["--synth", "10", "--fuzz", "10"])).unwrap_err();
        assert!(err.contains("conflicting flags"), "{err}");
        let err = parse_args(&argv(&["--synth", "10", "--audit"])).unwrap_err();
        assert!(err.contains("conflicting flags"), "{err}");
    }

    #[test]
    fn serve_flags() {
        let opts = parse_args(&argv(&["--serve", "127.0.0.1:0"])).unwrap();
        assert_eq!(opts.serve.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(opts.serve_store, None);
        assert_eq!(opts.serve_inflight, None);
        let opts = parse_args(&argv(&[
            "--serve",
            "127.0.0.1:8080",
            "--serve-store",
            "/tmp/store",
            "--serve-inflight",
            "4",
        ]))
        .unwrap();
        assert_eq!(opts.serve_store.as_deref(), Some("/tmp/store"));
        assert_eq!(opts.serve_inflight, Some(4));
        // value validation and parent requirements
        assert!(parse_args(&argv(&["--serve"])).is_err());
        assert!(parse_args(&argv(&["--serve", "a", "--serve-inflight", "x"])).is_err());
        for dep in [
            &["--serve-store", "/tmp/x"][..],
            &["--serve-inflight", "4"][..],
        ] {
            let err = parse_args(&argv(dep)).unwrap_err();
            assert!(err.contains("--serve"), "{dep:?}: {err}");
        }
        // --serve is a mode: it conflicts with the others
        let err = parse_args(&argv(&["--serve", "a", "--audit"])).unwrap_err();
        assert!(err.contains("conflicting flags"), "{err}");
    }

    #[test]
    fn duplicate_flags_are_rejected() {
        for dup in [
            &["--resume", "--resume"][..],
            &["--audit", "--timings", "--audit"][..],
            &["--seed", "3", "--seed", "4"][..],
            &["--jobs", "2", "--jobs", "2"][..],
            &["--faults", "none", "--faults", "heavy"][..],
            &["--fuzz", "10", "--fuzz", "20"][..],
            &["--only", "table3", "--only", "table4"][..],
            &["--export", "a", "--export", "b"][..],
        ] {
            let err = parse_args(&argv(dup)).unwrap_err();
            assert!(
                err.contains("duplicate flag"),
                "{dup:?} should be a duplicate-flag error, got: {err}"
            );
        }
    }

    #[test]
    fn conflicting_modes_are_rejected() {
        for conflict in [
            &["--audit", "--faults", "none"][..],
            &["--list", "--ablations"][..],
            &["--fuzz", "10", "--audit"][..],
            &["--export", "--only", "table3"][..],
            &["--only", "table3", "--ablations"][..],
            &["--fuzz", "10", "--faults", "heavy"][..],
            &["--list", "--export"][..],
        ] {
            let err = parse_args(&argv(conflict)).unwrap_err();
            assert!(
                err.contains("conflicting flags"),
                "{conflict:?} should be a mode conflict, got: {err}"
            );
        }
        // both flags are named in the diagnosis
        let err = parse_args(&argv(&["--audit", "--fuzz", "10"])).unwrap_err();
        assert!(err.contains("--audit") && err.contains("--fuzz"), "{err}");
    }

    #[test]
    fn dependent_flags_require_their_parent() {
        for (args, parent) in [
            (&["--fault-seed", "3"][..], "--faults"),
            (&["--fault-gate", "0.5"][..], "--faults"),
            (&["--fuzz-seed", "3"][..], "--fuzz"),
            (&["--audit", "--fault-seed", "3"][..], "--faults"),
        ] {
            let err = parse_args(&argv(args)).unwrap_err();
            assert!(
                err.contains(parent),
                "{args:?} should demand {parent}, got: {err}"
            );
        }
        // with the parent present they parse, in any order
        assert!(parse_args(&argv(&["--faults", "none", "--fault-seed", "3"])).is_ok());
        assert!(parse_args(&argv(&["--fault-gate", "0.1", "--faults", "none"])).is_ok());
    }
}
