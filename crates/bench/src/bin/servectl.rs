//! Client-side control and load generation for the `squ-serve` server.
//!
//! ```text
//! servectl ADDR health                 # GET /healthz, exit 0 iff 200
//! servectl ADDR statz                  # GET /statz, print the snapshot
//! servectl ADDR eval JSON [DIALECT]    # POST /eval; line 1: "HTTP <status> cache=<hit|miss>",
//!                                      # then the raw response body. DIALECT is
//!                                      # injected into the body as "dialect"
//!                                      # (overriding any value already there);
//!                                      # the server validates it (unknown → 400)
//! servectl ADDR suite JSON             # POST /suite; stream the NDJSON lines
//! servectl ADDR load N PROFILE SEED    # seeded mixed workload: N exchanges cycling
//!                                      # tasks × workloads × models with PROFILE's
//!                                      # wire faults injected; prints a report and
//!                                      # exits 1 on any 5xx
//! ```
//!
//! Exchanges time out after 60 s; any transport failure exits 1 with the
//! error on stderr. `load` is the soak driver used by `xtask serve-smoke`:
//! its request schedule is a pure function of `(N, PROFILE, SEED)`.

use squ_llm::FaultProfile;
use squ_serve::{once, WireFaultClient, WireOutcome, WireReport};
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(60);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr_raw, cmd, rest) = match args.split_first() {
        Some((addr, rest)) => match rest.split_first() {
            Some((cmd, rest)) => (addr.clone(), cmd.clone(), rest.to_vec()),
            None => die("usage: servectl ADDR <health|statz|eval|suite|load> [...]"),
        },
        None => die("usage: servectl ADDR <health|statz|eval|suite|load> [...]"),
    };
    let addr = resolve(&addr_raw);

    match cmd.as_str() {
        "health" => {
            let resp = exchange(addr, "GET", "/healthz", b"");
            println!("{}", resp.text());
            if resp.status != 200 {
                std::process::exit(1);
            }
        }
        "statz" => {
            let resp = exchange(addr, "GET", "/statz", b"");
            println!("{}", resp.text());
            if resp.status != 200 {
                std::process::exit(1);
            }
        }
        "eval" => {
            let body = match rest.as_slice() {
                [body] => body.clone(),
                [body, dialect] => {
                    with_dialect(body, dialect).unwrap_or_else(|e| die(&format!("eval: {e}")))
                }
                _ => die("usage: servectl ADDR eval JSON [DIALECT]"),
            };
            let resp = exchange(addr, "POST", "/eval", body.as_bytes());
            let cache = resp.header("x-squ-cache").unwrap_or("-");
            println!("HTTP {} cache={cache}", resp.status);
            println!("{}", resp.text());
            if resp.status >= 400 {
                std::process::exit(1);
            }
        }
        "suite" => {
            let body = rest
                .first()
                .unwrap_or_else(|| die("suite needs a JSON body argument"));
            let resp = exchange(addr, "POST", "/suite", body.as_bytes());
            print!("{}", resp.text());
            if resp.status >= 400 {
                std::process::exit(1);
            }
        }
        "load" => {
            let (n, profile, seed) = match rest.as_slice() {
                [n, profile, seed] => (
                    n.parse::<u64>()
                        .unwrap_or_else(|_| die("load: N must be an integer")),
                    FaultProfile::by_name(profile).unwrap_or_else(|| {
                        die(&format!(
                            "load: unknown profile {profile:?} (one of {})",
                            FaultProfile::NAMES.join(", ")
                        ))
                    }),
                    seed.parse::<u64>()
                        .unwrap_or_else(|_| die("load: SEED must be an integer")),
                ),
                _ => die("usage: servectl ADDR load N PROFILE SEED"),
            };
            let report = run_load(addr, n, profile, seed);
            println!(
                "load: {} exchanges, {} faulted, {} ok, {} rejected (4xx), {} server errors (5xx), {} silent",
                report.requests,
                report.faulted,
                report.ok,
                report.rejected,
                report.server_errors,
                report.silent
            );
            for (kind, count) in &report.by_kind {
                println!("  fault {kind:<14} {count}");
            }
            if report.server_errors > 0 {
                eprintln!(
                    "error: server produced {} 5xx responses",
                    report.server_errors
                );
                std::process::exit(1);
            }
        }
        other => die(&format!("unknown command {other:?}")),
    }
}

/// A deterministic mixed workload: exchange `i` evaluates coordinate
/// `i` of the (task, workload, model) cycle, with wire faults drawn from
/// `profile` at the same index.
fn run_load(addr: SocketAddr, n: u64, profile: FaultProfile, seed: u64) -> WireReport {
    // cheap, valid coordinates only — the soak exercises the wire and the
    // admission path, not the expensive equivalence pipeline
    let coords = [
        ("syntax", "joinorder", "GPT4"),
        ("syntax", "joinorder", "Gemini"),
        ("syntax", "sqlshare", "GPT3.5"),
        ("tokens", "joinorder", "Llama3"),
        ("syntax", "joinorder", "MistralAI"),
    ];
    let client = WireFaultClient::new(profile, seed).with_timeout(TIMEOUT);
    let mut report = WireReport::default();
    for i in 0..n {
        let (task, workload, model) = coords[(i % coords.len() as u64) as usize];
        let body = format!(
            r#"{{"task":"{task}","workload":"{workload}","model":"{model}","profile":"none","seed":5}}"#
        );
        let (fault, outcome) = client.fire(addr, i, "/eval", body.as_bytes());
        if let WireOutcome::Responses(statuses) = &outcome {
            if let Some(s) = statuses.iter().find(|s| **s >= 500) {
                eprintln!("exchange {i} (fault {fault:?}): server answered {s}");
            }
        }
        report.observe(fault, &outcome);
    }
    report
}

/// Inject (or override) the `"dialect"` key in a JSON `/eval` body.
/// Validation of the name itself is the server's job — forwarding an
/// unknown dialect verbatim lets the 400 (with the valid list) surface.
fn with_dialect(body: &str, dialect: &str) -> Result<String, String> {
    let mut doc: serde_json::Value =
        serde_json::from_str(body).map_err(|e| format!("body is not valid JSON: {e}"))?;
    let serde_json::Value::Object(fields) = &mut doc else {
        return Err("body must be a JSON object".to_string());
    };
    fields.retain(|(k, _)| k != "dialect");
    fields.push((
        "dialect".to_string(),
        serde_json::Value::Str(dialect.to_string()),
    ));
    serde_json::to_string(&doc).map_err(|e| format!("re-encoding body failed: {e}"))
}

fn resolve(raw: &str) -> SocketAddr {
    raw.to_socket_addrs()
        .ok()
        .and_then(|mut it| it.next())
        .unwrap_or_else(|| die(&format!("cannot resolve address {raw:?}")))
}

fn exchange(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> squ_serve::HttpResponse {
    once(
        addr,
        method,
        path,
        &[("x-squ-client", "servectl")],
        body,
        TIMEOUT,
    )
    .unwrap_or_else(|e| die(&format!("{method} {path} failed: {e}")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::with_dialect;

    #[test]
    fn dialect_is_injected_into_the_body() {
        let out = with_dialect(
            r#"{"task":"syntax","workload":"sdss","model":"GPT4"}"#,
            "tsql",
        )
        .expect("injects");
        let doc: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        assert_eq!(doc["dialect"], "tsql");
        assert_eq!(doc["task"], "syntax");
    }

    #[test]
    fn dialect_argument_overrides_an_existing_key() {
        let out =
            with_dialect(r#"{"task":"syntax","dialect":"mysql"}"#, "postgres").expect("overrides");
        let doc: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        assert_eq!(doc["dialect"], "postgres");
    }

    #[test]
    fn unknown_names_are_forwarded_not_rejected_locally() {
        // client-side leniency: the server owns the valid list and its 400
        let out = with_dialect(r#"{"task":"syntax"}"#, "oracle").expect("forwards");
        assert!(out.contains(r#""dialect":"oracle""#) || out.contains(r#""dialect": "oracle""#));
    }

    #[test]
    fn malformed_bodies_error_before_the_wire() {
        assert!(with_dialect("not json", "tsql").is_err());
        assert!(with_dialect("[1,2]", "tsql").is_err());
    }
}
