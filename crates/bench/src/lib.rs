//! Benchmark + reproduction crate. The library surface is empty; see the
//! `repro` binary and the Criterion benches.
