//! Golden fixtures: one minimal query per paper error category, asserting
//! the exact [`DiagnosticKind`], its stable `SQU0xx` code, and the byte
//! span the diagnostic points at. These pin the analyzer's observable
//! contract — the dataset auditor and the `squ-lint` code registry both
//! rely on precisely these (kind, code, span) triples.

use squ_parser::parse;
use squ_schema::schemas::sdss;
use squ_schema::{analyze, Diagnostic, DiagnosticKind};

/// Analyze `sql` against the SDSS schema and return the single diagnostic
/// of `kind`, panicking (with the full list) if it is absent.
fn diag_of(sql: &str, kind: DiagnosticKind) -> Diagnostic {
    let stmt = parse(sql).expect("fixture parses");
    let diags = analyze(&stmt, &sdss());
    diags
        .iter()
        .find(|d| d.kind == kind)
        .cloned()
        .unwrap_or_else(|| panic!("no {kind:?} in {diags:?} for `{sql}`"))
}

/// The span must be present and slice `sql` to exactly `text`.
fn assert_span(sql: &str, d: &Diagnostic, text: &str) {
    let span = d
        .span
        .unwrap_or_else(|| panic!("{:?} carries no span: {}", d.kind, d.message));
    assert_eq!(
        &sql[span.start..span.end],
        text,
        "span {}..{} of `{sql}`",
        span.start,
        span.end
    );
}

#[test]
fn aggr_attr() {
    let sql = "SELECT plate, COUNT(*) FROM SpecObj";
    let d = diag_of(sql, DiagnosticKind::AggrWithoutGroupBy);
    assert_eq!(d.kind.code(), "SQU020");
    assert_span(sql, &d, "plate");
}

#[test]
fn aggr_having() {
    let sql = "SELECT class, COUNT(*) FROM SpecObj GROUP BY class HAVING mjd > 5";
    let d = diag_of(sql, DiagnosticKind::HavingNonAggregate);
    assert_eq!(d.kind.code(), "SQU021");
    assert_span(sql, &d, "mjd");
}

#[test]
fn nested_mismatch() {
    let sql = "SELECT plate FROM SpecObj WHERE z = (SELECT z FROM SpecObj)";
    let d = diag_of(sql, DiagnosticKind::ScalarSubqueryMultiRow);
    assert_eq!(d.kind.code(), "SQU030");
    assert_span(sql, &d, "SELECT z FROM SpecObj");
}

#[test]
fn condition_mismatch() {
    let sql = "SELECT plate FROM SpecObj WHERE z > 'high'";
    let d = diag_of(sql, DiagnosticKind::ComparisonTypeMismatch);
    assert_eq!(d.kind.code(), "SQU031");
    assert_span(sql, &d, "z");
}

#[test]
fn alias_undefined() {
    let sql = "SELECT s.plate FROM SpecObj";
    let d = diag_of(sql, DiagnosticKind::UndefinedAlias);
    assert_eq!(d.kind.code(), "SQU012");
    assert_span(sql, &d, "s.plate");
}

#[test]
fn alias_ambiguous() {
    let sql = "SELECT ra FROM SpecObj JOIN PhotoObj ON SpecObj.bestobjid = PhotoObj.objid";
    let d = diag_of(sql, DiagnosticKind::AmbiguousColumn);
    assert_eq!(d.kind.code(), "SQU013");
    assert_span(sql, &d, "ra");
}

#[test]
fn unknown_table_and_column_codes() {
    // not paper categories, but part of the stable code surface
    let d = diag_of("SELECT x FROM NoSuchTable", DiagnosticKind::UnknownTable);
    assert_eq!(d.kind.code(), "SQU010");
    let sql = "SELECT nosuch FROM SpecObj";
    let d = diag_of(sql, DiagnosticKind::UnknownColumn);
    assert_eq!(d.kind.code(), "SQU011");
    assert_span(sql, &d, "nosuch");
}

#[test]
fn clean_fixture_has_no_diagnostics() {
    let stmt = parse("SELECT plate, mjd FROM SpecObj WHERE z > 0.5").expect("parses");
    assert!(analyze(&stmt, &sdss()).is_empty());
}

#[test]
fn function_resolution_is_case_insensitive_across_dialect_spellings() {
    // Pins the catalog-backed resolution: every casing and every dialect
    // spelling of a catalog function must land on the same row, so none
    // of these produce a type diagnostic. A regression to case- or
    // spelling-sensitive lookup would type `count(*)` as Float and flag
    // `z = count(*)`-style comparisons, or mistype the string functions.
    for sql in [
        "SELECT plate, count(*) FROM SpecObj GROUP BY plate HAVING Count(*) > 1",
        "SELECT plate, avg(z) FROM SpecObj GROUP BY plate HAVING AVG(z) > 0.5",
        // LEN and LENGTH are one catalog row (T-SQL vs everyone else);
        // both must type as Int, so comparing to a number is clean
        "SELECT plate FROM SpecObj WHERE len(class) > 3",
        "SELECT plate FROM SpecObj WHERE LENGTH(class) > 3",
        // UCASE is the MySQL spelling of UPPER: both type as Text
        "SELECT plate FROM SpecObj WHERE upper(class) = 'STAR'",
        "SELECT plate FROM SpecObj WHERE UCASE(class) = 'STAR'",
        "SELECT plate FROM SpecObj WHERE substr(class, 1, 1) = SUBSTRING(class, 1, 1)",
    ] {
        let stmt = parse(sql).expect("fixture parses");
        let diags = analyze(&stmt, &sdss());
        assert!(
            diags.is_empty(),
            "unexpected diagnostics for `{sql}`: {diags:?}"
        );
    }
}
