//! Semantic analyzer ("binder").
//!
//! Resolves table and column references against a [`Schema`], tracks alias
//! scopes (including correlated subqueries and CTEs), infers expression
//! types, and emits [`Diagnostic`]s. The diagnostic kinds map one-to-one
//! onto the six syntax-error categories of the paper (§3.1, Listing 1) plus
//! two generic resolution errors:
//!
//! | paper type | [`DiagnosticKind`] |
//! |---|---|
//! | `aggr-attr` | [`AggrWithoutGroupBy`](DiagnosticKind::AggrWithoutGroupBy) |
//! | `aggr-having` | [`HavingNonAggregate`](DiagnosticKind::HavingNonAggregate) |
//! | `nested-mismatch` | [`ScalarSubqueryMultiRow`](DiagnosticKind::ScalarSubqueryMultiRow) |
//! | `condition-mismatch` | [`ComparisonTypeMismatch`](DiagnosticKind::ComparisonTypeMismatch) |
//! | `alias-undefined` | [`UndefinedAlias`](DiagnosticKind::UndefinedAlias) |
//! | `alias-ambiguous` | [`AmbiguousColumn`](DiagnosticKind::AmbiguousColumn) |

use crate::{Column, Schema, SqlType};
use squ_parser::ast::*;
use std::collections::HashMap;

/// The kind of semantic problem found by the binder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagnosticKind {
    /// Aggregate functions mixed with non-aggregated, non-grouped columns
    /// (paper: `aggr-attr`).
    AggrWithoutGroupBy,
    /// `HAVING` filters a column that is neither aggregated nor grouped
    /// (paper: `aggr-having`).
    HavingNonAggregate,
    /// A scalar comparison against a subquery that may return multiple rows
    /// (paper: `nested-mismatch`).
    ScalarSubqueryMultiRow,
    /// Comparison between incompatible types, e.g. numeric vs. string
    /// (paper: `condition-mismatch`).
    ComparisonTypeMismatch,
    /// A qualifier that names no table or alias in scope
    /// (paper: `alias-undefined`).
    UndefinedAlias,
    /// An unqualified column name found in several tables in scope
    /// (paper: `alias-ambiguous`).
    AmbiguousColumn,
    /// Table name not found in the schema (and not a CTE).
    UnknownTable,
    /// Column name not found in any table in scope.
    UnknownColumn,
}

impl DiagnosticKind {
    /// The paper's label for this error type, when it is one of the six
    /// studied categories.
    pub fn paper_label(&self) -> Option<&'static str> {
        match self {
            DiagnosticKind::AggrWithoutGroupBy => Some("aggr-attr"),
            DiagnosticKind::HavingNonAggregate => Some("aggr-having"),
            DiagnosticKind::ScalarSubqueryMultiRow => Some("nested-mismatch"),
            DiagnosticKind::ComparisonTypeMismatch => Some("condition-mismatch"),
            DiagnosticKind::UndefinedAlias => Some("alias-undefined"),
            DiagnosticKind::AmbiguousColumn => Some("alias-ambiguous"),
            DiagnosticKind::UnknownTable | DiagnosticKind::UnknownColumn => None,
        }
    }
}

/// A semantic diagnostic: kind plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// What went wrong.
    pub kind: DiagnosticKind,
    /// Explanation referencing the offending names.
    pub message: String,
}

/// Run semantic analysis of `stmt` against `schema`, returning every
/// diagnostic found (empty = semantically clean).
pub fn analyze(stmt: &Statement, schema: &Schema) -> Vec<Diagnostic> {
    let mut b = Binder::new(schema);
    match stmt {
        Statement::Query(q) => b.bind_query(q),
        Statement::CreateTable { source, .. } => {
            if let Some(q) = source {
                b.bind_query(q);
            }
        }
        Statement::CreateView { query, .. } => b.bind_query(query),
    }
    b.diags
}

/// One visible relation in a scope: its binding name and (if known) its
/// columns. `columns == None` marks a relation we could not resolve; later
/// lookups through it succeed with unknown type so one bad table does not
/// cascade into dozens of spurious column errors.
#[derive(Debug, Clone)]
struct Binding {
    name: String,
    columns: Option<Vec<Column>>,
}

struct Binder<'a> {
    schema: &'a Schema,
    /// CTE environments; inner queries see outer CTEs.
    ctes: Vec<HashMap<String, Vec<Column>>>,
    /// Scope stack; inner scopes (subqueries) may reference outer ones
    /// (correlation).
    scopes: Vec<Vec<Binding>>,
    diags: Vec<Diagnostic>,
}

impl<'a> Binder<'a> {
    fn new(schema: &'a Schema) -> Self {
        Binder {
            schema,
            ctes: vec![HashMap::new()],
            scopes: Vec::new(),
            diags: Vec::new(),
        }
    }

    fn diag(&mut self, kind: DiagnosticKind, message: String) {
        self.diags.push(Diagnostic { kind, message });
    }

    fn lookup_cte(&self, name: &str) -> Option<&Vec<Column>> {
        self.ctes
            .iter()
            .rev()
            .find_map(|env| env.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)))
            .map(|(_, v)| v)
    }

    fn bind_query(&mut self, q: &Query) {
        self.ctes.push(HashMap::new());
        for cte in &q.ctes {
            self.bind_query(&cte.query);
            let cols = self.infer_output_columns(&cte.query);
            self.ctes
                .last_mut()
                .expect("env pushed above")
                .insert(cte.name.clone(), cols);
        }
        self.bind_set_expr(&q.body, &q.order_by);
        self.ctes.pop();
    }

    fn bind_set_expr(&mut self, body: &SetExpr, order_by: &[OrderItem]) {
        match body {
            SetExpr::Select(s) => self.bind_select(s, order_by),
            SetExpr::SetOp { left, right, .. } => {
                self.bind_set_expr(left, &[]);
                self.bind_set_expr(right, order_by);
            }
        }
    }

    fn bind_select(&mut self, s: &Select, order_by: &[OrderItem]) {
        // 1. Build scope from FROM.
        let mut scope = Vec::new();
        for tr in &s.from {
            self.collect_bindings(tr, &mut scope);
        }
        self.scopes.push(scope);

        // 2. Join conditions.
        for tr in &s.from {
            self.check_join_conditions(tr);
        }

        // 3. Projection, WHERE, GROUP BY, HAVING, ORDER BY expressions.
        for item in &s.items {
            if let SelectItem::Expr { expr, .. } = item {
                self.check_expr(expr);
            }
        }
        if let Some(w) = &s.selection {
            self.check_expr(w);
        }
        for g in &s.group_by {
            self.check_expr(g);
        }
        if let Some(h) = &s.having {
            self.check_expr(h);
        }
        // ORDER BY may reference projection aliases and output column
        // names (which resolve unambiguously to the projected value even
        // when several scope tables share the name).
        let output_names: Vec<String> = s
            .items
            .iter()
            .filter_map(|i| match i {
                SelectItem::Expr { alias: Some(a), .. } => Some(a.clone()),
                SelectItem::Expr {
                    expr: Expr::Column(c),
                    ..
                } => Some(c.name.clone()),
                _ => None,
            })
            .collect();
        for item in order_by {
            if let Expr::Column(c) = &item.expr {
                if c.qualifier.is_none()
                    && output_names.iter().any(|a| a.eq_ignore_ascii_case(&c.name))
                {
                    continue;
                }
            }
            self.check_expr(&item.expr);
        }

        // 4. Aggregation / grouping rules.
        self.check_grouping(s);

        self.scopes.pop();
    }

    fn collect_bindings(&mut self, tr: &TableRef, scope: &mut Vec<Binding>) {
        match tr {
            TableRef::Named { name, alias } => {
                let binding_name = alias.clone().unwrap_or_else(|| name.clone());
                let columns = if let Some(cols) = self.lookup_cte(name) {
                    Some(cols.clone())
                } else if let Some(t) = self.schema.table(name) {
                    Some(t.columns.clone())
                } else {
                    self.diag(
                        DiagnosticKind::UnknownTable,
                        format!("table '{name}' not found in schema '{}'", self.schema.name),
                    );
                    None
                };
                scope.push(Binding {
                    name: binding_name,
                    columns,
                });
            }
            TableRef::Derived { query, alias } => {
                self.bind_query(query);
                let cols = self.infer_output_columns(query);
                scope.push(Binding {
                    name: alias.clone().unwrap_or_default(),
                    columns: Some(cols),
                });
            }
            TableRef::Join { left, right, .. } => {
                self.collect_bindings(left, scope);
                self.collect_bindings(right, scope);
            }
        }
    }

    fn check_join_conditions(&mut self, tr: &TableRef) {
        if let TableRef::Join {
            left,
            right,
            constraint,
            ..
        } = tr
        {
            self.check_join_conditions(left);
            self.check_join_conditions(right);
            if let JoinConstraint::On(e) = constraint {
                self.check_expr(e);
            }
        }
    }

    // ----- column resolution -----

    /// Resolve a column reference, emitting diagnostics; returns its type if
    /// known.
    fn resolve_column(&mut self, c: &ColumnRef) -> Option<SqlType> {
        match &c.qualifier {
            Some(q) => {
                // innermost scope containing the binding wins
                for scope in self.scopes.iter().rev() {
                    if let Some(b) = scope.iter().find(|b| b.name.eq_ignore_ascii_case(q)) {
                        return match &b.columns {
                            Some(cols) => {
                                match cols
                                    .iter()
                                    .find(|col| col.name.eq_ignore_ascii_case(&c.name))
                                {
                                    Some(col) => Some(col.ty),
                                    None => {
                                        let q = q.clone();
                                        let name = c.name.clone();
                                        self.diag(
                                            DiagnosticKind::UnknownColumn,
                                            format!("column '{name}' not found in '{q}'"),
                                        );
                                        None
                                    }
                                }
                            }
                            None => None, // unknown table: suppress cascade
                        };
                    }
                }
                let q = q.clone();
                self.diag(
                    DiagnosticKind::UndefinedAlias,
                    format!("alias or table '{q}' is not defined in this scope"),
                );
                None
            }
            None => {
                // search scopes inner -> outer; ambiguity only within one scope
                for scope in self.scopes.iter().rev() {
                    let mut matches: Vec<(String, Option<SqlType>)> = Vec::new();
                    let mut any_unknown = false;
                    for b in scope {
                        match &b.columns {
                            Some(cols) => {
                                if let Some(col) = cols
                                    .iter()
                                    .find(|col| col.name.eq_ignore_ascii_case(&c.name))
                                {
                                    matches.push((b.name.clone(), Some(col.ty)));
                                }
                            }
                            None => any_unknown = true,
                        }
                    }
                    match matches.len() {
                        0 => {
                            if any_unknown {
                                // could belong to the unresolved table
                                return None;
                            }
                        }
                        1 => return matches[0].1,
                        _ => {
                            let name = c.name.clone();
                            let holders: Vec<String> =
                                matches.iter().map(|(n, _)| n.clone()).collect();
                            self.diag(
                                DiagnosticKind::AmbiguousColumn,
                                format!(
                                    "column '{name}' is ambiguous; found in {}",
                                    holders.join(", ")
                                ),
                            );
                            return matches[0].1;
                        }
                    }
                }
                if !self.scopes.is_empty() {
                    let name = c.name.clone();
                    self.diag(
                        DiagnosticKind::UnknownColumn,
                        format!("column '{name}' not found in any table in scope"),
                    );
                }
                None
            }
        }
    }

    // ----- expression checking & type inference -----

    /// Check an expression tree: resolve columns, check comparisons, and
    /// recurse into subqueries. Returns the inferred type if known.
    fn check_expr(&mut self, e: &Expr) -> Option<SqlType> {
        match e {
            Expr::Column(c) => self.resolve_column(c),
            Expr::Literal(l) => literal_type(l),
            Expr::Compare { op: _, left, right } => {
                let lt = self.check_expr(left);
                let rt = self.check_expr(right);
                self.check_comparable(lt, rt, left, right);
                self.check_scalar_subquery_cardinality(left);
                self.check_scalar_subquery_cardinality(right);
                Some(SqlType::Bool)
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                self.check_expr(a);
                self.check_expr(b);
                Some(SqlType::Bool)
            }
            Expr::Not(inner) => {
                self.check_expr(inner);
                Some(SqlType::Bool)
            }
            Expr::IsNull { expr, .. } => {
                self.check_expr(expr);
                Some(SqlType::Bool)
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                let t = self.check_expr(expr);
                let lt = self.check_expr(low);
                let ht = self.check_expr(high);
                self.check_comparable(t, lt, expr, low);
                self.check_comparable(t, ht, expr, high);
                Some(SqlType::Bool)
            }
            Expr::InList { expr, list, .. } => {
                let t = self.check_expr(expr);
                for item in list {
                    let it = self.check_expr(item);
                    self.check_comparable(t, it, expr, item);
                }
                Some(SqlType::Bool)
            }
            Expr::InSubquery { expr, subquery, .. } => {
                let t = self.check_expr(expr);
                self.bind_query(subquery);
                let sub_cols = self.infer_output_columns(subquery);
                if let (Some(t), Some(first)) = (t, sub_cols.first()) {
                    if !t.comparable_with(first.ty) {
                        self.diag(
                            DiagnosticKind::ComparisonTypeMismatch,
                            format!(
                                "IN compares {t} with subquery column '{}' of type {}",
                                first.name, first.ty
                            ),
                        );
                    }
                }
                Some(SqlType::Bool)
            }
            Expr::Exists { subquery, .. } => {
                self.bind_query(subquery);
                Some(SqlType::Bool)
            }
            Expr::ScalarSubquery(q) => {
                self.bind_query(q);
                self.infer_output_columns(q).first().map(|c| c.ty)
            }
            Expr::Like { expr, pattern, .. } => {
                self.check_expr(expr);
                self.check_expr(pattern);
                Some(SqlType::Bool)
            }
            Expr::Function { name, args, .. } => {
                for a in args {
                    if !matches!(a, Expr::Wildcard) {
                        self.check_expr(a);
                    }
                }
                Some(function_type(name, args, |arg| self.infer_type_quiet(arg)))
            }
            Expr::Wildcard => None,
            Expr::Arith { left, right, .. } => {
                self.check_expr(left);
                self.check_expr(right);
                Some(SqlType::Float)
            }
            Expr::Neg(inner) => {
                self.check_expr(inner);
                Some(SqlType::Float)
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                if let Some(op) = operand {
                    self.check_expr(op);
                }
                let mut out = None;
                for (w, t) in branches {
                    self.check_expr(w);
                    let tt = self.check_expr(t);
                    out = out.or(tt);
                }
                if let Some(e) = else_expr {
                    let tt = self.check_expr(e);
                    out = out.or(tt);
                }
                out
            }
            Expr::Cast { expr, type_name } => {
                self.check_expr(expr);
                Some(SqlType::from_name(type_name))
            }
        }
    }

    /// Type of an expression without emitting diagnostics (used inside
    /// function-type inference to avoid double-reporting).
    fn infer_type_quiet(&mut self, e: &Expr) -> Option<SqlType> {
        match e {
            Expr::Column(c) => {
                let before = self.diags.len();
                let t = self.resolve_column(c);
                self.diags.truncate(before);
                t
            }
            Expr::Literal(l) => literal_type(l),
            Expr::Cast { type_name, .. } => Some(SqlType::from_name(type_name)),
            Expr::Arith { .. } | Expr::Neg(_) => Some(SqlType::Float),
            _ => None,
        }
    }

    fn check_comparable(
        &mut self,
        lt: Option<SqlType>,
        rt: Option<SqlType>,
        left: &Expr,
        right: &Expr,
    ) {
        if let (Some(a), Some(b)) = (lt, rt) {
            if !a.comparable_with(b) {
                self.diag(
                    DiagnosticKind::ComparisonTypeMismatch,
                    format!(
                        "cannot compare {a} ({}) with {b} ({})",
                        squ_parser::print_expr(left),
                        squ_parser::print_expr(right)
                    ),
                );
            }
        }
    }

    fn check_scalar_subquery_cardinality(&mut self, e: &Expr) {
        if let Expr::ScalarSubquery(q) = e {
            if may_return_multiple_rows(q) {
                self.diag(
                    DiagnosticKind::ScalarSubqueryMultiRow,
                    format!(
                        "scalar subquery ({}) may return more than one row",
                        squ_parser::print_query(q)
                    ),
                );
            }
        }
    }

    // ----- grouping rules -----

    fn check_grouping(&mut self, s: &Select) {
        let has_aggregate = s
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
            || s.having.as_ref().is_some_and(|h| h.contains_aggregate());
        let grouped = !s.group_by.is_empty();

        if has_aggregate || grouped {
            // every bare column in the projection must be grouped
            for item in &s.items {
                if let SelectItem::Expr { expr, .. } = item {
                    let mut bare = Vec::new();
                    collect_nonaggregate_columns(expr, &mut bare);
                    for c in bare {
                        if !group_by_covers(&s.group_by, &c) {
                            self.diag(
                                DiagnosticKind::AggrWithoutGroupBy,
                                format!(
                                    "column '{c}' must appear in GROUP BY or inside an aggregate"
                                ),
                            );
                        }
                    }
                }
            }
        }

        if let Some(h) = &s.having {
            // HAVING may reference aggregates and grouped columns only.
            let mut bare = Vec::new();
            collect_nonaggregate_columns(h, &mut bare);
            for c in bare {
                if !group_by_covers(&s.group_by, &c) {
                    self.diag(
                        DiagnosticKind::HavingNonAggregate,
                        format!(
                            "HAVING references '{c}', which is neither aggregated nor in GROUP BY (use WHERE instead)"
                        ),
                    );
                }
            }
        }
    }

    // ----- output column inference (for derived tables / CTEs) -----

    fn infer_output_columns(&mut self, q: &Query) -> Vec<Column> {
        // Build the query's own scope quietly to type its projection.
        let mut out = Vec::new();
        let select = match &q.body {
            SetExpr::Select(s) => s,
            SetExpr::SetOp { left, .. } => {
                // output schema = left branch's schema
                let mut cur = left;
                loop {
                    match &**cur {
                        SetExpr::Select(s) => break s,
                        SetExpr::SetOp { left, .. } => cur = left,
                    }
                }
            }
        };
        let mut scope = Vec::new();
        let before = self.diags.len();
        for tr in &select.from {
            self.collect_bindings(tr, &mut scope);
        }
        self.diags.truncate(before); // quiet pass
        self.scopes.push(scope);
        for item in &select.items {
            match item {
                SelectItem::Wildcard => {
                    let scope = self.scopes.last().expect("pushed above").clone();
                    for b in &scope {
                        if let Some(cols) = &b.columns {
                            out.extend(cols.iter().cloned());
                        }
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let scope = self.scopes.last().expect("pushed above").clone();
                    if let Some(b) = scope.iter().find(|b| b.name.eq_ignore_ascii_case(q)) {
                        if let Some(cols) = &b.columns {
                            out.extend(cols.iter().cloned());
                        }
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let name = alias.clone().unwrap_or_else(|| match expr {
                        Expr::Column(c) => c.name.clone(),
                        Expr::Function { name, .. } => name.clone(),
                        _ => "expr".to_string(),
                    });
                    let before = self.diags.len();
                    let ty = self.check_expr(expr).unwrap_or(SqlType::Float);
                    self.diags.truncate(before); // quiet pass
                    out.push(Column::new(&name, ty));
                }
            }
        }
        self.scopes.pop();
        out
    }
}

fn literal_type(l: &Literal) -> Option<SqlType> {
    match l {
        Literal::Number(_) => Some(SqlType::Float),
        Literal::String(_) => Some(SqlType::Text),
        Literal::Bool(_) => Some(SqlType::Bool),
        Literal::Null => None,
    }
}

/// Result type of a function call. `arg_type` is consulted lazily for the
/// aggregate functions whose type follows their argument.
fn function_type(
    name: &str,
    args: &[Expr],
    arg_type: impl FnMut(&Expr) -> Option<SqlType>,
) -> SqlType {
    match name.to_ascii_uppercase().as_str() {
        "COUNT" => SqlType::Int,
        "SUM" | "AVG" | "MIN" | "MAX" => args.first().and_then(arg_type).unwrap_or(SqlType::Float),
        "UPPER" | "LOWER" | "SUBSTR" | "SUBSTRING" | "TRIM" | "CONCAT" | "LEFT" | "RIGHT"
        | "REPLACE" | "LTRIM" | "RTRIM" | "STR" => SqlType::Text,
        "LEN" | "LENGTH" | "CHARINDEX" | "DATALENGTH" => SqlType::Int,
        _ => SqlType::Float,
    }
}

/// Conservative cardinality analysis for scalar subqueries: a subquery is
/// single-row when it is `LIMIT 1`/`TOP 1`, or an ungrouped aggregate-only
/// projection. Everything else *may* return multiple rows.
pub fn may_return_multiple_rows(q: &Query) -> bool {
    if q.limit == Some(1) {
        return false;
    }
    if let SetExpr::Select(s) = &q.body {
        if s.top == Some(1) {
            return false;
        }
        if s.group_by.is_empty()
            && !s.items.is_empty()
            && s.items
                .iter()
                .all(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.is_aggregate_call()))
        {
            return false;
        }
    }
    true
}

/// Collect columns that appear outside any aggregate call (and outside
/// subqueries — those have their own grouping context).
fn collect_nonaggregate_columns(e: &Expr, out: &mut Vec<ColumnRef>) {
    match e {
        Expr::Column(c) => out.push(c.clone()),
        Expr::Function { name, args, .. } => {
            if !is_aggregate_name(name) {
                for a in args {
                    collect_nonaggregate_columns(a, out);
                }
            }
        }
        Expr::InSubquery { expr, .. } => collect_nonaggregate_columns(expr, out),
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
        other => other.for_each_child(&mut |c| collect_nonaggregate_columns(c, out)),
    }
}

/// Does the GROUP BY list cover column `c`? Qualifiers are compared only
/// when both sides carry one (matching SQL's name-resolution leniency).
fn group_by_covers(group_by: &[Expr], c: &ColumnRef) -> bool {
    group_by.iter().any(|g| match g {
        Expr::Column(gc) => {
            gc.name.eq_ignore_ascii_case(&c.name)
                && match (&gc.qualifier, &c.qualifier) {
                    (Some(a), Some(b)) => a.eq_ignore_ascii_case(b),
                    _ => true,
                }
        }
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemas::sdss;
    use squ_parser::parse;

    fn kinds(sql: &str) -> Vec<DiagnosticKind> {
        let stmt = parse(sql).unwrap_or_else(|e| panic!("parse {sql:?}: {e}"));
        analyze(&stmt, &sdss())
            .into_iter()
            .map(|d| d.kind)
            .collect()
    }

    #[test]
    fn clean_queries_have_no_diagnostics() {
        for sql in [
            "SELECT plate, mjd FROM SpecObj WHERE z > 0.5",
            "SELECT s.plate, p.ra FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid",
            "SELECT plate, COUNT(*) FROM SpecObj GROUP BY plate HAVING COUNT(*) > 10",
            "SELECT class, AVG(z) FROM SpecObj GROUP BY class",
            "SELECT fiberid FROM SpecObj WHERE bestobjid IN (SELECT objid FROM PhotoObj WHERE ra > 180)",
            "WITH h AS (SELECT plate, z FROM SpecObj WHERE z > 1) SELECT plate FROM h WHERE z < 2",
            "SELECT plate FROM SpecObj WHERE z = (SELECT MAX(z) FROM SpecObj)",
            "SELECT TOP 10 ra, dec FROM PhotoObj ORDER BY ra",
            "SELECT COUNT(*) AS n FROM SpecObj",
        ] {
            assert_eq!(kinds(sql), vec![], "expected clean: {sql}");
        }
    }

    #[test]
    fn paper_q1_aggr_attr() {
        // Listing 1 Q1: aggregation without GROUP BY
        let ks = kinds("SELECT plate, mjd, COUNT(*), AVG(z) FROM SpecObj WHERE z > 0.5");
        assert!(ks.contains(&DiagnosticKind::AggrWithoutGroupBy), "{ks:?}");
    }

    #[test]
    fn paper_q2_aggr_having() {
        // Listing 1 Q2: HAVING on a non-aggregated column
        let ks = kinds(
            "SELECT plate, COUNT(*) AS NumSpectra FROM SpecObj GROUP BY plate HAVING z > 0.5",
        );
        assert!(ks.contains(&DiagnosticKind::HavingNonAggregate), "{ks:?}");
    }

    #[test]
    fn paper_q3_nested_mismatch() {
        // Listing 1 Q3: scalar subquery may return multiple rows
        let ks = kinds(
            "SELECT p.ra, p.dec, s.z FROM PhotoObj AS p JOIN SpecObj AS s ON s.bestobjid = (SELECT bestobjid FROM SpecObj)",
        );
        assert!(
            ks.contains(&DiagnosticKind::ScalarSubqueryMultiRow),
            "{ks:?}"
        );
    }

    #[test]
    fn paper_q4_condition_mismatch() {
        // Listing 1 Q4: numeric column compared to string
        let ks = kinds("SELECT plate, mjd, fiberid FROM SpecObj WHERE z = 'high'");
        assert!(
            ks.contains(&DiagnosticKind::ComparisonTypeMismatch),
            "{ks:?}"
        );
    }

    #[test]
    fn paper_q5_alias_undefined() {
        // Listing 1 Q5: `photoobj` qualifier after aliasing to `p`
        let ks = kinds(
            "SELECT s.plate, s.mjd, z FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = photoobj.bestobjid",
        );
        assert!(ks.contains(&DiagnosticKind::UndefinedAlias), "{ks:?}");
    }

    #[test]
    fn paper_q6_alias_ambiguous() {
        // Listing 1 Q6: `bestobjid` exists in both joined tables
        let ks = kinds(
            "SELECT plate, fiberid FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.bestobjid WHERE bestobjid > 1000",
        );
        assert!(ks.contains(&DiagnosticKind::AmbiguousColumn), "{ks:?}");
    }

    #[test]
    fn unknown_table_and_column() {
        assert!(kinds("SELECT x FROM NoSuchTable").contains(&DiagnosticKind::UnknownTable));
        assert!(kinds("SELECT nosuchcolumn FROM SpecObj").contains(&DiagnosticKind::UnknownColumn));
    }

    #[test]
    fn unknown_table_does_not_cascade_column_errors() {
        let ks = kinds("SELECT a, b, c FROM NoSuchTable WHERE d > 1");
        assert_eq!(
            ks,
            vec![DiagnosticKind::UnknownTable],
            "one diagnostic only, no cascade"
        );
    }

    #[test]
    fn correlated_subquery_sees_outer_alias() {
        let ks = kinds(
            "SELECT s.plate FROM SpecObj AS s WHERE EXISTS (SELECT 1 FROM PhotoObj AS p WHERE p.bestobjid = s.bestobjid)",
        );
        assert_eq!(ks, vec![]);
    }

    #[test]
    fn scalar_subquery_with_aggregate_or_limit_is_fine() {
        assert_eq!(
            kinds("SELECT plate FROM SpecObj WHERE z = (SELECT MAX(z) FROM SpecObj)"),
            vec![]
        );
        assert_eq!(
            kinds("SELECT plate FROM SpecObj WHERE z > (SELECT z FROM SpecObj ORDER BY z DESC LIMIT 1)"),
            vec![]
        );
        assert_eq!(
            kinds(
                "SELECT plate FROM SpecObj WHERE z > (SELECT TOP 1 z FROM SpecObj ORDER BY z DESC)"
            ),
            vec![]
        );
    }

    #[test]
    fn group_by_qualified_covers_unqualified() {
        assert_eq!(
            kinds("SELECT s.plate, COUNT(*) FROM SpecObj AS s GROUP BY plate"),
            vec![]
        );
    }

    #[test]
    fn derived_table_columns_visible() {
        assert_eq!(
            kinds("SELECT d.plate FROM (SELECT plate FROM SpecObj WHERE z > 1) AS d"),
            vec![]
        );
        assert!(kinds("SELECT d.mjd FROM (SELECT plate FROM SpecObj) AS d")
            .contains(&DiagnosticKind::UnknownColumn));
    }

    #[test]
    fn in_subquery_type_mismatch() {
        let ks = kinds("SELECT plate FROM SpecObj WHERE z IN (SELECT class FROM SpecObj)");
        assert!(
            ks.contains(&DiagnosticKind::ComparisonTypeMismatch),
            "{ks:?}"
        );
    }

    #[test]
    fn order_by_alias_is_visible() {
        assert_eq!(
            kinds("SELECT COUNT(*) AS n, plate FROM SpecObj GROUP BY plate ORDER BY n DESC"),
            vec![]
        );
    }

    #[test]
    fn paper_labels() {
        assert_eq!(
            DiagnosticKind::AggrWithoutGroupBy.paper_label(),
            Some("aggr-attr")
        );
        assert_eq!(DiagnosticKind::UnknownTable.paper_label(), None);
    }
}
