//! Semantic analyzer ("binder").
//!
//! Resolves table and column references against a [`Schema`], tracks alias
//! scopes (including correlated subqueries and CTEs), infers expression
//! types, and emits [`Diagnostic`]s. The diagnostic kinds map one-to-one
//! onto the six syntax-error categories of the paper (§3.1, Listing 1) plus
//! two generic resolution errors:
//!
//! | paper type | [`DiagnosticKind`] |
//! |---|---|
//! | `aggr-attr` | [`AggrWithoutGroupBy`](DiagnosticKind::AggrWithoutGroupBy) |
//! | `aggr-having` | [`HavingNonAggregate`](DiagnosticKind::HavingNonAggregate) |
//! | `nested-mismatch` | [`ScalarSubqueryMultiRow`](DiagnosticKind::ScalarSubqueryMultiRow) |
//! | `condition-mismatch` | [`ComparisonTypeMismatch`](DiagnosticKind::ComparisonTypeMismatch) |
//! | `alias-undefined` | [`UndefinedAlias`](DiagnosticKind::UndefinedAlias) |
//! | `alias-ambiguous` | [`AmbiguousColumn`](DiagnosticKind::AmbiguousColumn) |

use crate::{Column, Schema, SqlType};
use squ_parser::ast::*;
use std::collections::{BTreeSet, HashMap};

/// The kind of semantic problem found by the binder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagnosticKind {
    /// Aggregate functions mixed with non-aggregated, non-grouped columns
    /// (paper: `aggr-attr`).
    AggrWithoutGroupBy,
    /// `HAVING` filters a column that is neither aggregated nor grouped
    /// (paper: `aggr-having`).
    HavingNonAggregate,
    /// A scalar comparison against a subquery that may return multiple rows
    /// (paper: `nested-mismatch`).
    ScalarSubqueryMultiRow,
    /// Comparison between incompatible types, e.g. numeric vs. string
    /// (paper: `condition-mismatch`).
    ComparisonTypeMismatch,
    /// A qualifier that names no table or alias in scope
    /// (paper: `alias-undefined`).
    UndefinedAlias,
    /// An unqualified column name found in several tables in scope
    /// (paper: `alias-ambiguous`).
    AmbiguousColumn,
    /// Table name not found in the schema (and not a CTE).
    UnknownTable,
    /// Column name not found in any table in scope.
    UnknownColumn,
}

impl DiagnosticKind {
    /// The paper's label for this error type, when it is one of the six
    /// studied categories.
    pub fn paper_label(&self) -> Option<&'static str> {
        match self {
            DiagnosticKind::AggrWithoutGroupBy => Some("aggr-attr"),
            DiagnosticKind::HavingNonAggregate => Some("aggr-having"),
            DiagnosticKind::ScalarSubqueryMultiRow => Some("nested-mismatch"),
            DiagnosticKind::ComparisonTypeMismatch => Some("condition-mismatch"),
            DiagnosticKind::UndefinedAlias => Some("alias-undefined"),
            DiagnosticKind::AmbiguousColumn => Some("alias-ambiguous"),
            DiagnosticKind::UnknownTable | DiagnosticKind::UnknownColumn => None,
        }
    }

    /// Stable diagnostic code for this kind (the `SQU0xx` registry shared
    /// with `squ-lint`; codes `SQU001`/`SQU002` are reserved for lex/parse
    /// errors, which never reach the binder).
    pub fn code(&self) -> &'static str {
        match self {
            DiagnosticKind::UnknownTable => "SQU010",
            DiagnosticKind::UnknownColumn => "SQU011",
            DiagnosticKind::UndefinedAlias => "SQU012",
            DiagnosticKind::AmbiguousColumn => "SQU013",
            DiagnosticKind::AggrWithoutGroupBy => "SQU020",
            DiagnosticKind::HavingNonAggregate => "SQU021",
            DiagnosticKind::ScalarSubqueryMultiRow => "SQU030",
            DiagnosticKind::ComparisonTypeMismatch => "SQU031",
        }
    }
}

/// A semantic diagnostic: kind, optional source span, and a human-readable
/// message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// What went wrong.
    pub kind: DiagnosticKind,
    /// Byte span of the offending reference in the analyzed SQL text, when
    /// the AST node carried one (synthesized nodes do not).
    pub span: Option<Span>,
    /// Explanation referencing the offending names.
    pub message: String,
}

/// Which base-schema objects a statement's references resolve to.
///
/// Equivalence-preserving rewrites (CTE wrapping, join ↔ nested subquery,
/// alias renames, …) restructure a query without changing *what* it reads,
/// so their signatures must be identical — the dataset auditor uses this
/// as a structural invariant on every rewrite pair. Names are lowercased;
/// only resolutions that reach a real schema table are recorded (CTE and
/// derived-table hops are transparent).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResolutionSignature {
    /// Base tables referenced anywhere in the statement.
    pub tables: BTreeSet<String>,
    /// `(base_table, column)` pairs resolved anywhere in the statement.
    pub columns: BTreeSet<(String, String)>,
}

impl ResolutionSignature {
    /// Canonical one-line rendering (stable across runs and job counts).
    pub fn render(&self) -> String {
        let tables: Vec<&str> = self.tables.iter().map(String::as_str).collect();
        let cols: Vec<String> = self
            .columns
            .iter()
            .map(|(t, c)| format!("{t}.{c}"))
            .collect();
        format!("tables[{}] columns[{}]", tables.join(","), cols.join(","))
    }
}

/// Full result of one binder pass: diagnostics plus the resolution
/// signature of the statement.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Every diagnostic found (empty = semantically clean).
    pub diagnostics: Vec<Diagnostic>,
    /// Which schema objects the statement's references resolve to.
    pub resolution: ResolutionSignature,
}

/// Run semantic analysis of `stmt` against `schema`, returning every
/// diagnostic found (empty = semantically clean).
pub fn analyze(stmt: &Statement, schema: &Schema) -> Vec<Diagnostic> {
    analyze_statement(stmt, schema).diagnostics
}

/// Run semantic analysis of `stmt` against `schema`, returning diagnostics
/// *and* the statement's [`ResolutionSignature`].
pub fn analyze_statement(stmt: &Statement, schema: &Schema) -> Analysis {
    let mut b = Binder::new(schema);
    match stmt {
        Statement::Query(q) => b.bind_query(q),
        Statement::CreateTable { source, .. } => {
            if let Some(q) = source {
                b.bind_query(q);
            }
        }
        Statement::CreateView { query, .. } => b.bind_query(query),
    }
    Analysis {
        diagnostics: b.diags,
        resolution: b.resolution,
    }
}

/// One visible relation in a scope: its binding name and (if known) its
/// columns. `columns == None` marks a relation we could not resolve; later
/// lookups through it succeed with unknown type so one bad table does not
/// cascade into dozens of spurious column errors. `base` is the lowercased
/// schema-table name when the binding is backed directly by one (not a CTE
/// or derived table), feeding the [`ResolutionSignature`].
#[derive(Debug, Clone)]
struct Binding {
    name: String,
    columns: Option<Vec<Column>>,
    base: Option<String>,
}

struct Binder<'a> {
    schema: &'a Schema,
    /// CTE environments; inner queries see outer CTEs.
    ctes: Vec<HashMap<String, Vec<Column>>>,
    /// Scope stack; inner scopes (subqueries) may reference outer ones
    /// (correlation).
    scopes: Vec<Vec<Binding>>,
    diags: Vec<Diagnostic>,
    resolution: ResolutionSignature,
}

impl<'a> Binder<'a> {
    fn new(schema: &'a Schema) -> Self {
        Binder {
            schema,
            ctes: vec![HashMap::new()],
            scopes: Vec::new(),
            diags: Vec::new(),
            resolution: ResolutionSignature::default(),
        }
    }

    fn diag(&mut self, kind: DiagnosticKind, span: Option<Span>, message: String) {
        self.diags.push(Diagnostic {
            kind,
            span,
            message,
        });
    }

    fn lookup_cte(&self, name: &str) -> Option<&Vec<Column>> {
        self.ctes
            .iter()
            .rev()
            .find_map(|env| env.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)))
            .map(|(_, v)| v)
    }

    fn bind_query(&mut self, q: &Query) {
        self.ctes.push(HashMap::new());
        for cte in &q.ctes {
            self.bind_query(&cte.query);
            let cols = self.infer_output_columns(&cte.query);
            self.ctes
                .last_mut()
                .expect("env pushed above") // lint:allow: pushed earlier in this function
                .insert(cte.name.clone(), cols);
        }
        self.bind_set_expr(&q.body, &q.order_by);
        self.ctes.pop();
    }

    fn bind_set_expr(&mut self, body: &SetExpr, order_by: &[OrderItem]) {
        match body {
            SetExpr::Select(s) => self.bind_select(s, order_by),
            SetExpr::SetOp { left, right, .. } => {
                self.bind_set_expr(left, &[]);
                self.bind_set_expr(right, order_by);
            }
        }
    }

    fn bind_select(&mut self, s: &Select, order_by: &[OrderItem]) {
        // 1. Build scope from FROM.
        let mut scope = Vec::new();
        for tr in &s.from {
            self.collect_bindings(tr, &mut scope);
        }
        self.scopes.push(scope);

        // 2. Join conditions.
        for tr in &s.from {
            self.check_join_conditions(tr);
        }

        // 3. Projection, WHERE, GROUP BY, HAVING, ORDER BY expressions.
        for item in &s.items {
            if let SelectItem::Expr { expr, .. } = item {
                self.check_expr(expr);
            }
        }
        if let Some(w) = &s.selection {
            self.check_expr(w);
        }
        for g in &s.group_by {
            self.check_expr(g);
        }
        if let Some(h) = &s.having {
            self.check_expr(h);
        }
        // ORDER BY may reference projection aliases and output column
        // names (which resolve unambiguously to the projected value even
        // when several scope tables share the name).
        let output_names: Vec<String> = s
            .items
            .iter()
            .filter_map(|i| match i {
                SelectItem::Expr { alias: Some(a), .. } => Some(a.clone()),
                SelectItem::Expr {
                    expr: Expr::Column(c),
                    ..
                } => Some(c.name.clone()),
                _ => None,
            })
            .collect();
        for item in order_by {
            if let Expr::Column(c) = &item.expr {
                if c.qualifier.is_none()
                    && output_names.iter().any(|a| a.eq_ignore_ascii_case(&c.name))
                {
                    continue;
                }
            }
            self.check_expr(&item.expr);
        }

        // 4. Aggregation / grouping rules.
        self.check_grouping(s);

        self.scopes.pop();
    }

    fn collect_bindings(&mut self, tr: &TableRef, scope: &mut Vec<Binding>) {
        match tr {
            TableRef::Named { name, alias } => {
                let binding_name = alias.clone().unwrap_or_else(|| name.clone());
                let mut base = None;
                let columns = if let Some(cols) = self.lookup_cte(name) {
                    Some(cols.clone())
                } else if let Some(t) = self.schema.table(name) {
                    let cols = t.columns.clone();
                    let canonical = t.name.to_lowercase();
                    self.resolution.tables.insert(canonical.clone());
                    base = Some(canonical);
                    Some(cols)
                } else {
                    self.diag(
                        DiagnosticKind::UnknownTable,
                        None,
                        format!("table '{name}' not found in schema '{}'", self.schema.name),
                    );
                    None
                };
                scope.push(Binding {
                    name: binding_name,
                    columns,
                    base,
                });
            }
            TableRef::Derived { query, alias } => {
                self.bind_query(query);
                let cols = self.infer_output_columns(query);
                scope.push(Binding {
                    name: alias.clone().unwrap_or_default(),
                    columns: Some(cols),
                    base: None,
                });
            }
            TableRef::Join { left, right, .. } => {
                self.collect_bindings(left, scope);
                self.collect_bindings(right, scope);
            }
        }
    }

    fn check_join_conditions(&mut self, tr: &TableRef) {
        if let TableRef::Join {
            left,
            right,
            constraint,
            ..
        } = tr
        {
            self.check_join_conditions(left);
            self.check_join_conditions(right);
            if let JoinConstraint::On(e) = constraint {
                self.check_expr(e);
            }
        }
    }

    // ----- column resolution -----

    /// Resolve a column reference, emitting diagnostics; returns its type if
    /// known.
    fn resolve_column(&mut self, c: &ColumnRef) -> Option<SqlType> {
        match &c.qualifier {
            Some(q) => {
                // innermost scope containing the binding wins
                for (si, scope) in self.scopes.iter().enumerate().rev() {
                    if let Some(bi) = scope.iter().position(|b| b.name.eq_ignore_ascii_case(q)) {
                        let b = &self.scopes[si][bi];
                        let base = b.base.clone();
                        return match &b.columns {
                            Some(cols) => {
                                match cols
                                    .iter()
                                    .find(|col| col.name.eq_ignore_ascii_case(&c.name))
                                {
                                    Some(col) => {
                                        let ty = col.ty;
                                        self.record_resolution(base, &c.name);
                                        Some(ty)
                                    }
                                    None => {
                                        let q = q.clone();
                                        let name = c.name.clone();
                                        self.diag(
                                            DiagnosticKind::UnknownColumn,
                                            some_span(c.span),
                                            format!("column '{name}' not found in '{q}'"),
                                        );
                                        None
                                    }
                                }
                            }
                            None => None, // unknown table: suppress cascade
                        };
                    }
                }
                let q = q.clone();
                self.diag(
                    DiagnosticKind::UndefinedAlias,
                    some_span(c.span),
                    format!("alias or table '{q}' is not defined in this scope"),
                );
                None
            }
            None => {
                // search scopes inner -> outer; ambiguity only within one scope
                for scope in self.scopes.iter().rev() {
                    let mut matches: Vec<(String, Option<String>, Option<SqlType>)> = Vec::new();
                    let mut any_unknown = false;
                    for b in scope {
                        match &b.columns {
                            Some(cols) => {
                                if let Some(col) = cols
                                    .iter()
                                    .find(|col| col.name.eq_ignore_ascii_case(&c.name))
                                {
                                    matches.push((b.name.clone(), b.base.clone(), Some(col.ty)));
                                }
                            }
                            None => any_unknown = true,
                        }
                    }
                    match matches.len() {
                        0 => {
                            if any_unknown {
                                // could belong to the unresolved table
                                return None;
                            }
                        }
                        1 => {
                            let (_, base, ty) = matches.swap_remove(0);
                            self.record_resolution(base, &c.name);
                            return ty;
                        }
                        _ => {
                            let name = c.name.clone();
                            let holders: Vec<String> =
                                matches.iter().map(|(n, _, _)| n.clone()).collect();
                            self.diag(
                                DiagnosticKind::AmbiguousColumn,
                                some_span(c.span),
                                format!(
                                    "column '{name}' is ambiguous; found in {}",
                                    holders.join(", ")
                                ),
                            );
                            return matches[0].2;
                        }
                    }
                }
                if !self.scopes.is_empty() {
                    let name = c.name.clone();
                    self.diag(
                        DiagnosticKind::UnknownColumn,
                        some_span(c.span),
                        format!("column '{name}' not found in any table in scope"),
                    );
                }
                None
            }
        }
    }

    /// Record a successful column resolution against a base schema table
    /// (resolutions through CTEs and derived tables carry no base and are
    /// intentionally not part of the signature).
    fn record_resolution(&mut self, base: Option<String>, column: &str) {
        if let Some(base) = base {
            self.resolution
                .columns
                .insert((base, column.to_lowercase()));
        }
    }

    // ----- expression checking & type inference -----

    /// Check an expression tree: resolve columns, check comparisons, and
    /// recurse into subqueries. Returns the inferred type if known.
    fn check_expr(&mut self, e: &Expr) -> Option<SqlType> {
        match e {
            Expr::Column(c) => self.resolve_column(c),
            Expr::Literal(l) => literal_type(l),
            Expr::Compare { op: _, left, right } => {
                let lt = self.check_expr(left);
                let rt = self.check_expr(right);
                self.check_comparable(lt, rt, left, right);
                self.check_scalar_subquery_cardinality(left);
                self.check_scalar_subquery_cardinality(right);
                Some(SqlType::Bool)
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                self.check_expr(a);
                self.check_expr(b);
                Some(SqlType::Bool)
            }
            Expr::Not(inner) => {
                self.check_expr(inner);
                Some(SqlType::Bool)
            }
            Expr::IsNull { expr, .. } => {
                self.check_expr(expr);
                Some(SqlType::Bool)
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                let t = self.check_expr(expr);
                let lt = self.check_expr(low);
                let ht = self.check_expr(high);
                self.check_comparable(t, lt, expr, low);
                self.check_comparable(t, ht, expr, high);
                Some(SqlType::Bool)
            }
            Expr::InList { expr, list, .. } => {
                let t = self.check_expr(expr);
                for item in list {
                    let it = self.check_expr(item);
                    self.check_comparable(t, it, expr, item);
                }
                Some(SqlType::Bool)
            }
            Expr::InSubquery { expr, subquery, .. } => {
                let t = self.check_expr(expr);
                self.bind_query(subquery);
                let sub_cols = self.infer_output_columns(subquery);
                if let (Some(t), Some(first)) = (t, sub_cols.first()) {
                    if !t.comparable_with(first.ty) {
                        self.diag(
                            DiagnosticKind::ComparisonTypeMismatch,
                            expr_span(expr).or_else(|| some_span(subquery.span)),
                            format!(
                                "IN compares {t} with subquery column '{}' of type {}",
                                first.name, first.ty
                            ),
                        );
                    }
                }
                Some(SqlType::Bool)
            }
            Expr::Exists { subquery, .. } => {
                self.bind_query(subquery);
                Some(SqlType::Bool)
            }
            Expr::ScalarSubquery(q) => {
                self.bind_query(q);
                self.infer_output_columns(q).first().map(|c| c.ty)
            }
            Expr::Like { expr, pattern, .. } => {
                self.check_expr(expr);
                self.check_expr(pattern);
                Some(SqlType::Bool)
            }
            Expr::Function { name, args, .. } => {
                for a in args {
                    if !matches!(a, Expr::Wildcard) {
                        self.check_expr(a);
                    }
                }
                Some(function_type(name, args, |arg| self.infer_type_quiet(arg)))
            }
            Expr::Wildcard => None,
            Expr::Arith { left, right, .. } => {
                self.check_expr(left);
                self.check_expr(right);
                Some(SqlType::Float)
            }
            Expr::Neg(inner) => {
                self.check_expr(inner);
                Some(SqlType::Float)
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                if let Some(op) = operand {
                    self.check_expr(op);
                }
                let mut out = None;
                for (w, t) in branches {
                    self.check_expr(w);
                    let tt = self.check_expr(t);
                    out = out.or(tt);
                }
                if let Some(e) = else_expr {
                    let tt = self.check_expr(e);
                    out = out.or(tt);
                }
                out
            }
            Expr::Cast { expr, type_name } => {
                self.check_expr(expr);
                Some(SqlType::from_name(type_name))
            }
        }
    }

    /// Type of an expression without emitting diagnostics (used inside
    /// function-type inference to avoid double-reporting).
    fn infer_type_quiet(&mut self, e: &Expr) -> Option<SqlType> {
        match e {
            Expr::Column(c) => {
                let before = self.diags.len();
                let t = self.resolve_column(c);
                self.diags.truncate(before);
                t
            }
            Expr::Literal(l) => literal_type(l),
            Expr::Cast { type_name, .. } => Some(SqlType::from_name(type_name)),
            Expr::Arith { .. } | Expr::Neg(_) => Some(SqlType::Float),
            _ => None,
        }
    }

    fn check_comparable(
        &mut self,
        lt: Option<SqlType>,
        rt: Option<SqlType>,
        left: &Expr,
        right: &Expr,
    ) {
        if let (Some(a), Some(b)) = (lt, rt) {
            if !a.comparable_with(b) {
                self.diag(
                    DiagnosticKind::ComparisonTypeMismatch,
                    expr_span(left).or_else(|| expr_span(right)),
                    format!(
                        "cannot compare {a} ({}) with {b} ({})",
                        squ_parser::print_expr(left),
                        squ_parser::print_expr(right)
                    ),
                );
            }
        }
    }

    fn check_scalar_subquery_cardinality(&mut self, e: &Expr) {
        if let Expr::ScalarSubquery(q) = e {
            if may_return_multiple_rows(q) {
                self.diag(
                    DiagnosticKind::ScalarSubqueryMultiRow,
                    some_span(q.span),
                    format!(
                        "scalar subquery ({}) may return more than one row",
                        squ_parser::print_query(q)
                    ),
                );
            }
        }
    }

    // ----- grouping rules -----

    fn check_grouping(&mut self, s: &Select) {
        let has_aggregate = s
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
            || s.having.as_ref().is_some_and(|h| h.contains_aggregate());
        let grouped = !s.group_by.is_empty();

        if has_aggregate || grouped {
            // every bare column in the projection must be grouped
            for item in &s.items {
                if let SelectItem::Expr { expr, .. } = item {
                    let mut bare = Vec::new();
                    collect_nonaggregate_columns(expr, &mut bare);
                    for c in bare {
                        if !group_by_covers(&s.group_by, &c) {
                            self.diag(
                                DiagnosticKind::AggrWithoutGroupBy,
                                some_span(c.span),
                                format!(
                                    "column '{c}' must appear in GROUP BY or inside an aggregate"
                                ),
                            );
                        }
                    }
                }
            }
        }

        if let Some(h) = &s.having {
            // HAVING may reference aggregates and grouped columns only.
            let mut bare = Vec::new();
            collect_nonaggregate_columns(h, &mut bare);
            for c in bare {
                if !group_by_covers(&s.group_by, &c) {
                    self.diag(
                        DiagnosticKind::HavingNonAggregate,
                        some_span(c.span),
                        format!(
                            "HAVING references '{c}', which is neither aggregated nor in GROUP BY (use WHERE instead)"
                        ),
                    );
                }
            }
        }
    }

    // ----- output column inference (for derived tables / CTEs) -----

    fn infer_output_columns(&mut self, q: &Query) -> Vec<Column> {
        // Build the query's own scope quietly to type its projection.
        let mut out = Vec::new();
        let select = match &q.body {
            SetExpr::Select(s) => s,
            SetExpr::SetOp { left, .. } => {
                // output schema = left branch's schema
                let mut cur = left;
                loop {
                    match &**cur {
                        SetExpr::Select(s) => break s,
                        SetExpr::SetOp { left, .. } => cur = left,
                    }
                }
            }
        };
        let mut scope = Vec::new();
        let before = self.diags.len();
        for tr in &select.from {
            self.collect_bindings(tr, &mut scope);
        }
        self.diags.truncate(before); // quiet pass
        self.scopes.push(scope);
        for item in &select.items {
            match item {
                SelectItem::Wildcard => {
                    let scope = self.scopes.last().expect("pushed above").clone(); // lint:allow: pushed earlier in this function
                    for b in &scope {
                        if let Some(cols) = &b.columns {
                            out.extend(cols.iter().cloned());
                        }
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let scope = self.scopes.last().expect("pushed above").clone(); // lint:allow: pushed earlier in this function
                    if let Some(b) = scope.iter().find(|b| b.name.eq_ignore_ascii_case(q)) {
                        if let Some(cols) = &b.columns {
                            out.extend(cols.iter().cloned());
                        }
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let name = alias.clone().unwrap_or_else(|| match expr {
                        Expr::Column(c) => c.name.clone(),
                        Expr::Function { name, .. } => name.clone(),
                        _ => "expr".to_string(),
                    });
                    let before = self.diags.len();
                    let ty = self.check_expr(expr).unwrap_or(SqlType::Float);
                    self.diags.truncate(before); // quiet pass
                    out.push(Column::new(&name, ty));
                }
            }
        }
        self.scopes.pop();
        out
    }
}

/// `Some(span)` when the span carries a real position, `None` for the
/// empty spans of synthesized AST nodes.
fn some_span(s: Span) -> Option<Span> {
    if s.is_empty() {
        None
    } else {
        Some(s)
    }
}

fn literal_type(l: &Literal) -> Option<SqlType> {
    match l {
        Literal::Number(_) => Some(SqlType::Float),
        Literal::String(_) => Some(SqlType::Text),
        Literal::Bool(_) => Some(SqlType::Bool),
        Literal::Null => None,
    }
}

/// Result type of a function call, resolved through the dialect function
/// catalog (case-insensitive under every dialect spelling — `count`,
/// `Count`, `COUNT`, and `LEN`/`LENGTH` all land on one catalog row).
/// `arg_type` is consulted lazily for the aggregate functions whose type
/// follows their argument; names outside the catalog keep the historical
/// numeric default.
fn function_type(
    name: &str,
    args: &[Expr],
    arg_type: impl FnMut(&Expr) -> Option<SqlType>,
) -> SqlType {
    use squ_dialect::FunctionResult;
    match squ_dialect::lookup_function(name) {
        Some(spec) => match spec.result {
            FunctionResult::Int => SqlType::Int,
            FunctionResult::Text => SqlType::Text,
            FunctionResult::Float => SqlType::Float,
            FunctionResult::FirstArg => args.first().and_then(arg_type).unwrap_or(SqlType::Float),
        },
        None => SqlType::Float,
    }
}

/// Conservative cardinality analysis for scalar subqueries: a subquery is
/// single-row when it is `LIMIT 1`/`TOP 1`, or an ungrouped aggregate-only
/// projection. Everything else *may* return multiple rows.
pub fn may_return_multiple_rows(q: &Query) -> bool {
    if q.limit == Some(1) {
        return false;
    }
    if let SetExpr::Select(s) = &q.body {
        if s.top == Some(1) {
            return false;
        }
        if s.group_by.is_empty()
            && !s.items.is_empty()
            && s.items
                .iter()
                .all(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.is_aggregate_call()))
        {
            return false;
        }
    }
    true
}

/// Collect columns that appear outside any aggregate call (and outside
/// subqueries — those have their own grouping context).
fn collect_nonaggregate_columns(e: &Expr, out: &mut Vec<ColumnRef>) {
    match e {
        Expr::Column(c) => out.push(c.clone()),
        Expr::Function { name, args, .. } => {
            if !is_aggregate_name(name) {
                for a in args {
                    collect_nonaggregate_columns(a, out);
                }
            }
        }
        Expr::InSubquery { expr, .. } => collect_nonaggregate_columns(expr, out),
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
        other => other.for_each_child(&mut |c| collect_nonaggregate_columns(c, out)),
    }
}

/// Does the GROUP BY list cover column `c`? Qualifiers are compared only
/// when both sides carry one (matching SQL's name-resolution leniency).
fn group_by_covers(group_by: &[Expr], c: &ColumnRef) -> bool {
    group_by.iter().any(|g| match g {
        Expr::Column(gc) => {
            gc.name.eq_ignore_ascii_case(&c.name)
                && match (&gc.qualifier, &c.qualifier) {
                    (Some(a), Some(b)) => a.eq_ignore_ascii_case(b),
                    _ => true,
                }
        }
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemas::sdss;
    use squ_parser::parse;

    fn kinds(sql: &str) -> Vec<DiagnosticKind> {
        let stmt = parse(sql).unwrap_or_else(|e| panic!("parse {sql:?}: {e}"));
        analyze(&stmt, &sdss())
            .into_iter()
            .map(|d| d.kind)
            .collect()
    }

    #[test]
    fn clean_queries_have_no_diagnostics() {
        for sql in [
            "SELECT plate, mjd FROM SpecObj WHERE z > 0.5",
            "SELECT s.plate, p.ra FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid",
            "SELECT plate, COUNT(*) FROM SpecObj GROUP BY plate HAVING COUNT(*) > 10",
            "SELECT class, AVG(z) FROM SpecObj GROUP BY class",
            "SELECT fiberid FROM SpecObj WHERE bestobjid IN (SELECT objid FROM PhotoObj WHERE ra > 180)",
            "WITH h AS (SELECT plate, z FROM SpecObj WHERE z > 1) SELECT plate FROM h WHERE z < 2",
            "SELECT plate FROM SpecObj WHERE z = (SELECT MAX(z) FROM SpecObj)",
            "SELECT TOP 10 ra, dec FROM PhotoObj ORDER BY ra",
            "SELECT COUNT(*) AS n FROM SpecObj",
        ] {
            assert_eq!(kinds(sql), vec![], "expected clean: {sql}");
        }
    }

    #[test]
    fn paper_q1_aggr_attr() {
        // Listing 1 Q1: aggregation without GROUP BY
        let ks = kinds("SELECT plate, mjd, COUNT(*), AVG(z) FROM SpecObj WHERE z > 0.5");
        assert!(ks.contains(&DiagnosticKind::AggrWithoutGroupBy), "{ks:?}");
    }

    #[test]
    fn paper_q2_aggr_having() {
        // Listing 1 Q2: HAVING on a non-aggregated column
        let ks = kinds(
            "SELECT plate, COUNT(*) AS NumSpectra FROM SpecObj GROUP BY plate HAVING z > 0.5",
        );
        assert!(ks.contains(&DiagnosticKind::HavingNonAggregate), "{ks:?}");
    }

    #[test]
    fn paper_q3_nested_mismatch() {
        // Listing 1 Q3: scalar subquery may return multiple rows
        let ks = kinds(
            "SELECT p.ra, p.dec, s.z FROM PhotoObj AS p JOIN SpecObj AS s ON s.bestobjid = (SELECT bestobjid FROM SpecObj)",
        );
        assert!(
            ks.contains(&DiagnosticKind::ScalarSubqueryMultiRow),
            "{ks:?}"
        );
    }

    #[test]
    fn paper_q4_condition_mismatch() {
        // Listing 1 Q4: numeric column compared to string
        let ks = kinds("SELECT plate, mjd, fiberid FROM SpecObj WHERE z = 'high'");
        assert!(
            ks.contains(&DiagnosticKind::ComparisonTypeMismatch),
            "{ks:?}"
        );
    }

    #[test]
    fn paper_q5_alias_undefined() {
        // Listing 1 Q5: `photoobj` qualifier after aliasing to `p`
        let ks = kinds(
            "SELECT s.plate, s.mjd, z FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = photoobj.bestobjid",
        );
        assert!(ks.contains(&DiagnosticKind::UndefinedAlias), "{ks:?}");
    }

    #[test]
    fn paper_q6_alias_ambiguous() {
        // Listing 1 Q6: `bestobjid` exists in both joined tables
        let ks = kinds(
            "SELECT plate, fiberid FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.bestobjid WHERE bestobjid > 1000",
        );
        assert!(ks.contains(&DiagnosticKind::AmbiguousColumn), "{ks:?}");
    }

    #[test]
    fn unknown_table_and_column() {
        assert!(kinds("SELECT x FROM NoSuchTable").contains(&DiagnosticKind::UnknownTable));
        assert!(kinds("SELECT nosuchcolumn FROM SpecObj").contains(&DiagnosticKind::UnknownColumn));
    }

    #[test]
    fn unknown_table_does_not_cascade_column_errors() {
        let ks = kinds("SELECT a, b, c FROM NoSuchTable WHERE d > 1");
        assert_eq!(
            ks,
            vec![DiagnosticKind::UnknownTable],
            "one diagnostic only, no cascade"
        );
    }

    #[test]
    fn correlated_subquery_sees_outer_alias() {
        let ks = kinds(
            "SELECT s.plate FROM SpecObj AS s WHERE EXISTS (SELECT 1 FROM PhotoObj AS p WHERE p.bestobjid = s.bestobjid)",
        );
        assert_eq!(ks, vec![]);
    }

    #[test]
    fn scalar_subquery_with_aggregate_or_limit_is_fine() {
        assert_eq!(
            kinds("SELECT plate FROM SpecObj WHERE z = (SELECT MAX(z) FROM SpecObj)"),
            vec![]
        );
        assert_eq!(
            kinds("SELECT plate FROM SpecObj WHERE z > (SELECT z FROM SpecObj ORDER BY z DESC LIMIT 1)"),
            vec![]
        );
        assert_eq!(
            kinds(
                "SELECT plate FROM SpecObj WHERE z > (SELECT TOP 1 z FROM SpecObj ORDER BY z DESC)"
            ),
            vec![]
        );
    }

    #[test]
    fn group_by_qualified_covers_unqualified() {
        assert_eq!(
            kinds("SELECT s.plate, COUNT(*) FROM SpecObj AS s GROUP BY plate"),
            vec![]
        );
    }

    #[test]
    fn derived_table_columns_visible() {
        assert_eq!(
            kinds("SELECT d.plate FROM (SELECT plate FROM SpecObj WHERE z > 1) AS d"),
            vec![]
        );
        assert!(kinds("SELECT d.mjd FROM (SELECT plate FROM SpecObj) AS d")
            .contains(&DiagnosticKind::UnknownColumn));
    }

    #[test]
    fn in_subquery_type_mismatch() {
        let ks = kinds("SELECT plate FROM SpecObj WHERE z IN (SELECT class FROM SpecObj)");
        assert!(
            ks.contains(&DiagnosticKind::ComparisonTypeMismatch),
            "{ks:?}"
        );
    }

    #[test]
    fn order_by_alias_is_visible() {
        assert_eq!(
            kinds("SELECT COUNT(*) AS n, plate FROM SpecObj GROUP BY plate ORDER BY n DESC"),
            vec![]
        );
    }

    #[test]
    fn paper_labels() {
        assert_eq!(
            DiagnosticKind::AggrWithoutGroupBy.paper_label(),
            Some("aggr-attr")
        );
        assert_eq!(DiagnosticKind::UnknownTable.paper_label(), None);
    }
}
