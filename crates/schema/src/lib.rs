//! # squ-schema — catalogs, workload schemas, and the semantic analyzer
//!
//! This crate provides:
//!
//! * the relational **catalog** model ([`Schema`], [`Table`], [`Column`],
//!   [`SqlType`]) with case-insensitive lookups and cardinality estimates;
//! * the four benchmark **workload schemas** ([`schemas::sdss`],
//!   [`schemas::imdb`], [`schemas::sqlshare_zoo`], [`schemas::spider_zoo`]);
//! * the **binder** ([`analyze`]) — a scope-aware semantic analyzer whose
//!   diagnostics map one-to-one onto the paper's six syntax-error types.
//!
//! ```
//! use squ_schema::{analyze, schemas::sdss, DiagnosticKind};
//! let stmt = squ_parser::parse("SELECT plate, mjd, fiberid FROM SpecObj WHERE z = 'high'").unwrap();
//! let diags = analyze(&stmt, &sdss());
//! assert_eq!(diags[0].kind, DiagnosticKind::ComparisonTypeMismatch);
//! ```

#![warn(missing_docs)]

mod binder;
mod catalog;
pub mod schemas;
mod types;

pub use binder::{
    analyze, analyze_statement, may_return_multiple_rows, Analysis, Diagnostic, DiagnosticKind,
    ResolutionSignature,
};
pub use catalog::{Column, Schema, Table};
pub use types::SqlType;
