//! The four workloads' database schemas.
//!
//! * [`sdss`] — the Sloan Digital Sky Survey "BestDR" subset that the vast
//!   majority of logged SDSS queries touch (SpecObj, PhotoObj, …), with
//!   deliberately overlapping column names (`bestobjid`, `ra`, `dec`) that
//!   make alias-ambiguity errors realistic.
//! * [`imdb`] — the full 21-table IMDB schema of the Join-Order Benchmark.
//! * [`sqlshare_zoo`] — a zoo of small single-user databases mirroring
//!   SQLShare's defining property: *many* distinct schemas with short table
//!   names and heavy aliasing.
//! * [`spider_zoo`] — cross-domain Spider databases, including the exact
//!   domains behind the paper's Q15–Q18 case study (college tryouts,
//!   transcripts, concerts, cars).
//!
//! Cardinalities are order-of-magnitude scale models of the real data,
//! which is all the cost model needs.

use crate::{Schema, SqlType, Table};
use SqlType::{Float, Int, Text};

/// SDSS BestDR subset (8 tables).
pub fn sdss() -> Schema {
    Schema::new("sdss")
        .with_table(Table::new(
            "SpecObj",
            2_000_000,
            &[
                ("specobjid", Int),
                ("bestobjid", Int),
                ("plate", Int),
                ("mjd", Int),
                ("fiberid", Int),
                ("z", Float),
                ("zerr", Float),
                ("zwarning", Int),
                ("ra", Float),
                ("dec", Float),
                ("class", Text),
                ("subclass", Text),
                ("veldisp", Float),
                ("snmedian", Float),
            ],
        ))
        .with_table(Table::new(
            "PhotoObj",
            80_000_000,
            &[
                ("objid", Int),
                ("bestobjid", Int),
                ("ra", Float),
                ("dec", Float),
                ("run", Int),
                ("rerun", Int),
                ("camcol", Int),
                ("field", Int),
                ("type", Int),
                ("mode", Int),
                ("psfmag_r", Float),
                ("modelmag_u", Float),
                ("modelmag_g", Float),
                ("modelmag_r", Float),
                ("modelmag_i", Float),
                ("modelmag_z", Float),
                ("petrorad_r", Float),
                ("extinction_r", Float),
                ("flags", Int),
                ("clean", Int),
            ],
        ))
        .with_table(Table::new(
            "Galaxy",
            30_000_000,
            &[
                ("objid", Int),
                ("ra", Float),
                ("dec", Float),
                ("modelmag_r", Float),
                ("petrorad_r", Float),
                ("fracdev_r", Float),
                ("expab_r", Float),
                ("flags", Int),
            ],
        ))
        .with_table(Table::new(
            "Star",
            40_000_000,
            &[
                ("objid", Int),
                ("ra", Float),
                ("dec", Float),
                ("psfmag_u", Float),
                ("psfmag_g", Float),
                ("psfmag_r", Float),
                ("flags", Int),
            ],
        ))
        .with_table(Table::new(
            "SpecPhotoAll",
            2_000_000,
            &[
                ("specobjid", Int),
                ("objid", Int),
                ("z", Float),
                ("class", Text),
                ("plate", Int),
                ("mjd", Int),
                ("fiberid", Int),
                ("modelmag_r", Float),
            ],
        ))
        .with_table(Table::new(
            "PhotoTag",
            80_000_000,
            &[
                ("objid", Int),
                ("ra", Float),
                ("dec", Float),
                ("type", Int),
                ("modelmag_r", Float),
            ],
        ))
        .with_table(Table::new(
            "Neighbors",
            300_000_000,
            &[
                ("objid", Int),
                ("neighborobjid", Int),
                ("distance", Float),
                ("type", Int),
                ("neighbortype", Int),
            ],
        ))
        .with_table(Table::new(
            "Field",
            1_000_000,
            &[
                ("fieldid", Int),
                ("run", Int),
                ("camcol", Int),
                ("field", Int),
                ("ra", Float),
                ("dec", Float),
                ("quality", Int),
            ],
        ))
}

/// IMDB schema of the Join-Order Benchmark (all 21 tables).
pub fn imdb() -> Schema {
    Schema::new("imdb")
        .with_table(Table::new(
            "title",
            2_528_312,
            &[
                ("id", Int),
                ("title", Text),
                ("imdb_index", Text),
                ("kind_id", Int),
                ("production_year", Int),
                ("phonetic_code", Text),
                ("episode_of_id", Int),
                ("season_nr", Int),
                ("episode_nr", Int),
            ],
        ))
        .with_table(Table::new(
            "movie_companies",
            2_609_129,
            &[
                ("id", Int),
                ("movie_id", Int),
                ("company_id", Int),
                ("company_type_id", Int),
                ("note", Text),
            ],
        ))
        .with_table(Table::new(
            "company_name",
            234_997,
            &[
                ("id", Int),
                ("name", Text),
                ("country_code", Text),
                ("imdb_id", Int),
            ],
        ))
        .with_table(Table::new(
            "company_type",
            4,
            &[("id", Int), ("kind", Text)],
        ))
        .with_table(Table::new(
            "movie_info",
            14_835_720,
            &[
                ("id", Int),
                ("movie_id", Int),
                ("info_type_id", Int),
                ("info", Text),
                ("note", Text),
            ],
        ))
        .with_table(Table::new(
            "movie_info_idx",
            1_380_035,
            &[
                ("id", Int),
                ("movie_id", Int),
                ("info_type_id", Int),
                ("info", Text),
            ],
        ))
        .with_table(Table::new("info_type", 113, &[("id", Int), ("info", Text)]))
        .with_table(Table::new(
            "cast_info",
            36_244_344,
            &[
                ("id", Int),
                ("person_id", Int),
                ("movie_id", Int),
                ("person_role_id", Int),
                ("note", Text),
                ("nr_order", Int),
                ("role_id", Int),
            ],
        ))
        .with_table(Table::new(
            "name",
            4_167_491,
            &[
                ("id", Int),
                ("name", Text),
                ("imdb_index", Text),
                ("gender", Text),
                ("name_pcode_cf", Text),
            ],
        ))
        .with_table(Table::new(
            "aka_name",
            901_343,
            &[("id", Int), ("person_id", Int), ("name", Text)],
        ))
        .with_table(Table::new(
            "char_name",
            3_140_339,
            &[("id", Int), ("name", Text), ("imdb_index", Text)],
        ))
        .with_table(Table::new("role_type", 12, &[("id", Int), ("role", Text)]))
        .with_table(Table::new(
            "movie_keyword",
            4_523_930,
            &[("id", Int), ("movie_id", Int), ("keyword_id", Int)],
        ))
        .with_table(Table::new(
            "keyword",
            134_170,
            &[("id", Int), ("keyword", Text), ("phonetic_code", Text)],
        ))
        .with_table(Table::new(
            "person_info",
            2_963_664,
            &[
                ("id", Int),
                ("person_id", Int),
                ("info_type_id", Int),
                ("info", Text),
                ("note", Text),
            ],
        ))
        .with_table(Table::new(
            "movie_link",
            29_997,
            &[
                ("id", Int),
                ("movie_id", Int),
                ("linked_movie_id", Int),
                ("link_type_id", Int),
            ],
        ))
        .with_table(Table::new("link_type", 18, &[("id", Int), ("link", Text)]))
        .with_table(Table::new(
            "aka_title",
            361_472,
            &[
                ("id", Int),
                ("movie_id", Int),
                ("title", Text),
                ("kind_id", Int),
            ],
        ))
        .with_table(Table::new(
            "complete_cast",
            135_086,
            &[
                ("id", Int),
                ("movie_id", Int),
                ("subject_id", Int),
                ("status_id", Int),
            ],
        ))
        .with_table(Table::new(
            "comp_cast_type",
            4,
            &[("id", Int), ("kind", Text)],
        ))
        .with_table(Table::new("kind_type", 7, &[("id", Int), ("kind", Text)]))
}

/// SQLShare-style zoo: twelve small user databases across varied domains.
pub fn sqlshare_zoo() -> Vec<Schema> {
    vec![
        Schema::new("oceanography")
            .with_table(Table::new(
                "samples",
                50_000,
                &[
                    ("sample_id", Int),
                    ("cruise_id", Int),
                    ("depth", Float),
                    ("temp", Float),
                    ("salinity", Float),
                    ("lat", Float),
                    ("lon", Float),
                    ("collected", Text),
                ],
            ))
            .with_table(Table::new(
                "cruises",
                400,
                &[
                    ("cruise_id", Int),
                    ("vessel", Text),
                    ("year", Int),
                    ("region", Text),
                ],
            ))
            .with_table(Table::new(
                "stations",
                1_200,
                &[
                    ("station_id", Int),
                    ("cruise_id", Int),
                    ("lat", Float),
                    ("lon", Float),
                ],
            )),
        Schema::new("genomics")
            .with_table(Table::new(
                "genes",
                25_000,
                &[
                    ("gene_id", Int),
                    ("symbol", Text),
                    ("chromosome", Text),
                    ("start_pos", Int),
                    ("end_pos", Int),
                    ("strand", Text),
                ],
            ))
            .with_table(Table::new(
                "expression",
                900_000,
                &[
                    ("gene_id", Int),
                    ("sample_id", Int),
                    ("tpm", Float),
                    ("fold_change", Float),
                    ("pvalue", Float),
                ],
            ))
            .with_table(Table::new(
                "samples",
                600,
                &[
                    ("sample_id", Int),
                    ("tissue", Text),
                    ("condition", Text),
                    ("batch", Int),
                ],
            )),
        Schema::new("citybikes")
            .with_table(Table::new(
                "trips",
                2_000_000,
                &[
                    ("trip_id", Int),
                    ("bike_id", Int),
                    ("start_station", Int),
                    ("end_station", Int),
                    ("duration", Int),
                    ("started", Text),
                    ("member", Int),
                ],
            ))
            .with_table(Table::new(
                "stations",
                800,
                &[
                    ("station_id", Int),
                    ("name", Text),
                    ("docks", Int),
                    ("lat", Float),
                    ("lon", Float),
                ],
            )),
        Schema::new("retail")
            .with_table(Table::new(
                "orders",
                500_000,
                &[
                    ("order_id", Int),
                    ("customer_id", Int),
                    ("order_date", Text),
                    ("total", Float),
                    ("status", Text),
                ],
            ))
            .with_table(Table::new(
                "order_items",
                1_800_000,
                &[
                    ("order_id", Int),
                    ("product_id", Int),
                    ("quantity", Int),
                    ("unit_price", Float),
                ],
            ))
            .with_table(Table::new(
                "products",
                12_000,
                &[
                    ("product_id", Int),
                    ("name", Text),
                    ("category", Text),
                    ("price", Float),
                ],
            ))
            .with_table(Table::new(
                "customers",
                60_000,
                &[
                    ("customer_id", Int),
                    ("name", Text),
                    ("city", Text),
                    ("segment", Text),
                ],
            )),
        Schema::new("sensors")
            .with_table(Table::new(
                "readings",
                5_000_000,
                &[
                    ("reading_id", Int),
                    ("sensor_id", Int),
                    ("ts", Text),
                    ("value", Float),
                    ("quality", Int),
                ],
            ))
            .with_table(Table::new(
                "sensors",
                2_000,
                &[
                    ("sensor_id", Int),
                    ("kind", Text),
                    ("building", Text),
                    ("floor", Int),
                ],
            )),
        Schema::new("courses")
            .with_table(Table::new(
                "enrollments",
                150_000,
                &[
                    ("student_id", Int),
                    ("course_id", Int),
                    ("term", Text),
                    ("grade", Float),
                ],
            ))
            .with_table(Table::new(
                "students",
                20_000,
                &[
                    ("student_id", Int),
                    ("name", Text),
                    ("major", Text),
                    ("year", Int),
                ],
            ))
            .with_table(Table::new(
                "courses",
                900,
                &[
                    ("course_id", Int),
                    ("title", Text),
                    ("dept", Text),
                    ("credits", Int),
                ],
            )),
        Schema::new("hospital")
            .with_table(Table::new(
                "visits",
                300_000,
                &[
                    ("visit_id", Int),
                    ("patient_id", Int),
                    ("admitted", Text),
                    ("ward", Text),
                    ("cost", Float),
                ],
            ))
            .with_table(Table::new(
                "patients",
                40_000,
                &[
                    ("patient_id", Int),
                    ("name", Text),
                    ("age", Int),
                    ("city", Text),
                ],
            ))
            .with_table(Table::new(
                "diagnoses",
                450_000,
                &[("visit_id", Int), ("code", Text), ("severity", Int)],
            )),
        Schema::new("weather")
            .with_table(Table::new(
                "observations",
                3_000_000,
                &[
                    ("station_id", Int),
                    ("obs_date", Text),
                    ("tmax", Float),
                    ("tmin", Float),
                    ("precip", Float),
                    ("wind", Float),
                ],
            ))
            .with_table(Table::new(
                "stations",
                1_500,
                &[
                    ("station_id", Int),
                    ("name", Text),
                    ("state", Text),
                    ("elevation", Float),
                ],
            )),
        Schema::new("finance")
            .with_table(Table::new(
                "trades",
                4_000_000,
                &[
                    ("trade_id", Int),
                    ("symbol", Text),
                    ("price", Float),
                    ("volume", Int),
                    ("side", Text),
                    ("traded_at", Text),
                ],
            ))
            .with_table(Table::new(
                "companies",
                5_000,
                &[
                    ("symbol", Text),
                    ("name", Text),
                    ("sector", Text),
                    ("market_cap", Float),
                ],
            )),
        Schema::new("socialnet")
            .with_table(Table::new(
                "posts",
                1_200_000,
                &[
                    ("post_id", Int),
                    ("user_id", Int),
                    ("created", Text),
                    ("likes", Int),
                    ("topic", Text),
                ],
            ))
            .with_table(Table::new(
                "users",
                90_000,
                &[
                    ("user_id", Int),
                    ("handle", Text),
                    ("joined", Text),
                    ("followers", Int),
                ],
            ))
            .with_table(Table::new(
                "follows",
                2_500_000,
                &[("follower_id", Int), ("followee_id", Int), ("since", Text)],
            )),
        Schema::new("logistics")
            .with_table(Table::new(
                "shipments",
                700_000,
                &[
                    ("shipment_id", Int),
                    ("origin", Text),
                    ("destination", Text),
                    ("weight", Float),
                    ("shipped", Text),
                    ("carrier_id", Int),
                ],
            ))
            .with_table(Table::new(
                "carriers",
                300,
                &[("carrier_id", Int), ("name", Text), ("rating", Float)],
            ))
            .with_table(Table::new(
                "events",
                5_000_000,
                &[
                    ("shipment_id", Int),
                    ("event_type", Text),
                    ("ts", Text),
                    ("location", Text),
                ],
            )),
        Schema::new("library")
            .with_table(Table::new(
                "loans",
                220_000,
                &[
                    ("loan_id", Int),
                    ("book_id", Int),
                    ("member_id", Int),
                    ("out_date", Text),
                    ("due_date", Text),
                ],
            ))
            .with_table(Table::new(
                "books",
                80_000,
                &[
                    ("book_id", Int),
                    ("title", Text),
                    ("author", Text),
                    ("year", Int),
                    ("genre", Text),
                ],
            ))
            .with_table(Table::new(
                "members",
                15_000,
                &[("member_id", Int), ("name", Text), ("joined", Text)],
            )),
    ]
}

/// Spider-style cross-domain databases, including the four domains of the
/// paper's case-study queries Q15–Q18.
pub fn spider_zoo() -> Vec<Schema> {
    vec![
        // Q15: college tryouts
        Schema::new("soccer_tryouts")
            .with_table(Table::new(
                "tryout",
                1_000,
                &[
                    ("pid", Int),
                    ("cname", Text),
                    ("ppos", Text),
                    ("decision", Text),
                ],
            ))
            .with_table(Table::new(
                "college",
                50,
                &[("cname", Text), ("state", Text), ("enr", Int)],
            ))
            .with_table(Table::new(
                "player",
                800,
                &[("pid", Int), ("pname", Text), ("ycard", Text), ("hs", Int)],
            )),
        // Q16: transcripts
        Schema::new("student_transcripts")
            .with_table(Table::new(
                "Transcript_Cnt",
                5_000,
                &[("transcript_id", Int), ("student_course_id", Int)],
            ))
            .with_table(Table::new(
                "Transcripts",
                900,
                &[
                    ("transcript_id", Int),
                    ("transcript_date", Text),
                    ("other_details", Text),
                ],
            ))
            .with_table(Table::new(
                "Student_Enrolment_Courses",
                3_000,
                &[
                    ("student_course_id", Int),
                    ("course_id", Int),
                    ("student_enrolment_id", Int),
                ],
            )),
        // Q17: concerts
        Schema::new("concert_singer")
            .with_table(Table::new(
                "concert",
                200,
                &[
                    ("concert_id", Int),
                    ("concert_name", Text),
                    ("theme", Text),
                    ("stadium_id", Int),
                    ("year", Int),
                ],
            ))
            .with_table(Table::new(
                "stadium",
                40,
                &[
                    ("stadium_id", Int),
                    ("name", Text),
                    ("loc", Text),
                    ("capacity", Int),
                    ("average", Int),
                ],
            ))
            .with_table(Table::new(
                "singer",
                150,
                &[
                    ("singer_id", Int),
                    ("name", Text),
                    ("country", Text),
                    ("age", Int),
                ],
            ))
            .with_table(Table::new(
                "singer_in_concert",
                400,
                &[("concert_id", Int), ("singer_id", Int)],
            )),
        // Q18: cars
        Schema::new("car_1")
            .with_table(Table::new(
                "CARS_DATA",
                400,
                &[
                    ("id", Int),
                    ("mpg", Float),
                    ("cylinders", Int),
                    ("edispl", Float),
                    ("horsepower", Int),
                    ("weight", Int),
                    ("accelerate", Float),
                    ("year", Int),
                ],
            ))
            .with_table(Table::new(
                "CAR_NAMES",
                400,
                &[("makeid", Int), ("model", Text), ("make", Text)],
            ))
            .with_table(Table::new(
                "MODEL_LIST",
                40,
                &[("modelid", Int), ("maker", Int), ("model", Text)],
            ))
            .with_table(Table::new(
                "CAR_MAKERS",
                25,
                &[
                    ("id", Int),
                    ("maker", Text),
                    ("fullname", Text),
                    ("country", Int),
                ],
            ))
            .with_table(Table::new(
                "COUNTRIES",
                30,
                &[
                    ("countryid", Int),
                    ("countryname", Text),
                    ("continent", Int),
                ],
            )),
        Schema::new("flight_2")
            .with_table(Table::new(
                "flights",
                12_000,
                &[
                    ("flno", Int),
                    ("origin", Text),
                    ("destination", Text),
                    ("distance", Int),
                    ("airline", Int),
                ],
            ))
            .with_table(Table::new(
                "airports",
                400,
                &[
                    ("airportcode", Text),
                    ("airportname", Text),
                    ("city", Text),
                    ("country", Text),
                ],
            ))
            .with_table(Table::new(
                "airlines",
                60,
                &[
                    ("uid", Int),
                    ("airline", Text),
                    ("abbreviation", Text),
                    ("country", Text),
                ],
            )),
        Schema::new("pets_1")
            .with_table(Table::new(
                "student",
                300,
                &[
                    ("stuid", Int),
                    ("lname", Text),
                    ("fname", Text),
                    ("age", Int),
                    ("major", Int),
                ],
            ))
            .with_table(Table::new(
                "has_pet",
                150,
                &[("stuid", Int), ("petid", Int)],
            ))
            .with_table(Table::new(
                "pets",
                120,
                &[
                    ("petid", Int),
                    ("pettype", Text),
                    ("pet_age", Int),
                    ("weight", Float),
                ],
            )),
        Schema::new("employee_hire_evaluation")
            .with_table(Table::new(
                "employee",
                500,
                &[
                    ("employee_id", Int),
                    ("name", Text),
                    ("age", Int),
                    ("city", Text),
                ],
            ))
            .with_table(Table::new(
                "shop",
                80,
                &[
                    ("shop_id", Int),
                    ("name", Text),
                    ("location", Text),
                    ("district", Text),
                    ("number_products", Int),
                ],
            ))
            .with_table(Table::new(
                "hiring",
                300,
                &[
                    ("shop_id", Int),
                    ("employee_id", Int),
                    ("start_from", Text),
                    ("is_full_time", Text),
                ],
            ))
            .with_table(Table::new(
                "evaluation",
                200,
                &[
                    ("employee_id", Int),
                    ("year_awarded", Int),
                    ("bonus", Float),
                ],
            )),
        Schema::new("world_1")
            .with_table(Table::new(
                "city",
                4_000,
                &[
                    ("id", Int),
                    ("name", Text),
                    ("countrycode", Text),
                    ("district", Text),
                    ("population", Int),
                ],
            ))
            .with_table(Table::new(
                "country",
                240,
                &[
                    ("code", Text),
                    ("name", Text),
                    ("continent", Text),
                    ("region", Text),
                    ("population", Int),
                    ("lifeexpectancy", Float),
                    ("gnp", Float),
                ],
            ))
            .with_table(Table::new(
                "countrylanguage",
                1_000,
                &[
                    ("countrycode", Text),
                    ("language", Text),
                    ("isofficial", Text),
                    ("percentage", Float),
                ],
            )),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdss_has_shared_columns_for_ambiguity() {
        let s = sdss();
        assert!(s.tables_with_column("bestobjid").count() >= 2);
        assert!(s.tables_with_column("ra").count() >= 4);
        assert!(s.table("SpecObj").unwrap().column("z").unwrap().ty == SqlType::Float);
    }

    #[test]
    fn imdb_has_all_21_tables() {
        let s = imdb();
        assert_eq!(s.tables.len(), 21);
        for t in [
            "title",
            "movie_companies",
            "cast_info",
            "kind_type",
            "comp_cast_type",
        ] {
            assert!(s.has_table(t), "missing {t}");
        }
        // movie_id is the hub column of JOB joins
        assert!(s.tables_with_column("movie_id").count() >= 7);
    }

    #[test]
    fn zoos_have_distinct_names() {
        let zoo = sqlshare_zoo();
        assert!(zoo.len() >= 10);
        let mut names: Vec<_> = zoo.iter().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), zoo.len());

        let spider = spider_zoo();
        assert!(spider.len() >= 8);
        assert!(spider.iter().any(|s| s.name == "concert_singer"));
        assert!(spider.iter().any(|s| s.name == "car_1"));
    }

    #[test]
    fn case_study_schemas_match_paper_queries() {
        let spider = spider_zoo();
        let tryouts = spider.iter().find(|s| s.name == "soccer_tryouts").unwrap();
        assert!(tryouts.table("tryout").unwrap().has_column("cname"));
        let cars = spider.iter().find(|s| s.name == "car_1").unwrap();
        assert!(cars.table("CARS_DATA").unwrap().has_column("accelerate"));
        assert!(cars.table("CAR_NAMES").unwrap().has_column("model"));
    }
}
