/// SQL column types, reduced to the four classes the benchmark needs.
///
/// The paper's `condition-mismatch` error type is about comparing
/// incompatible classes (numeric column against a string literal), so the
/// type lattice here is deliberately coarse: numeric (int/float), text,
/// and boolean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlType {
    /// Integer-valued column.
    Int,
    /// Floating-point column.
    Float,
    /// Character data (also used for dates, which the workloads store as
    /// ISO strings).
    Text,
    /// Boolean flag.
    Bool,
}

impl SqlType {
    /// Is this a numeric type?
    pub fn is_numeric(&self) -> bool {
        matches!(self, SqlType::Int | SqlType::Float)
    }

    /// Can values of the two types be compared without a type error?
    ///
    /// Numerics compare with numerics, text with text, bool with bool.
    pub fn comparable_with(&self, other: SqlType) -> bool {
        match (self, other) {
            (a, b) if *a == b => true,
            (a, b) => a.is_numeric() && b.is_numeric(),
        }
    }

    /// Parse a SQL type name (e.g. from `CREATE TABLE`) into a class.
    /// Unknown names default to [`SqlType::Text`].
    pub fn from_name(name: &str) -> SqlType {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "TINYINT" | "SERIAL" | "SIGNED"
            | "UNSIGNED" => SqlType::Int,
            "FLOAT" | "REAL" | "DOUBLE" | "DECIMAL" | "NUMERIC" | "MONEY" => SqlType::Float,
            "BOOL" | "BOOLEAN" | "BIT" => SqlType::Bool,
            _ => SqlType::Text,
        }
    }

    /// Canonical SQL spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            SqlType::Int => "INT",
            SqlType::Float => "FLOAT",
            SqlType::Text => "VARCHAR",
            SqlType::Bool => "BOOLEAN",
        }
    }
}

impl std::fmt::Display for SqlType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparability() {
        assert!(SqlType::Int.comparable_with(SqlType::Float));
        assert!(SqlType::Float.comparable_with(SqlType::Int));
        assert!(SqlType::Text.comparable_with(SqlType::Text));
        assert!(!SqlType::Int.comparable_with(SqlType::Text));
        assert!(!SqlType::Text.comparable_with(SqlType::Float));
        assert!(!SqlType::Bool.comparable_with(SqlType::Int));
    }

    #[test]
    fn parse_type_names() {
        assert_eq!(SqlType::from_name("int"), SqlType::Int);
        assert_eq!(SqlType::from_name("BIGINT"), SqlType::Int);
        assert_eq!(SqlType::from_name("real"), SqlType::Float);
        assert_eq!(SqlType::from_name("varchar"), SqlType::Text);
        assert_eq!(SqlType::from_name("date"), SqlType::Text);
        assert_eq!(SqlType::from_name("bit"), SqlType::Bool);
    }
}
