//! Relational catalog: schemas, tables, and columns.
//!
//! All name lookups are case-insensitive, matching the behaviour of the
//! engines behind the original workloads (SQL Server for SDSS/SQLShare,
//! PostgreSQL with default folding for JOB).

use crate::SqlType;

/// A column: name plus type class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name as declared.
    pub name: String,
    /// Type class.
    pub ty: SqlType,
}

impl Column {
    /// Construct a column.
    pub fn new(name: &str, ty: SqlType) -> Self {
        Column {
            name: name.to_string(),
            ty,
        }
    }
}

/// A base table: name, columns, and an estimated cardinality used by the
/// cost model and the witness-database generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table name as declared.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
    /// Estimated base cardinality (rows). Drives the engine's cost model;
    /// roughly scaled from the real workloads' table sizes.
    pub row_count: u64,
}

impl Table {
    /// Construct a table from `(name, type)` column pairs.
    pub fn new(name: &str, row_count: u64, cols: &[(&str, SqlType)]) -> Self {
        Table {
            name: name.to_string(),
            columns: cols.iter().map(|(n, t)| Column::new(n, *t)).collect(),
            row_count,
        }
    }

    /// Case-insensitive column lookup.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Does the table have a column with this name (case-insensitive)?
    pub fn has_column(&self, name: &str) -> bool {
        self.column(name).is_some()
    }

    /// Column names in declaration order.
    pub fn column_names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|c| c.name.as_str())
    }
}

/// A database schema: a named collection of tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Schema (database) name.
    pub name: String,
    /// Tables.
    pub tables: Vec<Table>,
}

impl Schema {
    /// Construct an empty schema.
    pub fn new(name: &str) -> Self {
        Schema {
            name: name.to_string(),
            tables: Vec::new(),
        }
    }

    /// Add a table (builder style).
    pub fn with_table(mut self, table: Table) -> Self {
        self.tables.push(table);
        self
    }

    /// Case-insensitive table lookup.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// Does the schema contain this table (case-insensitive)?
    pub fn has_table(&self, name: &str) -> bool {
        self.table(name).is_some()
    }

    /// All tables that contain a column with the given name — the input to
    /// ambiguity detection.
    pub fn tables_with_column<'a>(&'a self, col: &'a str) -> impl Iterator<Item = &'a Table> {
        self.tables.iter().filter(move |t| t.has_column(col))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new("test")
            .with_table(Table::new(
                "SpecObj",
                1000,
                &[
                    ("specobjid", SqlType::Int),
                    ("bestobjid", SqlType::Int),
                    ("plate", SqlType::Int),
                    ("z", SqlType::Float),
                ],
            ))
            .with_table(Table::new(
                "PhotoObj",
                5000,
                &[
                    ("objid", SqlType::Int),
                    ("bestobjid", SqlType::Int),
                    ("ra", SqlType::Float),
                ],
            ))
    }

    #[test]
    fn case_insensitive_lookup() {
        let s = sample();
        assert!(s.table("specobj").is_some());
        assert!(s.table("SPECOBJ").is_some());
        assert!(s.table("nope").is_none());
        let t = s.table("SpecObj").unwrap();
        assert_eq!(t.column("PLATE").unwrap().ty, SqlType::Int);
        assert!(t.column("missing").is_none());
    }

    #[test]
    fn ambiguity_source() {
        let s = sample();
        let holders: Vec<_> = s
            .tables_with_column("bestobjid")
            .map(|t| t.name.as_str())
            .collect();
        assert_eq!(holders, vec!["SpecObj", "PhotoObj"]);
        assert_eq!(s.tables_with_column("plate").count(), 1);
    }
}
