//! Typed SQL abstract syntax tree.
//!
//! The AST covers the dialect exercised by the four benchmark workloads:
//! full `SELECT` queries (explicit and implicit joins, `WHERE`, `GROUP BY`,
//! `HAVING`, `ORDER BY`, `LIMIT`/`TOP`, `DISTINCT`), subqueries (scalar,
//! `IN`, `EXISTS`, derived tables), common table expressions (`WITH`), set
//! operations (`UNION`/`INTERSECT`/`EXCEPT`), and the `CREATE TABLE`/`CREATE
//! VIEW` statements that appear in SDSS/CasJobs and Join-Order logs.

pub use squ_lexer::{CompareOp, Keyword, Span};

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A (possibly CTE-prefixed, set-op-combined) query.
    Query(Query),
    /// `CREATE TABLE name (col type, …)` or `CREATE TABLE name AS query`.
    CreateTable {
        /// Table name (may include a `#` prefix in CasJobs temp tables).
        name: String,
        /// Column definitions (empty when created `AS` a query).
        columns: Vec<ColumnDef>,
        /// `AS SELECT …` source, if any.
        source: Option<Box<Query>>,
    },
    /// `CREATE VIEW name AS query`.
    CreateView {
        /// View name.
        name: String,
        /// Defining query.
        query: Box<Query>,
    },
}

impl Statement {
    /// The query type label used by the paper's `query_type` property.
    pub fn query_type(&self) -> QueryType {
        match self {
            Statement::Query(_) => QueryType::Select,
            Statement::CreateTable { .. } | Statement::CreateView { .. } => QueryType::Create,
        }
    }

    /// The inner query, if this statement contains one.
    pub fn query(&self) -> Option<&Query> {
        match self {
            Statement::Query(q) => Some(q),
            Statement::CreateTable { source, .. } => source.as_deref(),
            Statement::CreateView { query, .. } => Some(query),
        }
    }

    /// Mutable access to the inner query, if any.
    pub fn query_mut(&mut self) -> Option<&mut Query> {
        match self {
            Statement::Query(q) => Some(q),
            Statement::CreateTable { source, .. } => source.as_deref_mut(),
            Statement::CreateView { query, .. } => Some(query),
        }
    }
}

/// Coarse query-type classification (Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryType {
    /// Plain `SELECT` query.
    Select,
    /// `CREATE TABLE` / `CREATE VIEW`.
    Create,
}

impl std::fmt::Display for QueryType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryType::Select => f.write_str("SELECT"),
            QueryType::Create => f.write_str("CREATE"),
        }
    }
}

/// A column definition inside `CREATE TABLE (…)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Raw type name, e.g. `INT`, `FLOAT`, `VARCHAR`.
    pub type_name: String,
}

/// A full query: optional CTE prologue, a set-expression body, and optional
/// `ORDER BY` / `LIMIT`.
#[derive(Debug, Clone)]
pub struct Query {
    /// `WITH name AS (…)` definitions, in order.
    pub ctes: Vec<Cte>,
    /// The query body (a bare `SELECT` or a set-op tree).
    pub body: SetExpr,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderItem>,
    /// `LIMIT n`.
    pub limit: Option<u64>,
    /// Byte span of the query text in the source it was parsed from.
    /// [`Span::default()`] (empty) for synthesized queries. Excluded from
    /// equality: two queries are equal iff their structure is, wherever
    /// they came from.
    pub span: Span,
}

impl PartialEq for Query {
    fn eq(&self, other: &Self) -> bool {
        self.ctes == other.ctes
            && self.body == other.body
            && self.order_by == other.order_by
            && self.limit == other.limit
    }
}

impl Query {
    /// A query that is just a `SELECT` body with no CTEs / ordering / limit.
    pub fn from_select(select: Select) -> Self {
        Query {
            ctes: Vec::new(),
            body: SetExpr::Select(Box::new(select)),
            order_by: Vec::new(),
            limit: None,
            span: Span::default(),
        }
    }

    /// The sole `SELECT` body, if the query is a simple (non-set-op) query.
    pub fn as_select(&self) -> Option<&Select> {
        match &self.body {
            SetExpr::Select(s) => Some(s),
            _ => None,
        }
    }

    /// Mutable access to the sole `SELECT` body, if simple.
    pub fn as_select_mut(&mut self) -> Option<&mut Select> {
        match &mut self.body {
            SetExpr::Select(s) => Some(s),
            _ => None,
        }
    }
}

/// One `WITH` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Cte {
    /// CTE name.
    pub name: String,
    /// Defining query.
    pub query: Box<Query>,
}

/// Query body: either a `SELECT` or a binary set operation.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    /// A plain `SELECT … FROM …`.
    Select(Box<Select>),
    /// `left UNION/INTERSECT/EXCEPT [ALL] right`.
    SetOp {
        /// Which set operation.
        op: SetOp,
        /// `ALL` (bag) semantics instead of set semantics.
        all: bool,
        /// Left operand.
        left: Box<SetExpr>,
        /// Right operand.
        right: Box<SetExpr>,
    },
}

/// Set operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum SetOp {
    Union,
    Intersect,
    Except,
}

impl SetOp {
    /// SQL spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            SetOp::Union => "UNION",
            SetOp::Intersect => "INTERSECT",
            SetOp::Except => "EXCEPT",
        }
    }
}

/// A `SELECT` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// T-SQL `SELECT TOP n` (common in SDSS/CasJobs logs).
    pub top: Option<u64>,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// `FROM` items (comma-separated; each may be a join tree).
    pub from: Vec<TableRef>,
    /// `WHERE` predicate.
    pub selection: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
}

impl Select {
    /// An empty select (used as a builder seed).
    pub fn new() -> Self {
        Select {
            distinct: false,
            top: None,
            items: Vec::new(),
            from: Vec::new(),
            selection: None,
            group_by: Vec::new(),
            having: None,
        }
    }
}

impl Default for Select {
    fn default() -> Self {
        Self::new()
    }
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// An expression, optionally aliased: `expr [AS alias]`.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS alias`, if present.
        alias: Option<String>,
    },
}

impl SelectItem {
    /// A bare column projection.
    pub fn column(qualifier: Option<&str>, name: &str) -> Self {
        SelectItem::Expr {
            expr: Expr::column(qualifier, name),
            alias: None,
        }
    }
}

/// A table reference in `FROM` (possibly a join tree or derived table).
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A named base table or CTE reference, optionally aliased.
    Named {
        /// Table (or CTE) name.
        name: String,
        /// `AS alias`, if present.
        alias: Option<String>,
    },
    /// `( subquery ) AS alias` — a derived table.
    Derived {
        /// The subquery.
        query: Box<Query>,
        /// Alias (SQL requires one; we tolerate its absence for
        /// error-injection corpora).
        alias: Option<String>,
    },
    /// An explicit join.
    Join {
        /// Left operand.
        left: Box<TableRef>,
        /// Right operand.
        right: Box<TableRef>,
        /// Join kind.
        kind: JoinKind,
        /// `ON …` / `USING (…)` / nothing (cross join).
        constraint: JoinConstraint,
    },
}

impl TableRef {
    /// A named table with optional alias.
    pub fn named(name: &str, alias: Option<&str>) -> Self {
        TableRef::Named {
            name: name.to_string(),
            alias: alias.map(str::to_string),
        }
    }

    /// The binding name this table ref is visible under (alias if present,
    /// else the table name for `Named`).
    pub fn binding_name(&self) -> Option<&str> {
        match self {
            TableRef::Named { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            TableRef::Derived { alias, .. } => alias.as_deref(),
            TableRef::Join { .. } => None,
        }
    }
}

/// Join kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Full,
    Cross,
}

impl JoinKind {
    /// SQL spelling (including the JOIN word).
    pub fn as_str(&self) -> &'static str {
        match self {
            JoinKind::Inner => "JOIN",
            JoinKind::Left => "LEFT JOIN",
            JoinKind::Right => "RIGHT JOIN",
            JoinKind::Full => "FULL JOIN",
            JoinKind::Cross => "CROSS JOIN",
        }
    }
}

/// Join constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinConstraint {
    /// `ON expr`
    On(Expr),
    /// `USING (col, …)`
    Using(Vec<String>),
    /// No constraint (cross join).
    None,
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort expression.
    pub expr: Expr,
    /// `DESC` if true, `ASC` otherwise.
    pub desc: bool,
}

/// A possibly-qualified column reference.
#[derive(Debug, Clone)]
pub struct ColumnRef {
    /// Table name or alias qualifier (`s` in `s.plate`).
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
    /// Byte span of `qualifier.name` in the source it was parsed from.
    /// [`Span::default()`] (empty) for synthesized references. Excluded
    /// from equality/ordering/hashing so that structural comparisons (and
    /// the print→parse roundtrip) are position-independent.
    pub span: Span,
}

impl PartialEq for ColumnRef {
    fn eq(&self, other: &Self) -> bool {
        self.qualifier == other.qualifier && self.name == other.name
    }
}

impl Eq for ColumnRef {}

impl std::hash::Hash for ColumnRef {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.qualifier.hash(state);
        self.name.hash(state);
    }
}

impl PartialOrd for ColumnRef {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ColumnRef {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (&self.qualifier, &self.name).cmp(&(&other.qualifier, &other.name))
    }
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => f.write_str(&self.name),
        }
    }
}

/// A literal value.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Numeric literal (SQL numerics are modeled as f64 end-to-end).
    Number(f64),
    /// String literal.
    String(String),
    /// Boolean literal.
    Bool(bool),
    /// `NULL`.
    Null,
}

/// Scalar / boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal.
    Literal(Literal),
    /// Comparison: `left op right`.
    Compare {
        /// Comparison operator.
        op: CompareOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL` if true.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// Negated form.
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, …)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// Negated form.
        negated: bool,
    },
    /// `expr [NOT] IN (subquery)`.
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// The subquery.
        subquery: Box<Query>,
        /// Negated form.
        negated: bool,
    },
    /// `[NOT] EXISTS (subquery)`.
    Exists {
        /// The subquery.
        subquery: Box<Query>,
        /// Negated form.
        negated: bool,
    },
    /// `( subquery )` used as a scalar.
    ScalarSubquery(Box<Query>),
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern (with `%`/`_` wildcards).
        pattern: Box<Expr>,
        /// Negated form.
        negated: bool,
    },
    /// Function call: `name(args)`, `COUNT(*)`, `COUNT(DISTINCT x)`.
    Function {
        /// Function name as written (case preserved).
        name: String,
        /// Arguments; `Expr::Wildcard` models `*`.
        args: Vec<Expr>,
        /// `DISTINCT` inside the call.
        distinct: bool,
    },
    /// `*` as a function argument (`COUNT(*)`).
    Wildcard,
    /// Binary arithmetic: `left op right` with `op ∈ {+,-,*,/,%}`.
    Arith {
        /// Operator character.
        op: char,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary minus.
    Neg(Box<Expr>),
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`.
    Case {
        /// Optional `CASE operand` (simple form).
        operand: Option<Box<Expr>>,
        /// `(WHEN, THEN)` pairs.
        branches: Vec<(Expr, Expr)>,
        /// `ELSE` expression.
        else_expr: Option<Box<Expr>>,
    },
    /// `CAST(expr AS type)`.
    Cast {
        /// The casted expression.
        expr: Box<Expr>,
        /// Target type name.
        type_name: String,
    },
}

impl Expr {
    /// A column reference expression.
    pub fn column(qualifier: Option<&str>, name: &str) -> Expr {
        Expr::Column(ColumnRef {
            qualifier: qualifier.map(str::to_string),
            name: name.to_string(),
            span: Span::default(),
        })
    }

    /// A numeric literal.
    pub fn number(v: f64) -> Expr {
        Expr::Literal(Literal::Number(v))
    }

    /// A string literal.
    pub fn string(s: &str) -> Expr {
        Expr::Literal(Literal::String(s.to_string()))
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `self op other`.
    pub fn compare(self, op: CompareOp, other: Expr) -> Expr {
        Expr::Compare {
            op,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// True if the expression is (or contains at the top level of a call) an
    /// aggregate function: COUNT, SUM, AVG, MIN, MAX.
    pub fn is_aggregate_call(&self) -> bool {
        match self {
            Expr::Function { name, .. } => is_aggregate_name(name),
            _ => false,
        }
    }

    /// Whether any node in this expression subtree is an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        if self.is_aggregate_call() {
            return true;
        }
        let mut found = false;
        self.for_each_child(&mut |c| {
            if c.contains_aggregate() {
                found = true;
            }
        });
        found
    }

    /// Visit the direct child expressions (not descending into subqueries).
    pub fn for_each_child(&self, f: &mut dyn FnMut(&Expr)) {
        match self {
            Expr::Column(_) | Expr::Literal(_) | Expr::Wildcard => {}
            Expr::Compare { left, right, .. } | Expr::Arith { left, right, .. } => {
                f(left);
                f(right);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                f(a);
                f(b);
            }
            Expr::Not(e) | Expr::Neg(e) | Expr::Cast { expr: e, .. } => f(e),
            Expr::IsNull { expr, .. } => f(expr),
            Expr::Between {
                expr, low, high, ..
            } => {
                f(expr);
                f(low);
                f(high);
            }
            Expr::InList { expr, list, .. } => {
                f(expr);
                for e in list {
                    f(e);
                }
            }
            Expr::InSubquery { expr, .. } => f(expr),
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
            Expr::Like { expr, pattern, .. } => {
                f(expr);
                f(pattern);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                if let Some(op) = operand {
                    f(op);
                }
                for (w, t) in branches {
                    f(w);
                    f(t);
                }
                if let Some(e) = else_expr {
                    f(e);
                }
            }
        }
    }
}

/// Byte span of the first position-carrying node inside an expression,
/// searching pre-order (the node itself, then children left to right).
/// Column references and subqueries carry positions; returns `None` when
/// the expression contains neither, or only synthesized (empty-span) nodes.
pub fn expr_span(e: &Expr) -> Option<Span> {
    let mut found = None;
    find_expr_span(e, &mut found);
    found
}

fn find_expr_span(e: &Expr, out: &mut Option<Span>) {
    if out.is_some() {
        return;
    }
    match e {
        Expr::Column(c) => {
            if !c.span.is_empty() {
                *out = Some(c.span);
            }
        }
        Expr::ScalarSubquery(q) | Expr::Exists { subquery: q, .. } => {
            if !q.span.is_empty() {
                *out = Some(q.span);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            find_expr_span(expr, out);
            if out.is_none() && !subquery.span.is_empty() {
                *out = Some(subquery.span);
            }
        }
        other => other.for_each_child(&mut |c| find_expr_span(c, out)),
    }
}

/// Is `name` one of the standard aggregate functions?
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" | "STDEV" | "STDDEV" | "VAR" | "VARIANCE"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let e = Expr::column(Some("s"), "z").compare(CompareOp::Gt, Expr::number(0.5));
        match &e {
            Expr::Compare { op, left, .. } => {
                assert_eq!(*op, CompareOp::Gt);
                assert!(matches!(**left, Expr::Column(_)));
            }
            _ => panic!("expected compare"),
        }
    }

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Function {
            name: "AVG".into(),
            args: vec![Expr::column(None, "z")],
            distinct: false,
        };
        assert!(agg.is_aggregate_call());
        assert!(agg.contains_aggregate());
        let wrapped = Expr::Arith {
            op: '+',
            left: Box::new(agg),
            right: Box::new(Expr::number(1.0)),
        };
        assert!(!wrapped.is_aggregate_call());
        assert!(wrapped.contains_aggregate());
        assert!(!Expr::column(None, "z").contains_aggregate());
        assert!(is_aggregate_name("count"));
        assert!(!is_aggregate_name("substr"));
    }

    #[test]
    fn statement_query_type() {
        let q = Statement::Query(Query::from_select(Select::new()));
        assert_eq!(q.query_type(), QueryType::Select);
        let c = Statement::CreateTable {
            name: "t".into(),
            columns: vec![],
            source: None,
        };
        assert_eq!(c.query_type(), QueryType::Create);
        assert_eq!(QueryType::Select.to_string(), "SELECT");
    }

    #[test]
    fn binding_name() {
        assert_eq!(
            TableRef::named("SpecObj", Some("s")).binding_name(),
            Some("s")
        );
        assert_eq!(
            TableRef::named("SpecObj", None).binding_name(),
            Some("SpecObj")
        );
    }
}
