//! Recursive-descent SQL parser.
//!
//! Grammar (simplified):
//!
//! ```text
//! statement   := query | create
//! create      := CREATE TABLE name ( coldefs ) | CREATE TABLE name AS query
//!              | CREATE VIEW name AS query
//! query       := [WITH cte (, cte)*] set_expr [ORDER BY items] [LIMIT n]
//! set_expr    := select ((UNION|INTERSECT|EXCEPT) [ALL] select)*
//! select      := SELECT [DISTINCT] [TOP n] items FROM from [WHERE e]
//!                [GROUP BY es] [HAVING e]
//! from        := table_ref (, table_ref)*
//! table_ref   := primary (join_kind primary [ON e | USING (cols)])*
//! expr        := or_expr   (precedence: OR < AND < NOT < predicate <
//!                add < mul < unary < primary)
//! ```

use crate::ast::*;
use crate::error::ParseError;
use squ_lexer::{tokenize_dialect, Dialect, Keyword, Span, Token, TokenKind};

/// Parse a single SQL statement (trailing `;` tolerated) in the default
/// [`Dialect::Squ`].
pub fn parse(sql: &str) -> Result<Statement, ParseError> {
    parse_dialect(sql, Dialect::Squ)
}

/// Parse a single SQL statement under `dialect` rules: the lexer applies
/// the dialect's quote/comment matrix, and the grammar admits `LIMIT` /
/// `TOP` / `||` only where the dialect does.
pub fn parse_dialect(sql: &str, dialect: Dialect) -> Result<Statement, ParseError> {
    let tokens = tokenize_dialect(sql, dialect)?;
    let mut p = Parser::with_dialect(tokens, dialect);
    let stmt = p.parse_statement()?;
    p.eat_semicolons();
    if let Some(t) = p.peek() {
        return Err(ParseError::TrailingTokens {
            found: t.text.clone(),
            word_index: t.word_index,
        });
    }
    Ok(stmt)
}

/// Parse a query (no DDL), convenience for the many call sites that only
/// deal with `SELECT`s.
pub fn parse_query(sql: &str) -> Result<Query, ParseError> {
    parse_query_dialect(sql, Dialect::Squ)
}

/// [`parse_query`] under `dialect` rules.
pub fn parse_query_dialect(sql: &str, dialect: Dialect) -> Result<Query, ParseError> {
    match parse_dialect(sql, dialect)? {
        Statement::Query(q) => Ok(q),
        other => Err(ParseError::Unexpected {
            expected: "a SELECT query".into(),
            found: format!("{:?}", other.query_type()),
            word_index: 0,
        }),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    dialect: Dialect,
}

impl Parser {
    fn with_dialect(tokens: Vec<Token>, dialect: Dialect) -> Self {
        Parser {
            tokens,
            pos: 0,
            dialect,
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_kind(&self) -> Option<&TokenKind> {
        self.peek().map(|t| &t.kind)
    }

    fn peek_at(&self, n: usize) -> Option<&Token> {
        self.tokens.get(self.pos + n)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_kw(&self, kw: Keyword) -> bool {
        matches!(self.peek_kind(), Some(TokenKind::Keyword(k)) if *k == kw)
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("keyword {}", kw.as_str())))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn eat_semicolons(&mut self) {
        while self.eat(&TokenKind::Semicolon) {}
    }

    /// Span of the token about to be consumed (degenerate end-of-input
    /// span after the last token).
    fn cur_span(&self) -> Span {
        self.tokens
            .get(self.pos)
            .map(|t| t.span)
            .unwrap_or_else(|| {
                let end = self.prev_span().end;
                Span::new(end, end)
            })
    }

    /// Span of the most recently consumed token (empty at position 0).
    fn prev_span(&self) -> Span {
        self.pos
            .checked_sub(1)
            .and_then(|i| self.tokens.get(i))
            .map(|t| t.span)
            .unwrap_or_default()
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        match self.peek() {
            Some(t) => ParseError::Unexpected {
                expected: expected.to_string(),
                found: t.text.clone(),
                word_index: t.word_index,
            },
            None => ParseError::UnexpectedEof {
                expected: expected.to_string(),
            },
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek_kind() {
            Some(TokenKind::Ident) | Some(TokenKind::QuotedIdent) => {
                Ok(self.bump().expect("peeked").text) // lint:allow: caller peeked this token
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn number_u64(&mut self, what: &str) -> Result<u64, ParseError> {
        match self.peek_kind() {
            Some(TokenKind::Number(v)) if *v >= 0.0 && v.fract() == 0.0 => {
                let v = *v;
                self.bump();
                Ok(v as u64)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    // ---------------- statements ----------------

    fn parse_statement(&mut self) -> Result<Statement, ParseError> {
        if self.at_kw(Keyword::Create) {
            self.parse_create()
        } else {
            Ok(Statement::Query(self.parse_query()?))
        }
    }

    fn parse_create(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw(Keyword::Create)?;
        if self.eat_kw(Keyword::View) {
            let name = self.ident("view name")?;
            self.expect_kw(Keyword::As)?;
            let query = self.parse_query()?;
            return Ok(Statement::CreateView {
                name,
                query: Box::new(query),
            });
        }
        self.expect_kw(Keyword::Table)?;
        let name = self.ident("table name")?;
        if self.eat_kw(Keyword::As) {
            let query = self.parse_query()?;
            return Ok(Statement::CreateTable {
                name,
                columns: Vec::new(),
                source: Some(Box::new(query)),
            });
        }
        self.expect(&TokenKind::LParen, "'(' after table name")?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident("column name")?;
            let ty = self.ident("column type")?;
            // tolerate (n) precision and simple column constraints
            if self.eat(&TokenKind::LParen) {
                let _ = self.number_u64("type precision")?;
                if self.eat(&TokenKind::Comma) {
                    let _ = self.number_u64("type scale")?;
                }
                self.expect(&TokenKind::RParen, "')' after type precision")?;
            }
            while self.eat_kw(Keyword::Primary)
                || self.eat_kw(Keyword::Key)
                || self.eat_kw(Keyword::Not)
                || self.eat_kw(Keyword::Null)
            {}
            columns.push(ColumnDef {
                name: col,
                type_name: ty,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen, "')' after column definitions")?;
        Ok(Statement::CreateTable {
            name,
            columns,
            source: None,
        })
    }

    // ---------------- queries ----------------

    fn parse_query(&mut self) -> Result<Query, ParseError> {
        let start = self.cur_span().start;
        let mut ctes = Vec::new();
        if self.eat_kw(Keyword::With) {
            loop {
                let name = self.ident("CTE name")?;
                self.expect_kw(Keyword::As)?;
                self.expect(&TokenKind::LParen, "'(' before CTE body")?;
                let q = self.parse_query()?;
                self.expect(&TokenKind::RParen, "')' after CTE body")?;
                ctes.push(Cte {
                    name,
                    query: Box::new(q),
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let body = self.parse_set_expr()?;
        let mut order_by = Vec::new();
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw(Keyword::Desc) {
                    true
                } else {
                    self.eat_kw(Keyword::Asc);
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.dialect.supports_limit() && self.eat_kw(Keyword::Limit) {
            Some(self.number_u64("LIMIT count")?)
        } else {
            None
        };
        Ok(Query {
            ctes,
            body,
            order_by,
            limit,
            span: Span::new(start, self.prev_span().end),
        })
    }

    fn parse_set_expr(&mut self) -> Result<SetExpr, ParseError> {
        let mut left = self.parse_set_operand()?;
        loop {
            let op = if self.eat_kw(Keyword::Union) {
                SetOp::Union
            } else if self.eat_kw(Keyword::Intersect) {
                SetOp::Intersect
            } else if self.eat_kw(Keyword::Except) {
                SetOp::Except
            } else {
                break;
            };
            let all = self.eat_kw(Keyword::All);
            let right = self.parse_set_operand()?;
            left = SetExpr::SetOp {
                op,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_set_operand(&mut self) -> Result<SetExpr, ParseError> {
        if self.at_kw(Keyword::Select) {
            return Ok(SetExpr::Select(Box::new(self.parse_select()?)));
        }
        // parenthesized operand: `(SELECT …)` or a nested set-op tree
        if self.peek_kind() == Some(&TokenKind::LParen)
            && matches!(
                self.peek_at(1).map(|t| &t.kind),
                Some(TokenKind::Keyword(Keyword::Select))
            )
        {
            self.bump(); // (
            let inner = self.parse_set_expr()?;
            self.expect(&TokenKind::RParen, "')' after parenthesized query")?;
            return Ok(inner);
        }
        Err(self.unexpected("SELECT"))
    }

    fn parse_select(&mut self) -> Result<Select, ParseError> {
        self.expect_kw(Keyword::Select)?;
        let distinct = if self.eat_kw(Keyword::Distinct) {
            true
        } else {
            self.eat_kw(Keyword::All);
            false
        };
        let top = if self.dialect.supports_top() && self.eat_kw(Keyword::Top) {
            Some(self.number_u64("TOP count")?)
        } else {
            None
        };

        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }

        let mut from = Vec::new();
        if self.eat_kw(Keyword::From) {
            loop {
                from.push(self.parse_table_ref()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let selection = if self.eat_kw(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let having = if self.eat_kw(Keyword::Having) {
            Some(self.parse_expr()?)
        } else {
            None
        };

        Ok(Select {
            distinct,
            top,
            items,
            from,
            selection,
            group_by,
            having,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, ParseError> {
        // `*`
        if self.peek_kind() == Some(&TokenKind::ArithOp('*')) {
            self.bump();
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let (Some(TokenKind::Ident), Some(t1), Some(t2)) =
            (self.peek_kind(), self.peek_at(1), self.peek_at(2))
        {
            if t1.kind == TokenKind::Dot && t2.kind == TokenKind::ArithOp('*') {
                let q = self.bump().expect("peeked").text; // lint:allow: caller peeked this token
                self.bump(); // .
                self.bump(); // *
                return Ok(SelectItem::QualifiedWildcard(q));
            }
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_kw(Keyword::As) {
            Some(self.ident("alias after AS")?)
        } else if matches!(self.peek_kind(), Some(TokenKind::Ident)) {
            // bare alias: `SELECT COUNT(*) cnt`
            Some(self.bump().expect("peeked").text) // lint:allow: caller peeked this token
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    // ---------------- FROM / joins ----------------

    fn parse_table_ref(&mut self) -> Result<TableRef, ParseError> {
        let mut left = self.parse_table_primary()?;
        loop {
            let kind = if self.eat_kw(Keyword::Cross) {
                self.expect_kw(Keyword::Join)?;
                JoinKind::Cross
            } else if self.eat_kw(Keyword::Inner) {
                self.expect_kw(Keyword::Join)?;
                JoinKind::Inner
            } else if self.eat_kw(Keyword::Left) {
                self.eat_kw(Keyword::Outer);
                self.expect_kw(Keyword::Join)?;
                JoinKind::Left
            } else if self.eat_kw(Keyword::Right) {
                self.eat_kw(Keyword::Outer);
                self.expect_kw(Keyword::Join)?;
                JoinKind::Right
            } else if self.eat_kw(Keyword::Full) {
                self.eat_kw(Keyword::Outer);
                self.expect_kw(Keyword::Join)?;
                JoinKind::Full
            } else if self.eat_kw(Keyword::Join) {
                JoinKind::Inner
            } else {
                break;
            };
            let right = self.parse_table_primary()?;
            let constraint = if kind == JoinKind::Cross {
                JoinConstraint::None
            } else if self.eat_kw(Keyword::On) {
                JoinConstraint::On(self.parse_expr()?)
            } else if self.eat_kw(Keyword::Using) {
                self.expect(&TokenKind::LParen, "'(' after USING")?;
                let mut cols = Vec::new();
                loop {
                    cols.push(self.ident("column name in USING")?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen, "')' after USING columns")?;
                JoinConstraint::Using(cols)
            } else {
                // Joins without a constraint appear in the error-injected
                // corpora; represent them rather than failing.
                JoinConstraint::None
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                constraint,
            };
        }
        Ok(left)
    }

    fn parse_table_primary(&mut self) -> Result<TableRef, ParseError> {
        if self.eat(&TokenKind::LParen) {
            let q = self.parse_query()?;
            self.expect(&TokenKind::RParen, "')' after derived table")?;
            let alias = self.parse_opt_alias();
            return Ok(TableRef::Derived {
                query: Box::new(q),
                alias,
            });
        }
        let name = self.ident("table name")?;
        let alias = self.parse_opt_alias();
        Ok(TableRef::Named { name, alias })
    }

    fn parse_opt_alias(&mut self) -> Option<String> {
        if self.eat_kw(Keyword::As) {
            // After AS, accept any identifier.
            match self.peek_kind() {
                Some(TokenKind::Ident) | Some(TokenKind::QuotedIdent) => {
                    Some(self.bump().expect("peeked").text) // lint:allow: caller peeked this token
                }
                _ => None,
            }
        } else if matches!(self.peek_kind(), Some(TokenKind::Ident)) {
            Some(self.bump().expect("peeked").text) // lint:allow: caller peeked this token
        } else {
            None
        }
    }

    // ---------------- expressions ----------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_and()?;
        while self.eat_kw(Keyword::Or) {
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_not()?;
        while self.eat_kw(Keyword::And) {
            let right = self.parse_not()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.at_kw(Keyword::Not) && !self.next_is_exists_after_not() {
            self.bump();
            let inner = self.parse_not()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.parse_predicate()
    }

    fn next_is_exists_after_not(&self) -> bool {
        matches!(
            self.peek_at(1).map(|t| &t.kind),
            Some(TokenKind::Keyword(Keyword::Exists))
        )
    }

    fn parse_predicate(&mut self) -> Result<Expr, ParseError> {
        // NOT EXISTS
        if self.at_kw(Keyword::Not) && self.next_is_exists_after_not() {
            self.bump(); // NOT
            self.bump(); // EXISTS
            let sub = self.parse_parenthesized_query()?;
            return Ok(Expr::Exists {
                subquery: Box::new(sub),
                negated: true,
            });
        }
        if self.eat_kw(Keyword::Exists) {
            let sub = self.parse_parenthesized_query()?;
            return Ok(Expr::Exists {
                subquery: Box::new(sub),
                negated: false,
            });
        }

        let left = self.parse_additive()?;

        // IS [NOT] NULL
        if self.eat_kw(Keyword::Is) {
            let negated = self.eat_kw(Keyword::Not);
            self.expect_kw(Keyword::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }

        let negated = self.eat_kw(Keyword::Not);

        if self.eat_kw(Keyword::Between) {
            let low = self.parse_additive()?;
            self.expect_kw(Keyword::And)?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }

        if self.eat_kw(Keyword::Like) {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }

        if self.eat_kw(Keyword::In) {
            self.expect(&TokenKind::LParen, "'(' after IN")?;
            if self.at_kw(Keyword::Select) || self.at_kw(Keyword::With) {
                let q = self.parse_query()?;
                self.expect(&TokenKind::RParen, "')' after IN subquery")?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    subquery: Box::new(q),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.parse_additive()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, "')' after IN list")?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }

        if negated {
            // NOT consumed but no BETWEEN/LIKE/IN followed
            return Err(self.unexpected("BETWEEN, LIKE, or IN after NOT"));
        }

        // comparison
        if let Some(TokenKind::CompareOp(op)) = self.peek_kind().cloned() {
            self.bump();
            let right = self.parse_additive()?;
            return Ok(Expr::Compare {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }

        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek_kind() {
                Some(TokenKind::ArithOp(c @ ('+' | '-'))) => *c,
                Some(TokenKind::Concat) if self.dialect.concat_operator() => {
                    self.bump();
                    let right = self.parse_multiplicative()?;
                    left = Expr::Function {
                        name: "CONCAT".into(),
                        args: vec![left, right],
                        distinct: false,
                    };
                    continue;
                }
                _ => break,
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = Expr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_unary()?;
        while let Some(TokenKind::ArithOp(c @ ('*' | '/' | '%'))) = self.peek_kind() {
            let op = *c;
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&TokenKind::ArithOp('-')) {
            let inner = self.parse_unary()?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        if self.eat(&TokenKind::ArithOp('+')) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_parenthesized_query(&mut self) -> Result<Query, ParseError> {
        self.expect(&TokenKind::LParen, "'(' before subquery")?;
        let q = self.parse_query()?;
        self.expect(&TokenKind::RParen, "')' after subquery")?;
        Ok(q)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek_kind().cloned() {
            Some(TokenKind::Number(v)) => {
                self.bump();
                Ok(Expr::Literal(Literal::Number(v)))
            }
            Some(TokenKind::String) => {
                let t = self.bump().expect("peeked"); // lint:allow: caller peeked this token
                Ok(Expr::Literal(Literal::String(t.text)))
            }
            Some(TokenKind::Keyword(Keyword::Null)) => {
                self.bump();
                Ok(Expr::Literal(Literal::Null))
            }
            Some(TokenKind::Keyword(Keyword::True)) => {
                self.bump();
                Ok(Expr::Literal(Literal::Bool(true)))
            }
            Some(TokenKind::Keyword(Keyword::False)) => {
                self.bump();
                Ok(Expr::Literal(Literal::Bool(false)))
            }
            Some(TokenKind::Keyword(Keyword::Case)) => self.parse_case(),
            Some(TokenKind::Keyword(Keyword::Cast)) => {
                self.bump();
                self.expect(&TokenKind::LParen, "'(' after CAST")?;
                let expr = self.parse_expr()?;
                self.expect_kw(Keyword::As)?;
                let type_name = self.ident("type name in CAST")?;
                // tolerate (n) precision
                if self.eat(&TokenKind::LParen) {
                    let _ = self.number_u64("precision")?;
                    self.expect(&TokenKind::RParen, "')' after precision")?;
                }
                self.expect(&TokenKind::RParen, "')' after CAST")?;
                Ok(Expr::Cast {
                    expr: Box::new(expr),
                    type_name,
                })
            }
            Some(TokenKind::LParen) => {
                // subquery or parenthesized expression
                if matches!(
                    self.peek_at(1).map(|t| &t.kind),
                    Some(TokenKind::Keyword(Keyword::Select))
                        | Some(TokenKind::Keyword(Keyword::With))
                ) {
                    let q = self.parse_parenthesized_query()?;
                    Ok(Expr::ScalarSubquery(Box::new(q)))
                } else {
                    self.bump();
                    let e = self.parse_expr()?;
                    self.expect(&TokenKind::RParen, "')' after expression")?;
                    Ok(e)
                }
            }
            Some(TokenKind::Ident) | Some(TokenKind::QuotedIdent) => self.parse_ident_expr(),
            // A handful of keywords double as function names in the wild
            // (LEFT(s,1), RIGHT(s,1)); treat keyword-followed-by-( as a call.
            Some(TokenKind::Keyword(kw))
                if matches!(self.peek_at(1).map(|t| &t.kind), Some(TokenKind::LParen)) =>
            {
                self.bump();
                self.parse_call(kw.as_str().to_string())
            }
            _ => Err(self.unexpected("an expression")),
        }
    }

    fn parse_ident_expr(&mut self) -> Result<Expr, ParseError> {
        let tok = self.bump().expect("caller checked ident"); // lint:allow: caller matched an ident token
        let first_span = tok.span;
        let first = tok.text;
        // function call?
        if self.peek_kind() == Some(&TokenKind::LParen) {
            return self.parse_call(first);
        }
        // qualified column?
        if self.eat(&TokenKind::Dot) {
            let name = self.ident("column name after '.'")?;
            return Ok(Expr::Column(ColumnRef {
                qualifier: Some(first),
                name,
                span: Span::new(first_span.start, self.prev_span().end),
            }));
        }
        Ok(Expr::Column(ColumnRef {
            qualifier: None,
            name: first,
            span: first_span,
        }))
    }

    fn parse_call(&mut self, name: String) -> Result<Expr, ParseError> {
        self.expect(&TokenKind::LParen, "'(' in function call")?;
        let mut args = Vec::new();
        let mut distinct = false;
        if self.peek_kind() != Some(&TokenKind::RParen) {
            distinct = self.eat_kw(Keyword::Distinct);
            loop {
                if self.peek_kind() == Some(&TokenKind::ArithOp('*')) {
                    self.bump();
                    args.push(Expr::Wildcard);
                } else {
                    args.push(self.parse_expr()?);
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "')' after function arguments")?;
        Ok(Expr::Function {
            name,
            args,
            distinct,
        })
    }

    fn parse_case(&mut self) -> Result<Expr, ParseError> {
        self.expect_kw(Keyword::Case)?;
        let operand = if !self.at_kw(Keyword::When) {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        let mut branches = Vec::new();
        while self.eat_kw(Keyword::When) {
            let when = self.parse_expr()?;
            self.expect_kw(Keyword::Then)?;
            let then = self.parse_expr()?;
            branches.push((when, then));
        }
        if branches.is_empty() {
            return Err(self.unexpected("WHEN in CASE expression"));
        }
        let else_expr = if self.eat_kw(Keyword::Else) {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_kw(Keyword::End)?;
        Ok(Expr::Case {
            operand,
            branches,
            else_expr,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(sql: &str) -> Query {
        parse_query(sql).unwrap_or_else(|e| panic!("parse failed for {sql:?}: {e}"))
    }

    #[test]
    fn minimal_select() {
        let query = q("SELECT plate FROM SpecObj");
        let s = query.as_select().unwrap();
        assert_eq!(s.items.len(), 1);
        assert_eq!(s.from.len(), 1);
        assert!(s.selection.is_none());
    }

    #[test]
    fn select_star_and_qualified_star() {
        let query = q("SELECT *, s.* FROM SpecObj AS s");
        let s = query.as_select().unwrap();
        assert_eq!(s.items[0], SelectItem::Wildcard);
        assert_eq!(s.items[1], SelectItem::QualifiedWildcard("s".into()));
    }

    #[test]
    fn where_and_or_precedence() {
        let query = q("SELECT x FROM t WHERE a = 1 AND b = 2 OR c = 3");
        let s = query.as_select().unwrap();
        // OR at the top: (a=1 AND b=2) OR c=3
        match s.selection.as_ref().unwrap() {
            Expr::Or(l, _) => assert!(matches!(**l, Expr::And(_, _))),
            other => panic!("expected OR at top, got {other:?}"),
        }
    }

    #[test]
    fn explicit_join_with_on() {
        let query =
            q("SELECT s.plate FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid");
        let s = query.as_select().unwrap();
        match &s.from[0] {
            TableRef::Join {
                kind, constraint, ..
            } => {
                assert_eq!(*kind, JoinKind::Inner);
                assert!(matches!(constraint, JoinConstraint::On(_)));
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn left_outer_join() {
        let query = q("SELECT a.x FROM a LEFT OUTER JOIN b ON a.id = b.id");
        match &query.as_select().unwrap().from[0] {
            TableRef::Join { kind, .. } => assert_eq!(*kind, JoinKind::Left),
            _ => panic!(),
        }
    }

    #[test]
    fn implicit_join_from_list() {
        let query = q("SELECT a.x, b.y FROM a, b WHERE a.id = b.id");
        assert_eq!(query.as_select().unwrap().from.len(), 2);
    }

    #[test]
    fn group_by_having() {
        let query =
            q("SELECT plate, COUNT(*) AS n FROM SpecObj GROUP BY plate HAVING COUNT(*) > 10");
        let s = query.as_select().unwrap();
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        match &s.items[1] {
            SelectItem::Expr { expr, alias } => {
                assert!(expr.is_aggregate_call());
                assert_eq!(alias.as_deref(), Some("n"));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn in_subquery_and_scalar_subquery() {
        let query = q(
            "SELECT fiberid FROM SpecObj WHERE bestobjid IN (SELECT objid FROM PhotoObj WHERE ra > 180)",
        );
        let s = query.as_select().unwrap();
        assert!(matches!(
            s.selection.as_ref().unwrap(),
            Expr::InSubquery { negated: false, .. }
        ));

        let query = q("SELECT x FROM t WHERE y = (SELECT MAX(y) FROM t)");
        assert!(matches!(
            query.as_select().unwrap().selection.as_ref().unwrap(),
            Expr::Compare { .. }
        ));
    }

    #[test]
    fn exists_and_not_exists() {
        let query =
            q("SELECT x FROM t WHERE EXISTS (SELECT 1 FROM u) AND NOT EXISTS (SELECT 2 FROM v)");
        let sel = query.as_select().unwrap().selection.clone().unwrap();
        match sel {
            Expr::And(l, r) => {
                assert!(matches!(*l, Expr::Exists { negated: false, .. }));
                assert!(matches!(*r, Expr::Exists { negated: true, .. }));
            }
            other => panic!("expected AND, got {other:?}"),
        }
    }

    #[test]
    fn between_like_in_list() {
        let query = q(
            "SELECT x FROM t WHERE a BETWEEN 1 AND 5 AND b LIKE 'vol%' AND c IN (1, 2, 3) AND d NOT IN (4)",
        );
        assert!(query.as_select().unwrap().selection.is_some());
    }

    #[test]
    fn cte_parses() {
        let query = q(
            "WITH HighZ AS (SELECT plate, mjd FROM SpecObj WHERE z > 0.5) SELECT plate, mjd FROM HighZ",
        );
        assert_eq!(query.ctes.len(), 1);
        assert_eq!(query.ctes[0].name, "HighZ");
    }

    #[test]
    fn set_ops() {
        let query = q("SELECT x FROM a INTERSECT SELECT x FROM b");
        assert!(matches!(
            query.body,
            SetExpr::SetOp {
                op: SetOp::Intersect,
                ..
            }
        ));
        let query = q("SELECT x FROM a UNION ALL SELECT x FROM b");
        assert!(matches!(query.body, SetExpr::SetOp { all: true, .. }));
    }

    #[test]
    fn order_by_limit_and_top() {
        let query = q("SELECT x FROM t ORDER BY x DESC, y LIMIT 10");
        assert_eq!(query.order_by.len(), 2);
        assert!(query.order_by[0].desc);
        assert!(!query.order_by[1].desc);
        assert_eq!(query.limit, Some(10));

        let query = q("SELECT TOP 5 x FROM t");
        assert_eq!(query.as_select().unwrap().top, Some(5));
    }

    #[test]
    fn arithmetic_precedence() {
        let query = q("SELECT x FROM t WHERE a + b * c = 7");
        match query.as_select().unwrap().selection.as_ref().unwrap() {
            Expr::Compare { left, .. } => match &**left {
                Expr::Arith { op: '+', right, .. } => {
                    assert!(matches!(**right, Expr::Arith { op: '*', .. }))
                }
                other => panic!("expected +, got {other:?}"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn case_expression() {
        let query = q("SELECT CASE WHEN z > 0.5 THEN 'high' ELSE 'low' END FROM SpecObj");
        match &query.as_select().unwrap().items[0] {
            SelectItem::Expr { expr, .. } => assert!(matches!(expr, Expr::Case { .. })),
            _ => panic!(),
        }
    }

    #[test]
    fn cast_expression() {
        let query = q("SELECT CAST(z AS INT) FROM SpecObj");
        match &query.as_select().unwrap().items[0] {
            SelectItem::Expr { expr, .. } => assert!(matches!(expr, Expr::Cast { .. })),
            _ => panic!(),
        }
    }

    #[test]
    fn create_table_with_columns() {
        let stmt = parse("CREATE TABLE t (id INT, name VARCHAR(20), z FLOAT)").unwrap();
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                source,
            } => {
                assert_eq!(name, "t");
                assert_eq!(columns.len(), 3);
                assert!(source.is_none());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn create_table_as_select() {
        let stmt = parse("CREATE TABLE hot AS SELECT plate FROM SpecObj WHERE z > 1").unwrap();
        match stmt {
            Statement::CreateTable { source, .. } => assert!(source.is_some()),
            _ => panic!(),
        }
    }

    #[test]
    fn create_view() {
        let stmt = parse("CREATE VIEW v AS SELECT x FROM t").unwrap();
        assert!(matches!(stmt, Statement::CreateView { .. }));
    }

    #[test]
    fn derived_table() {
        let query = q("SELECT d.x FROM (SELECT x FROM t WHERE y > 1) AS d");
        assert!(matches!(
            query.as_select().unwrap().from[0],
            TableRef::Derived { .. }
        ));
    }

    #[test]
    fn count_star_and_count_distinct() {
        let query = q("SELECT COUNT(*), COUNT(DISTINCT plate) FROM SpecObj");
        let s = query.as_select().unwrap();
        match (&s.items[0], &s.items[1]) {
            (SelectItem::Expr { expr: e0, .. }, SelectItem::Expr { expr: e1, .. }) => {
                assert!(matches!(
                    e0,
                    Expr::Function { args, distinct: false, .. } if args == &[Expr::Wildcard]
                ));
                assert!(matches!(e1, Expr::Function { distinct: true, .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn trailing_semicolon_ok_trailing_garbage_not() {
        assert!(parse("SELECT x FROM t;").is_ok());
        let err = parse("SELECT x FROM t 42").unwrap_err();
        assert!(matches!(err, ParseError::TrailingTokens { .. }));
    }

    #[test]
    fn missing_from_table_is_error_with_position() {
        let err = parse("SELECT x FROM WHERE y = 1").unwrap_err();
        match err {
            // `WHERE` read as the expected table name position
            ParseError::Unexpected { word_index, .. } => assert_eq!(word_index, 3),
            other => panic!("expected Unexpected, got {other:?}"),
        }
    }

    #[test]
    fn nested_subquery_depth() {
        let query = q("SELECT x FROM t WHERE a IN (SELECT a FROM u WHERE b IN (SELECT b FROM v))");
        assert!(query.as_select().is_some());
    }

    #[test]
    fn not_predicate() {
        let query = q("SELECT x FROM t WHERE NOT a = 1");
        assert!(matches!(
            query.as_select().unwrap().selection.as_ref().unwrap(),
            Expr::Not(_)
        ));
    }

    #[test]
    fn is_null_predicates() {
        let query = q("SELECT x FROM t WHERE a IS NULL AND b IS NOT NULL");
        let sel = query.as_select().unwrap().selection.clone().unwrap();
        match sel {
            Expr::And(l, r) => {
                assert!(matches!(*l, Expr::IsNull { negated: false, .. }));
                assert!(matches!(*r, Expr::IsNull { negated: true, .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn bare_alias_in_projection() {
        let query = q("SELECT COUNT(*) cnt FROM t");
        match &query.as_select().unwrap().items[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("cnt")),
            _ => panic!(),
        }
    }

    #[test]
    fn parenthesized_set_operands() {
        let query = q("(SELECT x FROM a) UNION (SELECT x FROM b)");
        assert!(matches!(
            query.body,
            SetExpr::SetOp {
                op: SetOp::Union,
                ..
            }
        ));
        // right-nested grouping survives
        let query = q("SELECT x FROM a UNION (SELECT x FROM b INTERSECT SELECT x FROM c)");
        match &query.body {
            SetExpr::SetOp {
                op: SetOp::Union,
                right,
                ..
            } => {
                assert!(matches!(
                    **right,
                    SetExpr::SetOp {
                        op: SetOp::Intersect,
                        ..
                    }
                ))
            }
            other => panic!("expected UNION at top, got {other:?}"),
        }
    }

    #[test]
    fn keyword_function_names() {
        // LEFT(s, 1) — LEFT is a keyword but also a function name
        let query = q("SELECT LEFT(name, 1) FROM t");
        match &query.as_select().unwrap().items[0] {
            SelectItem::Expr { expr, .. } => {
                assert!(matches!(expr, Expr::Function { name, .. } if name == "LEFT"))
            }
            _ => panic!(),
        }
    }
}
