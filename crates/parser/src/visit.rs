//! AST walking utilities.
//!
//! [`walk_queries`], [`walk_exprs`], and [`walk_table_refs`] traverse the
//! whole statement tree, *including* subqueries nested inside expressions,
//! derived tables, and CTEs. The workload crate builds all of the paper's
//! syntactic properties (table_count, join_count, predicate_count,
//! nestedness, …) on top of these.

use crate::ast::*;

/// Visit every [`Query`] in the statement, with its nesting depth.
///
/// Depth 0 is the outermost query; each step into a subquery (scalar, `IN`,
/// `EXISTS`, derived table, or CTE body) adds one. This is the paper's
/// `nestedness` measure (CTE bodies count as depth like any subquery).
pub fn walk_queries(stmt: &Statement, f: &mut dyn FnMut(&Query, usize)) {
    if let Some(q) = stmt.query() {
        walk_query(q, 0, f);
    }
}

fn walk_query(q: &Query, depth: usize, f: &mut dyn FnMut(&Query, usize)) {
    f(q, depth);
    for cte in &q.ctes {
        walk_query(&cte.query, depth + 1, f);
    }
    walk_set_expr(&q.body, depth, f);
    for item in &q.order_by {
        walk_expr_queries(&item.expr, depth, f);
    }
}

fn walk_set_expr(body: &SetExpr, depth: usize, f: &mut dyn FnMut(&Query, usize)) {
    match body {
        SetExpr::Select(s) => walk_select(s, depth, f),
        SetExpr::SetOp { left, right, .. } => {
            walk_set_expr(left, depth, f);
            walk_set_expr(right, depth, f);
        }
    }
}

fn walk_select(s: &Select, depth: usize, f: &mut dyn FnMut(&Query, usize)) {
    for item in &s.items {
        if let SelectItem::Expr { expr, .. } = item {
            walk_expr_queries(expr, depth, f);
        }
    }
    for tr in &s.from {
        walk_table_ref_queries(tr, depth, f);
    }
    if let Some(w) = &s.selection {
        walk_expr_queries(w, depth, f);
    }
    for g in &s.group_by {
        walk_expr_queries(g, depth, f);
    }
    if let Some(h) = &s.having {
        walk_expr_queries(h, depth, f);
    }
}

fn walk_table_ref_queries(tr: &TableRef, depth: usize, f: &mut dyn FnMut(&Query, usize)) {
    match tr {
        TableRef::Named { .. } => {}
        TableRef::Derived { query, .. } => walk_query(query, depth + 1, f),
        TableRef::Join {
            left,
            right,
            constraint,
            ..
        } => {
            walk_table_ref_queries(left, depth, f);
            walk_table_ref_queries(right, depth, f);
            if let JoinConstraint::On(e) = constraint {
                walk_expr_queries(e, depth, f);
            }
        }
    }
}

fn walk_expr_queries(e: &Expr, depth: usize, f: &mut dyn FnMut(&Query, usize)) {
    match e {
        Expr::InSubquery { subquery, expr, .. } => {
            walk_expr_queries(expr, depth, f);
            walk_query(subquery, depth + 1, f);
        }
        Expr::Exists { subquery, .. } => walk_query(subquery, depth + 1, f),
        Expr::ScalarSubquery(q) => walk_query(q, depth + 1, f),
        other => other.for_each_child(&mut |c| walk_expr_queries(c, depth, f)),
    }
}

/// Visit every expression in the statement (descending into subqueries).
pub fn walk_exprs(stmt: &Statement, f: &mut dyn FnMut(&Expr)) {
    walk_queries(stmt, &mut |q, _| {
        for_each_query_expr(q, &mut |e| walk_expr_tree(e, f));
    });
}

/// Visit the *top-level* expressions of a single query (projection, WHERE,
/// GROUP BY, HAVING, ORDER BY, join conditions) without descending into its
/// subqueries — those are visited as their own queries by [`walk_queries`].
pub fn for_each_query_expr(q: &Query, f: &mut dyn FnMut(&Expr)) {
    if let SetExpr::Select(s) = &q.body {
        for item in &s.items {
            if let SelectItem::Expr { expr, .. } = item {
                f(expr);
            }
        }
        for tr in &s.from {
            for_each_join_condition(tr, f);
        }
        if let Some(w) = &s.selection {
            f(w);
        }
        for g in &s.group_by {
            f(g);
        }
        if let Some(h) = &s.having {
            f(h);
        }
    }
    if let SetExpr::SetOp { left, right, .. } = &q.body {
        for_each_set_exprs(left, f);
        for_each_set_exprs(right, f);
    }
    for item in &q.order_by {
        f(&item.expr);
    }
}

fn for_each_set_exprs(body: &SetExpr, f: &mut dyn FnMut(&Expr)) {
    match body {
        SetExpr::Select(s) => {
            for item in &s.items {
                if let SelectItem::Expr { expr, .. } = item {
                    f(expr);
                }
            }
            for tr in &s.from {
                for_each_join_condition(tr, f);
            }
            if let Some(w) = &s.selection {
                f(w);
            }
            for g in &s.group_by {
                f(g);
            }
            if let Some(h) = &s.having {
                f(h);
            }
        }
        SetExpr::SetOp { left, right, .. } => {
            for_each_set_exprs(left, f);
            for_each_set_exprs(right, f);
        }
    }
}

fn for_each_join_condition(tr: &TableRef, f: &mut dyn FnMut(&Expr)) {
    if let TableRef::Join {
        left,
        right,
        constraint,
        ..
    } = tr
    {
        for_each_join_condition(left, f);
        for_each_join_condition(right, f);
        if let JoinConstraint::On(e) = constraint {
            f(e);
        }
    }
}

fn walk_expr_tree(e: &Expr, f: &mut dyn FnMut(&Expr)) {
    f(e);
    e.for_each_child(&mut |c| walk_expr_tree(c, f));
}

/// Visit every [`TableRef`] in the statement, including those inside
/// subqueries. Join nodes are visited as well as their leaves.
pub fn walk_table_refs(stmt: &Statement, f: &mut dyn FnMut(&TableRef)) {
    walk_queries(stmt, &mut |q, _| {
        walk_set_table_refs(&q.body, f);
    });
}

fn walk_set_table_refs(body: &SetExpr, f: &mut dyn FnMut(&TableRef)) {
    match body {
        SetExpr::Select(s) => {
            for tr in &s.from {
                walk_one_table_ref(tr, f);
            }
        }
        SetExpr::SetOp { left, right, .. } => {
            walk_set_table_refs(left, f);
            walk_set_table_refs(right, f);
        }
    }
}

fn walk_one_table_ref(tr: &TableRef, f: &mut dyn FnMut(&TableRef)) {
    f(tr);
    if let TableRef::Join { left, right, .. } = tr {
        walk_one_table_ref(left, f);
        walk_one_table_ref(right, f);
    }
}

/// Maximum subquery nesting depth of the statement (the paper's
/// `nestedness`): 0 for flat queries, 1 for one level of subquery, etc.
pub fn nestedness(stmt: &Statement) -> usize {
    let mut max = 0;
    walk_queries(stmt, &mut |_, d| max = max.max(d));
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn nestedness_counts_depth() {
        let flat = parse("SELECT x FROM t WHERE y = 1").unwrap();
        assert_eq!(nestedness(&flat), 0);

        let one = parse("SELECT x FROM t WHERE y IN (SELECT y FROM u)").unwrap();
        assert_eq!(nestedness(&one), 1);

        let two =
            parse("SELECT x FROM t WHERE y IN (SELECT y FROM u WHERE z IN (SELECT z FROM v))")
                .unwrap();
        assert_eq!(nestedness(&two), 2);

        let derived = parse("SELECT d.x FROM (SELECT x FROM t) AS d").unwrap();
        assert_eq!(nestedness(&derived), 1);

        let cte = parse("WITH c AS (SELECT x FROM t) SELECT x FROM c").unwrap();
        assert_eq!(nestedness(&cte), 1);
    }

    #[test]
    fn walk_table_refs_sees_subquery_tables() {
        let stmt =
            parse("SELECT x FROM a WHERE y IN (SELECT y FROM b JOIN c ON b.id = c.id)").unwrap();
        let mut names = Vec::new();
        walk_table_refs(&stmt, &mut |tr| {
            if let TableRef::Named { name, .. } = tr {
                names.push(name.clone());
            }
        });
        names.sort();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn walk_exprs_descends_everywhere() {
        let stmt = parse(
            "SELECT AVG(z) FROM t JOIN u ON t.id = u.id WHERE a = 1 GROUP BY g HAVING COUNT(*) > 2 ORDER BY m",
        )
        .unwrap();
        let mut count_columns = 0;
        walk_exprs(&stmt, &mut |e| {
            if matches!(e, Expr::Column(_)) {
                count_columns += 1;
            }
        });
        // z, t.id, u.id, a, g, m + COUNT(*) has no column
        assert_eq!(count_columns, 6);
    }

    #[test]
    fn set_op_branches_visited() {
        let stmt =
            parse("SELECT x FROM a WHERE p = 1 INTERSECT SELECT x FROM b WHERE q = 2").unwrap();
        let mut tables = 0;
        walk_table_refs(&stmt, &mut |tr| {
            if matches!(tr, TableRef::Named { .. }) {
                tables += 1;
            }
        });
        assert_eq!(tables, 2);
    }
}
