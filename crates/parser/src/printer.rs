//! Pretty-printer: AST → canonical SQL text.
//!
//! The printer produces single-line SQL in canonical form (upper-case
//! keywords, minimal parentheses inserted by operator precedence). The
//! round-trip property `parse(print(ast)) == ast` is enforced by tests and
//! proptests and is what the benchmark's transformation machinery relies on:
//! every injected error / deleted token / rewritten query is printed from an
//! AST, so printer fidelity is label fidelity.
//!
//! The `_dialect` entry points render the same AST in a concrete dialect:
//! identifiers that are not bare words in that dialect (or collide with its
//! reserved words) are wrapped in the dialect's canonical quotes, and a
//! top-level `LIMIT`/`TOP` is folded to whichever spelling the dialect
//! accepts, so `parse_dialect(print_*_dialect(ast, d), d)` round-trips.

use crate::ast::*;
use squ_dialect::Dialect;
use squ_lexer::Keyword;
use std::fmt::Write;

/// Render a statement as canonical SQL (the default [`Dialect::Squ`]).
pub fn print_statement(stmt: &Statement) -> String {
    print_statement_dialect(stmt, Dialect::Squ)
}

/// Render a statement as canonical SQL in `dialect`.
pub fn print_statement_dialect(stmt: &Statement, dialect: Dialect) -> String {
    let mut s = String::new();
    match stmt {
        Statement::Query(q) => {
            let mut q = q.clone();
            fold_limit_top(&mut q, dialect);
            write_query(&mut s, &q, dialect);
        }
        other => write_statement(&mut s, other, dialect),
    }
    s
}

/// Render a query as canonical SQL (the default [`Dialect::Squ`]).
pub fn print_query(q: &Query) -> String {
    print_query_dialect(q, Dialect::Squ)
}

/// Render a query as canonical SQL in `dialect`, folding a top-level
/// `LIMIT` / `TOP` into the spelling the dialect accepts.
pub fn print_query_dialect(q: &Query, dialect: Dialect) -> String {
    let mut q = q.clone();
    fold_limit_top(&mut q, dialect);
    let mut s = String::new();
    write_query(&mut s, &q, dialect);
    s
}

/// Render an expression as canonical SQL.
pub fn print_expr(e: &Expr) -> String {
    let mut s = String::new();
    write_expr(&mut s, e, Dialect::Squ);
    s
}

/// Move a top-level row bound to the spelling `dialect` accepts: `TOP n`
/// becomes a trailing `LIMIT n` where `TOP` is unsupported, and vice
/// versa. Only a plain-`SELECT` body participates; anything the fold
/// cannot express stays faithful to the AST.
fn fold_limit_top(q: &mut Query, dialect: Dialect) {
    if !dialect.supports_top() && q.limit.is_none() {
        if let SetExpr::Select(s) = &mut q.body {
            if let Some(n) = s.top.take() {
                q.limit = Some(n);
            }
        }
    }
    if !dialect.supports_limit() {
        if let Some(n) = q.limit {
            if let SetExpr::Select(s) = &mut q.body {
                if s.top.is_none() {
                    s.top = Some(n);
                    q.limit = None;
                }
            }
        }
    }
}

/// Is `part` a bare word of `dialect` (no quoting needed)?
fn bare_word(part: &str, dialect: Dialect) -> bool {
    let sigils = dialect.word_sigils();
    let mut chars = part.chars();
    let head_ok = matches!(
        chars.next(),
        Some(c) if c.is_ascii_alphabetic() || c == '_' || (sigils && (c == '#' || c == '@'))
    );
    head_ok
        && chars.all(|c| {
            c.is_ascii_alphanumeric() || c == '_' || (sigils && (c == '#' || c == '@' || c == '$'))
        })
}

/// Write one identifier (possibly `schema.name`-qualified), quoting each
/// dot-separated part with the dialect's canonical quotes when it is not
/// a bare word, collides with a lexer keyword, or is reserved in the
/// dialect.
fn write_ident(out: &mut String, name: &str, dialect: Dialect) {
    for (i, part) in name.split('.').enumerate() {
        if i > 0 {
            out.push('.');
        }
        if bare_word(part, dialect)
            && Keyword::from_str_ci(part).is_none()
            && !dialect.is_reserved(part)
        {
            out.push_str(part);
        } else {
            let (open, close) = dialect.canonical_quote();
            out.push(open);
            out.push_str(part);
            out.push(close);
        }
    }
}

fn write_statement(out: &mut String, stmt: &Statement, d: Dialect) {
    match stmt {
        Statement::Query(q) => write_query(out, q, d),
        Statement::CreateTable {
            name,
            columns,
            source,
        } => {
            out.push_str("CREATE TABLE ");
            write_ident(out, name, d);
            if let Some(q) = source {
                out.push_str(" AS ");
                write_query(out, q, d);
            } else {
                out.push_str(" (");
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_ident(out, &c.name, d);
                    let _ = write!(out, " {}", c.type_name);
                }
                out.push(')');
            }
        }
        Statement::CreateView { name, query } => {
            out.push_str("CREATE VIEW ");
            write_ident(out, name, d);
            out.push_str(" AS ");
            write_query(out, query, d);
        }
    }
}

fn write_query(out: &mut String, q: &Query, d: Dialect) {
    if !q.ctes.is_empty() {
        out.push_str("WITH ");
        for (i, cte) in q.ctes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_ident(out, &cte.name, d);
            out.push_str(" AS (");
            write_query(out, &cte.query, d);
            out.push(')');
        }
        out.push(' ');
    }
    write_set_expr(out, &q.body, d);
    if !q.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        for (i, item) in q.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(out, &item.expr, d);
            if item.desc {
                out.push_str(" DESC");
            } else {
                out.push_str(" ASC");
            }
        }
    }
    if let Some(n) = q.limit {
        let _ = write!(out, " LIMIT {n}");
    }
}

fn write_set_expr(out: &mut String, body: &SetExpr, d: Dialect) {
    match body {
        SetExpr::Select(s) => write_select(out, s, d),
        SetExpr::SetOp {
            op,
            all,
            left,
            right,
        } => {
            write_set_expr(out, left, d);
            let _ = write!(out, " {}", op.as_str());
            if *all {
                out.push_str(" ALL");
            }
            out.push(' ');
            // set operators associate left; a set-op on the right needs
            // parentheses to round-trip
            if matches!(**right, SetExpr::SetOp { .. }) {
                out.push('(');
                write_set_expr(out, right, d);
                out.push(')');
            } else {
                write_set_expr(out, right, d);
            }
        }
    }
}

fn write_select(out: &mut String, s: &Select, d: Dialect) {
    out.push_str("SELECT ");
    if s.distinct {
        out.push_str("DISTINCT ");
    }
    if let Some(n) = s.top {
        let _ = write!(out, "TOP {n} ");
    }
    for (i, item) in s.items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match item {
            SelectItem::Wildcard => out.push('*'),
            SelectItem::QualifiedWildcard(q) => {
                write_ident(out, q, d);
                out.push_str(".*");
            }
            SelectItem::Expr { expr, alias } => {
                write_expr(out, expr, d);
                if let Some(a) = alias {
                    out.push_str(" AS ");
                    write_ident(out, a, d);
                }
            }
        }
    }
    if !s.from.is_empty() {
        out.push_str(" FROM ");
        for (i, tr) in s.from.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_table_ref(out, tr, d);
        }
    }
    if let Some(w) = &s.selection {
        out.push_str(" WHERE ");
        write_expr(out, w, d);
    }
    if !s.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        for (i, e) in s.group_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(out, e, d);
        }
    }
    if let Some(h) = &s.having {
        out.push_str(" HAVING ");
        write_expr(out, h, d);
    }
}

fn write_table_ref(out: &mut String, tr: &TableRef, d: Dialect) {
    match tr {
        TableRef::Named { name, alias } => {
            write_ident(out, name, d);
            if let Some(a) = alias {
                out.push_str(" AS ");
                write_ident(out, a, d);
            }
        }
        TableRef::Derived { query, alias } => {
            out.push('(');
            write_query(out, query, d);
            out.push(')');
            if let Some(a) = alias {
                out.push_str(" AS ");
                write_ident(out, a, d);
            }
        }
        TableRef::Join {
            left,
            right,
            kind,
            constraint,
        } => {
            write_table_ref(out, left, d);
            let _ = write!(out, " {} ", kind.as_str());
            write_table_ref(out, right, d);
            match constraint {
                JoinConstraint::On(e) => {
                    out.push_str(" ON ");
                    write_expr(out, e, d);
                }
                JoinConstraint::Using(cols) => {
                    out.push_str(" USING (");
                    for (i, c) in cols.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        write_ident(out, c, d);
                    }
                    out.push(')');
                }
                JoinConstraint::None => {}
            }
        }
    }
}

/// Binding power of the *context*; a child with lower binding power than its
/// context must be parenthesized. Levels: 1 OR, 2 AND, 3 NOT, 4 predicates,
/// 5 additive, 6 multiplicative, 7 unary, 8 atoms.
fn expr_level(e: &Expr) -> u8 {
    match e {
        Expr::Or(..) => 1,
        Expr::And(..) => 2,
        Expr::Not(..) => 3,
        Expr::Compare { .. }
        | Expr::IsNull { .. }
        | Expr::Between { .. }
        | Expr::InList { .. }
        | Expr::InSubquery { .. }
        | Expr::Like { .. } => 4,
        Expr::Arith { op: '+', .. } | Expr::Arith { op: '-', .. } => 5,
        Expr::Arith { .. } => 6,
        Expr::Neg(..) => 7,
        _ => 8,
    }
}

fn write_child(out: &mut String, e: &Expr, min_level: u8, d: Dialect) {
    if expr_level(e) < min_level {
        out.push('(');
        write_expr(out, e, d);
        out.push(')');
    } else {
        write_expr(out, e, d);
    }
}

fn write_expr(out: &mut String, e: &Expr, d: Dialect) {
    match e {
        Expr::Column(c) => {
            if let Some(q) = &c.qualifier {
                write_ident(out, q, d);
                out.push('.');
            }
            write_ident(out, &c.name, d);
        }
        Expr::Literal(l) => write_literal(out, l),
        Expr::Compare { op, left, right } => {
            write_child(out, left, 5, d);
            let _ = write!(out, " {} ", op.as_str());
            write_child(out, right, 5, d);
        }
        Expr::And(a, b) => {
            write_child(out, a, 2, d);
            out.push_str(" AND ");
            write_child(out, b, 3, d);
        }
        Expr::Or(a, b) => {
            write_child(out, a, 1, d);
            out.push_str(" OR ");
            write_child(out, b, 2, d);
        }
        Expr::Not(inner) => {
            out.push_str("NOT ");
            write_child(out, inner, 4, d);
        }
        Expr::IsNull { expr, negated } => {
            write_child(out, expr, 5, d);
            out.push_str(if *negated { " IS NOT NULL" } else { " IS NULL" });
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            write_child(out, expr, 5, d);
            out.push_str(if *negated {
                " NOT BETWEEN "
            } else {
                " BETWEEN "
            });
            write_child(out, low, 5, d);
            out.push_str(" AND ");
            write_child(out, high, 5, d);
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            write_child(out, expr, 5, d);
            out.push_str(if *negated { " NOT IN (" } else { " IN (" });
            for (i, item) in list.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, item, d);
            }
            out.push(')');
        }
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => {
            write_child(out, expr, 5, d);
            out.push_str(if *negated { " NOT IN (" } else { " IN (" });
            write_query(out, subquery, d);
            out.push(')');
        }
        Expr::Exists { subquery, negated } => {
            out.push_str(if *negated { "NOT EXISTS (" } else { "EXISTS (" });
            write_query(out, subquery, d);
            out.push(')');
        }
        Expr::ScalarSubquery(q) => {
            out.push('(');
            write_query(out, q, d);
            out.push(')');
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            write_child(out, expr, 5, d);
            out.push_str(if *negated { " NOT LIKE " } else { " LIKE " });
            write_child(out, pattern, 5, d);
        }
        Expr::Function {
            name,
            args,
            distinct,
        } => {
            // function names are never quoted: a quoted name would not
            // re-parse as a call, and every catalog spelling is a word
            let _ = write!(out, "{name}(");
            if *distinct {
                out.push_str("DISTINCT ");
            }
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, d);
            }
            out.push(')');
        }
        Expr::Wildcard => out.push('*'),
        Expr::Arith { op, left, right } => {
            let (lmin, rmin) = match op {
                '+' => (5, 6),
                '-' => (5, 6),
                '*' | '/' | '%' => (6, 7),
                _ => (5, 6),
            };
            write_child(out, left, lmin, d);
            let _ = write!(out, " {op} ");
            write_child(out, right, rmin, d);
        }
        Expr::Neg(inner) => {
            out.push('-');
            write_child(out, inner, 8, d);
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            out.push_str("CASE");
            if let Some(op) = operand {
                out.push(' ');
                write_expr(out, op, d);
            }
            for (w, t) in branches {
                out.push_str(" WHEN ");
                write_expr(out, w, d);
                out.push_str(" THEN ");
                write_expr(out, t, d);
            }
            if let Some(e) = else_expr {
                out.push_str(" ELSE ");
                write_expr(out, e, d);
            }
            out.push_str(" END");
        }
        Expr::Cast { expr, type_name } => {
            out.push_str("CAST(");
            write_expr(out, expr, d);
            let _ = write!(out, " AS {type_name})");
        }
    }
}

fn write_literal(out: &mut String, l: &Literal) {
    match l {
        Literal::Number(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                let _ = write!(out, "{}", *v as i64);
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Literal::String(s) => {
            let _ = write!(out, "'{}'", s.replace('\'', "''"));
        }
        Literal::Bool(b) => out.push_str(if *b { "TRUE" } else { "FALSE" }),
        Literal::Null => out.push_str("NULL"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_dialect, parse_query, parse_query_dialect};

    fn round_trip(sql: &str) {
        let q1 = parse(sql).unwrap_or_else(|e| panic!("parse {sql:?}: {e}"));
        let printed = print_statement(&q1);
        let q2 =
            parse(&printed).unwrap_or_else(|e| panic!("re-parse {printed:?} (from {sql:?}): {e}"));
        assert_eq!(q1, q2, "round-trip mismatch: {sql:?} -> {printed:?}");
    }

    #[test]
    fn round_trips_paper_examples() {
        // Queries from the paper's listings (1, 2, 3)
        for sql in [
            "SELECT plate, mjd, COUNT(*), AVG(z) FROM SpecObj WHERE z > 0.5",
            "SELECT plate, COUNT(*) AS NumSpectra FROM SpecObj GROUP BY plate HAVING z > 0.5",
            "SELECT p.ra, p.dec, s.z FROM PhotoObj AS p JOIN SpecObj AS s ON s.bestobjid = (SELECT bestobjid FROM SpecObj)",
            "SELECT plate, mjd, fiberid FROM SpecObj WHERE z = 'high'",
            "SELECT s.plate, s.mjd, z FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = photoobj.bestobjid",
            "SELECT plate, fid FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.bestobjid WHERE bestobjid > 1000",
            "SELECT s.plate, s.mjd FROM SpecObj AS s WHERE s.plate IN (SELECT p.plate FROM PhotoObj AS p WHERE p.ra > 180)",
            "SELECT fiberid FROM SpecObj WHERE bestobjid IN (SELECT objid FROM PhotoObj WHERE ra > 180)",
            "WITH HighRedshift AS (SELECT plate, mjd FROM SpecObj WHERE z > 0.5) SELECT plate, mjd FROM HighRedshift",
            "SELECT * FROM SpecObj WHERE plate = 1000 AND mjd > 55000",
            "SELECT plate, AVG(z) FROM SpecObj GROUP BY plate",
            "SELECT s.plate, s.mjd FROM SpecObj AS s LEFT JOIN PhotoObj AS p ON s.bestobjid = p.objid",
            "SELECT plate, mjd, fiberid FROM SpecObj WHERE z > 0.5 OR ra > 180",
            "SELECT count(*), cName FROM tryout GROUP BY cName ORDER BY count(*) DESC",
            "SELECT count(*), student_course_id FROM Transcript_Cnt GROUP BY student_course_id ORDER BY count(*) DESC LIMIT 1",
            "SELECT S.name, S.loc FROM concert AS C JOIN stadium AS S ON C.stadium_id = S.stadium_id WHERE C.Year = 2014 INTERSECT SELECT S.name, S.loc FROM concert AS C JOIN stadium AS S ON C.stadium_id = S.stadium_id WHERE C.Year = 2015",
            "SELECT C.cylinders FROM CARS_DATA AS C JOIN CAR_NAMES AS T ON C.Id = T.MakeId WHERE T.Model = 'volvo' ORDER BY C.accelerate ASC LIMIT 1",
        ] {
            round_trip(sql);
        }
    }

    #[test]
    fn round_trips_structures() {
        for sql in [
            "SELECT * FROM t",
            "SELECT DISTINCT x FROM t",
            "SELECT TOP 10 x FROM t",
            "SELECT a.x, b.y FROM a, b WHERE a.id = b.id",
            "SELECT x FROM a LEFT JOIN b ON a.id = b.id RIGHT JOIN c ON b.id = c.id",
            "SELECT x FROM a CROSS JOIN b",
            "SELECT x FROM t WHERE NOT (a = 1 OR b = 2)",
            "SELECT x FROM t WHERE a IS NULL AND b IS NOT NULL",
            "SELECT x FROM t WHERE a NOT BETWEEN 1 AND 2",
            "SELECT x FROM t WHERE name NOT LIKE '%x%'",
            "SELECT x FROM t WHERE a IN (1, 2, 3)",
            "SELECT x FROM (SELECT x FROM t WHERE y > 0) AS d WHERE x < 5",
            "SELECT x FROM a UNION ALL SELECT x FROM b EXCEPT SELECT x FROM c",
            "SELECT x FROM a UNION (SELECT x FROM b INTERSECT SELECT x FROM c)",
            "(SELECT x FROM a UNION SELECT x FROM b) EXCEPT SELECT x FROM c",
            "SELECT CASE WHEN z > 0.5 THEN 'high' ELSE 'low' END AS bucket FROM SpecObj",
            "SELECT CAST(z AS INT) FROM t",
            "SELECT -x, a + b * c, (a + b) * c FROM t",
            "SELECT x FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)",
            "CREATE TABLE t (id INT, name VARCHAR)",
            "CREATE TABLE hot AS SELECT x FROM t WHERE y > 1",
            "CREATE VIEW v AS SELECT x FROM t",
            "SELECT x FROM t WHERE a = 1 AND (b = 2 OR c = 3)",
        ] {
            round_trip(sql);
        }
    }

    #[test]
    fn parentheses_only_when_needed() {
        let q = parse_query("SELECT x FROM t WHERE a = 1 AND b = 2 OR c = 3").unwrap();
        let printed = print_query(&q);
        // left-assoc OR over AND needs no parens
        assert_eq!(printed, "SELECT x FROM t WHERE a = 1 AND b = 2 OR c = 3");

        let q = parse_query("SELECT x FROM t WHERE a = 1 AND (b = 2 OR c = 3)").unwrap();
        let printed = print_query(&q);
        assert_eq!(printed, "SELECT x FROM t WHERE a = 1 AND (b = 2 OR c = 3)");
    }

    #[test]
    fn numbers_printed_canonically() {
        let q = parse_query("SELECT x FROM t WHERE a = 1000 AND b > 0.5").unwrap();
        let printed = print_query(&q);
        assert!(printed.contains("= 1000"));
        assert!(printed.contains("> 0.5"));
    }

    #[test]
    fn string_escaping_round_trips() {
        round_trip("SELECT x FROM t WHERE name = 'it''s'");
    }

    #[test]
    fn quoted_identifiers_now_round_trip() {
        // identifiers that are not bare words come back out quoted
        let q = parse_query(r#"SELECT "weird name" FROM t"#).unwrap();
        let printed = print_query(&q);
        assert_eq!(printed, r#"SELECT "weird name" FROM t"#);
        assert_eq!(parse_query(&printed).unwrap(), q);
    }

    #[test]
    fn dialect_canonical_quotes() {
        let q = parse_query(r#"SELECT "weird name" FROM t"#).unwrap();
        assert_eq!(
            print_query_dialect(&q, Dialect::Mysql),
            "SELECT `weird name` FROM t"
        );
        assert_eq!(
            print_query_dialect(&q, Dialect::Tsql),
            "SELECT [weird name] FROM t"
        );
        assert_eq!(
            print_query_dialect(&q, Dialect::Postgres),
            r#"SELECT "weird name" FROM t"#
        );
    }

    #[test]
    fn reserved_words_get_quoted_per_dialect() {
        let q = parse_query("SELECT user FROM t").unwrap();
        assert_eq!(
            print_query_dialect(&q, Dialect::Postgres),
            r#"SELECT "user" FROM t"#
        );
        // not reserved in SQLite: printed bare
        assert_eq!(
            print_query_dialect(&q, Dialect::Sqlite),
            "SELECT user FROM t"
        );
    }

    #[test]
    fn limit_top_folding_per_dialect() {
        let q = parse_query("SELECT x FROM t ORDER BY x ASC LIMIT 5").unwrap();
        assert_eq!(
            print_query_dialect(&q, Dialect::Tsql),
            "SELECT TOP 5 x FROM t ORDER BY x ASC"
        );
        let q = parse_query("SELECT TOP 5 x FROM t").unwrap();
        assert_eq!(
            print_query_dialect(&q, Dialect::Sqlite),
            "SELECT x FROM t LIMIT 5"
        );
        // Squ prints both faithfully
        assert_eq!(print_query(&q), "SELECT TOP 5 x FROM t");
    }

    #[test]
    fn dialect_prints_re_parse_in_their_dialect() {
        for (sql, d) in [
            ("SELECT x FROM t ORDER BY x ASC LIMIT 5", Dialect::Tsql),
            ("SELECT TOP 5 x FROM t", Dialect::Mysql),
            ("SELECT a || b FROM t", Dialect::Tsql),
            (r#"SELECT "weird name" FROM #tmp"#, Dialect::Sqlite),
        ] {
            let q = parse_query(sql).unwrap();
            let printed = print_query_dialect(&q, d);
            parse_query_dialect(&printed, d)
                .unwrap_or_else(|e| panic!("{printed:?} in {}: {e}", d.name()));
        }
    }

    #[test]
    fn concat_always_prints_as_function() {
        // `||` is folded to CONCAT at parse time; the printer keeps the
        // function form, which every dialect accepts
        let q = parse_query("SELECT a || b FROM t").unwrap();
        for d in Dialect::ALL {
            assert_eq!(print_query_dialect(&q, d), "SELECT CONCAT(a, b) FROM t");
        }
    }

    #[test]
    fn dialect_fixpoint_on_own_parses() {
        // print_dialect(parse_dialect(x, d), d) must re-parse to the same AST
        for (sql, d) in [
            ("SELECT `a b` FROM t LIMIT 3", Dialect::Mysql),
            ("SELECT TOP 3 [a b] FROM t", Dialect::Tsql),
            ("SELECT a || b FROM \"c d\"", Dialect::Postgres),
            ("SELECT substr(x, 1, 2) FROM t LIMIT 1", Dialect::Sqlite),
        ] {
            let s1 = parse_dialect(sql, d).unwrap();
            let printed = print_statement_dialect(&s1, d);
            let s2 = parse_dialect(&printed, d)
                .unwrap_or_else(|e| panic!("{printed:?} in {}: {e}", d.name()));
            assert_eq!(s1, s2, "{sql:?} -> {printed:?} in {}", d.name());
        }
    }
}
