//! Pretty-printer: AST → canonical SQL text.
//!
//! The printer produces single-line SQL in canonical form (upper-case
//! keywords, minimal parentheses inserted by operator precedence). The
//! round-trip property `parse(print(ast)) == ast` is enforced by tests and
//! proptests and is what the benchmark's transformation machinery relies on:
//! every injected error / deleted token / rewritten query is printed from an
//! AST, so printer fidelity is label fidelity.

use crate::ast::*;
use std::fmt::Write;

/// Render a statement as canonical SQL.
pub fn print_statement(stmt: &Statement) -> String {
    let mut s = String::new();
    write_statement(&mut s, stmt);
    s
}

/// Render a query as canonical SQL.
pub fn print_query(q: &Query) -> String {
    let mut s = String::new();
    write_query(&mut s, q);
    s
}

/// Render an expression as canonical SQL.
pub fn print_expr(e: &Expr) -> String {
    let mut s = String::new();
    write_expr(&mut s, e, 0);
    s
}

fn write_statement(out: &mut String, stmt: &Statement) {
    match stmt {
        Statement::Query(q) => write_query(out, q),
        Statement::CreateTable {
            name,
            columns,
            source,
        } => {
            let _ = write!(out, "CREATE TABLE {name}");
            if let Some(q) = source {
                out.push_str(" AS ");
                write_query(out, q);
            } else {
                out.push_str(" (");
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{} {}", c.name, c.type_name);
                }
                out.push(')');
            }
        }
        Statement::CreateView { name, query } => {
            let _ = write!(out, "CREATE VIEW {name} AS ");
            write_query(out, query);
        }
    }
}

fn write_query(out: &mut String, q: &Query) {
    if !q.ctes.is_empty() {
        out.push_str("WITH ");
        for (i, cte) in q.ctes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{} AS (", cte.name);
            write_query(out, &cte.query);
            out.push(')');
        }
        out.push(' ');
    }
    write_set_expr(out, &q.body);
    if !q.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        for (i, item) in q.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(out, &item.expr, 0);
            if item.desc {
                out.push_str(" DESC");
            } else {
                out.push_str(" ASC");
            }
        }
    }
    if let Some(n) = q.limit {
        let _ = write!(out, " LIMIT {n}");
    }
}

fn write_set_expr(out: &mut String, body: &SetExpr) {
    match body {
        SetExpr::Select(s) => write_select(out, s),
        SetExpr::SetOp {
            op,
            all,
            left,
            right,
        } => {
            write_set_expr(out, left);
            let _ = write!(out, " {}", op.as_str());
            if *all {
                out.push_str(" ALL");
            }
            out.push(' ');
            // set operators associate left; a set-op on the right needs
            // parentheses to round-trip
            if matches!(**right, SetExpr::SetOp { .. }) {
                out.push('(');
                write_set_expr(out, right);
                out.push(')');
            } else {
                write_set_expr(out, right);
            }
        }
    }
}

fn write_select(out: &mut String, s: &Select) {
    out.push_str("SELECT ");
    if s.distinct {
        out.push_str("DISTINCT ");
    }
    if let Some(n) = s.top {
        let _ = write!(out, "TOP {n} ");
    }
    for (i, item) in s.items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match item {
            SelectItem::Wildcard => out.push('*'),
            SelectItem::QualifiedWildcard(q) => {
                let _ = write!(out, "{q}.*");
            }
            SelectItem::Expr { expr, alias } => {
                write_expr(out, expr, 0);
                if let Some(a) = alias {
                    let _ = write!(out, " AS {a}");
                }
            }
        }
    }
    if !s.from.is_empty() {
        out.push_str(" FROM ");
        for (i, tr) in s.from.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_table_ref(out, tr);
        }
    }
    if let Some(w) = &s.selection {
        out.push_str(" WHERE ");
        write_expr(out, w, 0);
    }
    if !s.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        for (i, e) in s.group_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(out, e, 0);
        }
    }
    if let Some(h) = &s.having {
        out.push_str(" HAVING ");
        write_expr(out, h, 0);
    }
}

fn write_table_ref(out: &mut String, tr: &TableRef) {
    match tr {
        TableRef::Named { name, alias } => {
            out.push_str(name);
            if let Some(a) = alias {
                let _ = write!(out, " AS {a}");
            }
        }
        TableRef::Derived { query, alias } => {
            out.push('(');
            write_query(out, query);
            out.push(')');
            if let Some(a) = alias {
                let _ = write!(out, " AS {a}");
            }
        }
        TableRef::Join {
            left,
            right,
            kind,
            constraint,
        } => {
            write_table_ref(out, left);
            let _ = write!(out, " {} ", kind.as_str());
            write_table_ref(out, right);
            match constraint {
                JoinConstraint::On(e) => {
                    out.push_str(" ON ");
                    write_expr(out, e, 0);
                }
                JoinConstraint::Using(cols) => {
                    let _ = write!(out, " USING ({})", cols.join(", "));
                }
                JoinConstraint::None => {}
            }
        }
    }
}

/// Binding power of the *context*; a child with lower binding power than its
/// context must be parenthesized. Levels: 1 OR, 2 AND, 3 NOT, 4 predicates,
/// 5 additive, 6 multiplicative, 7 unary, 8 atoms.
fn expr_level(e: &Expr) -> u8 {
    match e {
        Expr::Or(..) => 1,
        Expr::And(..) => 2,
        Expr::Not(..) => 3,
        Expr::Compare { .. }
        | Expr::IsNull { .. }
        | Expr::Between { .. }
        | Expr::InList { .. }
        | Expr::InSubquery { .. }
        | Expr::Like { .. } => 4,
        Expr::Arith { op: '+', .. } | Expr::Arith { op: '-', .. } => 5,
        Expr::Arith { .. } => 6,
        Expr::Neg(..) => 7,
        _ => 8,
    }
}

fn write_child(out: &mut String, e: &Expr, min_level: u8) {
    if expr_level(e) < min_level {
        out.push('(');
        write_expr(out, e, 0);
        out.push(')');
    } else {
        write_expr(out, e, min_level);
    }
}

fn write_expr(out: &mut String, e: &Expr, _ctx: u8) {
    match e {
        Expr::Column(c) => {
            let _ = write!(out, "{c}");
        }
        Expr::Literal(l) => write_literal(out, l),
        Expr::Compare { op, left, right } => {
            write_child(out, left, 5);
            let _ = write!(out, " {} ", op.as_str());
            write_child(out, right, 5);
        }
        Expr::And(a, b) => {
            write_child(out, a, 2);
            out.push_str(" AND ");
            write_child(out, b, 3);
        }
        Expr::Or(a, b) => {
            write_child(out, a, 1);
            out.push_str(" OR ");
            write_child(out, b, 2);
        }
        Expr::Not(inner) => {
            out.push_str("NOT ");
            write_child(out, inner, 4);
        }
        Expr::IsNull { expr, negated } => {
            write_child(out, expr, 5);
            out.push_str(if *negated { " IS NOT NULL" } else { " IS NULL" });
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            write_child(out, expr, 5);
            out.push_str(if *negated {
                " NOT BETWEEN "
            } else {
                " BETWEEN "
            });
            write_child(out, low, 5);
            out.push_str(" AND ");
            write_child(out, high, 5);
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            write_child(out, expr, 5);
            out.push_str(if *negated { " NOT IN (" } else { " IN (" });
            for (i, item) in list.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, item, 0);
            }
            out.push(')');
        }
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => {
            write_child(out, expr, 5);
            out.push_str(if *negated { " NOT IN (" } else { " IN (" });
            write_query(out, subquery);
            out.push(')');
        }
        Expr::Exists { subquery, negated } => {
            out.push_str(if *negated { "NOT EXISTS (" } else { "EXISTS (" });
            write_query(out, subquery);
            out.push(')');
        }
        Expr::ScalarSubquery(q) => {
            out.push('(');
            write_query(out, q);
            out.push(')');
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            write_child(out, expr, 5);
            out.push_str(if *negated { " NOT LIKE " } else { " LIKE " });
            write_child(out, pattern, 5);
        }
        Expr::Function {
            name,
            args,
            distinct,
        } => {
            let _ = write!(out, "{name}(");
            if *distinct {
                out.push_str("DISTINCT ");
            }
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, 0);
            }
            out.push(')');
        }
        Expr::Wildcard => out.push('*'),
        Expr::Arith { op, left, right } => {
            let (lmin, rmin) = match op {
                '+' => (5, 6),
                '-' => (5, 6),
                '*' | '/' | '%' => (6, 7),
                _ => (5, 6),
            };
            write_child(out, left, lmin);
            let _ = write!(out, " {op} ");
            write_child(out, right, rmin);
        }
        Expr::Neg(inner) => {
            out.push('-');
            write_child(out, inner, 8);
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            out.push_str("CASE");
            if let Some(op) = operand {
                out.push(' ');
                write_expr(out, op, 0);
            }
            for (w, t) in branches {
                out.push_str(" WHEN ");
                write_expr(out, w, 0);
                out.push_str(" THEN ");
                write_expr(out, t, 0);
            }
            if let Some(e) = else_expr {
                out.push_str(" ELSE ");
                write_expr(out, e, 0);
            }
            out.push_str(" END");
        }
        Expr::Cast { expr, type_name } => {
            out.push_str("CAST(");
            write_expr(out, expr, 0);
            let _ = write!(out, " AS {type_name})");
        }
    }
}

fn write_literal(out: &mut String, l: &Literal) {
    match l {
        Literal::Number(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                let _ = write!(out, "{}", *v as i64);
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Literal::String(s) => {
            let _ = write!(out, "'{}'", s.replace('\'', "''"));
        }
        Literal::Bool(b) => out.push_str(if *b { "TRUE" } else { "FALSE" }),
        Literal::Null => out.push_str("NULL"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_query};

    fn round_trip(sql: &str) {
        let q1 = parse(sql).unwrap_or_else(|e| panic!("parse {sql:?}: {e}"));
        let printed = print_statement(&q1);
        let q2 =
            parse(&printed).unwrap_or_else(|e| panic!("re-parse {printed:?} (from {sql:?}): {e}"));
        assert_eq!(q1, q2, "round-trip mismatch: {sql:?} -> {printed:?}");
    }

    #[test]
    fn round_trips_paper_examples() {
        // Queries from the paper's listings (1, 2, 3)
        for sql in [
            "SELECT plate, mjd, COUNT(*), AVG(z) FROM SpecObj WHERE z > 0.5",
            "SELECT plate, COUNT(*) AS NumSpectra FROM SpecObj GROUP BY plate HAVING z > 0.5",
            "SELECT p.ra, p.dec, s.z FROM PhotoObj AS p JOIN SpecObj AS s ON s.bestobjid = (SELECT bestobjid FROM SpecObj)",
            "SELECT plate, mjd, fiberid FROM SpecObj WHERE z = 'high'",
            "SELECT s.plate, s.mjd, z FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = photoobj.bestobjid",
            "SELECT plate, fid FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.bestobjid WHERE bestobjid > 1000",
            "SELECT s.plate, s.mjd FROM SpecObj AS s WHERE s.plate IN (SELECT p.plate FROM PhotoObj AS p WHERE p.ra > 180)",
            "SELECT fiberid FROM SpecObj WHERE bestobjid IN (SELECT objid FROM PhotoObj WHERE ra > 180)",
            "WITH HighRedshift AS (SELECT plate, mjd FROM SpecObj WHERE z > 0.5) SELECT plate, mjd FROM HighRedshift",
            "SELECT * FROM SpecObj WHERE plate = 1000 AND mjd > 55000",
            "SELECT plate, AVG(z) FROM SpecObj GROUP BY plate",
            "SELECT s.plate, s.mjd FROM SpecObj AS s LEFT JOIN PhotoObj AS p ON s.bestobjid = p.objid",
            "SELECT plate, mjd, fiberid FROM SpecObj WHERE z > 0.5 OR ra > 180",
            "SELECT count(*), cName FROM tryout GROUP BY cName ORDER BY count(*) DESC",
            "SELECT count(*), student_course_id FROM Transcript_Cnt GROUP BY student_course_id ORDER BY count(*) DESC LIMIT 1",
            "SELECT S.name, S.loc FROM concert AS C JOIN stadium AS S ON C.stadium_id = S.stadium_id WHERE C.Year = 2014 INTERSECT SELECT S.name, S.loc FROM concert AS C JOIN stadium AS S ON C.stadium_id = S.stadium_id WHERE C.Year = 2015",
            "SELECT C.cylinders FROM CARS_DATA AS C JOIN CAR_NAMES AS T ON C.Id = T.MakeId WHERE T.Model = 'volvo' ORDER BY C.accelerate ASC LIMIT 1",
        ] {
            round_trip(sql);
        }
    }

    #[test]
    fn round_trips_structures() {
        for sql in [
            "SELECT * FROM t",
            "SELECT DISTINCT x FROM t",
            "SELECT TOP 10 x FROM t",
            "SELECT a.x, b.y FROM a, b WHERE a.id = b.id",
            "SELECT x FROM a LEFT JOIN b ON a.id = b.id RIGHT JOIN c ON b.id = c.id",
            "SELECT x FROM a CROSS JOIN b",
            "SELECT x FROM t WHERE NOT (a = 1 OR b = 2)",
            "SELECT x FROM t WHERE a IS NULL AND b IS NOT NULL",
            "SELECT x FROM t WHERE a NOT BETWEEN 1 AND 2",
            "SELECT x FROM t WHERE name NOT LIKE '%x%'",
            "SELECT x FROM t WHERE a IN (1, 2, 3)",
            "SELECT x FROM (SELECT x FROM t WHERE y > 0) AS d WHERE x < 5",
            "SELECT x FROM a UNION ALL SELECT x FROM b EXCEPT SELECT x FROM c",
            "SELECT x FROM a UNION (SELECT x FROM b INTERSECT SELECT x FROM c)",
            "(SELECT x FROM a UNION SELECT x FROM b) EXCEPT SELECT x FROM c",
            "SELECT CASE WHEN z > 0.5 THEN 'high' ELSE 'low' END AS bucket FROM SpecObj",
            "SELECT CAST(z AS INT) FROM t",
            "SELECT -x, a + b * c, (a + b) * c FROM t",
            "SELECT x FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)",
            "CREATE TABLE t (id INT, name VARCHAR)",
            "CREATE TABLE hot AS SELECT x FROM t WHERE y > 1",
            "CREATE VIEW v AS SELECT x FROM t",
            "SELECT x FROM t WHERE a = 1 AND (b = 2 OR c = 3)",
        ] {
            round_trip(sql);
        }
    }

    #[test]
    fn parentheses_only_when_needed() {
        let q = parse_query("SELECT x FROM t WHERE a = 1 AND b = 2 OR c = 3").unwrap();
        let printed = print_query(&q);
        // left-assoc OR over AND needs no parens
        assert_eq!(printed, "SELECT x FROM t WHERE a = 1 AND b = 2 OR c = 3");

        let q = parse_query("SELECT x FROM t WHERE a = 1 AND (b = 2 OR c = 3)").unwrap();
        let printed = print_query(&q);
        assert_eq!(printed, "SELECT x FROM t WHERE a = 1 AND (b = 2 OR c = 3)");
    }

    #[test]
    fn numbers_printed_canonically() {
        let q = parse_query("SELECT x FROM t WHERE a = 1000 AND b > 0.5").unwrap();
        let printed = print_query(&q);
        assert!(printed.contains("= 1000"));
        assert!(printed.contains("> 0.5"));
    }

    #[test]
    fn string_escaping_round_trips() {
        round_trip("SELECT x FROM t WHERE name = 'it''s'");
    }
}
