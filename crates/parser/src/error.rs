use squ_lexer::LexError;
use std::fmt;

/// A parse error: either a lexical failure or a structural one.
///
/// Structural errors report *what* was expected, *what* was found, and the
/// word index at which parsing stopped — the same coordinate system the
/// benchmark's `miss_token_loc` task uses, so a baseline "parser oracle" can
/// be compared against LLM answers directly.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// The parser expected something else at this point.
    Unexpected {
        /// Human-readable description of what was expected.
        expected: String,
        /// What was actually found (token text, or "end of input").
        found: String,
        /// Word index (whitespace-word position) of the offending token.
        word_index: usize,
    },
    /// Input ended before the statement was complete.
    UnexpectedEof {
        /// What was expected next.
        expected: String,
    },
    /// Extra tokens remained after a complete statement.
    TrailingTokens {
        /// Text of the first trailing token.
        found: String,
        /// Its word index.
        word_index: usize,
    },
}

impl ParseError {
    /// Word index at which the error occurred, when known.
    pub fn word_index(&self) -> Option<usize> {
        match self {
            ParseError::Unexpected { word_index, .. }
            | ParseError::TrailingTokens { word_index, .. } => Some(*word_index),
            _ => None,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "lex error: {e}"),
            ParseError::Unexpected {
                expected,
                found,
                word_index,
            } => write!(
                f,
                "expected {expected}, found {found:?} at word {word_index}"
            ),
            ParseError::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            ParseError::TrailingTokens { found, word_index } => {
                write!(
                    f,
                    "unexpected trailing token {found:?} at word {word_index}"
                )
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}
