//! # squ-parser — SQL parser, AST, and printer
//!
//! A from-scratch recursive-descent SQL parser covering the dialect of the
//! four benchmark workloads (SDSS/CasJobs, SQLShare, Join-Order, Spider):
//! full `SELECT` (explicit/implicit joins, grouping, having, ordering,
//! `TOP`/`LIMIT`, `DISTINCT`), subqueries in all positions, CTEs, set
//! operations, and `CREATE TABLE`/`CREATE VIEW`.
//!
//! The crate also ships:
//!
//! * a precedence-aware **pretty-printer** ([`print_statement`]) with the
//!   round-trip guarantee `parse(print(ast)) == ast`, which the benchmark's
//!   transformation machinery depends on, and
//! * **AST walkers** ([`visit`]) used to derive the paper's syntactic query
//!   properties.
//!
//! ```
//! use squ_parser::{parse, print_statement};
//! let stmt = parse("SELECT plate, mjd FROM SpecObj WHERE z > 0.5").unwrap();
//! assert_eq!(
//!     print_statement(&stmt),
//!     "SELECT plate, mjd FROM SpecObj WHERE z > 0.5"
//! );
//! ```

#![warn(missing_docs)]

pub mod ast;
mod error;
mod parser;
mod printer;
pub mod visit;

pub use ast::*;
pub use error::ParseError;
pub use parser::{parse, parse_dialect, parse_query, parse_query_dialect};
pub use printer::{
    print_expr, print_query, print_query_dialect, print_statement, print_statement_dialect,
};
pub use squ_dialect::Dialect;
