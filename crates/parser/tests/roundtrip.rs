//! Property tests: print→parse round-trip stability and parser totality.

use proptest::prelude::*;
use squ_parser::{parse, print_statement};

/// Strategy producing syntactically valid-ish SQL from a small grammar.
/// Not everything it emits parses (e.g. an alias colliding with a keyword);
/// that is fine — the property under test is conditional on a first parse.
fn sqlish() -> impl Strategy<Value = String> {
    let col = prop_oneof![
        Just("plate".to_string()),
        Just("mjd".to_string()),
        Just("z".to_string()),
        Just("s.plate".to_string()),
        Just("p.ra".to_string()),
    ];
    let lit = prop_oneof![
        Just("1".to_string()),
        Just("0.5".to_string()),
        Just("'high'".to_string()),
        Just("180".to_string()),
    ];
    let cmp = prop_oneof![
        Just("="),
        Just("<>"),
        Just("<"),
        Just("<="),
        Just(">"),
        Just(">=")
    ];
    let pred = (col.clone(), cmp, lit).prop_map(|(c, op, l)| format!("{c} {op} {l}"));
    let cond = prop::collection::vec(pred, 1..4).prop_map(|ps| ps.join(" AND "));
    let cols = prop::collection::vec(col, 1..4).prop_map(|cs| cs.join(", "));
    (cols, cond).prop_map(|(cols, cond)| {
        format!("SELECT {cols} FROM SpecObj AS s JOIN PhotoObj AS p ON s.id = p.id WHERE {cond}")
    })
}

proptest! {
    /// parse ∘ print ∘ parse == parse (printer is a fix-point).
    #[test]
    fn print_parse_round_trip(sql in sqlish()) {
        let ast1 = parse(&sql).expect("grammar strings parse");
        let printed = print_statement(&ast1);
        let ast2 = parse(&printed).expect("printed SQL re-parses");
        prop_assert_eq!(&ast1, &ast2);
        // printing again is bit-identical (canonical form)
        prop_assert_eq!(printed.clone(), print_statement(&ast2));
    }

    /// The parser never panics on arbitrary printable input.
    #[test]
    fn parser_is_total(s in "[ -~]{0,300}") {
        let _ = parse(&s);
    }

    /// The parser never panics on keyword soup — sequences that look like
    /// SQL but are structurally broken (the shape of the benchmark's
    /// error-injected corpora).
    #[test]
    fn parser_total_on_keyword_soup(
        words in prop::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("GROUP"),
                Just("BY"), Just("HAVING"), Just("JOIN"), Just("ON"),
                Just("AND"), Just("OR"), Just("NOT"), Just("IN"),
                Just("("), Just(")"), Just(","), Just("="), Just(">"),
                Just("t"), Just("x"), Just("1"), Just("'s'"), Just("*"),
            ],
            0..40,
        )
    ) {
        let sql = words.join(" ");
        let _ = parse(&sql);
    }
}
