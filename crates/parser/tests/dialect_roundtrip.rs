//! Property tests: the dialect printer is a parse→print fixpoint in every
//! dialect, over SQL generated *in* that dialect (its quote style, its
//! `LIMIT`/`TOP` spelling, its concat operator).

use proptest::prelude::*;
use squ_parser::{parse_dialect, print_statement_dialect, Dialect};

/// Abstract query shape, rendered per dialect inside the test body (the
/// vendored proptest subset has no `prop_flat_map`, so the strategy stays
/// dialect-independent).
#[derive(Debug, Clone)]
struct Shape {
    cols: Vec<usize>,
    preds: Vec<(usize, usize, usize)>,
    quoted_col: bool,
    concat: bool,
    bound: bool,
}

fn shapes() -> impl Strategy<Value = Shape> {
    (
        prop::collection::vec(0..4usize, 1..4),
        prop::collection::vec((0..4usize, 0..4usize, 0..4usize), 1..4),
        (0..2usize, 0..2usize, 0..2usize),
    )
        .prop_map(|(cols, preds, (quoted_col, concat, bound))| Shape {
            cols,
            preds,
            quoted_col: quoted_col == 1,
            concat: concat == 1,
            bound: bound == 1,
        })
}

fn render(shape: &Shape, d: Dialect) -> String {
    const COLS: [&str; 4] = ["plate", "mjd", "z", "s.plate"];
    const CMPS: [&str; 4] = ["=", "<>", "<", ">"];
    const LITS: [&str; 4] = ["1", "0.5", "'high'", "180"];
    let (open, close) = d.canonical_quote();
    let mut cols: Vec<String> = shape.cols.iter().map(|i| COLS[*i].to_string()).collect();
    if shape.quoted_col {
        cols.push(format!("{open}weird name{close}"));
    }
    if shape.concat {
        cols.push(if d.concat_operator() {
            "plate || mjd".to_string()
        } else {
            "CONCAT(plate, mjd)".to_string()
        });
    }
    let cond = shape
        .preds
        .iter()
        .map(|(c, op, l)| format!("{} {} {}", COLS[*c], CMPS[*op], LITS[*l]))
        .collect::<Vec<_>>()
        .join(" AND ");
    let top = if shape.bound && d.supports_top() {
        "TOP 7 "
    } else {
        ""
    };
    let limit = if shape.bound && !d.supports_top() {
        " LIMIT 7"
    } else {
        ""
    };
    format!(
        "SELECT {top}{} FROM SpecObj AS s JOIN PhotoObj AS p ON s.id = p.id WHERE {cond}{limit}",
        cols.join(", ")
    )
}

proptest! {
    /// parse_d ∘ print_d ∘ parse_d == parse_d for every dialect, and the
    /// printed form is canonical (printing twice is bit-identical).
    #[test]
    fn dialect_print_parse_fixpoint(shape in shapes()) {
        for d in Dialect::ALL {
            let sql = render(&shape, d);
            let ast1 = parse_dialect(&sql, d)
                .unwrap_or_else(|e| panic!("{} parse {sql:?}: {e}", d.name()));
            let printed = print_statement_dialect(&ast1, d);
            let ast2 = parse_dialect(&printed, d)
                .unwrap_or_else(|e| panic!("{} re-parse {printed:?}: {e}", d.name()));
            prop_assert_eq!(&ast1, &ast2, "fixpoint broke in {}: {:?}", d.name(), &sql);
            prop_assert_eq!(printed.clone(), print_statement_dialect(&ast2, d));
        }
    }

    /// Dialect parsing never panics on arbitrary printable input, in any
    /// dialect.
    #[test]
    fn dialect_parser_is_total(s in "[ -~]{0,200}") {
        for d in Dialect::ALL {
            let _ = parse_dialect(&s, d);
        }
    }
}
