//! Property tests for AST spans: every position-carrying node must point
//! at the text it was parsed from, and spans must be transparent to AST
//! equality so the print→parse round-trip is unaffected by them.

use proptest::prelude::*;
use squ_parser::ast::{expr_span, Expr, SetExpr};
use squ_parser::visit::{walk_exprs, walk_queries};
use squ_parser::{parse, print_statement, Statement};

/// Strategy producing parseable SQL with qualified and bare columns,
/// subqueries, and multi-conjunct conditions — the nodes that carry spans.
fn sqlish() -> impl Strategy<Value = String> {
    let col = prop_oneof![
        Just("plate".to_string()),
        Just("mjd".to_string()),
        Just("z".to_string()),
        Just("s.plate".to_string()),
        Just("s.z".to_string()),
    ];
    let lit = prop_oneof![
        Just("1".to_string()),
        Just("0.5".to_string()),
        Just("180".to_string()),
    ];
    let cmp = prop_oneof![Just("="), Just("<"), Just(">="), Just("<>")];
    let pred = (col.clone(), cmp, lit).prop_map(|(c, op, l)| format!("{c} {op} {l}"));
    let sub = prop_oneof![
        Just(String::new()),
        Just(" AND z IN (SELECT z FROM PhotoObj)".to_string()),
        Just(" AND EXISTS (SELECT 1 FROM PhotoObj AS p WHERE p.ra > 1)".to_string()),
    ];
    let cond = prop::collection::vec(pred, 1..4).prop_map(|ps| ps.join(" AND "));
    let cols = prop::collection::vec(col, 1..4).prop_map(|cs| cs.join(", "));
    (cols, cond, sub).prop_map(|(cols, cond, sub)| {
        format!("SELECT {cols} FROM SpecObj AS s WHERE {cond}{sub} ORDER BY plate")
    })
}

/// Collect every column reference in the statement.
fn column_refs(stmt: &Statement) -> Vec<(Option<String>, String, squ_parser::ast::Span)> {
    let mut out = Vec::new();
    walk_exprs(stmt, &mut |e| {
        if let Expr::Column(c) = e {
            out.push((c.qualifier.clone(), c.name.clone(), c.span));
        }
    });
    out
}

proptest! {
    /// Every column reference's span slices the source to exactly its
    /// printed `qualifier.name` form.
    #[test]
    fn column_spans_slice_their_text(sql in sqlish()) {
        let stmt = parse(&sql).expect("grammar strings parse");
        for (qualifier, name, span) in column_refs(&stmt) {
            prop_assert!(!span.is_empty(), "column {name} has an empty span");
            let text = &sql[span.start..span.end];
            let expect = match &qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.clone(),
            };
            prop_assert_eq!(text, expect.as_str());
        }
    }

    /// Every query node's span starts at its SELECT keyword and covers a
    /// parseable query suffix.
    #[test]
    fn query_spans_start_at_select(sql in sqlish()) {
        let stmt = parse(&sql).expect("grammar strings parse");
        walk_queries(&stmt, &mut |q, _| {
            assert!(!q.span.is_empty(), "query has an empty span");
            let text = &sql[q.span.start..q.span.end];
            assert!(
                text.starts_with("SELECT") || text.starts_with("WITH"),
                "query span starts with {:?}",
                &text[..text.len().min(12)]
            );
        });
    }

    /// Spans never leak into equality: re-parsing the printed form (which
    /// has different byte offsets) yields an equal AST, and `expr_span`
    /// still finds positions in both.
    #[test]
    fn spans_are_equality_transparent(sql in sqlish()) {
        let ast1 = parse(&sql).expect("grammar strings parse");
        let printed = print_statement(&ast1);
        let ast2 = parse(&printed).expect("printed SQL re-parses");
        prop_assert_eq!(&ast1, &ast2);
        // equal ASTs may still disagree on offsets — both must have them
        if let (Statement::Query(q1), Statement::Query(q2)) = (&ast1, &ast2) {
            if let SetExpr::Select(s) = &q1.body {
                if let Some(w1) = &s.selection {
                    prop_assert!(expr_span(w1).is_some());
                }
            }
            prop_assert!(!q2.span.is_empty());
            let t2 = &printed[q2.span.start..q2.span.end];
            prop_assert!(t2.starts_with("SELECT") || t2.starts_with("WITH"));
        }
    }
}
