//! Whole-query semantic analysis: provable emptiness, redundant predicates,
//! cardinality bounds, and SQU11x findings.
//!
//! The analyzer flows the feasibility domains of [`crate::feasible`]
//! through the query structure (WHERE/HAVING, join trees, set operations,
//! CTEs, derived tables) and reports only *proofs*:
//!
//! - [`Analysis::provably_empty`] — the query returns zero rows on **every**
//!   database satisfying the stated assumptions. The ungrouped-aggregate
//!   shape (`SELECT COUNT(*) … WHERE FALSE` returns one row), outer-join
//!   padding, and set-operation algebra are all accounted for.
//! - [`Analysis::redundant_conjuncts`] — top-level WHERE conjuncts that
//!   evaluate to TRUE on every row (removing one cannot change any result).
//! - [`Analysis::max_rows`] — an upper bound on the result cardinality
//!   (`LIMIT`/`TOP`, the single-row aggregate shape, `DISTINCT` over fully
//!   pinned projections).
//!
//! Assumptions mirror witness-database generation ([`is_id_column`] base
//!   table columns are never NULL); primary-key *uniqueness* is deliberately
//!   **not** assumed — witness generators draw key values with replacement.

use crate::feasible::{always_true, col_key, never_true, Assumptions, ColKey};
use squ_lexer::Span;
use squ_parser::ast::{
    expr_span, Expr, JoinKind, Query, Select, SelectItem, SetExpr, SetOp, Statement, TableRef,
};
use squ_schema::Schema;
use std::collections::BTreeSet;

/// Mirror of the witness generator's id-column heuristic
/// (`squ_engine::witness::is_id_column`): id-like columns are generated
/// non-NULL. Kept in sync by a cross-crate test in `squ-fuzz`.
pub fn is_id_column(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower == "id" || lower.ends_with("id")
}

/// One semantic finding, in SQU1xx code space.
#[derive(Debug, Clone, PartialEq)]
pub struct SemaFinding {
    /// Stable code (`SQU110`–`SQU113`).
    pub code: &'static str,
    /// Byte span of the offending construct, when one is known.
    pub span: Option<Span>,
    /// Human-readable message.
    pub message: String,
}

/// Semantic facts proven about one query.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// The result is empty on every database satisfying the assumptions.
    pub provably_empty: bool,
    /// Indices (into the WHERE's top-level conjunct list, left to right) of
    /// conjuncts proven TRUE on every row; removing one preserves results.
    /// Only populated for plain-select bodies.
    pub redundant_conjuncts: Vec<usize>,
    /// Proven upper bound on result row count.
    pub max_rows: Option<u64>,
    /// SQU11x findings for lint surfacing.
    pub findings: Vec<SemaFinding>,
}

/// Analyze the query of a statement; `None` for non-query statements
/// without a source query.
pub fn analyze_statement(stmt: &Statement, schema: &Schema) -> Option<Analysis> {
    stmt.query().map(|q| analyze_query(q, schema))
}

/// Analyze a bound query against `schema`.
pub fn analyze_query(q: &Query, schema: &Schema) -> Analysis {
    let mut a = Analysis::default();
    let mut cte_empty: Vec<(String, bool)> = Vec::new();
    for cte in &q.ctes {
        let sub = analyze_subquery(&cte.query, schema, &cte_empty);
        cte_empty.push((cte.name.clone(), sub));
    }
    // an aggregate in ORDER BY forces the grouped path even without GROUP BY
    let order_agg = q.order_by.iter().any(|o| o.expr.contains_aggregate());
    let surface = Surface {
        syntactic: true,
        // conjunct indices are only meaningful for a sole select body
        tautologies: matches!(&q.body, SetExpr::Select(_)),
    };
    let body_empty = set_expr_empty(&q.body, schema, &cte_empty, &mut a, surface, order_agg);
    let limit = q.limit.or(match &q.body {
        SetExpr::Select(s) => s.top,
        _ => None,
    });
    a.provably_empty = body_empty || limit == Some(0);
    if a.provably_empty {
        let span = match &q.body {
            SetExpr::Select(s) => s.selection.as_ref().and_then(expr_span),
            _ => None,
        };
        a.findings.push(SemaFinding {
            code: "SQU110",
            span: span.or(if q.span.is_empty() {
                None
            } else {
                Some(q.span)
            }),
            message: "query result is provably empty".into(),
        });
    }
    // cardinality bounds
    let mut bound: Option<u64> = limit;
    if a.provably_empty {
        bound = Some(0);
    } else if let SetExpr::Select(s) = &q.body {
        if let Some(b) = select_row_bound(s, schema, &cte_empty) {
            bound = Some(bound.map_or(b, |l| l.min(b)));
        }
    }
    a.max_rows = bound;
    a
}

/// Which findings a traversal may surface.
#[derive(Clone, Copy)]
struct Surface {
    /// SQU112/SQU113 (purely syntactic, safe anywhere).
    syntactic: bool,
    /// SQU111 + redundant-conjunct indices (sole select body only).
    tautologies: bool,
}

impl Surface {
    fn off() -> Self {
        Surface {
            syntactic: false,
            tautologies: false,
        }
    }
}

/// Emptiness of a nested query (findings not surfaced).
fn analyze_subquery(q: &Query, schema: &Schema, cte_empty: &[(String, bool)]) -> bool {
    let mut scratch = Analysis::default();
    let order_agg = q.order_by.iter().any(|o| o.expr.contains_aggregate());
    let empty = set_expr_empty(
        &q.body,
        schema,
        cte_empty,
        &mut scratch,
        Surface::off(),
        order_agg,
    );
    let limit = q.limit.or(match &q.body {
        SetExpr::Select(s) => s.top,
        _ => None,
    });
    empty || limit == Some(0)
}

/// Is the set-expression provably empty? `surface` controls which findings
/// are recorded on `a`.
fn set_expr_empty(
    se: &SetExpr,
    schema: &Schema,
    cte_empty: &[(String, bool)],
    a: &mut Analysis,
    surface: Surface,
    order_agg: bool,
) -> bool {
    match se {
        SetExpr::Select(s) => select_empty(s, schema, cte_empty, a, surface, order_agg),
        SetExpr::SetOp {
            op, left, right, ..
        } => {
            let branch = Surface {
                syntactic: surface.syntactic,
                tautologies: false,
            };
            let l = set_expr_empty(left, schema, cte_empty, a, branch, false);
            let r = set_expr_empty(right, schema, cte_empty, a, branch, false);
            match op {
                SetOp::Union => l && r,
                SetOp::Intersect => l || r,
                SetOp::Except => l,
            }
        }
    }
}

/// Does this select (or any aggregate anywhere in it) aggregate its input
/// into groups?
fn is_grouped(s: &Select) -> bool {
    !s.group_by.is_empty()
        || s.items
            .iter()
            .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
        || s.having.as_ref().is_some_and(|h| h.contains_aggregate())
}

fn select_empty(
    s: &Select,
    schema: &Schema,
    cte_empty: &[(String, bool)],
    a: &mut Analysis,
    surface: Surface,
    order_agg: bool,
) -> bool {
    let assume = select_assumptions(s, schema, cte_empty);
    if surface.syntactic || surface.tautologies {
        surface_findings(s, &assume, a, surface);
    }
    // TOP 0 empties any shape
    if s.top == Some(0) {
        return true;
    }
    // HAVING that can never hold filters away every group, grouped or not
    if let Some(h) = &s.having {
        if never_true(h, &assume) {
            return true;
        }
    }
    // an input-level emptiness proof: the FROM product is empty, or the
    // WHERE rejects every row
    let from_empty = s
        .from
        .iter()
        .any(|tr| table_ref_empty(tr, schema, cte_empty));
    let where_unsat = s.selection.as_ref().is_some_and(|w| never_true(w, &assume));
    let input_empty = from_empty || (where_unsat && !s.from.is_empty());
    if !input_empty {
        return false;
    }
    // empty input ⇒ empty output, except the ungrouped-aggregate shape
    // (one summary row) — which an explicit GROUP BY removes again
    if (is_grouped(s) || order_agg) && s.group_by.is_empty() {
        return false;
    }
    true
}

/// Is the table reference provably empty as a row source? Outer joins pad
/// the surviving side, so only the non-preserved side's emptiness counts.
fn table_ref_empty(tr: &TableRef, schema: &Schema, cte_empty: &[(String, bool)]) -> bool {
    match tr {
        TableRef::Named { name, .. } => cte_empty
            .iter()
            .rev()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .is_some_and(|(_, e)| *e),
        TableRef::Derived { query, .. } => analyze_subquery(query, schema, cte_empty),
        TableRef::Join {
            left, right, kind, ..
        } => {
            let l = table_ref_empty(left, schema, cte_empty);
            let r = table_ref_empty(right, schema, cte_empty);
            match kind {
                JoinKind::Inner | JoinKind::Cross => l || r,
                JoinKind::Left => l,
                JoinKind::Right => r,
                JoinKind::Full => l && r,
            }
        }
    }
}

/// [`select_assumptions`] for callers that track CTE names without
/// emptiness verdicts (the certifier).
pub(crate) fn select_assumptions_for(
    s: &Select,
    schema: &Schema,
    cte_names: &[String],
) -> Assumptions {
    let shaped: Vec<(String, bool)> = cte_names.iter().map(|n| (n.clone(), false)).collect();
    select_assumptions(s, schema, &shaped)
}

/// NOT NULL assumptions visible to this select's predicates: id-like
/// columns of base tables (the witness generator never NULLs them), except
/// bindings on the padded side of an outer join.
fn select_assumptions(s: &Select, schema: &Schema, cte_empty: &[(String, bool)]) -> Assumptions {
    let mut assume = Assumptions::none();
    let mut sources: Vec<(String, &str)> = Vec::new(); // (binding, table name)
    let cte_names: BTreeSet<String> = cte_empty
        .iter()
        .map(|(n, _)| n.to_ascii_lowercase())
        .collect();
    fn collect<'a>(
        tr: &'a TableRef,
        padded: bool,
        cte_names: &BTreeSet<String>,
        out: &mut Vec<(String, &'a str)>,
    ) {
        match tr {
            TableRef::Named { name, alias } => {
                if !padded && !cte_names.contains(&name.to_ascii_lowercase()) {
                    let binding = alias.as_deref().unwrap_or(name);
                    out.push((binding.to_ascii_lowercase(), name));
                }
            }
            TableRef::Derived { .. } => {}
            TableRef::Join {
                left, right, kind, ..
            } => {
                let (pad_l, pad_r) = match kind {
                    JoinKind::Inner | JoinKind::Cross => (false, false),
                    JoinKind::Left => (false, true),
                    JoinKind::Right => (true, false),
                    JoinKind::Full => (true, true),
                };
                collect(left, padded || pad_l, cte_names, out);
                collect(right, padded || pad_r, cte_names, out);
            }
        }
    }
    for tr in &s.from {
        collect(tr, false, &cte_names, &mut sources);
    }
    // qualified keys: binding.column for every id-like base column
    for (binding, tname) in &sources {
        let Some(table) = schema.table(tname) else {
            continue;
        };
        for col in table.column_names() {
            if is_id_column(col) {
                assume
                    .not_null
                    .insert((Some(binding.clone()), col.to_ascii_lowercase()));
            }
        }
    }
    // unqualified keys: only when exactly one in-scope source has the column
    let mut seen: std::collections::BTreeMap<String, usize> = Default::default();
    for (_, tname) in &sources {
        if let Some(table) = schema.table(tname) {
            for col in table.column_names() {
                *seen.entry(col.to_ascii_lowercase()).or_insert(0) += 1;
            }
        }
    }
    for (binding, tname) in &sources {
        let Some(table) = schema.table(tname) else {
            continue;
        };
        let _ = binding;
        for col in table.column_names() {
            let lower = col.to_ascii_lowercase();
            if is_id_column(col) && seen.get(&lower) == Some(&1) {
                assume.not_null.insert((None, lower));
            }
        }
    }
    assume
}

/// Record per-conjunct findings for a select's WHERE.
fn surface_findings(s: &Select, assume: &Assumptions, a: &mut Analysis, surface: Surface) {
    let Some(w) = &s.selection else { return };
    for (i, conjunct) in top_conjuncts(w).into_iter().enumerate() {
        if surface.syntactic {
            // SQU112: comparison against a NULL literal is never TRUE
            let mut null_cmp = None;
            find_null_comparison(conjunct, &mut null_cmp);
            if let Some(span) = null_cmp {
                a.findings.push(SemaFinding {
                    code: "SQU112",
                    span,
                    message: "comparison with NULL is never true; use IS NULL".into(),
                });
            }
            // SQU113: BETWEEN with an empty constant range
            let mut empty_between = None;
            find_empty_between(conjunct, &mut empty_between);
            if let Some(span) = empty_between {
                a.findings.push(SemaFinding {
                    code: "SQU113",
                    span,
                    message: "BETWEEN range is empty (low bound exceeds high bound)".into(),
                });
            }
        }
        // SQU111: a conjunct that is TRUE on every row
        if surface.tautologies && always_true(conjunct, assume) {
            a.redundant_conjuncts.push(i);
            a.findings.push(SemaFinding {
                code: "SQU111",
                span: expr_span(conjunct),
                message: "predicate is always true; the conjunct is redundant".into(),
            });
        }
    }
}

fn find_null_comparison(e: &Expr, out: &mut Option<Option<Span>>) {
    if out.is_some() {
        return;
    }
    if let Expr::Compare { left, right, .. } = e {
        if matches!(&**left, Expr::Literal(squ_parser::ast::Literal::Null))
            || matches!(&**right, Expr::Literal(squ_parser::ast::Literal::Null))
        {
            *out = Some(expr_span(e));
            return;
        }
    }
    e.for_each_child(&mut |c| find_null_comparison(c, out));
}

fn find_empty_between(e: &Expr, out: &mut Option<Option<Span>>) {
    if out.is_some() {
        return;
    }
    if let Expr::Between {
        low,
        high,
        negated: false,
        ..
    } = e
    {
        if let (
            Expr::Literal(squ_parser::ast::Literal::Number(lo)),
            Expr::Literal(squ_parser::ast::Literal::Number(hi)),
        ) = (&**low, &**high)
        {
            if lo > hi {
                *out = Some(expr_span(e));
                return;
            }
        }
    }
    e.for_each_child(&mut |c| find_empty_between(c, out));
}

/// Row bound for a plain select body (before LIMIT): the single-row
/// ungrouped-aggregate shape, or DISTINCT over a projection pinned to
/// constants.
fn select_row_bound(s: &Select, schema: &Schema, cte_empty: &[(String, bool)]) -> Option<u64> {
    if is_grouped(s) && s.group_by.is_empty() {
        // one summary row, possibly removed by HAVING
        return Some(1);
    }
    if !s.distinct || s.items.is_empty() || s.from.is_empty() {
        return None;
    }
    // DISTINCT with every projected item pinned to a single constant
    let assume = select_assumptions(s, schema, cte_empty);
    let w = s.selection.as_ref()?;
    let dnf = crate::feasible::to_dnf(w, crate::feasible::Polarity::IsTrue);
    if dnf.len() != 1 {
        return None; // multiple branches could pin different constants
    }
    let mut model = crate::feasible::solve_branch(&dnf[0], &assume)?;
    let mut keys: Vec<ColKey> = Vec::new();
    for item in &s.items {
        match item {
            SelectItem::Expr {
                expr: Expr::Literal(_),
                ..
            } => {}
            SelectItem::Expr {
                expr: Expr::Column(c),
                ..
            } => keys.push(col_key(c)),
            _ => return None,
        }
    }
    for k in &keys {
        model.pinned_value(k)?;
    }
    Some(1)
}

/// Flatten a predicate into its top-level AND conjuncts, left to right.
pub fn top_conjuncts(e: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::And(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            other => out.push(other),
        }
    }
    walk(e, &mut out);
    out
}

/// Rebuild a WHERE from conjuncts with one index removed; `None` when the
/// list becomes empty (drop the WHERE entirely).
pub fn drop_conjunct_at(w: &Expr, index: usize) -> Option<Expr> {
    let parts = top_conjuncts(w);
    let kept: Vec<Expr> = parts
        .into_iter()
        .enumerate()
        .filter(|&(i, _)| i != index)
        .map(|(_, e)| e.clone())
        .collect();
    let mut it = kept.into_iter();
    let first = it.next()?;
    Some(it.fold(first, |acc, p| acc.and(p)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use squ_parser::parse;
    use squ_schema::SqlType;
    use squ_schema::{Schema, Table};

    fn schema() -> Schema {
        Schema::new("test")
            .with_table(Table::new(
                "t",
                100,
                &[
                    ("tid", SqlType::Int),
                    ("v", SqlType::Int),
                    ("s", SqlType::Text),
                ],
            ))
            .with_table(Table::new(
                "u",
                50,
                &[("uid", SqlType::Int), ("w", SqlType::Int)],
            ))
    }

    fn analyze(sql: &str) -> Analysis {
        let stmt = parse(sql).expect("parse");
        analyze_statement(&stmt, &schema()).expect("query")
    }

    #[test]
    fn contradiction_is_empty() {
        assert!(analyze("SELECT v FROM t WHERE v > 5 AND v < 3").provably_empty);
        assert!(!analyze("SELECT v FROM t WHERE v > 5 AND v < 9").provably_empty);
    }

    #[test]
    fn ungrouped_aggregate_is_never_empty() {
        let a = analyze("SELECT COUNT(*) FROM t WHERE v > 5 AND v < 3");
        assert!(!a.provably_empty);
        assert_eq!(a.max_rows, Some(1));
    }

    #[test]
    fn grouped_aggregate_over_empty_input_is_empty() {
        let a = analyze("SELECT v, COUNT(*) FROM t WHERE v > 5 AND v < 3 GROUP BY v");
        assert!(a.provably_empty);
        assert_eq!(a.max_rows, Some(0));
    }

    #[test]
    fn limit_zero_is_empty() {
        assert!(analyze("SELECT v FROM t LIMIT 0").provably_empty);
        assert!(analyze("SELECT TOP 0 v FROM t").provably_empty);
    }

    #[test]
    fn set_op_emptiness_composes() {
        let both = "SELECT v FROM t WHERE 1 = 2 UNION SELECT w FROM u WHERE 2 = 3";
        assert!(analyze(both).provably_empty);
        let one = "SELECT v FROM t WHERE 1 = 2 UNION SELECT w FROM u";
        assert!(!analyze(one).provably_empty);
        let intersect = "SELECT v FROM t INTERSECT SELECT w FROM u WHERE 1 = 0";
        assert!(analyze(intersect).provably_empty);
        let except = "SELECT v FROM t WHERE 1 = 0 EXCEPT SELECT w FROM u";
        assert!(analyze(except).provably_empty);
    }

    #[test]
    fn left_join_padding_blocks_id_assumption() {
        // u.uid can be NULL after a LEFT JOIN pad, so `u.uid = u.uid` is
        // not always-true there
        let padded = "SELECT t.v FROM t LEFT JOIN u ON t.tid = u.uid WHERE u.uid = u.uid";
        assert!(analyze(padded).redundant_conjuncts.is_empty());
        let inner = "SELECT t.v FROM t JOIN u ON t.tid = u.uid WHERE u.uid = u.uid";
        assert_eq!(analyze(inner).redundant_conjuncts, vec![0]);
    }

    #[test]
    fn tautology_under_id_assumption() {
        let a = analyze("SELECT v FROM t WHERE tid = tid AND v > 5");
        assert_eq!(a.redundant_conjuncts, vec![0]);
        assert!(a.findings.iter().any(|f| f.code == "SQU111"));
        // nullable column: x = x is not always-true
        let b = analyze("SELECT v FROM t WHERE v = v AND v > 5");
        assert!(b.redundant_conjuncts.is_empty());
    }

    #[test]
    fn null_comparison_finding() {
        let a = analyze("SELECT v FROM t WHERE v = NULL");
        assert!(a.findings.iter().any(|f| f.code == "SQU112"));
        assert!(a.provably_empty);
    }

    #[test]
    fn empty_between_finding() {
        let a = analyze("SELECT v FROM t WHERE v BETWEEN 10 AND 2");
        assert!(a.findings.iter().any(|f| f.code == "SQU113"));
        assert!(a.provably_empty);
    }

    #[test]
    fn distinct_pinned_bound() {
        let a = analyze("SELECT DISTINCT v FROM t WHERE v = 5");
        assert_eq!(a.max_rows, Some(1));
        let b = analyze("SELECT DISTINCT v FROM t WHERE v > 5");
        assert_eq!(b.max_rows, None);
    }

    #[test]
    fn empty_derived_table_propagates() {
        let a = analyze("SELECT d.v FROM (SELECT v FROM t WHERE 1 = 2) AS d");
        assert!(a.provably_empty);
    }

    #[test]
    fn empty_cte_propagates() {
        let a = analyze(
            "WITH c AS (SELECT v FROM t WHERE 1 = 2) SELECT c.v FROM c JOIN u ON c.v = u.uid",
        );
        assert!(a.provably_empty);
    }

    #[test]
    fn having_contradiction_empties_even_aggregates() {
        let a = analyze("SELECT COUNT(*) FROM t HAVING 1 = 2");
        assert!(a.provably_empty);
    }
}
