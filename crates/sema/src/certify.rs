//! Equivalence / inequivalence certificates for query pairs.
//!
//! [`certify_pair`] first canonicalizes both queries ([`crate::canon`]);
//! identical canonical forms are an **equivalence** certificate (every
//! rewrite in the canonicalizer is individually sound). Otherwise a small
//! set of tightly-guarded structural-difference patterns can produce an
//! **inequivalence** certificate: a proof that some database — drawn from
//! the witness families, whose id-like columns are never NULL but whose
//! keys are *not* unique — distinguishes the two queries. Anything outside
//! the patterns is [`Certificate::Unknown`].
//!
//! Inequivalence patterns deliberately refuse to fire when a subquery
//! appears in the differing predicates (`IN (SELECT …)` vs `EXISTS` forms
//! of one query are equivalent but structurally incomparable) — every
//! pattern's applicability conditions are chosen so that a sound
//! transformation of a query can never be convicted.

use crate::analyze::select_assumptions_for;
use crate::canon::canonicalize;
use crate::feasible::{any_constructive, col_key, to_dnf, Assumptions, Dnf, Polarity};
use squ_lexer::CompareOp;
use squ_parser::ast::{is_aggregate_name, Expr, JoinKind, Query, Select, SelectItem, TableRef};
use squ_schema::Schema;

/// Outcome of static pair certification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Certificate {
    /// The queries provably return equal results on every database.
    Equivalent(&'static str),
    /// Some witness-style database provably distinguishes the queries.
    Inequivalent(&'static str),
    /// The domains cannot decide the pair.
    Unknown,
}

impl Certificate {
    /// Short label for counters and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Certificate::Equivalent(_) => "equivalent",
            Certificate::Inequivalent(_) => "inequivalent",
            Certificate::Unknown => "unknown",
        }
    }

    /// The reason string, when decided.
    pub fn reason(&self) -> Option<&'static str> {
        match self {
            Certificate::Equivalent(r) | Certificate::Inequivalent(r) => Some(r),
            Certificate::Unknown => None,
        }
    }
}

/// Statically certify a pair of queries as equivalent or inequivalent.
pub fn certify_pair(q1: &Query, q2: &Query, schema: &Schema) -> Certificate {
    let c1 = canonicalize(q1);
    let c2 = canonicalize(q2);
    if c1 == c2 {
        return Certificate::Equivalent("canonical forms coincide");
    }
    classify(&c1, &c2, schema)
}

/// Tightly-guarded structural difference classification on canonical forms.
fn classify(c1: &Query, c2: &Query, schema: &Schema) -> Certificate {
    // the patterns only cover plain single-select bodies with shared
    // prologue and epilogue
    if c1.ctes != c2.ctes || c1.order_by != c2.order_by || c1.limit != c2.limit {
        return Certificate::Unknown;
    }
    let (Some(s1), Some(s2)) = (c1.as_select(), c2.as_select()) else {
        return Certificate::Unknown;
    };
    if s1.top != s2.top {
        return Certificate::Unknown;
    }
    let cte_names: Vec<String> = c1.ctes.iter().map(|c| c.name.clone()).collect();

    if s1.from == s2.from {
        if s1.items == s2.items && s1.selection == s2.selection && same_grouping(s1, s2) {
            return distinct_toggle(s1, s2, schema, &cte_names, c1);
        }
        if s1.distinct == s2.distinct && s1.items == s2.items && same_grouping(s1, s2) {
            return where_differs(s1, s2, schema, &cte_names, c1);
        }
        if s1.distinct == s2.distinct && s1.selection == s2.selection && same_grouping(s1, s2) {
            return items_differ(s1, s2, schema, &cte_names, c1);
        }
        return Certificate::Unknown;
    }
    if s1.items == s2.items
        && s1.selection == s2.selection
        && s1.distinct == s2.distinct
        && same_grouping(s1, s2)
    {
        return join_kind_differs(s1, s2, schema, &cte_names, c1);
    }
    Certificate::Unknown
}

fn same_grouping(s1: &Select, s2: &Select) -> bool {
    s1.group_by == s2.group_by && s1.having == s2.having
}

/// Is the select a plain row-for-row pipeline (no grouping, aggregation,
/// dedup, truncation) whose extra/missing rows are observable?
fn observable_rows(s: &Select, q: &Query) -> bool {
    !s.distinct
        && s.group_by.is_empty()
        && s.having.is_none()
        && s.top.is_none()
        && q.limit.is_none()
        && !s
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
}

fn subquery_free(e: &Expr) -> bool {
    let mut free = !matches!(
        e,
        Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::ScalarSubquery(_)
    );
    if free {
        e.for_each_child(&mut |c| {
            if !subquery_free(c) {
                free = false;
            }
        });
    }
    free
}

/// Only base tables in FROM (emptiness and row construction are then under
/// the adversary's control).
fn base_tables_only(s: &Select, schema: &Schema, cte_names: &[String]) -> bool {
    fn check(tr: &TableRef, schema: &Schema, cte_names: &[String]) -> bool {
        match tr {
            TableRef::Named { name, .. } => {
                schema.has_table(name) && !cte_names.iter().any(|c| c.eq_ignore_ascii_case(name))
            }
            TableRef::Derived { .. } => false,
            TableRef::Join { left, right, .. } => {
                check(left, schema, cte_names) && check(right, schema, cte_names)
            }
        }
    }
    s.from.iter().all(|tr| check(tr, schema, cte_names))
}

/// Conjunction of the WHERE and every inner-join ON predicate — the row
/// constraints an output row must satisfy when only inner/cross joins
/// appear.
fn row_constraints(s: &Select) -> Option<Expr> {
    let mut parts: Vec<Expr> = Vec::new();
    fn collect(tr: &TableRef, parts: &mut Vec<Expr>, ok: &mut bool) {
        match tr {
            TableRef::Named { .. } => {}
            TableRef::Derived { .. } => *ok = false,
            TableRef::Join {
                left,
                right,
                kind,
                constraint,
            } => {
                if !matches!(kind, JoinKind::Inner | JoinKind::Cross) {
                    *ok = false;
                    return;
                }
                if let squ_parser::ast::JoinConstraint::On(e) = constraint {
                    parts.push(e.clone());
                }
                collect(left, parts, ok);
                collect(right, parts, ok);
            }
        }
    }
    let mut ok = true;
    for tr in &s.from {
        collect(tr, &mut parts, &mut ok);
    }
    if !ok {
        return None;
    }
    if let Some(w) = &s.selection {
        parts.push(w.clone());
    }
    let mut it = parts.into_iter();
    let first = it
        .next()
        .unwrap_or(Expr::Literal(squ_parser::ast::Literal::Bool(true)));
    Some(it.fold(first, |acc, p| acc.and(p)))
}

/// Can a database give this select at least one output row? (Conservative:
/// `false` means "can't prove".)
fn reachable(s: &Select, schema: &Schema, cte_names: &[String], assume: &Assumptions) -> bool {
    if s.from.is_empty() || !base_tables_only(s, schema, cte_names) {
        return false;
    }
    let Some(constraints) = row_constraints(s) else {
        return false;
    };
    if !subquery_free(&constraints) {
        return false;
    }
    any_constructive(&to_dnf(&constraints, Polarity::IsTrue), assume).is_some()
}

fn conj(a: Dnf, b: Dnf) -> Dnf {
    let mut out = Vec::new();
    for x in &a {
        for y in &b {
            let mut branch = x.clone();
            branch.extend(y.iter().cloned());
            out.push(branch);
            if out.len() > 4096 {
                return Vec::new(); // give up: no conviction
            }
        }
    }
    out
}

/// `DISTINCT` toggled, all else equal: base-table rows can always be
/// duplicated (no uniqueness constraints exist), so a reachable projection
/// distinguishes the two.
fn distinct_toggle(
    s1: &Select,
    s2: &Select,
    schema: &Schema,
    cte_names: &[String],
    q: &Query,
) -> Certificate {
    if s1.distinct == s2.distinct {
        return Certificate::Unknown;
    }
    let plain = |s: &Select| {
        s.group_by.is_empty()
            && s.having.is_none()
            && s.top.is_none()
            && !s
                .items
                .iter()
                .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
    };
    if !plain(s1) || !plain(s2) || q.limit.is_some() {
        return Certificate::Unknown;
    }
    let assume = select_assumptions_for(s1, schema, cte_names);
    if reachable(s1, schema, cte_names, &assume) {
        Certificate::Inequivalent("DISTINCT toggled on a reachable duplicate-capable projection")
    } else {
        Certificate::Unknown
    }
}

/// WHERE predicates differ, all else equal: convict when some row satisfies
/// one predicate but not the other (and rows are observable).
fn where_differs(
    s1: &Select,
    s2: &Select,
    schema: &Schema,
    cte_names: &[String],
    q: &Query,
) -> Certificate {
    if !observable_rows(s1, q) || !observable_rows(s2, q) {
        return Certificate::Unknown;
    }
    let t = Expr::Literal(squ_parser::ast::Literal::Bool(true));
    let w1 = s1.selection.as_ref().unwrap_or(&t);
    let w2 = s2.selection.as_ref().unwrap_or(&t);
    if !subquery_free(w1) || !subquery_free(w2) {
        return Certificate::Unknown;
    }
    // the distinguishing row must also be *producible* by the FROM
    if s1.from.is_empty() || !base_tables_only(s1, schema, cte_names) {
        return Certificate::Unknown;
    }
    let Some(base) = row_constraints(&Select {
        selection: None,
        ..s1.clone()
    }) else {
        return Certificate::Unknown;
    };
    if !subquery_free(&base) {
        return Certificate::Unknown;
    }
    let assume = select_assumptions_for(s1, schema, cte_names);
    let base_dnf = to_dnf(&base, Polarity::IsTrue);
    let one_not_other = |a: &Expr, b: &Expr| {
        let mixed = conj(
            conj(base_dnf.clone(), to_dnf(a, Polarity::IsTrue)),
            to_dnf(b, Polarity::NotTrue),
        );
        any_constructive(&mixed, &assume).is_some()
    };
    if one_not_other(w1, w2) || one_not_other(w2, w1) {
        Certificate::Inequivalent("a constructible row satisfies one WHERE but not the other")
    } else {
        Certificate::Unknown
    }
}

/// Projection lists differ, all else equal.
fn items_differ(
    s1: &Select,
    s2: &Select,
    schema: &Schema,
    cte_names: &[String],
    q: &Query,
) -> Certificate {
    let assume = select_assumptions_for(s1, schema, cte_names);
    // arity difference: any database yielding a row distinguishes the pair
    if s1.items.len() != s2.items.len() {
        let agg_shape = |s: &Select| {
            s.group_by.is_empty()
                && s.having.is_none()
                && s.top.is_none()
                && s.items.iter().all(
                    |i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()),
                )
        };
        // ungrouped aggregates always return exactly one row
        if agg_shape(s1) && agg_shape(s2) && q.limit != Some(0) && !s1.items.is_empty() {
            return Certificate::Inequivalent("projection arity differs on single-row aggregates");
        }
        if observable_rows(s1, q)
            && observable_rows(s2, q)
            && reachable(s1, schema, cte_names, &assume)
        {
            return Certificate::Inequivalent("projection arity differs on a reachable select");
        }
        return Certificate::Unknown;
    }
    // same arity: find the differing positions
    let diffs: Vec<usize> = (0..s1.items.len())
        .filter(|i| s1.items[*i] != s2.items[*i])
        .collect();
    if diffs.len() != 1 {
        return Certificate::Unknown;
    }
    let (i1, i2) = (&s1.items[diffs[0]], &s2.items[diffs[0]]);
    let (SelectItem::Expr { expr: e1, .. }, SelectItem::Expr { expr: e2, .. }) = (i1, i2) else {
        return Certificate::Unknown;
    };
    match (e1, e2) {
        // two different plain columns whose values are not forced equal
        (Expr::Column(a), Expr::Column(b)) => {
            if !observable_rows(s1, q) || !reachable(s1, schema, cte_names, &assume) {
                return Certificate::Unknown;
            }
            let Some(base) = row_constraints(s1) else {
                return Certificate::Unknown;
            };
            if !subquery_free(&base) {
                return Certificate::Unknown;
            }
            let differs =
                Expr::Column(a.clone()).compare(CompareOp::NotEq, Expr::Column(b.clone()));
            let mixed = conj(
                to_dnf(&base, Polarity::IsTrue),
                to_dnf(&differs, Polarity::IsTrue),
            );
            if any_constructive(&mixed, &assume).is_some() {
                Certificate::Inequivalent("projected columns can hold different values")
            } else {
                Certificate::Unknown
            }
        }
        // an aggregate function swap over the same argument
        (
            Expr::Function {
                name: n1,
                args: a1,
                distinct: d1,
            },
            Expr::Function {
                name: n2,
                args: a2,
                distinct: d2,
            },
        ) => aggregate_swap(s1, s2, q, schema, cte_names, (n1, a1, *d1), (n2, a2, *d2)),
        _ => Certificate::Unknown,
    }
}

/// `SUM↔AVG` / `MIN↔MAX` swaps: construct a group with two rows whose
/// values force the aggregates apart.
#[allow(clippy::too_many_arguments)]
fn aggregate_swap(
    s1: &Select,
    s2: &Select,
    q: &Query,
    schema: &Schema,
    cte_names: &[String],
    f1: (&str, &[Expr], bool),
    f2: (&str, &[Expr], bool),
) -> Certificate {
    let (n1, args1, d1) = f1;
    let (n2, args2, d2) = f2;
    let (u1, u2) = (n1.to_ascii_uppercase(), n2.to_ascii_uppercase());
    if u1 == u2
        || d1
        || d2
        || args1 != args2
        || !is_aggregate_name(&u1)
        || !is_aggregate_name(&u2)
        || !matches!(u1.as_str(), "SUM" | "AVG" | "MIN" | "MAX")
        || !matches!(u2.as_str(), "SUM" | "AVG" | "MIN" | "MAX")
    {
        return Certificate::Unknown;
    }
    let [Expr::Column(arg)] = args1 else {
        return Certificate::Unknown;
    };
    // grouping/filters that could hide the distinguishing group must be
    // absent; the swap itself is the only aggregate difference
    if s1.having.is_some()
        || s2.having.is_some()
        || s1.distinct
        || s2.distinct
        || s1.top.is_some()
        || q.limit.is_some()
    {
        return Certificate::Unknown;
    }
    if s1.from.is_empty() || !base_tables_only(s1, schema, cte_names) {
        return Certificate::Unknown;
    }
    let Some(constraints) = row_constraints(s1) else {
        return Certificate::Unknown;
    };
    if !subquery_free(&constraints) {
        return Certificate::Unknown;
    }
    let assume = select_assumptions_for(s1, schema, cte_names);
    let dnf = to_dnf(&constraints, Polarity::IsTrue);
    let key = col_key(arg);
    for branch in &dnf {
        // conviction needs must-exist rows: skip opaque or unrealizable
        // branches
        if branch
            .iter()
            .any(|a| matches!(a, crate::feasible::Atom::Opaque { .. }))
        {
            continue;
        }
        if let Some(mut model) = crate::feasible::solve_branch(branch, &assume) {
            if !model.is_constructive() {
                continue;
            }
            // SUM vs anything: two equal non-zero rows; others: two
            // distinct values
            let distinguishes = if u1 == "SUM" || u2 == "SUM" {
                model.allows_nonzero(&key)
            } else {
                model.allows_two_values(&key)
            };
            if distinguishes {
                return Certificate::Inequivalent(
                    "a two-row group separates the swapped aggregates",
                );
            }
        }
    }
    Certificate::Unknown
}

/// Join kind differs on an otherwise identical two-table join: an empty
/// padded side distinguishes outer from inner joins.
fn join_kind_differs(
    s1: &Select,
    s2: &Select,
    schema: &Schema,
    cte_names: &[String],
    q: &Query,
) -> Certificate {
    if !observable_rows(s1, q) || !observable_rows(s2, q) {
        return Certificate::Unknown;
    }
    if s1.from.len() != 1 || s2.from.len() != 1 {
        return Certificate::Unknown;
    }
    let (
        TableRef::Join {
            left: l1,
            right: r1,
            kind: k1,
            constraint: c1,
        },
        TableRef::Join {
            left: l2,
            right: r2,
            kind: k2,
            constraint: c2,
        },
    ) = (&s1.from[0], &s2.from[0])
    else {
        return Certificate::Unknown;
    };
    if l1 != l2 || r1 != r2 || c1 != c2 || k1 == k2 {
        return Certificate::Unknown;
    }
    let (
        TableRef::Named {
            name: ln,
            alias: la,
        },
        TableRef::Named {
            name: rn,
            alias: ra,
        },
    ) = (&**l1, &**r1)
    else {
        return Certificate::Unknown;
    };
    if !schema.has_table(ln)
        || !schema.has_table(rn)
        || cte_names
            .iter()
            .any(|c| c.eq_ignore_ascii_case(ln) || c.eq_ignore_ascii_case(rn))
    {
        return Certificate::Unknown;
    }
    // one side inner, the other padding the right (LEFT/FULL) or the left
    // (RIGHT/FULL)
    let pads_right = |k: JoinKind| matches!(k, JoinKind::Left | JoinKind::Full);
    let pads_left = |k: JoinKind| matches!(k, JoinKind::Right | JoinKind::Full);
    let (inner_kind, outer_kind) = if *k1 == JoinKind::Inner {
        (*k1, *k2)
    } else if *k2 == JoinKind::Inner {
        (*k2, *k1)
    } else {
        return Certificate::Unknown;
    };
    let _ = inner_kind;
    // pick the surviving side whose rows the WHERE must constrain
    let survivor = if pads_right(outer_kind) {
        la.as_deref().unwrap_or(ln)
    } else if pads_left(outer_kind) {
        ra.as_deref().unwrap_or(rn)
    } else {
        return Certificate::Unknown;
    };
    // WHERE must touch only the surviving side (all refs qualified by it),
    // so a padded row passes it
    let t = Expr::Literal(squ_parser::ast::Literal::Bool(true));
    let w = s1.selection.as_ref().unwrap_or(&t);
    if !subquery_free(w) || !refs_only(w, survivor) {
        return Certificate::Unknown;
    }
    let assume = select_assumptions_for(s1, schema, cte_names);
    if any_constructive(&to_dnf(w, Polarity::IsTrue), &assume).is_some() {
        Certificate::Inequivalent("an empty padded side separates outer from inner join")
    } else {
        Certificate::Unknown
    }
}

/// Every column reference is qualified by `binding`.
fn refs_only(e: &Expr, binding: &str) -> bool {
    let mut ok = true;
    fn walk(e: &Expr, binding: &str, ok: &mut bool) {
        if let Expr::Column(c) = e {
            match &c.qualifier {
                Some(q) if q.eq_ignore_ascii_case(binding) => {}
                _ => *ok = false,
            }
        }
        e.for_each_child(&mut |ch| walk(ch, binding, ok));
    }
    walk(e, binding, &mut ok);
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use squ_parser::parse;
    use squ_schema::SqlType;
    use squ_schema::{Schema, Table};

    fn schema() -> Schema {
        Schema::new("test")
            .with_table(Table::new(
                "t",
                100,
                &[
                    ("tid", SqlType::Int),
                    ("v", SqlType::Int),
                    ("s", SqlType::Text),
                ],
            ))
            .with_table(Table::new(
                "u",
                50,
                &[("uid", SqlType::Int), ("w", SqlType::Int)],
            ))
    }

    fn q(sql: &str) -> squ_parser::ast::Query {
        match parse(sql).expect("parse") {
            squ_parser::Statement::Query(q) => q,
            _ => panic!("not a query"),
        }
    }

    fn cert(a: &str, b: &str) -> Certificate {
        certify_pair(&q(a), &q(b), &schema())
    }

    fn is_equiv(c: Certificate) -> bool {
        matches!(c, Certificate::Equivalent(_))
    }

    fn is_inequiv(c: Certificate) -> bool {
        matches!(c, Certificate::Inequivalent(_))
    }

    #[test]
    fn preserving_shapes_certify_equivalent() {
        assert!(is_equiv(cert(
            "SELECT v FROM t WHERE v > 1 AND s = 'a'",
            "SELECT v FROM t WHERE s = 'a' AND v > 1"
        )));
        assert!(is_equiv(cert(
            "SELECT v FROM t WHERE v BETWEEN 1 AND 5",
            "SELECT v FROM t WHERE v >= 1 AND v <= 5"
        )));
        assert!(is_equiv(cert(
            "SELECT v FROM t WHERE v IN (1, 2)",
            "SELECT v FROM t WHERE v = 1 OR v = 2"
        )));
        assert!(is_equiv(cert(
            "SELECT v FROM t WHERE v > 1 AND s = 'a'",
            "SELECT v FROM t WHERE NOT (NOT (v > 1) OR NOT (s = 'a'))"
        )));
        assert!(is_equiv(cert(
            "SELECT a.v FROM t AS a WHERE a.v > 1",
            "SELECT b.v FROM t AS b WHERE b.v > 1"
        )));
        assert!(is_equiv(cert(
            "SELECT v FROM t WHERE v > 1",
            "WITH w AS (SELECT v FROM t WHERE v > 1) SELECT * FROM w"
        )));
    }

    #[test]
    fn value_change_convicts() {
        assert!(is_inequiv(cert(
            "SELECT v FROM t WHERE v > 5",
            "SELECT v FROM t WHERE v > 300"
        )));
    }

    #[test]
    fn comparison_direction_convicts() {
        assert!(is_inequiv(cert(
            "SELECT v FROM t WHERE v > 5",
            "SELECT v FROM t WHERE v < 5"
        )));
    }

    #[test]
    fn and_to_or_convicts() {
        assert!(is_inequiv(cert(
            "SELECT v FROM t WHERE v > 5 AND s = 'a'",
            "SELECT v FROM t WHERE v > 5 OR s = 'a'"
        )));
    }

    #[test]
    fn where_drop_convicts_but_not_tautology_drop() {
        assert!(is_inequiv(cert(
            "SELECT v FROM t WHERE v > 5 AND s = 'a'",
            "SELECT v FROM t WHERE v > 5"
        )));
        // dropping an always-true conjunct is NOT convictable
        assert!(!is_inequiv(cert(
            "SELECT v FROM t WHERE tid = tid AND v > 5",
            "SELECT v FROM t WHERE v > 5"
        )));
    }

    #[test]
    fn distinct_toggle_convicts() {
        assert!(is_inequiv(cert(
            "SELECT v FROM t WHERE v > 5",
            "SELECT DISTINCT v FROM t WHERE v > 5"
        )));
    }

    #[test]
    fn projection_drop_convicts() {
        assert!(is_inequiv(cert(
            "SELECT tid, v FROM t WHERE v > 5",
            "SELECT tid FROM t WHERE v > 5"
        )));
    }

    #[test]
    fn aggregate_swap_convicts() {
        assert!(is_inequiv(cert(
            "SELECT AVG(v) FROM t",
            "SELECT SUM(v) FROM t"
        )));
        assert!(is_inequiv(cert(
            "SELECT MIN(v) FROM t WHERE v > 2",
            "SELECT MAX(v) FROM t WHERE v > 2"
        )));
        // a pinned column makes MIN and MAX coincide: no conviction
        assert!(!is_inequiv(cert(
            "SELECT MIN(v) FROM t WHERE v = 5",
            "SELECT MAX(v) FROM t WHERE v = 5"
        )));
    }

    #[test]
    fn join_kind_convicts() {
        assert!(is_inequiv(cert(
            "SELECT a.v FROM t AS a JOIN u AS b ON a.tid = b.uid WHERE a.v > 1",
            "SELECT a.v FROM t AS a LEFT JOIN u AS b ON a.tid = b.uid WHERE a.v > 1"
        )));
        // WHERE touching the padded side blocks the conviction
        assert!(!is_inequiv(cert(
            "SELECT a.v FROM t AS a JOIN u AS b ON a.tid = b.uid WHERE b.w > 1",
            "SELECT a.v FROM t AS a LEFT JOIN u AS b ON a.tid = b.uid WHERE b.w > 1"
        )));
    }

    #[test]
    fn subquery_forms_stay_unknown() {
        // IN ↔ EXISTS rewrites are equivalent; the classifier must not
        // convict them
        let c = cert(
            "SELECT v FROM t WHERE tid IN (SELECT uid FROM u)",
            "SELECT v FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.uid = t.tid)",
        );
        assert!(!is_inequiv(c));
    }

    #[test]
    fn equal_queries_with_unsat_wheres_do_not_convict() {
        // both empty on every database: the classifier must not claim
        // inequivalence just because the predicates differ
        assert!(!is_inequiv(cert(
            "SELECT v FROM t WHERE v > 5 AND v < 3",
            "SELECT v FROM t WHERE v > 9 AND v < 7"
        )));
    }
}
