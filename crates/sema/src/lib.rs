//! squ-sema: abstract-interpretation semantic analyzer for bound SQL.
//!
//! The crate layers four modules:
//!
//! - [`feasible`] — a branch-satisfiability engine over a three-valued
//!   (Kleene) logic: predicates lower to DNF over comparison/null atoms and
//!   each branch is checked against per-equivalence-class interval, string,
//!   and boolean domains. `never_true`/`always_true` answers of `true` are
//!   proofs; `false` means "could not prove".
//! - [`canon`] — a sound canonicalizer (alias renaming, `BETWEEN`/`IN`
//!   expansion, negation push-down, conjunct sorting, wrapper inlining,
//!   `TOP`→`LIMIT` folding) whose fixed point equates many syntactic
//!   variants.
//! - [`analyze`] — per-query dataflow producing [`analyze::Analysis`]:
//!   provable emptiness, redundant conjuncts, row-count bounds, and
//!   `SQU11x` findings for the linter.
//! - [`certify`] — pair certification: canonical-form equality yields
//!   equivalence certificates, guarded structural-difference patterns yield
//!   inequivalence certificates, and everything else is `Unknown`.
//!
//! Every verdict is designed to be *execution-checked*: the fuzz oracle in
//! `squ-fuzz` replays analyses and certificates against the reference
//! engine on witness databases, so an unsound rule here is a hard fuzz
//! failure, not a silent report skew.

#![warn(missing_docs)]

pub mod analyze;
pub mod canon;
pub mod certify;
pub mod feasible;

pub use analyze::{analyze_query, analyze_statement, Analysis, SemaFinding};
pub use canon::canonicalize;
pub use certify::{certify_pair, Certificate};
pub use feasible::{always_true, any_satisfiable, never_true, to_dnf, Assumptions, Polarity};
