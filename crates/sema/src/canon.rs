//! Result-preserving canonicalization of queries.
//!
//! `canonicalize` rewrites a query into a normal form such that two queries
//! with identical canonical forms are equivalent under the benchmark's
//! result semantics ([`Relation::result_equal`]: multiset of rows, column
//! order significant, names insignificant). Every rewrite is individually
//! sound in SQL's three-valued logic:
//!
//! - table aliases are renamed positionally (names never reach results);
//! - `x BETWEEN l AND h` ⇔ `x >= l AND x <= h`, `x IN (a, b)` ⇔
//!   `x = a OR x = b` (both exact in 3VL, including NULLs);
//! - `NOT` is pushed to the leaves (Kleene De Morgan; `NOT (a < b)` ⇔
//!   `a >= b` — both TRUE exactly on non-NULL complements);
//! - comparisons are oriented (literals right, columns ordered) via
//!   [`CompareOp::flipped`];
//! - AND/OR chains are flattened, sorted and deduplicated (idempotence
//!   holds in 3VL);
//! - `ORDER BY` without `LIMIT`/`TOP` is dropped (row order is not part of
//!   result equality) and `TOP n` on a plain select becomes `LIMIT n` (the
//!   engines fold them identically);
//! - single-use `WITH w AS (…) SELECT * FROM w` / `SELECT * FROM (…) AS d`
//!   wrappers are inlined.
//!
//! The canonical AST is only ever *compared*, never printed or executed, so
//! the synthetic alias names (which no SQL source can collide with) are
//! safe.

use squ_lexer::CompareOp;
use squ_parser::ast::{
    Expr, JoinConstraint, Literal, OrderItem, Query, Select, SelectItem, SetExpr, TableRef,
};
use squ_parser::print_expr;

/// Canonicalize a query for structural-equality comparison.
pub fn canonicalize(q: &Query) -> Query {
    let mut q = q.clone();
    let mut counter = 0usize;
    rename_query(&mut q, &mut Vec::new(), &mut counter);
    canon_query(&mut q);
    q
}

// ---------------- alias renaming ----------------

/// Positional, capture-free renaming of table aliases. `scope` is the stack
/// of active (original → canonical) alias bindings, innermost last.
fn rename_query(q: &mut Query, scope: &mut Vec<(String, String)>, counter: &mut usize) {
    // CTE bodies see only their own (and earlier) scopes, not the outer
    // FROM aliases; the dialect has no lateral correlation into CTEs.
    let depth = scope.len();
    for cte in &mut q.ctes {
        scope.truncate(depth);
        rename_query(&mut cte.query, &mut Vec::new(), counter);
    }
    rename_set_expr(&mut q.body, scope, counter, &mut q.order_by);
    scope.truncate(depth);
}

fn rename_set_expr(
    body: &mut SetExpr,
    scope: &mut Vec<(String, String)>,
    counter: &mut usize,
    order_by: &mut [OrderItem],
) {
    match body {
        SetExpr::Select(s) => rename_select(s, scope, counter, order_by),
        SetExpr::SetOp { left, right, .. } => {
            rename_set_expr(left, scope, counter, &mut []);
            rename_set_expr(right, scope, counter, &mut []);
            for o in order_by.iter_mut() {
                rename_expr(&mut o.expr, scope, counter);
            }
        }
    }
}

fn rename_select(
    s: &mut Select,
    scope: &mut Vec<(String, String)>,
    counter: &mut usize,
    order_by: &mut [OrderItem],
) {
    let depth = scope.len();
    // collect this scope's alias bindings in FROM order, and shadow any
    // outer binding re-introduced here (by alias or bare table name)
    fn collect(tr: &TableRef, scope: &mut Vec<(String, String)>, counter: &mut usize) {
        match tr {
            TableRef::Named { alias: Some(a), .. } => {
                *counter += 1;
                scope.push((a.to_ascii_lowercase(), format!("\u{1}a{counter}")));
            }
            TableRef::Named { name, alias: None } => {
                // a bare table name shadows an identically-named outer alias
                scope.push((name.to_ascii_lowercase(), name.clone()));
            }
            TableRef::Derived { alias, .. } => {
                if let Some(a) = alias {
                    scope.push((a.to_ascii_lowercase(), a.clone()));
                }
            }
            TableRef::Join { left, right, .. } => {
                collect(left, scope, counter);
                collect(right, scope, counter);
            }
        }
    }
    for tr in &s.from {
        collect(tr, scope, counter);
    }
    // apply the renames to the alias definitions themselves
    fn apply_tr(tr: &mut TableRef, scope: &mut Vec<(String, String)>, counter: &mut usize) {
        match tr {
            TableRef::Named { alias: Some(a), .. } => {
                if let Some(n) = lookup(scope, a) {
                    *a = n;
                }
            }
            TableRef::Named { .. } => {}
            TableRef::Derived { query, .. } => {
                // derived bodies do not see the enclosing FROM aliases
                rename_query(query, &mut Vec::new(), counter);
            }
            TableRef::Join {
                left,
                right,
                constraint,
                ..
            } => {
                apply_tr(left, scope, counter);
                apply_tr(right, scope, counter);
                if let JoinConstraint::On(e) = constraint {
                    rename_expr(e, scope, counter);
                }
            }
        }
    }
    let mut from = std::mem::take(&mut s.from);
    for tr in &mut from {
        apply_tr(tr, scope, counter);
    }
    s.from = from;
    for item in &mut s.items {
        if let SelectItem::Expr { expr, .. } = item {
            rename_expr(expr, scope, counter);
        }
        if let SelectItem::QualifiedWildcard(q) = item {
            if let Some(n) = lookup(scope, q) {
                *q = n;
            }
        }
    }
    if let Some(w) = &mut s.selection {
        rename_expr(w, scope, counter);
    }
    for g in &mut s.group_by {
        rename_expr(g, scope, counter);
    }
    if let Some(h) = &mut s.having {
        rename_expr(h, scope, counter);
    }
    for o in order_by.iter_mut() {
        rename_expr(&mut o.expr, scope, counter);
    }
    scope.truncate(depth);
}

fn lookup(scope: &[(String, String)], name: &str) -> Option<String> {
    let lower = name.to_ascii_lowercase();
    scope
        .iter()
        .rev()
        .find(|(o, _)| *o == lower)
        .map(|(_, n)| n.clone())
}

fn rename_expr(e: &mut Expr, scope: &mut Vec<(String, String)>, counter: &mut usize) {
    if let Expr::Column(c) = e {
        if let Some(q) = &c.qualifier {
            if let Some(n) = lookup(scope, q) {
                c.qualifier = Some(n);
            }
        }
        return;
    }
    // correlated subqueries still see the outer scope
    match e {
        Expr::InSubquery { expr, subquery, .. } => {
            rename_expr(expr, scope, counter);
            rename_query(subquery, scope, counter);
        }
        Expr::Exists { subquery, .. } => rename_query(subquery, scope, counter),
        Expr::ScalarSubquery(subquery) => rename_query(subquery, scope, counter),
        _ => mutate_children(e, &mut |ch| rename_expr(ch, scope, counter)),
    }
}

// ---------------- structural canonicalization ----------------

fn canon_query(q: &mut Query) {
    for cte in &mut q.ctes {
        canon_query(&mut cte.query);
    }
    canon_set_expr(&mut q.body);
    // TOP n on a plain select body folds into LIMIT identically in both
    // engines (`q.limit.or(s.top)`)
    if q.limit.is_none() {
        if let SetExpr::Select(s) = &mut q.body {
            q.limit = s.top.take();
        }
    }
    for o in &mut q.order_by {
        canon_expr(&mut o.expr);
    }
    // row order is not observable without a limit
    if q.limit.is_none() {
        q.order_by.clear();
    }
    inline_wrappers(q);
}

fn canon_set_expr(body: &mut SetExpr) {
    match body {
        SetExpr::Select(s) => canon_select(s),
        SetExpr::SetOp { left, right, .. } => {
            canon_set_expr(left);
            canon_set_expr(right);
        }
    }
}

fn canon_select(s: &mut Select) {
    for tr in &mut s.from {
        canon_table_ref(tr);
    }
    for item in &mut s.items {
        if let SelectItem::Expr { expr, .. } = item {
            canon_expr(expr);
        }
    }
    if let Some(w) = s.selection.take() {
        s.selection = Some(canon_predicate(w));
    }
    for g in &mut s.group_by {
        canon_expr(g);
    }
    if let Some(h) = s.having.take() {
        s.having = Some(canon_predicate(h));
    }
}

/// Canonicalize a scalar (non-predicate) expression: recurse into
/// subqueries, leave the scalar structure alone.
fn canon_expr(e: &mut Expr) {
    match e {
        Expr::InSubquery { expr, subquery, .. } => {
            canon_expr(expr);
            **subquery = canonicalize_inner(subquery);
        }
        Expr::Exists { subquery, .. } => **subquery = canonicalize_inner(subquery),
        Expr::ScalarSubquery(subquery) => **subquery = canonicalize_inner(subquery),
        _ => mutate_children(e, &mut |ch| canon_expr(ch)),
    }
}

fn canon_table_ref(tr: &mut TableRef) {
    match tr {
        TableRef::Named { .. } => {}
        TableRef::Derived { query, .. } => canon_query(query),
        TableRef::Join {
            left,
            right,
            constraint,
            ..
        } => {
            canon_table_ref(left);
            canon_table_ref(right);
            if let JoinConstraint::On(e) = constraint {
                let on = std::mem::replace(e, Expr::Wildcard);
                *e = canon_predicate(on);
            }
        }
    }
}

/// Inline `WITH w AS (inner) SELECT * FROM w` and
/// `SELECT * FROM (inner) AS d` wrappers (the shapes the transform catalog
/// produces). `SELECT *` re-exports the inner result unchanged, so the
/// wrapper is the identity on results; the outer ORDER BY / LIMIT transfer
/// when the inner query carries none.
fn inline_wrappers(q: &mut Query) {
    loop {
        // outer ORDER BY must not name the wrapper binding (it would dangle
        // after inlining)
        if q.order_by
            .iter()
            .any(|o| !matches!(&o.expr, Expr::Column(c) if c.qualifier.is_none()))
        {
            return;
        }
        let Some(s) = q.as_select() else { return };
        if s.items.len() != 1
            || !matches!(s.items[0], SelectItem::Wildcard)
            || s.from.len() != 1
            || s.selection.is_some()
            || !s.group_by.is_empty()
            || s.having.is_some()
            || s.distinct
            || s.top.is_some()
        {
            return;
        }
        let inner: Query = match &s.from[0] {
            TableRef::Derived { query, .. } if q.ctes.is_empty() => (**query).clone(),
            TableRef::Named { name, alias: None } if q.ctes.len() == 1 => {
                let cte = &q.ctes[0];
                if cte.name.eq_ignore_ascii_case(name) && !uses_cte(&cte.query, &cte.name) {
                    (*cte.query).clone()
                } else {
                    return;
                }
            }
            _ => return,
        };
        if inner.limit.is_some() || !inner.order_by.is_empty() || !inner.ctes.is_empty() {
            return;
        }
        q.ctes = inner.ctes;
        q.body = inner.body;
        if q.order_by.is_empty() {
            q.order_by = inner.order_by;
        }
        if q.limit.is_none() {
            q.limit = inner.limit;
        }
        // loop: the inlined body may itself be a wrapper
    }
}

/// Does `q` reference a table named `name` anywhere (conservative check for
/// self-referencing CTE shapes)?
fn uses_cte(q: &Query, name: &str) -> bool {
    let mut found = false;
    fn walk_q(q: &Query, name: &str, found: &mut bool) {
        for cte in &q.ctes {
            walk_q(&cte.query, name, found);
        }
        walk_se(&q.body, name, found);
    }
    fn walk_se(se: &SetExpr, name: &str, found: &mut bool) {
        match se {
            SetExpr::Select(s) => {
                for tr in &s.from {
                    walk_tr(tr, name, found);
                }
            }
            SetExpr::SetOp { left, right, .. } => {
                walk_se(left, name, found);
                walk_se(right, name, found);
            }
        }
    }
    fn walk_tr(tr: &TableRef, name: &str, found: &mut bool) {
        match tr {
            TableRef::Named { name: n, .. } => {
                if n.eq_ignore_ascii_case(name) {
                    *found = true;
                }
            }
            TableRef::Derived { query, .. } => walk_q(query, name, found),
            TableRef::Join { left, right, .. } => {
                walk_tr(left, name, found);
                walk_tr(right, name, found);
            }
        }
    }
    walk_q(q, name, &mut found);
    found
}

// ---------------- predicate normalization ----------------

/// Normalize a boolean predicate: expand BETWEEN / IN-lists, push NOT to
/// the leaves, orient comparisons, flatten + sort + dedupe AND/OR chains.
pub fn canon_predicate(e: Expr) -> Expr {
    let expanded = expand(e);
    let nnf = push_not(expanded, false);
    sort_tree(nnf)
}

/// Expand sugared forms and recurse into subqueries.
fn expand(mut e: Expr) -> Expr {
    // bottom-up: children first
    mutate_children(&mut e, &mut |ch| {
        let owned = std::mem::replace(ch, Expr::Wildcard);
        *ch = expand(owned);
    });
    match e {
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let ge = (*expr).clone().compare(CompareOp::GtEq, *low);
            let le = (*expr).compare(CompareOp::LtEq, *high);
            let range = ge.and(le);
            if negated {
                Expr::Not(Box::new(range))
            } else {
                range
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } if !list.is_empty() => {
            let mut ors = list
                .into_iter()
                .map(|v| (*expr).clone().compare(CompareOp::Eq, v));
            let first = match ors.next() {
                Some(f) => f,
                None => return Expr::Literal(Literal::Bool(negated)),
            };
            let chain = ors.fold(first, |acc, p| acc.or(p));
            if negated {
                Expr::Not(Box::new(chain))
            } else {
                chain
            }
        }
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => Expr::InSubquery {
            expr,
            subquery: Box::new(canonicalize_inner(&subquery)),
            negated,
        },
        Expr::Exists { subquery, negated } => Expr::Exists {
            subquery: Box::new(canonicalize_inner(&subquery)),
            negated,
        },
        Expr::ScalarSubquery(subquery) => {
            Expr::ScalarSubquery(Box::new(canonicalize_inner(&subquery)))
        }
        other => other,
    }
}

/// Canonicalize a nested query *without* re-running alias renaming (the
/// top-level pass already renamed the whole tree with a global counter).
fn canonicalize_inner(q: &Query) -> Query {
    let mut q = q.clone();
    canon_query(&mut q);
    q
}

/// Push `NOT` to the leaves (Kleene-exact).
fn push_not(e: Expr, neg: bool) -> Expr {
    match e {
        Expr::Not(inner) => push_not(*inner, !neg),
        Expr::And(a, b) => {
            let (a, b) = (push_not(*a, neg), push_not(*b, neg));
            if neg {
                a.or(b)
            } else {
                a.and(b)
            }
        }
        Expr::Or(a, b) => {
            let (a, b) = (push_not(*a, neg), push_not(*b, neg));
            if neg {
                a.and(b)
            } else {
                a.or(b)
            }
        }
        Expr::Compare { op, left, right } => {
            let op = if neg { op.negated() } else { op };
            orient(Expr::Compare { op, left, right })
        }
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr,
            negated: negated ^ neg,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr,
            pattern,
            negated: negated ^ neg,
        },
        Expr::Exists { subquery, negated } => Expr::Exists {
            subquery,
            negated: negated ^ neg,
        },
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => Expr::InSubquery {
            expr,
            subquery,
            negated: negated ^ neg,
        },
        Expr::Literal(Literal::Bool(b)) => Expr::Literal(Literal::Bool(b ^ neg)),
        other => {
            if neg {
                Expr::Not(Box::new(other))
            } else {
                other
            }
        }
    }
}

/// Orient a comparison: literal operand to the right, column-column pairs
/// ordered; `flipped` preserves meaning exactly.
fn orient(e: Expr) -> Expr {
    let Expr::Compare { op, left, right } = e else {
        return e;
    };
    let flip = match (&*left, &*right) {
        (Expr::Literal(_), r) if !matches!(r, Expr::Literal(_)) => true,
        (Expr::Column(a), Expr::Column(b)) => a > b,
        _ => false,
    };
    if flip {
        Expr::Compare {
            op: op.flipped(),
            left: right,
            right: left,
        }
    } else {
        Expr::Compare { op, left, right }
    }
}

/// Flatten, sort and dedupe AND/OR chains bottom-up.
fn sort_tree(e: Expr) -> Expr {
    match e {
        Expr::And(_, _) => {
            let mut parts = Vec::new();
            flatten(e, true, &mut parts);
            rebuild(parts, true)
        }
        Expr::Or(_, _) => {
            let mut parts = Vec::new();
            flatten(e, false, &mut parts);
            rebuild(parts, false)
        }
        mut other => {
            mutate_children(&mut other, &mut |ch| {
                let owned = std::mem::replace(ch, Expr::Wildcard);
                *ch = sort_tree(owned);
            });
            other
        }
    }
}

fn flatten(e: Expr, conj: bool, out: &mut Vec<Expr>) {
    match (e, conj) {
        (Expr::And(a, b), true) => {
            flatten(*a, conj, out);
            flatten(*b, conj, out);
        }
        (Expr::Or(a, b), false) => {
            flatten(*a, conj, out);
            flatten(*b, conj, out);
        }
        (other, _) => out.push(sort_tree(other)),
    }
}

fn rebuild(mut parts: Vec<Expr>, conj: bool) -> Expr {
    parts.sort_by_key(print_expr);
    parts.dedup(); // idempotent in 3VL: x AND x ≡ x, x OR x ≡ x
    let mut it = parts.into_iter();
    let first = match it.next() {
        Some(f) => f,
        None => return Expr::Literal(Literal::Bool(conj)),
    };
    it.fold(first, |acc, p| if conj { acc.and(p) } else { acc.or(p) })
}

/// Visit the direct children of an expression mutably (not descending into
/// subqueries).
pub fn mutate_children(e: &mut Expr, f: &mut dyn FnMut(&mut Expr)) {
    match e {
        Expr::Column(_) | Expr::Literal(_) | Expr::Wildcard => {}
        Expr::Compare { left, right, .. } | Expr::Arith { left, right, .. } => {
            f(left);
            f(right);
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            f(a);
            f(b);
        }
        Expr::Not(x) | Expr::Neg(x) | Expr::Cast { expr: x, .. } => f(x),
        Expr::IsNull { expr, .. } => f(expr),
        Expr::Between {
            expr, low, high, ..
        } => {
            f(expr);
            f(low);
            f(high);
        }
        Expr::InList { expr, list, .. } => {
            f(expr);
            for v in list {
                f(v);
            }
        }
        Expr::InSubquery { expr, .. } => f(expr),
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
        Expr::Like { expr, pattern, .. } => {
            f(expr);
            f(pattern);
        }
        Expr::Function { args, .. } => {
            for a in args {
                f(a);
            }
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(op) = operand {
                f(op);
            }
            for (w, t) in branches {
                f(w);
                f(t);
            }
            if let Some(el) = else_expr {
                f(el);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squ_parser::parse;

    fn q(sql: &str) -> Query {
        match parse(sql).expect("parse") {
            squ_parser::Statement::Query(q) => q,
            _ => panic!("not a query"),
        }
    }

    fn same(a: &str, b: &str) -> bool {
        canonicalize(&q(a)) == canonicalize(&q(b))
    }

    #[test]
    fn conjunct_order_is_canonical() {
        assert!(same(
            "SELECT x FROM t WHERE a > 1 AND b < 2",
            "SELECT x FROM t WHERE b < 2 AND a > 1"
        ));
        assert!(!same(
            "SELECT x FROM t WHERE a > 1 AND b < 2",
            "SELECT x FROM t WHERE a > 1 OR b < 2"
        ));
    }

    #[test]
    fn between_and_in_expand() {
        assert!(same(
            "SELECT x FROM t WHERE x BETWEEN 1 AND 5",
            "SELECT x FROM t WHERE x >= 1 AND x <= 5"
        ));
        assert!(same(
            "SELECT x FROM t WHERE x IN (1, 2)",
            "SELECT x FROM t WHERE x = 1 OR x = 2"
        ));
    }

    #[test]
    fn de_morgan_normalizes() {
        assert!(same(
            "SELECT x FROM t WHERE a > 1 AND b < 2",
            "SELECT x FROM t WHERE NOT (NOT (a > 1) OR NOT (b < 2))"
        ));
    }

    #[test]
    fn comparison_orientation() {
        assert!(same(
            "SELECT x FROM t WHERE x > 5",
            "SELECT x FROM t WHERE 5 < x"
        ));
        assert!(same(
            "SELECT x FROM t WHERE a = b",
            "SELECT x FROM t WHERE b = a"
        ));
    }

    #[test]
    fn alias_renaming_is_positional() {
        assert!(same(
            "SELECT s.x FROM t AS s WHERE s.x > 1",
            "SELECT u.x FROM t AS u WHERE u.x > 1"
        ));
        // different structure must not unify
        assert!(!same(
            "SELECT s.x FROM t AS s WHERE s.x > 1",
            "SELECT s.y FROM t AS s WHERE s.x > 1"
        ));
    }

    #[test]
    fn wrappers_inline() {
        assert!(same(
            "SELECT x FROM t WHERE x > 1",
            "WITH w AS (SELECT x FROM t WHERE x > 1) SELECT * FROM w"
        ));
        assert!(same(
            "SELECT x FROM t WHERE x > 1",
            "SELECT * FROM (SELECT x FROM t WHERE x > 1) AS d"
        ));
    }

    #[test]
    fn order_without_limit_drops() {
        assert!(same("SELECT x FROM t ORDER BY x", "SELECT x FROM t"));
        assert!(!same(
            "SELECT x FROM t ORDER BY x LIMIT 2",
            "SELECT x FROM t LIMIT 2"
        ));
    }

    #[test]
    fn top_folds_into_limit() {
        assert!(same("SELECT TOP 3 x FROM t", "SELECT x FROM t LIMIT 3"));
    }

    #[test]
    fn correlated_aliases_do_not_capture() {
        // outer alias is renamed inside the subquery too; the inner table's
        // own binding shadows correctly
        assert!(same(
            "SELECT a.x FROM t AS a WHERE EXISTS (SELECT 1 FROM u WHERE u.y = a.x)",
            "SELECT b.x FROM t AS b WHERE EXISTS (SELECT 1 FROM u WHERE u.y = b.x)"
        ));
    }
}
