//! Predicate feasibility under SQL's three-valued logic.
//!
//! The engine lowers a boolean [`Expr`] into disjunctive normal form over a
//! small atom language (column-vs-literal comparisons, column-vs-column
//! comparisons, null tests, opaque residuals) and decides whether any
//! conjunction of atoms admits a satisfying row. Every decision is
//! *conservative*: constructs the domains cannot express become [`Atom::Opaque`]
//! residuals that are assumed satisfiable and never tautological, so
//! `never_true` / `always_true` answers of `true` are proofs while `false`
//! only means "could not prove".
//!
//! Three-valued logic is handled by tracking four *polarities* of a
//! predicate: `IsTrue` (evaluates to TRUE), `IsFalse`, `NotTrue` (FALSE or
//! UNKNOWN — the rows a `WHERE` filter rejects) and `NotFalse` (TRUE or
//! UNKNOWN). `NOT x` maps `IsTrue`→`IsFalse` and `NotTrue`→`NotFalse`,
//! which is exactly Kleene negation.

use squ_lexer::CompareOp;
use squ_parser::ast::{Expr, Literal};
use std::collections::BTreeMap;

/// Cap on the number of DNF branches explored before giving up (the
/// conservative answer is "satisfiable").
const MAX_BRANCHES: usize = 256;

/// A column identity as written in the query: `(qualifier, name)`, both
/// lower-cased. Distinct spellings of the same column (qualified vs bare)
/// get distinct keys, which only weakens the analysis, never unsounds it.
pub type ColKey = (Option<String>, String);

/// Lower-cased key for a column reference.
pub fn col_key(c: &squ_parser::ast::ColumnRef) -> ColKey {
    (
        c.qualifier.as_ref().map(|q| q.to_ascii_lowercase()),
        c.name.to_ascii_lowercase(),
    )
}

/// External facts the caller can vouch for. The analyzer itself assumes
/// nothing: witness generation guarantees id-like base-table columns are
/// never NULL, and [`crate::analyze`] translates that into `not_null` keys
/// scoped to the select being analyzed.
#[derive(Debug, Clone, Default)]
pub struct Assumptions {
    /// Column keys known to never hold NULL.
    pub not_null: std::collections::BTreeSet<ColKey>,
}

impl Assumptions {
    /// No external facts (sound for arbitrary databases).
    pub fn none() -> Self {
        Self::default()
    }
}

/// A literal value an atom can compare against.
#[derive(Debug, Clone, PartialEq)]
pub enum LitVal {
    /// Numeric constant.
    Num(f64),
    /// String constant.
    Str(String),
    /// Boolean constant.
    Bool(bool),
}

fn lit_val(l: &Literal) -> Option<LitVal> {
    match l {
        Literal::Number(n) => Some(LitVal::Num(*n)),
        Literal::String(s) => Some(LitVal::Str(s.clone())),
        Literal::Bool(b) => Some(LitVal::Bool(*b)),
        Literal::Null => None,
    }
}

/// Constraint polarity on an opaque residual expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpaquePol {
    /// The residual evaluates to TRUE.
    IsTrue,
    /// The residual evaluates to FALSE.
    IsFalse,
    /// FALSE or UNKNOWN.
    NotTrue,
    /// TRUE or UNKNOWN.
    NotFalse,
}

/// One conjunct of a DNF branch.
#[derive(Debug, Clone, PartialEq)]
pub enum Atom {
    /// `col op lit` evaluates to TRUE (implies `col` is non-NULL).
    CmpLit {
        /// Column key.
        col: ColKey,
        /// Comparison operator (column on the left).
        op: CompareOp,
        /// Literal operand.
        v: LitVal,
    },
    /// `a op b` between two distinct columns evaluates to TRUE (implies
    /// both are non-NULL).
    CmpCols {
        /// Left column key.
        a: ColKey,
        /// Operator.
        op: CompareOp,
        /// Right column key.
        b: ColKey,
    },
    /// `col IS NULL` holds.
    IsNull(ColKey),
    /// `col IS NOT NULL` holds.
    NotNull(ColKey),
    /// A construct outside the domains, keyed by its printed form so the
    /// same residual under opposite polarities still conflicts.
    Opaque {
        /// Stable structural key of the residual expression.
        key: String,
        /// Required truth region.
        pol: OpaquePol,
    },
    /// Unconditionally unsatisfiable (e.g. `NULL = NULL` required TRUE).
    Never,
}

/// The four Kleene truth regions a subformula can be required to hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// Must evaluate to TRUE.
    IsTrue,
    /// Must evaluate to FALSE.
    IsFalse,
    /// Must evaluate to FALSE or UNKNOWN (rejected by a WHERE).
    NotTrue,
    /// Must evaluate to TRUE or UNKNOWN.
    NotFalse,
}

impl Polarity {
    fn negate(self) -> Polarity {
        match self {
            Polarity::IsTrue => Polarity::IsFalse,
            Polarity::IsFalse => Polarity::IsTrue,
            Polarity::NotTrue => Polarity::NotFalse,
            Polarity::NotFalse => Polarity::NotTrue,
        }
    }

    /// Does the region include UNKNOWN?
    fn admits_unknown(self) -> bool {
        matches!(self, Polarity::NotTrue | Polarity::NotFalse)
    }

    fn opaque(self) -> OpaquePol {
        match self {
            Polarity::IsTrue => OpaquePol::IsTrue,
            Polarity::IsFalse => OpaquePol::IsFalse,
            Polarity::NotTrue => OpaquePol::NotTrue,
            Polarity::NotFalse => OpaquePol::NotFalse,
        }
    }
}

/// A DNF: satisfiable iff some branch (conjunction of atoms) is. The empty
/// branch `[]` is trivially satisfiable; the empty DNF is unsatisfiable.
pub type Dnf = Vec<Vec<Atom>>;

fn cross(a: Dnf, b: Dnf) -> Dnf {
    let mut out = Vec::new();
    for x in &a {
        for y in &b {
            if out.len() >= MAX_BRANCHES {
                // overflow: collapse to "anything goes" (conservative)
                return vec![vec![overflow_atom()]];
            }
            let mut branch = x.clone();
            branch.extend(y.iter().cloned());
            out.push(branch);
        }
    }
    out
}

fn union(mut a: Dnf, b: Dnf) -> Dnf {
    a.extend(b);
    if a.len() > MAX_BRANCHES {
        return vec![vec![overflow_atom()]];
    }
    a
}

/// Fresh satisfiable atom used when branch budgets overflow.
fn overflow_atom() -> Atom {
    Atom::Opaque {
        key: "\u{1}overflow".into(),
        pol: OpaquePol::NotFalse,
    }
}

fn trivially(sat: bool) -> Dnf {
    if sat {
        vec![Vec::new()]
    } else {
        Vec::new()
    }
}

/// Structural key for opaque residuals: the parser's printed form, which is
/// deterministic and span-independent.
fn opaque_key(e: &Expr) -> String {
    squ_parser::print_expr(e)
}

fn opaque(e: &Expr, pol: Polarity) -> Dnf {
    vec![vec![Atom::Opaque {
        key: opaque_key(e),
        pol: pol.opaque(),
    }]]
}

/// Evaluate `l op r` on two known literal values; `None` when the SQL
/// result is UNKNOWN or the values are cross-class (engine comparison of
/// mismatched classes yields UNKNOWN).
fn eval_lit_cmp(l: &LitVal, op: CompareOp, r: &LitVal) -> Option<bool> {
    use std::cmp::Ordering;
    let ord = match (l, r) {
        (LitVal::Num(a), LitVal::Num(b)) => a.partial_cmp(b)?,
        (LitVal::Str(a), LitVal::Str(b)) => a.cmp(b),
        (LitVal::Bool(a), LitVal::Bool(b)) => a.cmp(b),
        _ => return None,
    };
    Some(match op {
        CompareOp::Eq => ord == Ordering::Equal,
        CompareOp::NotEq => ord != Ordering::Equal,
        CompareOp::Lt => ord == Ordering::Less,
        CompareOp::LtEq => ord != Ordering::Greater,
        CompareOp::Gt => ord == Ordering::Greater,
        CompareOp::GtEq => ord != Ordering::Less,
    })
}

/// What does `col op col` (same column, hence equal, non-NULL values)
/// evaluate to?
fn same_col_holds(op: CompareOp) -> bool {
    matches!(op, CompareOp::Eq | CompareOp::LtEq | CompareOp::GtEq)
}

/// Lower `e` restricted to truth region `pol` into DNF.
pub fn to_dnf(e: &Expr, pol: Polarity) -> Dnf {
    match e {
        Expr::And(a, b) => match pol {
            // TRUE: both true. NotFalse: neither false.
            Polarity::IsTrue | Polarity::NotFalse => cross(to_dnf(a, pol), to_dnf(b, pol)),
            // FALSE: either false. NotTrue: either not-true.
            Polarity::IsFalse | Polarity::NotTrue => union(to_dnf(a, pol), to_dnf(b, pol)),
        },
        Expr::Or(a, b) => match pol {
            Polarity::IsTrue | Polarity::NotFalse => union(to_dnf(a, pol), to_dnf(b, pol)),
            Polarity::IsFalse | Polarity::NotTrue => cross(to_dnf(a, pol), to_dnf(b, pol)),
        },
        Expr::Not(inner) => to_dnf(inner, pol.negate()),
        Expr::Literal(l) => match l {
            Literal::Bool(b) => trivially(match pol {
                Polarity::IsTrue | Polarity::NotFalse => *b,
                Polarity::IsFalse | Polarity::NotTrue => !*b,
            }),
            Literal::Null => trivially(pol.admits_unknown()),
            // a bare number/string in boolean position: not a construct the
            // dialect produces; stay conservative
            _ => opaque(e, pol),
        },
        Expr::Compare { op, left, right } => compare_dnf(e, *op, left, right, pol),
        Expr::IsNull { expr, negated } => {
            // two-valued: IS NULL never yields UNKNOWN
            let want_null = match pol {
                Polarity::IsTrue | Polarity::NotFalse => !negated,
                Polarity::IsFalse | Polarity::NotTrue => *negated,
            };
            match &**expr {
                Expr::Column(c) => {
                    let k = col_key(c);
                    vec![vec![if want_null {
                        Atom::IsNull(k)
                    } else {
                        Atom::NotNull(k)
                    }]]
                }
                Expr::Literal(Literal::Null) => trivially(want_null),
                Expr::Literal(_) => trivially(!want_null),
                _ => opaque(e, pol),
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            // x BETWEEN l AND h  ≡  x >= l AND x <= h (3VL-exact)
            let ge = Expr::Compare {
                op: CompareOp::GtEq,
                left: expr.clone(),
                right: low.clone(),
            };
            let le = Expr::Compare {
                op: CompareOp::LtEq,
                left: expr.clone(),
                right: high.clone(),
            };
            let range = Expr::And(Box::new(ge), Box::new(le));
            let full = if *negated {
                Expr::Not(Box::new(range))
            } else {
                range
            };
            to_dnf(&full, pol)
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            // x IN (a, b, …) ≡ x = a OR x = b OR … (3VL-exact, incl. NULLs
            // in the list: `x = NULL` contributes UNKNOWN exactly as IN does)
            if list.is_empty() {
                // empty IN list: vacuously FALSE (negated: TRUE)
                let truth = *negated;
                return trivially(match pol {
                    Polarity::IsTrue | Polarity::NotFalse => truth,
                    Polarity::IsFalse | Polarity::NotTrue => !truth,
                });
            }
            let mut ors = list.iter().map(|v| Expr::Compare {
                op: CompareOp::Eq,
                left: expr.clone(),
                right: Box::new(v.clone()),
            });
            let first = match ors.next() {
                Some(f) => f,
                None => return trivially(pol.admits_unknown()),
            };
            let chain = ors.fold(first, |acc, p| Expr::Or(Box::new(acc), Box::new(p)));
            let full = if *negated {
                Expr::Not(Box::new(chain))
            } else {
                chain
            };
            to_dnf(&full, pol)
        }
        // Everything else — LIKE, subqueries, functions, CASE, arithmetic in
        // boolean position — is outside the domains.
        _ => opaque(e, pol),
    }
}

fn compare_dnf(whole: &Expr, op: CompareOp, left: &Expr, right: &Expr, pol: Polarity) -> Dnf {
    // Orient literal to the right.
    let (l, r, op) = match (left, right) {
        (Expr::Literal(_), e) if !matches!(e, Expr::Literal(_)) => (e, left, op.flipped()),
        _ => (left, right, op),
    };
    match (l, r) {
        (Expr::Column(c), Expr::Literal(lit)) => {
            let k = col_key(c);
            match lit_val(lit) {
                None => trivially(pol.admits_unknown()), // cmp with NULL: always UNKNOWN
                Some(v) => match pol {
                    Polarity::IsTrue => vec![vec![Atom::CmpLit { col: k, op, v }]],
                    Polarity::IsFalse => vec![vec![Atom::CmpLit {
                        col: k,
                        op: op.negated(),
                        v,
                    }]],
                    Polarity::NotTrue => vec![
                        vec![Atom::CmpLit {
                            col: k.clone(),
                            op: op.negated(),
                            v,
                        }],
                        vec![Atom::IsNull(k)],
                    ],
                    Polarity::NotFalse => vec![
                        vec![Atom::CmpLit {
                            col: k.clone(),
                            op,
                            v,
                        }],
                        vec![Atom::IsNull(k)],
                    ],
                },
            }
        }
        (Expr::Column(a), Expr::Column(b)) => {
            let (ka, kb) = (col_key(a), col_key(b));
            if ka == kb {
                // same column compared with itself: equal non-NULL values,
                // UNKNOWN when NULL
                let holds = same_col_holds(op);
                return match pol {
                    Polarity::IsTrue => {
                        if holds {
                            vec![vec![Atom::NotNull(ka)]]
                        } else {
                            Vec::new()
                        }
                    }
                    Polarity::IsFalse => {
                        if holds {
                            Vec::new()
                        } else {
                            vec![vec![Atom::NotNull(ka)]]
                        }
                    }
                    Polarity::NotTrue => {
                        if holds {
                            vec![vec![Atom::IsNull(ka)]]
                        } else {
                            trivially(true)
                        }
                    }
                    Polarity::NotFalse => {
                        if holds {
                            trivially(true)
                        } else {
                            vec![vec![Atom::IsNull(ka)]]
                        }
                    }
                };
            }
            match pol {
                Polarity::IsTrue => vec![vec![Atom::CmpCols { a: ka, op, b: kb }]],
                Polarity::IsFalse => vec![vec![Atom::CmpCols {
                    a: ka,
                    op: op.negated(),
                    b: kb,
                }]],
                Polarity::NotTrue => vec![
                    vec![Atom::CmpCols {
                        a: ka.clone(),
                        op: op.negated(),
                        b: kb.clone(),
                    }],
                    vec![Atom::IsNull(ka)],
                    vec![Atom::IsNull(kb)],
                ],
                Polarity::NotFalse => vec![
                    vec![Atom::CmpCols {
                        a: ka.clone(),
                        op,
                        b: kb.clone(),
                    }],
                    vec![Atom::IsNull(ka)],
                    vec![Atom::IsNull(kb)],
                ],
            }
        }
        (Expr::Literal(la), Expr::Literal(lb)) => match (lit_val(la), lit_val(lb)) {
            (Some(a), Some(b)) => match eval_lit_cmp(&a, op, &b) {
                Some(t) => trivially(match pol {
                    Polarity::IsTrue | Polarity::NotFalse => t,
                    Polarity::IsFalse | Polarity::NotTrue => !t,
                }),
                None => trivially(pol.admits_unknown()),
            },
            _ => trivially(pol.admits_unknown()),
        },
        _ => opaque(whole, pol),
    }
}

// ---------------- branch satisfiability ----------------

/// One-sided bound.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Bound {
    v: f64,
    open: bool,
}

/// A numeric interval with optional open endpoints; `None` = unbounded.
#[derive(Debug, Clone, Default)]
struct Interval {
    lo: Option<Bound>,
    hi: Option<Bound>,
}

impl Interval {
    fn tighten_lo(&mut self, v: f64, open: bool) {
        let better = match self.lo {
            None => true,
            Some(b) => v > b.v || (v == b.v && open && !b.open),
        };
        if better {
            self.lo = Some(Bound { v, open });
        }
    }

    fn tighten_hi(&mut self, v: f64, open: bool) {
        let better = match self.hi {
            None => true,
            Some(b) => v < b.v || (v == b.v && open && !b.open),
        };
        if better {
            self.hi = Some(Bound { v, open });
        }
    }

    fn is_empty(&self) -> bool {
        match (self.lo, self.hi) {
            (Some(lo), Some(hi)) => lo.v > hi.v || (lo.v == hi.v && (lo.open || hi.open)),
            _ => false,
        }
    }

    /// First integer admitted at-or-above the lower bound, if bounded.
    fn first_int(&self) -> Option<f64> {
        self.lo.map(|lo| {
            let mut n = lo.v.ceil();
            if n == lo.v && lo.open {
                n += 1.0;
            }
            n
        })
    }

    /// Is the interval a single point?
    fn singleton(&self) -> Option<f64> {
        match (self.lo, self.hi) {
            (Some(lo), Some(hi)) if lo.v == hi.v && !lo.open && !hi.open => Some(lo.v),
            _ => None,
        }
    }
}

/// Per-equivalence-class value constraints.
#[derive(Debug, Clone, Default)]
struct ClassDom {
    interval: Interval,
    /// Excluded single numeric points (from `<>`).
    excluded: Vec<f64>,
    /// Required string constant, if any.
    str_eq: Option<String>,
    /// Excluded string constants.
    str_ne: Vec<String>,
    /// Required boolean constant.
    bool_eq: Option<bool>,
    /// Excluded boolean constant.
    bool_ne: Option<bool>,
    /// Class must be NULL.
    must_null: bool,
    /// Class must be non-NULL (any comparison atom also sets this).
    must_not_null: bool,
    /// The class carries at least one value constraint (comparison atom).
    compared: bool,
}

impl ClassDom {
    fn contradictory(&self) -> bool {
        if self.must_null && (self.must_not_null || self.compared) {
            return true;
        }
        if self.interval.is_empty() {
            return true;
        }
        if let Some(p) = self.interval.singleton() {
            if self.excluded.contains(&p) {
                return true;
            }
        }
        if let Some(s) = &self.str_eq {
            if self.str_ne.iter().any(|n| n == s) {
                return true;
            }
            // a string pin plus any numeric bound: cross-class comparison is
            // UNKNOWN, so a numeric atom on a string-pinned class can't hold
            if self.interval.lo.is_some() || self.interval.hi.is_some() {
                return true;
            }
        }
        if let (Some(b), Some(n)) = (self.bool_eq, self.bool_ne) {
            if b == n {
                return true;
            }
        }
        // pins from different value classes cannot coexist
        let classes = [
            self.interval.lo.is_some() || self.interval.hi.is_some(),
            self.str_eq.is_some(),
            self.bool_eq.is_some(),
        ];
        if classes.iter().filter(|c| **c).count() > 1 {
            return true;
        }
        false
    }

    /// How many distinct *integers* (up to `want`) can realize this class?
    /// Integers are valid for every numeric SQL type, so a count of `n`
    /// here proves `n` concrete values exist — the must-exist direction
    /// conviction premises need. With an unbounded side there are always
    /// enough; a bounded interval is enumerated (the loop either counts a
    /// value or skips an excluded point, so it runs at most
    /// `want + excluded.len()` useful steps).
    fn admissible_ints(&self, want: usize, exclude_zero: bool) -> usize {
        if self.must_null || self.str_eq.is_some() || self.bool_eq.is_some() || self.contradictory()
        {
            return 0;
        }
        let iv = &self.interval;
        let (Some(_), Some(hi)) = (iv.lo, iv.hi) else {
            // a side is unbounded: infinitely many integers remain past the
            // finitely many excluded points (and past zero)
            return want;
        };
        let mut n = match iv.first_int() {
            Some(n) => n,
            None => return want,
        };
        let mut count = 0;
        let mut skips = self.excluded.len() + usize::from(exclude_zero);
        while count < want && (n < hi.v || (n == hi.v && !hi.open)) {
            let blocked = (exclude_zero && n == 0.0) || self.excluded.contains(&n);
            if blocked {
                if skips == 0 {
                    break; // defensive: cannot happen, but bounds the loop
                }
                skips -= 1;
            } else {
                count += 1;
            }
            n += 1.0;
        }
        count
    }

    /// Do at least two distinct concrete values realize the class (used by
    /// the MIN/MAX and AVG swap convictors)? Integer-aware, so the answer
    /// stays sound for INT columns: `x > 4 AND x < 6` does *not* allow two
    /// values.
    fn allows_two_values(&self) -> bool {
        self.admissible_ints(2, false) >= 2
    }

    /// Does some non-zero concrete value realize the class (used by the
    /// SUM/AVG swap convictor)?
    fn allows_nonzero(&self) -> bool {
        if let Some(p) = self.interval.singleton() {
            // an exact non-integer pin still counts (e.g. `x = 2.5`)
            return p != 0.0 && !self.contradictory() && self.admits_numeric();
        }
        self.admissible_ints(1, true) >= 1
    }

    /// Can some concrete value (or NULL, when required) realize this class
    /// in isolation? Pins of any type qualify; bounded numeric intervals
    /// must admit an integer so the answer is sound for INT columns.
    fn constructive(&self) -> bool {
        if self.contradictory() {
            return false;
        }
        if self.must_null || self.str_eq.is_some() || self.bool_eq.is_some() {
            return true;
        }
        if self.interval.lo.is_none() && self.interval.hi.is_none() {
            return true; // unconstrained (string/bool exclusions always leave values)
        }
        if let Some(p) = self.interval.singleton() {
            return !self.excluded.contains(&p);
        }
        self.admissible_ints(1, false) >= 1
    }

    fn admits_numeric(&self) -> bool {
        self.str_eq.is_none() && self.bool_eq.is_none() && !self.must_null
    }
}

/// Union-find over column keys.
struct Classes {
    parent: Vec<usize>,
    keys: BTreeMap<ColKey, usize>,
}

impl Classes {
    fn new() -> Self {
        Classes {
            parent: Vec::new(),
            keys: BTreeMap::new(),
        }
    }

    fn id(&mut self, k: &ColKey) -> usize {
        if let Some(i) = self.keys.get(k) {
            return *i;
        }
        let i = self.parent.len();
        self.parent.push(i);
        self.keys.insert(k.clone(), i);
        i
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            let p = self.parent[i];
            self.parent[i] = self.parent[p];
            i = p;
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// The solved form of one satisfiable-looking branch.
pub struct BranchModel {
    classes: Classes,
    doms: BTreeMap<usize, ClassDom>,
}

impl BranchModel {
    fn dom(&mut self, root: usize) -> &mut ClassDom {
        self.doms.entry(root).or_default()
    }

    /// Domain facts for a column key, if the branch constrains it.
    fn class_dom(&mut self, k: &ColKey) -> ClassDom {
        let i = self.classes.id(k);
        let r = self.classes.find(i);
        self.doms.get(&r).cloned().unwrap_or_default()
    }

    /// Could `col` take two distinct values in this branch?
    pub fn allows_two_values(&mut self, k: &ColKey) -> bool {
        self.class_dom(k).allows_two_values()
    }

    /// Could `col` take a non-zero numeric value in this branch?
    pub fn allows_nonzero(&mut self, k: &ColKey) -> bool {
        self.class_dom(k).allows_nonzero()
    }

    /// Is every class of the model realizable by concrete values in
    /// isolation? (See [`any_constructive`].)
    pub(crate) fn is_constructive(&self) -> bool {
        self.doms.values().all(|d| d.constructive())
    }

    /// The single constant `col` is pinned to, if any.
    pub fn pinned_value(&mut self, k: &ColKey) -> Option<LitVal> {
        let d = self.class_dom(k);
        if let Some(p) = d.interval.singleton() {
            return Some(LitVal::Num(p));
        }
        if let Some(s) = d.str_eq {
            return Some(LitVal::Str(s));
        }
        d.bool_eq.map(LitVal::Bool)
    }
}

/// Decide satisfiability of one branch; `Some(model)` when no contradiction
/// was found (an over-approximation: opaque residuals are trusted).
pub fn solve_branch(branch: &[Atom], assume: &Assumptions) -> Option<BranchModel> {
    let mut cls = Classes::new();
    // pass 1: union equality classes
    for a in branch {
        if let Atom::CmpCols {
            a: x,
            op: CompareOp::Eq,
            b: y,
        } = a
        {
            let (i, j) = (cls.id(x), cls.id(y));
            cls.union(i, j);
        }
    }
    let mut model = BranchModel {
        classes: cls,
        doms: BTreeMap::new(),
    };
    let mut col_cmps: Vec<(ColKey, CompareOp, ColKey)> = Vec::new();
    let mut opaques: BTreeMap<String, Vec<OpaquePol>> = BTreeMap::new();
    // pass 2: accumulate per-class domains
    for a in branch {
        match a {
            Atom::Never => return None,
            Atom::CmpLit { col, op, v } => {
                let i = model.classes.id(col);
                let r = model.classes.find(i);
                let d = model.dom(r);
                d.compared = true;
                d.must_not_null = true;
                match v {
                    LitVal::Num(n) => match op {
                        CompareOp::Eq => {
                            d.interval.tighten_lo(*n, false);
                            d.interval.tighten_hi(*n, false);
                        }
                        CompareOp::NotEq => d.excluded.push(*n),
                        CompareOp::Lt => d.interval.tighten_hi(*n, true),
                        CompareOp::LtEq => d.interval.tighten_hi(*n, false),
                        CompareOp::Gt => d.interval.tighten_lo(*n, true),
                        CompareOp::GtEq => d.interval.tighten_lo(*n, false),
                    },
                    LitVal::Str(s) => match op {
                        CompareOp::Eq => match &d.str_eq {
                            Some(prev) if prev != s => return None,
                            _ => d.str_eq = Some(s.clone()),
                        },
                        CompareOp::NotEq => d.str_ne.push(s.clone()),
                        // ordered string comparisons: only record non-nullness
                        _ => {}
                    },
                    LitVal::Bool(b) => match op {
                        CompareOp::Eq => match d.bool_eq {
                            Some(prev) if prev != *b => return None,
                            _ => d.bool_eq = Some(*b),
                        },
                        CompareOp::NotEq => d.bool_ne = Some(*b),
                        _ => {}
                    },
                }
            }
            Atom::CmpCols { a: x, op, b: y } => {
                for k in [x, y] {
                    let i = model.classes.id(k);
                    let r = model.classes.find(i);
                    let d = model.dom(r);
                    d.compared = true;
                    d.must_not_null = true;
                }
                if *op != CompareOp::Eq {
                    col_cmps.push((x.clone(), *op, y.clone()));
                }
            }
            Atom::IsNull(k) => {
                if assume.not_null.contains(k) {
                    return None;
                }
                let i = model.classes.id(k);
                let r = model.classes.find(i);
                model.dom(r).must_null = true;
            }
            Atom::NotNull(k) => {
                let i = model.classes.id(k);
                let r = model.classes.find(i);
                model.dom(r).must_not_null = true;
            }
            Atom::Opaque { key, pol } => opaques.entry(key.clone()).or_default().push(*pol),
        }
    }
    // per-class contradictions
    let roots: Vec<usize> = model.doms.keys().copied().collect();
    for r in roots {
        if model.doms[&r].contradictory() {
            return None;
        }
    }
    // ordered comparisons between classes: refute when the intervals make
    // the relation impossible, and same-class irreflexive ops
    let mut order_edges: Vec<(usize, usize, bool)> = Vec::new(); // (lo, hi, strict)
    for (x, op, y) in col_cmps {
        let (ix, iy) = (model.classes.id(&x), model.classes.id(&y));
        let (rx, ry) = (model.classes.find(ix), model.classes.find(iy));
        if rx == ry {
            if !same_col_holds(op) {
                return None;
            }
            continue;
        }
        match op {
            CompareOp::Lt => order_edges.push((rx, ry, true)),
            CompareOp::LtEq => order_edges.push((rx, ry, false)),
            CompareOp::Gt => order_edges.push((ry, rx, true)),
            CompareOp::GtEq => order_edges.push((ry, rx, false)),
            CompareOp::Eq | CompareOp::NotEq => {}
        }
        let dx = model.doms.get(&rx).cloned().unwrap_or_default();
        let dy = model.doms.get(&ry).cloned().unwrap_or_default();
        if let (Some(px), Some(py)) = (dx.interval.singleton(), dy.interval.singleton()) {
            match eval_lit_cmp(&LitVal::Num(px), op, &LitVal::Num(py)) {
                Some(true) => {}
                _ => return None,
            }
            continue;
        }
        // x < y impossible when min(x) >= max(y) etc.
        let impossible = match op {
            CompareOp::Lt | CompareOp::LtEq => match (dx.interval.lo, dy.interval.hi) {
                (Some(lo), Some(hi)) => {
                    lo.v > hi.v || (lo.v == hi.v && (op == CompareOp::Lt || lo.open || hi.open))
                }
                _ => false,
            },
            CompareOp::Gt | CompareOp::GtEq => match (dx.interval.hi, dy.interval.lo) {
                (Some(hi), Some(lo)) => {
                    hi.v < lo.v || (hi.v == lo.v && (op == CompareOp::Gt || hi.open || lo.open))
                }
                _ => false,
            },
            CompareOp::NotEq | CompareOp::Eq => false,
        };
        if impossible {
            return None;
        }
    }
    // a cycle of `<`/`<=` edges containing at least one strict edge is
    // unsatisfiable (`a < b AND b < a`, or longer chains); Floyd–Warshall
    // over the tiny class graph, tracking "some path edge was strict"
    if !order_edges.is_empty() {
        let mut idx: BTreeMap<usize, usize> = BTreeMap::new();
        for (f, t, _) in &order_edges {
            let next = idx.len();
            idx.entry(*f).or_insert(next);
            let next = idx.len();
            idx.entry(*t).or_insert(next);
        }
        let n = idx.len();
        let mut reach = vec![vec![None::<bool>; n]; n];
        for (f, t, s) in &order_edges {
            let (fi, ti) = (idx[f], idx[t]);
            let cur = reach[fi][ti].unwrap_or(false);
            reach[fi][ti] = Some(cur || *s);
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    if let (Some(a), Some(b)) = (reach[i][k], reach[k][j]) {
                        let cur = reach[i][j].unwrap_or(false);
                        reach[i][j] = Some(cur || a || b);
                    }
                }
            }
        }
        for (i, row) in reach.iter().enumerate() {
            if row[i] == Some(true) {
                return None;
            }
        }
    }
    // opaque residual conflicts: the same expression in the same row has one
    // value, so incompatible truth regions refute the branch
    for pols in opaques.values() {
        let is_true = pols.contains(&OpaquePol::IsTrue);
        let is_false = pols.contains(&OpaquePol::IsFalse);
        let not_true = pols.contains(&OpaquePol::NotTrue);
        let not_false = pols.contains(&OpaquePol::NotFalse);
        if (is_true && (is_false || not_true)) || (is_false && not_false) {
            return None;
        }
    }
    // assumptions: not-null columns with must_null already rejected above
    Some(model)
}

/// Is any branch of `dnf` satisfiable? Returns the first satisfiable
/// branch's model. This is a *may* answer (an over-approximation): opaque
/// residuals are trusted, so `Some` does not prove rows exist.
pub fn any_satisfiable(dnf: &Dnf, assume: &Assumptions) -> Option<BranchModel> {
    dnf.iter().find_map(|b| solve_branch(b, assume))
}

/// Like [`any_satisfiable`], but a *must* answer: the branch may contain no
/// opaque residuals and every class must be realizable by a concrete
/// (integer-friendly) value, so `Some` proves rows satisfying the branch
/// exist. This is the premise inequivalence convictions need. Ordered
/// column-column chains longer than the pairwise interval check covers
/// would be a blind spot, but the workload's generated predicates compare
/// columns only against literals (column pairs appear under equality,
/// which the union-find solves exactly).
pub fn any_constructive(dnf: &Dnf, assume: &Assumptions) -> Option<BranchModel> {
    dnf.iter()
        .filter(|b| !b.iter().any(|a| matches!(a, Atom::Opaque { .. })))
        .find_map(|b| {
            let m = solve_branch(b, assume)?;
            if m.is_constructive() {
                Some(m)
            } else {
                None
            }
        })
}

/// Proof that `e` can never evaluate to TRUE on any row (no assumptions
/// beyond `assume`). `false` means "could not prove", not "can be true".
pub fn never_true(e: &Expr, assume: &Assumptions) -> bool {
    any_satisfiable(&to_dnf(e, Polarity::IsTrue), assume).is_none()
}

/// Proof that `e` evaluates to TRUE on every row (never FALSE nor UNKNOWN)
/// under `assume`.
pub fn always_true(e: &Expr, assume: &Assumptions) -> bool {
    any_satisfiable(&to_dnf(e, Polarity::NotTrue), assume).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use squ_parser::parse;

    fn where_of(sql: &str) -> Expr {
        let stmt = parse(sql).expect("parse");
        let q = match stmt {
            squ_parser::Statement::Query(q) => q,
            _ => panic!("not a query"),
        };
        q.as_select()
            .expect("select")
            .selection
            .clone()
            .expect("where")
    }

    fn nt(pred: &str) -> bool {
        never_true(
            &where_of(&format!("SELECT x FROM t WHERE {pred}")),
            &Assumptions::none(),
        )
    }

    fn at(pred: &str) -> bool {
        always_true(
            &where_of(&format!("SELECT x FROM t WHERE {pred}")),
            &Assumptions::none(),
        )
    }

    #[test]
    fn interval_contradictions() {
        assert!(nt("x > 5 AND x < 3"));
        assert!(nt("x > 5 AND x <= 5"));
        assert!(nt("x = 4 AND x = 7"));
        assert!(nt("x = 4 AND x <> 4"));
        assert!(nt("x BETWEEN 10 AND 2"));
        assert!(!nt("x > 5 AND x < 7"));
        assert!(!nt("x >= 5 AND x <= 5"));
    }

    #[test]
    fn null_semantics() {
        assert!(nt("x = NULL"));
        assert!(nt("x <> NULL"));
        assert!(nt("x IS NULL AND x > 3"));
        assert!(nt("x IS NULL AND x IS NOT NULL"));
        assert!(!nt("x IS NULL OR x > 3"));
    }

    #[test]
    fn equality_chains() {
        assert!(nt("a = b AND b = 5 AND a > 7"));
        assert!(nt("a = b AND b = c AND a = 1 AND c = 2"));
        assert!(!nt("a = b AND b = 5 AND a > 4"));
        assert!(nt("a < b AND b < a"));
        assert!(nt("a < a"));
        assert!(!nt("a <= a"));
        assert!(nt("a > 10 AND b < 5 AND a < b"));
    }

    #[test]
    fn disjunctions_split() {
        assert!(nt("(x > 5 AND x < 3) OR (x = 1 AND x = 2)"));
        assert!(!nt("(x > 5 AND x < 3) OR x = 1"));
        assert!(nt("NOT (x <= 5 OR x >= 3)"));
    }

    #[test]
    fn string_and_bool_domains() {
        assert!(nt("s = 'a' AND s = 'b'"));
        assert!(!nt("s = 'a' AND s <> 'b'"));
        assert!(nt("s = 'a' AND s <> 'a'"));
        assert!(nt("b0 = TRUE AND b0 = FALSE"));
        assert!(nt("s = 'a' AND s > 5"));
    }

    #[test]
    fn tautologies_need_not_null() {
        // x = x is UNKNOWN on NULL, so not always-true without assumptions
        assert!(!at("x = x"));
        let mut a = Assumptions::none();
        a.not_null.insert((None, "x".into()));
        let e = where_of("SELECT x FROM t WHERE x = x");
        assert!(always_true(&e, &a));
        // constants
        assert!(at("1 < 2"));
        assert!(!at("2 < 1"));
        assert!(at("x = 3 OR x <> 3 OR x IS NULL"));
        assert!(!at("x = 3 OR x <> 3"));
    }

    #[test]
    fn opaque_residuals_are_conservative() {
        assert!(!nt("x LIKE 'a%'"));
        assert!(!at("x LIKE 'a%' OR 1 = 1") || at("1 = 1"));
        // same residual under conflicting polarities refutes
        assert!(nt("x LIKE 'a%' AND NOT (x LIKE 'a%')"));
        // different residuals never conflict
        assert!(!nt("x LIKE 'a%' AND NOT (x LIKE 'b%')"));
    }

    #[test]
    fn in_lists() {
        assert!(nt("x IN (1, 2) AND x = 3"));
        assert!(!nt("x IN (1, 2) AND x = 2"));
        assert!(nt("x IN (1, 2) AND x NOT IN (1, 2, 3)"));
    }

    #[test]
    fn assumptions_refute_is_null() {
        let mut a = Assumptions::none();
        a.not_null.insert((None, "id".into()));
        let e = where_of("SELECT x FROM t WHERE id IS NULL");
        assert!(never_true(&e, &a));
        let e2 = where_of("SELECT x FROM t WHERE other IS NULL");
        assert!(!never_true(&e2, &a));
    }
}
