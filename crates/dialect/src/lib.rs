//! # squ-dialect — the SQL dialect matrix
//!
//! One table of every per-dialect decision the frontend makes: quoting
//! styles, `LIMIT n` vs `TOP n`, the string-concatenation operator, the
//! scalar/aggregate function catalog (with per-dialect spellings), CAST
//! type-name aliases, and reserved-word lists. The lexer, parser,
//! printer, binder, linter, task builders, and fuzzer all consume this
//! crate instead of dispatching on a dialect themselves — the xtask
//! `lint` step rejects dialect dispatch outside this module, so the
//! matrix below is the single source of truth.
//!
//! [`Dialect::Squ`] is the benchmark's permissive union dialect: it
//! accepts everything every concrete dialect accepts (both quote styles,
//! both `LIMIT` and `TOP`, the whole function catalog), and is
//! byte-for-byte the behavior the pipeline had before dialects existed.
//!
//! ```
//! use squ_dialect::Dialect;
//! assert!(Dialect::Tsql.supports_top() && !Dialect::Tsql.supports_limit());
//! assert!(Dialect::Mysql.accepts_quote('`') && !Dialect::Mysql.accepts_quote('"'));
//! assert_eq!(Dialect::Tsql.function_spelling("LENGTH"), Some("LEN"));
//! ```

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// A SQL dialect understood by the frontend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Dialect {
    /// The benchmark's permissive union dialect (the default everywhere).
    Squ,
    /// SQLite: `"id"`, `` `id` `` and `[id]` quoting, `LIMIT`, `||`.
    Sqlite,
    /// PostgreSQL: `"id"` quoting only, `LIMIT`, `||`.
    Postgres,
    /// MySQL: `` `id` `` quoting, `#` line comments, `LIMIT`, `CONCAT()`.
    Mysql,
    /// T-SQL (SQL Server / CasJobs): `[id]` and `"id"` quoting, `TOP`,
    /// `CONCAT()`, `#temp`/`@var` word characters.
    Tsql,
}

impl Dialect {
    /// Every dialect, Squ first (canonical order).
    pub const ALL: [Dialect; 5] = [
        Dialect::Squ,
        Dialect::Sqlite,
        Dialect::Postgres,
        Dialect::Mysql,
        Dialect::Tsql,
    ];

    /// The four concrete (non-union) dialects, in canonical order. The
    /// translation task draws its ordered source→target pairs from here.
    pub const CONCRETE: [Dialect; 4] = [
        Dialect::Sqlite,
        Dialect::Postgres,
        Dialect::Mysql,
        Dialect::Tsql,
    ];

    /// Lowercase names, aligned with [`Dialect::ALL`] — the values
    /// `--dialect` and the `/eval` `dialect` field accept.
    pub const NAMES: [&'static str; 5] = ["squ", "sqlite", "postgres", "mysql", "tsql"];

    /// The dialect's lowercase name.
    pub fn name(self) -> &'static str {
        Dialect::NAMES[self.index()]
    }

    /// Look a dialect up by name, case-insensitively.
    pub fn by_name(name: &str) -> Option<Dialect> {
        let lower = name.to_ascii_lowercase();
        Dialect::ALL.into_iter().find(|d| d.name() == lower)
    }

    /// Canonical position in [`Dialect::ALL`] (used to index matrices).
    fn index(self) -> usize {
        match self {
            Dialect::Squ => 0,
            Dialect::Sqlite => 1,
            Dialect::Postgres => 2,
            Dialect::Mysql => 3,
            Dialect::Tsql => 4,
        }
    }

    // ---------------- lexing ----------------

    /// Is `open` an identifier-quote opener in this dialect?
    /// (`"` double quote, `[` bracket, `` ` `` backtick.)
    pub fn accepts_quote(self, open: char) -> bool {
        const QUOTES: [&str; 5] = ["\"[", "\"[`", "\"", "`", "\"["];
        QUOTES[self.index()].contains(open)
    }

    /// The dialect's canonical identifier-quote pair, used by the
    /// dialect printer when an identifier must be quoted.
    pub fn canonical_quote(self) -> (char, char) {
        const PAIRS: [(char, char); 5] =
            [('"', '"'), ('"', '"'), ('"', '"'), ('`', '`'), ('[', ']')];
        PAIRS[self.index()]
    }

    /// Does `#` start a line comment (MySQL)?
    pub fn hash_line_comments(self) -> bool {
        matches!(self, Dialect::Mysql)
    }

    /// May `#`, `@`, `$` appear inside words? (Squ keeps the permissive
    /// CasJobs behavior — `#tmp` temp tables, `@vars`; T-SQL shares it.)
    pub fn word_sigils(self) -> bool {
        matches!(self, Dialect::Squ | Dialect::Tsql)
    }

    // ---------------- parsing / printing ----------------

    /// Is `LIMIT n` accepted at the end of a query?
    pub fn supports_limit(self) -> bool {
        !matches!(self, Dialect::Tsql)
    }

    /// Is `SELECT TOP n …` accepted?
    pub fn supports_top(self) -> bool {
        matches!(self, Dialect::Squ | Dialect::Tsql)
    }

    /// Is `||` a string-concatenation operator? (Where it is not, the
    /// printer and translator spell concatenation as `CONCAT(a, b)`.)
    pub fn concat_operator(self) -> bool {
        matches!(self, Dialect::Squ | Dialect::Sqlite | Dialect::Postgres)
    }

    // ---------------- functions ----------------

    /// Does this dialect accept the function spelling `name`
    /// (case-insensitive)? Squ accepts every spelling in the catalog; a
    /// concrete dialect accepts exactly its own spelling (`LEN` is known
    /// to T-SQL, `LENGTH` is not — the catalogs are deliberately strict
    /// so translations and lints are unambiguous).
    pub fn knows_function(self, name: &str) -> bool {
        let upper = name.to_ascii_uppercase();
        match catalog_row(&upper) {
            None => false,
            Some(_) if matches!(self, Dialect::Squ) => true,
            Some(row) => row.names[self.index()].is_some_and(|n| n == upper),
        }
    }

    /// The dialect's spelling of the catalog function `name`
    /// (case-insensitive lookup; `None` when the catalog does not list
    /// the function at all). For Squ this is the canonical spelling.
    pub fn function_spelling(self, name: &str) -> Option<&'static str> {
        let upper = name.to_ascii_uppercase();
        let row = catalog_row(&upper)?;
        Some(row.names[self.index()].unwrap_or(row.canonical))
    }

    // ---------------- types ----------------

    /// The dialect's spelling of a canonical scalar type in `CAST(x AS
    /// t)`. Canonical names are the binder's: `INT`, `FLOAT`, `VARCHAR`,
    /// `BOOLEAN`. Names outside the matrix resolve to `None`.
    pub fn type_spelling(self, canonical: &str) -> Option<&'static str> {
        let upper = canonical.to_ascii_uppercase();
        TYPE_MATRIX
            .iter()
            .find(|(name, _)| *name == upper)
            .map(|(_, spellings)| spellings[self.index()])
    }

    /// Identifiers that are reserved words in this dialect but plain
    /// identifiers in Squ (uppercase; drives the SQU123 lint).
    pub fn reserved_words(self) -> &'static [&'static str] {
        const RESERVED: [&[&str]; 5] = [
            &[],
            &[],
            &["USER", "WINDOW", "LATERAL", "CURRENT_DATE"],
            &["RANK", "GROUPS", "WINDOW", "SYSTEM"],
            &["PLAN", "FILE", "PUBLIC", "RULE"],
        ];
        RESERVED[self.index()]
    }

    /// Is `ident` (case-insensitive) a reserved word of this dialect?
    pub fn is_reserved(self, ident: &str) -> bool {
        let upper = ident.to_ascii_uppercase();
        self.reserved_words().contains(&upper.as_str())
    }
}

/// The result type a catalog function produces — mirrors what the
/// binder needs to type-check expressions without hard-coding names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FunctionResult {
    /// Always an integer (`COUNT`, `LENGTH`, …).
    Int,
    /// Always a float (`AVG` on any input, unknown numerics).
    Float,
    /// Always text (`UPPER`, `CONCAT`, …).
    Text,
    /// The type of the first argument (`SUM`, `MIN`, `MAX`).
    FirstArg,
}

/// One catalog row: the canonical (Squ) spelling, the result type,
/// whether the function aggregates, and the per-dialect spellings
/// aligned with [`Dialect::ALL`] (`None` = the dialect lacks it).
pub struct FunctionSpec {
    /// Canonical (Squ) spelling, uppercase.
    pub canonical: &'static str,
    /// Result type for the binder.
    pub result: FunctionResult,
    /// Is this an aggregate function?
    pub aggregate: bool,
    /// Per-dialect spellings aligned with [`Dialect::ALL`].
    pub names: [Option<&'static str>; 5],
}

/// Shorthand: a function spelled the same in every dialect.
const fn everywhere(
    canonical: &'static str,
    result: FunctionResult,
    aggregate: bool,
) -> FunctionSpec {
    FunctionSpec {
        canonical,
        result,
        aggregate,
        names: [
            Some(canonical),
            Some(canonical),
            Some(canonical),
            Some(canonical),
            Some(canonical),
        ],
    }
}

/// The function catalog. Per-dialect spellings only diverge where the
/// real engines do (`LEN` is the T-SQL spelling of `LENGTH`, `SUBSTR`
/// the SQLite one of `SUBSTRING`, …); every spelling in the matrix is
/// implemented identically by `squ-engine` and `engine::reference`, so
/// renamed translations stay row-for-row verifiable.
pub const FUNCTIONS: &[FunctionSpec] = &[
    everywhere("COUNT", FunctionResult::Int, true),
    everywhere("SUM", FunctionResult::FirstArg, true),
    // AVG follows its argument type here because the binder always has —
    // the type lattice treats Int AVG as Int, matching the engines
    everywhere("AVG", FunctionResult::FirstArg, true),
    everywhere("MIN", FunctionResult::FirstArg, true),
    everywhere("MAX", FunctionResult::FirstArg, true),
    FunctionSpec {
        canonical: "UPPER",
        result: FunctionResult::Text,
        aggregate: false,
        names: [
            Some("UPPER"),
            Some("UPPER"),
            Some("UPPER"),
            Some("UCASE"),
            Some("UPPER"),
        ],
    },
    FunctionSpec {
        canonical: "LOWER",
        result: FunctionResult::Text,
        aggregate: false,
        names: [
            Some("LOWER"),
            Some("LOWER"),
            Some("LOWER"),
            Some("LCASE"),
            Some("LOWER"),
        ],
    },
    everywhere("TRIM", FunctionResult::Text, false),
    everywhere("LTRIM", FunctionResult::Text, false),
    everywhere("RTRIM", FunctionResult::Text, false),
    everywhere("REPLACE", FunctionResult::Text, false),
    everywhere("CONCAT", FunctionResult::Text, false),
    FunctionSpec {
        canonical: "LENGTH",
        result: FunctionResult::Int,
        aggregate: false,
        names: [
            Some("LENGTH"),
            Some("LENGTH"),
            Some("LENGTH"),
            Some("LENGTH"),
            Some("LEN"),
        ],
    },
    FunctionSpec {
        canonical: "SUBSTRING",
        result: FunctionResult::Text,
        aggregate: false,
        names: [
            Some("SUBSTRING"),
            Some("SUBSTR"),
            Some("SUBSTRING"),
            Some("SUBSTRING"),
            Some("SUBSTRING"),
        ],
    },
    FunctionSpec {
        canonical: "LEFT",
        result: FunctionResult::Text,
        aggregate: false,
        names: [Some("LEFT"), None, Some("LEFT"), Some("LEFT"), Some("LEFT")],
    },
    FunctionSpec {
        canonical: "RIGHT",
        result: FunctionResult::Text,
        aggregate: false,
        names: [
            Some("RIGHT"),
            None,
            Some("RIGHT"),
            Some("RIGHT"),
            Some("RIGHT"),
        ],
    },
    FunctionSpec {
        canonical: "CHARINDEX",
        result: FunctionResult::Int,
        aggregate: false,
        names: [Some("CHARINDEX"), None, None, None, Some("CHARINDEX")],
    },
    FunctionSpec {
        canonical: "DATALENGTH",
        result: FunctionResult::Int,
        aggregate: false,
        names: [Some("DATALENGTH"), None, None, None, Some("DATALENGTH")],
    },
    FunctionSpec {
        canonical: "STR",
        result: FunctionResult::Text,
        aggregate: false,
        names: [Some("STR"), None, None, None, Some("STR")],
    },
];

/// CAST type-name matrix: canonical name → per-dialect spelling,
/// aligned with [`Dialect::ALL`].
const TYPE_MATRIX: &[(&str, [&str; 5])] = &[
    ("INT", ["INT", "INTEGER", "INTEGER", "SIGNED", "INT"]),
    ("FLOAT", ["FLOAT", "REAL", "NUMERIC", "DECIMAL", "FLOAT"]),
    ("VARCHAR", ["VARCHAR", "TEXT", "TEXT", "CHAR", "VARCHAR"]),
    (
        "BOOLEAN",
        ["BOOLEAN", "BOOLEAN", "BOOLEAN", "SIGNED", "BIT"],
    ),
];

/// Find the catalog row that lists `upper` under any dialect spelling.
fn catalog_row(upper: &str) -> Option<&'static FunctionSpec> {
    FUNCTIONS
        .iter()
        .find(|spec| spec.canonical == upper || spec.names.contains(&Some(upper)))
}

/// Resolve a function name (any dialect spelling, any case) to its
/// catalog row — the binder's entry point for type resolution.
pub fn lookup_function(name: &str) -> Option<&'static FunctionSpec> {
    catalog_row(&name.to_ascii_uppercase())
}

/// Translate a function spelling from one dialect into another: resolves
/// `name` (case-insensitively) in the catalog and returns the target
/// dialect's spelling. Names outside the catalog pass through unchanged.
pub fn translate_function(name: &str, to: Dialect) -> String {
    match to.function_spelling(name) {
        Some(spelling) => spelling.to_string(),
        None => name.to_string(),
    }
}

/// Translate a CAST type name between dialects: resolves `name` to a
/// canonical scalar type (accepting any dialect's spelling) and returns
/// the target dialect's spelling; unknown names pass through.
pub fn translate_type(name: &str, to: Dialect) -> String {
    let upper = name.to_ascii_uppercase();
    for (canonical, spellings) in TYPE_MATRIX {
        if *canonical == upper || spellings.contains(&upper.as_str()) {
            // ambiguous reverse spellings (SIGNED covers INT and
            // BOOLEAN) resolve to the first row that lists them
            return spellings[to.index()].to_string();
        }
    }
    name.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_reject_unknowns() {
        for (d, name) in Dialect::ALL.into_iter().zip(Dialect::NAMES) {
            assert_eq!(d.name(), name);
            assert_eq!(Dialect::by_name(name), Some(d));
            assert_eq!(Dialect::by_name(&name.to_uppercase()), Some(d));
        }
        assert_eq!(Dialect::by_name("oracle"), None);
        assert_eq!(Dialect::by_name(""), None);
    }

    #[test]
    fn squ_is_the_union_dialect() {
        for d in Dialect::CONCRETE {
            for q in ['"', '[', '`'] {
                if d.accepts_quote(q) && q != '`' {
                    assert!(
                        Dialect::Squ.accepts_quote(q),
                        "Squ must accept {q} because {} does",
                        d.name()
                    );
                }
            }
            if d.supports_limit() {
                assert!(Dialect::Squ.supports_limit());
            }
            if d.supports_top() {
                assert!(Dialect::Squ.supports_top());
            }
        }
        // Squ knows every catalog function under every spelling
        for spec in FUNCTIONS {
            assert!(Dialect::Squ.knows_function(spec.canonical));
            for name in spec.names.into_iter().flatten() {
                assert!(Dialect::Squ.knows_function(name), "{name}");
            }
        }
    }

    #[test]
    fn quote_matrix_matches_the_paper_dialects() {
        assert!(Dialect::Sqlite.accepts_quote('"'));
        assert!(Dialect::Sqlite.accepts_quote('['));
        assert!(Dialect::Sqlite.accepts_quote('`'));
        assert!(Dialect::Postgres.accepts_quote('"'));
        assert!(!Dialect::Postgres.accepts_quote('['));
        assert!(!Dialect::Postgres.accepts_quote('`'));
        assert!(Dialect::Mysql.accepts_quote('`'));
        assert!(!Dialect::Mysql.accepts_quote('"'));
        assert!(Dialect::Tsql.accepts_quote('['));
        assert!(Dialect::Tsql.accepts_quote('"'));
        assert!(!Dialect::Tsql.accepts_quote('`'));
        assert_eq!(Dialect::Mysql.canonical_quote(), ('`', '`'));
        assert_eq!(Dialect::Tsql.canonical_quote(), ('[', ']'));
    }

    #[test]
    fn limit_top_split() {
        for d in [Dialect::Sqlite, Dialect::Postgres, Dialect::Mysql] {
            assert!(d.supports_limit() && !d.supports_top(), "{}", d.name());
        }
        assert!(Dialect::Tsql.supports_top() && !Dialect::Tsql.supports_limit());
        assert!(Dialect::Squ.supports_limit() && Dialect::Squ.supports_top());
    }

    #[test]
    fn function_lookup_is_case_insensitive_across_spellings() {
        for probe in ["count", "Count", "COUNT"] {
            let spec = lookup_function(probe).expect("COUNT resolves");
            assert_eq!(spec.canonical, "COUNT");
            assert!(spec.aggregate);
        }
        // a T-SQL spelling resolves to the canonical row
        let spec = lookup_function("len").expect("LEN resolves");
        assert_eq!(spec.canonical, "LENGTH");
        assert_eq!(spec.result, FunctionResult::Int);
        // and the reverse rename reproduces the dialect spelling
        assert_eq!(translate_function("LENGTH", Dialect::Tsql), "LEN");
        assert_eq!(translate_function("LEN", Dialect::Postgres), "LENGTH");
        assert_eq!(translate_function("substring", Dialect::Sqlite), "SUBSTR");
        assert_eq!(translate_function("SUBSTR", Dialect::Mysql), "SUBSTRING");
        // unknown names pass through for every dialect
        for d in Dialect::ALL {
            assert_eq!(translate_function("FROBNICATE", d), "FROBNICATE");
        }
    }

    #[test]
    fn type_matrix_translates_and_passes_unknowns() {
        assert_eq!(translate_type("INT", Dialect::Sqlite), "INTEGER");
        assert_eq!(translate_type("integer", Dialect::Tsql), "INT");
        assert_eq!(translate_type("FLOAT", Dialect::Postgres), "NUMERIC");
        assert_eq!(translate_type("VARCHAR", Dialect::Mysql), "CHAR");
        assert_eq!(translate_type("BOOLEAN", Dialect::Tsql), "BIT");
        assert_eq!(translate_type("GEOGRAPHY", Dialect::Mysql), "GEOGRAPHY");
    }

    #[test]
    fn reserved_words_are_dialect_local() {
        assert!(Dialect::Mysql.is_reserved("rank"));
        assert!(!Dialect::Sqlite.is_reserved("rank"));
        assert!(Dialect::Postgres.is_reserved("User"));
        assert!(Dialect::Tsql.is_reserved("plan"));
        assert!(!Dialect::Squ.is_reserved("plan"));
    }
}
