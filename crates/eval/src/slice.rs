//! Failure slicing by syntactic property (paper Figures 6, 8, 10–12).
//!
//! For a binary task, the paper groups examples into the four confusion
//! cells (TP, TN, FP, FN) and compares the distribution of a syntactic
//! property (word_count, predicate_count, …) across cells — e.g. "FN
//! queries are significantly longer than TP queries". [`PropertySlice`]
//! computes per-cell average, median, count, and the raw values (the
//! figures' scatter points).

use serde::{Deserialize, Serialize};

/// The four confusion cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cell {
    /// True positive.
    Tp,
    /// True negative.
    Tn,
    /// False positive.
    Fp,
    /// False negative.
    Fn,
}

impl Cell {
    /// All cells in the paper's display order.
    pub const ALL: [Cell; 4] = [Cell::Tp, Cell::Tn, Cell::Fp, Cell::Fn];

    /// Classify one example.
    pub fn of(truth: bool, predicted: bool) -> Cell {
        match (truth, predicted) {
            (true, true) => Cell::Tp,
            (false, false) => Cell::Tn,
            (false, true) => Cell::Fp,
            (true, false) => Cell::Fn,
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Cell::Tp => "TP",
            Cell::Tn => "TN",
            Cell::Fp => "FP",
            Cell::Fn => "FN",
        }
    }
}

/// Summary of one property within one cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellSummary {
    /// Which cell.
    pub cell: String,
    /// Number of examples in the cell.
    pub count: usize,
    /// Average property value (the figures' top number).
    pub average: f64,
    /// Median property value (the figures' middle number).
    pub median: f64,
    /// Raw values (the scatter points).
    pub values: Vec<f64>,
}

/// A full four-cell slice of one property.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PropertySlice {
    /// Property name.
    pub property: String,
    /// Summaries in TP, TN, FP, FN order.
    pub cells: Vec<CellSummary>,
}

impl PropertySlice {
    /// Build from `(truth, predicted, property_value)` triples.
    pub fn build(
        property: &str,
        examples: impl IntoIterator<Item = (bool, bool, f64)>,
    ) -> PropertySlice {
        let mut buckets: [Vec<f64>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for (t, p, v) in examples {
            let idx = Cell::ALL
                .iter()
                .position(|c| *c == Cell::of(t, p))
                .expect("cell in ALL"); // lint:allow: cells are enumerated from ALL
            buckets[idx].push(v);
        }
        let cells = Cell::ALL
            .iter()
            .zip(buckets)
            .map(|(cell, mut values)| {
                values.sort_by(|a, b| a.partial_cmp(b).expect("finite")); // lint:allow: values are finite by construction
                let count = values.len();
                let average = if count == 0 {
                    0.0
                } else {
                    values.iter().sum::<f64>() / count as f64
                };
                let median = median_of_sorted(&values);
                CellSummary {
                    cell: cell.label().to_string(),
                    count,
                    average,
                    median,
                    values,
                }
            })
            .collect();
        PropertySlice {
            property: property.to_string(),
            cells,
        }
    }

    /// Summary of a specific cell.
    pub fn cell(&self, cell: Cell) -> &CellSummary {
        &self.cells[Cell::ALL
            .iter()
            .position(|c| *c == cell)
            .expect("cell in ALL")] // lint:allow: cells are enumerated from ALL
    }
}

fn median_of_sorted(v: &[f64]) -> f64 {
    match v.len() {
        0 => 0.0,
        n if n % 2 == 1 => v[n / 2],
        n => (v[n / 2 - 1] + v[n / 2]) / 2.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_partition_examples() {
        let slice = PropertySlice::build(
            "word_count",
            vec![
                (true, true, 10.0),
                (true, true, 20.0),
                (true, false, 100.0),
                (false, false, 15.0),
                (false, true, 90.0),
            ],
        );
        assert_eq!(slice.cell(Cell::Tp).count, 2);
        assert_eq!(slice.cell(Cell::Fn).count, 1);
        assert_eq!(slice.cell(Cell::Fp).count, 1);
        assert_eq!(slice.cell(Cell::Tn).count, 1);
        assert_eq!(slice.cell(Cell::Tp).average, 15.0);
        assert_eq!(slice.cell(Cell::Tp).median, 15.0);
        assert_eq!(slice.cell(Cell::Fn).average, 100.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median_of_sorted(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median_of_sorted(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(median_of_sorted(&[]), 0.0);
    }

    #[test]
    fn figure6_pattern_detectable() {
        // FN longer than TP (the paper's word_count correlation) should be
        // visible as a higher FN average
        let mut examples = Vec::new();
        for i in 0..100 {
            examples.push((true, true, 40.0 + (i % 10) as f64));
        }
        for i in 0..30 {
            examples.push((true, false, 90.0 + (i % 20) as f64));
        }
        let slice = PropertySlice::build("word_count", examples);
        assert!(slice.cell(Cell::Fn).average > slice.cell(Cell::Tp).average + 30.0);
    }
}
