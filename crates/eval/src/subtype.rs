//! Failure breakdown by subtype (paper Figures 7 and 9): which error /
//! token types the models miss most.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-subtype false-negative statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubtypeRow {
    /// Subtype label.
    pub subtype: String,
    /// Positives of this subtype.
    pub positives: usize,
    /// Missed positives (FN).
    pub false_negatives: usize,
    /// FN rate within the subtype (`fn / positives`).
    pub fn_rate: f64,
    /// Share of all FN belonging to this subtype.
    pub fn_share: f64,
}

/// Full subtype breakdown.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubtypeBreakdown {
    /// Rows in descending FN-rate order.
    pub rows: Vec<SubtypeRow>,
}

impl SubtypeBreakdown {
    /// Build from `(subtype, predicted_positive)` pairs over the *positive*
    /// examples of a task (e.g. for each injected error: its type and
    /// whether the model detected it).
    pub fn build<'a>(positives: impl IntoIterator<Item = (&'a str, bool)>) -> Self {
        let mut per: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for (subtype, detected) in positives {
            let e = per.entry(subtype.to_string()).or_insert((0, 0));
            e.0 += 1;
            if !detected {
                e.1 += 1;
            }
        }
        let total_fn: usize = per.values().map(|(_, f)| f).sum();
        let mut rows: Vec<SubtypeRow> = per
            .into_iter()
            .map(|(subtype, (pos, fns))| SubtypeRow {
                subtype,
                positives: pos,
                false_negatives: fns,
                fn_rate: if pos == 0 {
                    0.0
                } else {
                    fns as f64 / pos as f64
                },
                fn_share: if total_fn == 0 {
                    0.0
                } else {
                    fns as f64 / total_fn as f64
                },
            })
            .collect();
        rows.sort_by(|a, b| b.fn_rate.partial_cmp(&a.fn_rate).expect("finite")); // lint:allow: values are finite by construction
        SubtypeBreakdown { rows }
    }

    /// The hardest subtype (highest FN rate), if any rows exist.
    pub fn hardest(&self) -> Option<&SubtypeRow> {
        self.rows.first()
    }

    /// Row for a given subtype.
    pub fn get(&self, subtype: &str) -> Option<&SubtypeRow> {
        self.rows.iter().find(|r| r.subtype == subtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_shares() {
        let b = SubtypeBreakdown::build([
            ("hard", false),
            ("hard", false),
            ("hard", true),
            ("easy", true),
            ("easy", true),
            ("easy", false),
        ]);
        let hard = b.get("hard").unwrap();
        assert_eq!(hard.positives, 3);
        assert_eq!(hard.false_negatives, 2);
        assert!((hard.fn_rate - 2.0 / 3.0).abs() < 1e-12);
        assert!((hard.fn_share - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(b.hardest().unwrap().subtype, "hard");
    }

    #[test]
    fn empty_breakdown() {
        let b = SubtypeBreakdown::build(std::iter::empty::<(&str, bool)>());
        assert!(b.hardest().is_none());
    }

    #[test]
    fn shares_sum_to_one() {
        let b = SubtypeBreakdown::build([("a", false), ("b", false), ("c", true), ("a", true)]);
        let sum: f64 = b.rows.iter().map(|r| r.fn_share).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }
}
