//! Location metrics for `miss_token_loc` (paper Table 5): Mean Absolute
//! Error over word positions and Hit Rate (exact-position accuracy).

use serde::{Deserialize, Serialize};

/// MAE + hit-rate accumulator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LocationStats {
    abs_errors: Vec<f64>,
    hits: usize,
}

impl LocationStats {
    /// Record one `(true, predicted)` position pair.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        let err = (truth as f64 - predicted as f64).abs();
        self.abs_errors.push(err);
        if truth == predicted {
            self.hits += 1;
        }
    }

    /// Build from pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut s = LocationStats::default();
        for (t, p) in pairs {
            s.record(t, p);
        }
        s
    }

    /// Mean absolute error; 0 when empty.
    pub fn mae(&self) -> f64 {
        if self.abs_errors.is_empty() {
            0.0
        } else {
            self.abs_errors.iter().sum::<f64>() / self.abs_errors.len() as f64
        }
    }

    /// Exact-position hit rate; 0 when empty.
    pub fn hit_rate(&self) -> f64 {
        if self.abs_errors.is_empty() {
            0.0
        } else {
            self.hits as f64 / self.abs_errors.len() as f64
        }
    }

    /// Number of recorded pairs.
    pub fn len(&self) -> usize {
        self.abs_errors.len()
    }

    /// Is the accumulator empty?
    pub fn is_empty(&self) -> bool {
        self.abs_errors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_and_hit_rate() {
        let s = LocationStats::from_pairs([(5, 5), (10, 12), (3, 0)]);
        assert!((s.mae() - (0.0 + 2.0 + 3.0) / 3.0).abs() < 1e-12);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_is_zero() {
        let s = LocationStats::default();
        assert_eq!(s.mae(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
        assert!(s.is_empty());
    }
}
