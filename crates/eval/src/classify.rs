//! Classification metrics: binary precision/recall/F1 and weighted
//! multi-class scores (the paper's Tables 3, 4, 6, 7).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Binary confusion counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryCounts {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl BinaryCounts {
    /// Accumulate one example.
    pub fn record(&mut self, truth: bool, predicted: bool) {
        match (truth, predicted) {
            (true, true) => self.tp += 1,
            (true, false) => self.fn_ += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Build from `(truth, predicted)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (bool, bool)>) -> Self {
        let mut c = BinaryCounts::default();
        for (t, p) in pairs {
            c.record(t, p);
        }
        c
    }

    /// Precision = TP / (TP + FP); 0 when undefined.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall = TP / (TP + FN); 0 when undefined.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// F1 = harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy over all examples.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// Total examples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Multi-class confusion matrix over string labels.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Confusion {
    counts: BTreeMap<(String, String), usize>,
}

// Hand-written: the map serializer renders each `(truth, predicted)` key as
// its compact-JSON string (`["t","p"]`), so decoding parses the key back.
impl Deserialize for Confusion {
    fn from_json_value(v: &serde::Json) -> Result<Self, serde::DeError> {
        let fields = match v {
            serde::Json::Object(fields) => fields,
            other => {
                return Err(serde::DeError(format!(
                    "expected object for Confusion, got {other}"
                )))
            }
        };
        let counts_json = fields
            .iter()
            .find(|(k, _)| k == "counts")
            .map(|(_, val)| val)
            .ok_or_else(|| serde::DeError("Confusion missing field `counts`".to_string()))?;
        let entries = match counts_json {
            serde::Json::Object(entries) => entries,
            other => {
                return Err(serde::DeError(format!(
                    "expected object for Confusion.counts, got {other}"
                )))
            }
        };
        let mut counts = BTreeMap::new();
        for (key, val) in entries {
            let pair: (String, String) = serde_json::from_str(key)
                .map_err(|e| serde::DeError(format!("bad Confusion key {key:?}: {e}")))?;
            counts.insert(pair, usize::from_json_value(val)?);
        }
        Ok(Confusion { counts })
    }
}

impl Confusion {
    /// Accumulate one `(truth, predicted)` pair.
    pub fn record(&mut self, truth: &str, predicted: &str) {
        *self
            .counts
            .entry((truth.to_string(), predicted.to_string()))
            .or_insert(0) += 1;
    }

    /// Build from `(truth, predicted)` pairs.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, &'a str)>) -> Self {
        let mut c = Confusion::default();
        for (t, p) in pairs {
            c.record(t, p);
        }
        c
    }

    /// All labels seen (truth or predicted), sorted.
    pub fn labels(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .counts
            .keys()
            .flat_map(|(t, p)| [t.clone(), p.clone()])
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Count of a specific cell.
    pub fn get(&self, truth: &str, predicted: &str) -> usize {
        self.counts
            .get(&(truth.to_string(), predicted.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Support (truth count) of a label.
    pub fn support(&self, label: &str) -> usize {
        self.counts
            .iter()
            .filter(|((t, _), _)| t == label)
            .map(|(_, n)| n)
            .sum()
    }

    /// Per-class precision / recall / F1.
    pub fn class_metrics(&self, label: &str) -> (f64, f64, f64) {
        let tp = self.get(label, label);
        let truth_total = self.support(label);
        let pred_total: usize = self
            .counts
            .iter()
            .filter(|((_, p), _)| p == label)
            .map(|(_, n)| n)
            .sum();
        let precision = ratio(tp, pred_total);
        let recall = ratio(tp, truth_total);
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        (precision, recall, f1)
    }

    /// Support-weighted precision / recall / F1 over all classes — the
    /// paper's "weighted accuracy" for the `_type` tasks.
    pub fn weighted_metrics(&self) -> (f64, f64, f64) {
        let labels = self.labels();
        let total: usize = labels.iter().map(|l| self.support(l)).sum();
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let mut wp = 0.0;
        let mut wr = 0.0;
        let mut wf = 0.0;
        for l in &labels {
            let sup = self.support(l) as f64;
            if sup == 0.0 {
                continue;
            }
            let (p, r, f) = self.class_metrics(l);
            wp += p * sup;
            wr += r * sup;
            wf += f * sup;
        }
        let t = total as f64;
        (wp / t, wr / t, wf / t)
    }

    /// Total examples.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_metrics() {
        let c = BinaryCounts {
            tp: 80,
            fp: 10,
            tn: 50,
            fn_: 20,
        };
        assert!((c.precision() - 80.0 / 90.0).abs() < 1e-12);
        assert!((c.recall() - 0.8).abs() < 1e-12);
        assert!(c.f1() > 0.8 && c.f1() < 0.9);
        assert!((c.accuracy() - 130.0 / 160.0).abs() < 1e-12);
    }

    #[test]
    fn binary_edge_cases() {
        let empty = BinaryCounts::default();
        assert_eq!(empty.precision(), 0.0);
        assert_eq!(empty.recall(), 0.0);
        assert_eq!(empty.f1(), 0.0);
        let perfect = BinaryCounts::from_pairs([(true, true), (false, false)]);
        assert_eq!(perfect.f1(), 1.0);
    }

    #[test]
    fn confusion_weighted() {
        let mut c = Confusion::default();
        // class a: 8/10 right, 2 confused as b
        for _ in 0..8 {
            c.record("a", "a");
        }
        for _ in 0..2 {
            c.record("a", "b");
        }
        // class b: all right
        for _ in 0..10 {
            c.record("b", "b");
        }
        let (p, r, _) = c.weighted_metrics();
        // recall: a 0.8 (sup 10), b 1.0 (sup 10) → 0.9
        assert!((r - 0.9).abs() < 1e-12);
        // precision: a 1.0, b 10/12
        assert!((p - (1.0 * 10.0 + 10.0 / 12.0 * 10.0) / 20.0).abs() < 1e-12);
        assert_eq!(c.support("a"), 10);
        assert_eq!(c.get("a", "b"), 2);
        assert_eq!(c.total(), 20);
    }

    #[test]
    fn perfect_multiclass() {
        let c = Confusion::from_pairs([("x", "x"), ("y", "y"), ("z", "z")]);
        let (p, r, f) = c.weighted_metrics();
        assert_eq!((p, r, f), (1.0, 1.0, 1.0));
    }
}
