//! Rubric scoring for query explanations (paper §4.5).
//!
//! The paper's explanation analysis is qualitative; this module makes its
//! rubric machine-checkable: an explanation is scored on whether it
//! mentions the query's *key facts* — tables, projected attributes,
//! aggregates, filter values, the ordering superlative, and set-operation
//! semantics. Missing facts are reported individually, which is exactly
//! what the paper's Q15–Q18 discussion calls out (Gemini dropping the
//! tryout context, GPT4 dropping selected attributes, Llama3 flipping
//! "least" to "fastest").

use serde::{Deserialize, Serialize};
use squ_tasks::KeyFacts;

/// Outcome of scoring one explanation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RubricScore {
    /// Fraction of applicable fact groups covered, in `[0, 1]`.
    pub score: f64,
    /// Facts that were covered.
    pub covered: Vec<String>,
    /// Facts that were missing or contradicted.
    pub missing: Vec<String>,
}

impl RubricScore {
    /// Is the explanation complete under the rubric?
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty()
    }
}

fn mentions(text_lower: &str, needle: &str) -> bool {
    text_lower.contains(&needle.to_lowercase())
}

/// Score an explanation against the key facts.
pub fn score_explanation(explanation: &str, facts: &KeyFacts) -> RubricScore {
    let lower = explanation.to_lowercase();
    let mut covered = Vec::new();
    let mut missing = Vec::new();
    let mut groups = 0.0;
    let mut hit = 0.0;

    // tables (context) — at least one base table must be named
    if !facts.tables.is_empty() {
        groups += 1.0;
        if facts.tables.iter().any(|t| mentions(&lower, t)) {
            hit += 1.0;
            covered.push("tables".to_string());
        } else {
            missing.push(format!("table context ({})", facts.tables.join(", ")));
        }
    }

    // projected attributes — all of them
    if !facts.projected_columns.is_empty() {
        groups += 1.0;
        let found: Vec<&String> = facts
            .projected_columns
            .iter()
            .filter(|c| mentions(&lower, c))
            .collect();
        if found.len() == facts.projected_columns.len() {
            hit += 1.0;
            covered.push("projected attributes".to_string());
        } else {
            let absent: Vec<String> = facts
                .projected_columns
                .iter()
                .filter(|c| !mentions(&lower, c))
                .cloned()
                .collect();
            missing.push(format!("selected attributes ({})", absent.join(", ")));
        }
    }

    // aggregates
    if !facts.aggregates.is_empty() {
        groups += 1.0;
        if facts.aggregates.iter().all(|a| mentions(&lower, a)) {
            hit += 1.0;
            covered.push("aggregates".to_string());
        } else {
            missing.push("aggregate semantics".to_string());
        }
    }

    // filter values
    if !facts.filter_values.is_empty() {
        groups += 1.0;
        let all = facts
            .filter_values
            .iter()
            .all(|v| mentions(&lower, &v.replace('\'', "")));
        if all {
            hit += 1.0;
            covered.push("filter values".to_string());
        } else {
            missing.push("filter conditions".to_string());
        }
    }

    // superlative (ORDER BY … LIMIT 1): the direction word must be right
    // and not contradicted ("fastest" for ASC acceleration is the paper's
    // Q18 failure)
    if let Some((word, col)) = &facts.superlative {
        groups += 1.0;
        let opposite = if word == "least" { "greatest" } else { "least" };
        let says_right = mentions(&lower, word) && mentions(&lower, col);
        let says_wrong = mentions(&lower, opposite)
            || (word == "least" && (mentions(&lower, "fastest") || mentions(&lower, "highest")))
            || (word == "greatest" && (mentions(&lower, "slowest") || mentions(&lower, "lowest")));
        if says_right && !says_wrong {
            hit += 1.0;
            covered.push("ordering superlative".to_string());
        } else {
            missing.push(format!("ordering direction (expected '{word} {col}')"));
        }
    }

    // set-operation semantics (e.g. "both" for INTERSECT)
    if let Some(word) = &facts.set_op {
        groups += 1.0;
        if mentions(&lower, word) {
            hit += 1.0;
            covered.push("set operation".to_string());
        } else {
            missing.push(format!("set-operation semantics ('{word}')"));
        }
    }

    RubricScore {
        score: if groups == 0.0 { 1.0 } else { hit / groups },
        covered,
        missing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q18_facts() -> KeyFacts {
        KeyFacts {
            tables: vec!["CARS_DATA".into(), "CAR_NAMES".into()],
            projected_columns: vec!["cylinders".into()],
            aggregates: vec![],
            filter_values: vec!["'volvo'".into()],
            superlative: Some(("least".into(), "accelerate".into())),
            set_op: None,
        }
    }

    #[test]
    fn correct_explanation_scores_full() {
        let s = score_explanation(
            "The query retrieves the cylinders of the volvo in CARS_DATA with the least accelerate value.",
            &q18_facts(),
        );
        assert!(s.is_complete(), "missing: {:?}", s.missing);
        assert_eq!(s.score, 1.0);
    }

    #[test]
    fn paper_q18_llama_failure_detected() {
        // "fastest acceleration" contradicts ORDER BY … ASC LIMIT 1
        let s = score_explanation(
            "This SQL query retrieves the cylinders of the Volvo car in CARS_DATA with the fastest accelerate.",
            &q18_facts(),
        );
        assert!(!s.is_complete());
        assert!(
            s.missing.iter().any(|m| m.contains("ordering direction")),
            "{:?}",
            s.missing
        );
    }

    #[test]
    fn paper_q17_dropped_attributes_detected() {
        let facts = KeyFacts {
            tables: vec!["concert".into(), "stadium".into()],
            projected_columns: vec!["name".into(), "loc".into()],
            aggregates: vec![],
            filter_values: vec!["2014".into(), "2015".into()],
            superlative: None,
            set_op: Some("both".into()),
        };
        // GPT4's Q17 answer mentions the semantics but not the attributes
        let s = score_explanation(
            "The query identifies stadiums that hosted concerts in both 2014 and 2015.",
            &facts,
        );
        assert!(
            s.missing.iter().any(|m| m.contains("selected attributes")),
            "{:?}",
            s.missing
        );
        // but the set-op and filters are covered
        assert!(s.covered.contains(&"set operation".to_string()));
    }

    #[test]
    fn paper_q15_gemini_reduction_detected() {
        let facts = KeyFacts {
            tables: vec!["tryout".into()],
            projected_columns: vec!["cName".into()],
            aggregates: vec!["number".into()],
            filter_values: vec![],
            superlative: None,
            set_op: None,
        };
        let s = score_explanation(
            "Counts the occurrences of each unique value in the cName column.",
            &facts,
        );
        assert!(
            s.missing.iter().any(|m| m.contains("table context")),
            "{:?}",
            s.missing
        );
        assert!(s.score < 1.0);
    }

    #[test]
    fn empty_facts_scores_one() {
        let s = score_explanation("anything", &KeyFacts::default());
        assert_eq!(s.score, 1.0);
    }
}
