//! # squ-eval — evaluation metrics and failure analyses
//!
//! Everything the paper's §4 measures:
//!
//! * [`BinaryCounts`] / [`Confusion`] — precision, recall, F1, weighted
//!   multi-class scores (Tables 3, 4, 6, 7);
//! * [`LocationStats`] — MAE + hit rate for `miss_token_loc` (Table 5);
//! * [`PropertySlice`] — TP/TN/FP/FN slicing by syntactic property
//!   (Figures 6, 8, 10–12);
//! * [`SubtypeBreakdown`] — per-subtype false-negative analysis
//!   (Figures 7, 9);
//! * [`score_explanation`] — the machine-checkable rubric behind the
//!   query-explanation case study (§4.5).

#![warn(missing_docs)]

mod classify;
mod location;
mod rubric;
mod slice;
mod subtype;

pub use classify::{BinaryCounts, Confusion};
pub use location::LocationStats;
pub use rubric::{score_explanation, RubricScore};
pub use slice::{Cell, CellSummary, PropertySlice};
pub use subtype::{SubtypeBreakdown, SubtypeRow};
