//! The four benchmark workloads (paper §2, Table 2).
//!
//! Each builder generates the *sampled* dataset the paper experiments on:
//! SDSS (285 queries with elapsed times), SQLShare (250 queries across many
//! small schemas), Join-Order (157 queries: 113 SELECT + 44 CREATE over
//! IMDB), and Spider (200 queries with natural-language descriptions).
//!
//! Quota-controlled generation pins the headline Table-2 statistics to the
//! paper's exact values (e.g. SDSS: 21 aggregate queries; Join-Order: 44
//! CREATE statements; Spider: 15 nested queries), while everything else
//! (lengths, join fan-out, predicates) follows the per-workload profile
//! distributions.

use crate::describe::describe_statement;
use crate::gen::{Force, GenProfile, QueryGenerator};
use crate::props::{query_props, QueryProps};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use squ_engine::CostModel;
use squ_parser::print_statement;
use squ_schema::{schemas, Schema};

/// Which workload a query belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// Sloan Digital Sky Survey query log.
    Sdss,
    /// SQLShare multi-schema user queries.
    SqlShare,
    /// Join-Order Benchmark (IMDB).
    JoinOrder,
    /// Spider text-to-SQL benchmark (used for query explanation).
    Spider,
}

impl Workload {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Sdss => "SDSS",
            Workload::SqlShare => "SQLShare",
            Workload::JoinOrder => "Join-Order",
            Workload::Spider => "Spider",
        }
    }

    /// The three workloads used for the classification tasks (Spider is
    /// explanation-only in the paper).
    pub fn task_workloads() -> [Workload; 3] {
        [Workload::Sdss, Workload::SqlShare, Workload::JoinOrder]
    }

    /// Number of queries in the paper's *original* workload (Table 2).
    pub fn original_size(&self) -> u64 {
        match self {
            Workload::Sdss => 5_081_188,
            Workload::SqlShare => 9_623,
            Workload::JoinOrder => 157,
            Workload::Spider => 4_486,
        }
    }

    /// Number of sampled queries (Table 2). These four counts are pinned
    /// to the paper and never change: streamed synthesis
    /// ([`crate::stream::QueryStream`]) produces *separate*, unbounded
    /// `synth-*` datasets whose size is chosen by the caller
    /// (`repro --synth N`) and is deliberately **not** reflected here.
    pub fn sampled_size(&self) -> usize {
        match self {
            Workload::Sdss => 285,
            Workload::SqlShare => 250,
            Workload::JoinOrder => 157,
            Workload::Spider => 200,
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One sampled workload query with its derived metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadQuery {
    /// Stable id, e.g. `sdss-0042`.
    pub id: String,
    /// Owning workload.
    pub workload: Workload,
    /// Name of the schema the query runs against (SQLShare/Spider have
    /// many; SDSS/Join-Order have one).
    pub schema_name: String,
    /// The SQL text.
    pub sql: String,
    /// The paper's ten syntactic properties.
    pub props: QueryProps,
    /// Elapsed execution time in ms (SDSS only — the `performance_pred`
    /// ground truth; paper Figure 5).
    pub elapsed_ms: Option<f64>,
    /// Reference natural-language description (Spider only — the
    /// `query_exp` ground truth).
    pub description: Option<String>,
}

/// A sampled workload dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Which workload.
    pub workload: Workload,
    /// The sampled queries.
    pub queries: Vec<WorkloadQuery>,
}

impl Dataset {
    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Is the dataset empty?
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// Resolve a schema by workload + name (SQLShare/Spider queries carry the
/// specific sub-schema they run against).
pub fn schema_for(workload: Workload, schema_name: &str) -> Schema {
    match workload {
        Workload::Sdss => schemas::sdss(),
        Workload::JoinOrder => schemas::imdb(),
        Workload::SqlShare => schemas::sqlshare_zoo()
            .into_iter()
            .find(|s| s.name == schema_name)
            .unwrap_or_else(|| panic!("unknown SQLShare schema {schema_name}")), // lint:allow: workload queries reference known schemas
        Workload::Spider => schemas::spider_zoo()
            .into_iter()
            .find(|s| s.name == schema_name)
            .unwrap_or_else(|| panic!("unknown Spider schema {schema_name}")), // lint:allow: workload queries reference known schemas
    }
}

/// Build a workload's sampled dataset with the given seed. The paper's
/// datasets correspond to seed 2023 (the year of the SDSS log slice used).
pub fn build(workload: Workload, seed: u64) -> Dataset {
    match workload {
        Workload::Sdss => build_sdss(seed),
        Workload::SqlShare => build_sqlshare(seed),
        Workload::JoinOrder => build_joborder(seed),
        Workload::Spider => build_spider(seed),
    }
}

/// Build all four *sampled* datasets — always the paper's pinned sizes
/// ([`Workload::sampled_size`]), never a synthesized stream. Synthetic
/// workloads of arbitrary size go through [`crate::stream::QueryStream`],
/// which only collects into a [`Dataset`] under the
/// [`crate::stream::MAX_COLLECT`] cap; everything larger stays streaming.
pub fn build_all(seed: u64) -> Vec<Dataset> {
    vec![
        build(Workload::Sdss, seed),
        build(Workload::SqlShare, seed),
        build(Workload::JoinOrder, seed),
        build(Workload::Spider, seed),
    ]
}

/// The distributional profile of one workload's generator — the knobs the
/// quota-controlled builders below run with, shared with the streaming
/// synthesis path ([`crate::stream`]). The `create`/`aggregate`/`nested`
/// probabilities are zero here because the paper builders drive those
/// choices by exact quota; [`crate::stream::synth_profile`] re-enables
/// them as probabilities at the paper's observed rates.
pub fn base_profile(workload: Workload) -> GenProfile {
    match workload {
        Workload::Sdss => GenProfile {
            create_prob: 0.0, // driven by quota in the paper builder
            aggregate_prob: 0.0,
            nested_prob: 0.0,
            cte_prob: 0.03,
            table_count_weights: vec![(1, 0.45), (2, 0.35), (3, 0.15), (4, 0.05)],
            extra_pred_range: (1, 7),
            explicit_join_prob: 0.65,
            alias_prob: 0.6,
            top_prob: 0.3,
            order_by_prob: 0.25,
            limit_prob: 0.0,
            scalar_fn_prob: 0.12,
            star_prob: 0.06,
            distinct_prob: 0.08,
            proj_cols_range: (2, 7),
        },
        Workload::SqlShare => GenProfile {
            create_prob: 0.0,
            aggregate_prob: 0.0,
            nested_prob: 0.0,
            cte_prob: 0.04,
            table_count_weights: vec![(1, 0.55), (2, 0.3), (3, 0.15)],
            extra_pred_range: (0, 3),
            explicit_join_prob: 0.8,
            alias_prob: 0.9, // SQLShare's defining trait: heavy aliasing
            top_prob: 0.05,
            order_by_prob: 0.25,
            limit_prob: 0.15,
            scalar_fn_prob: 0.2,
            star_prob: 0.12,
            distinct_prob: 0.12,
            proj_cols_range: (1, 4),
        },
        Workload::JoinOrder => GenProfile {
            create_prob: 0.0,
            aggregate_prob: 0.0,
            nested_prob: 0.0, // Table 2: Join-Order has no nesting ("-")
            cte_prob: 0.0,
            table_count_weights: vec![
                (4, 0.15),
                (5, 0.15),
                (6, 0.2),
                (7, 0.15),
                (8, 0.15),
                (9, 0.1),
                (10, 0.05),
                (11, 0.03),
                (12, 0.02),
            ],
            extra_pred_range: (3, 16),
            explicit_join_prob: 0.25, // JOB famously uses implicit joins
            alias_prob: 1.0,
            top_prob: 0.0,
            order_by_prob: 0.05,
            limit_prob: 0.0,
            scalar_fn_prob: 0.05,
            star_prob: 0.0,
            distinct_prob: 0.05,
            proj_cols_range: (1, 4),
        },
        Workload::Spider => GenProfile {
            create_prob: 0.0, // Table 2: Spider is 200 SELECT / 0 CREATE
            aggregate_prob: 0.0,
            nested_prob: 0.0,
            cte_prob: 0.0,
            table_count_weights: vec![(1, 0.4), (2, 0.4), (3, 0.2)],
            extra_pred_range: (0, 3),
            explicit_join_prob: 0.95,
            alias_prob: 0.5,
            top_prob: 0.0,
            order_by_prob: 0.4,
            limit_prob: 0.35, // Spider's ORDER BY … LIMIT 1 idiom
            scalar_fn_prob: 0.05,
            star_prob: 0.05,
            distinct_prob: 0.1,
            proj_cols_range: (1, 3),
        },
    }
}

/// Deterministic quota assignment: exactly `k` of `n` slots are `true`,
/// shuffled by the seed.
fn quota_flags(n: usize, k: usize, seed: u64) -> Vec<bool> {
    let mut flags = vec![false; n];
    for f in flags.iter_mut().take(k) {
        *f = true;
    }
    flags.shuffle(&mut StdRng::seed_from_u64(seed));
    flags
}

fn build_sdss(seed: u64) -> Dataset {
    let schema = schemas::sdss();
    let n = Workload::Sdss.sampled_size();
    let profile = base_profile(Workload::Sdss);
    // Table 2: 21 aggregate / 264 non-aggregate; nesting levels 0 and 1
    // (Fig 1e); a small CREATE share (Fig 1a).
    let agg = quota_flags(n, 21, seed ^ 0xA66);
    let create = quota_flags(n, 24, seed ^ 0xC0EA7E);
    let nested = quota_flags(n, 38, seed ^ 0x0E57);
    let mut g = QueryGenerator::new(&schema, profile, seed ^ 0x5D55);
    let cost = CostModel::default();
    let mut noise = StdRng::seed_from_u64(seed ^ 0x0015E);
    let queries = (0..n)
        .map(|i| {
            let stmt = g.generate_forced(Force {
                create: Some(create[i] && !agg[i]),
                aggregate: Some(agg[i]),
                nested: Some(nested[i]),
            });
            let sql = print_statement(&stmt);
            let props = query_props(&sql, &stmt);
            // elapsed time: analytical cost × log-normal noise (the query
            // mix produces Figure 5's bimodal separation at 200 ms)
            let base = cost.estimate_ms(&stmt, &schema);
            let ln: f64 = noise.gen_range(-1.0..1.0_f64) * 0.6;
            let elapsed = (base * ln.exp()).max(0.05);
            WorkloadQuery {
                id: format!("sdss-{i:04}"),
                workload: Workload::Sdss,
                schema_name: schema.name.clone(),
                sql,
                props,
                elapsed_ms: Some(elapsed),
                description: None,
            }
        })
        .collect();
    Dataset {
        workload: Workload::Sdss,
        queries,
    }
}

fn build_sqlshare(seed: u64) -> Dataset {
    let zoo = schemas::sqlshare_zoo();
    let n = Workload::SqlShare.sampled_size();
    let profile = base_profile(Workload::SqlShare);
    // Table 2: 59 aggregate / 192 non-aggregate (shares of 250), small
    // CREATE share (Fig 2a), nesting levels 0/1 (Fig 2e).
    let agg = quota_flags(n, 59, seed ^ 0xA66A);
    let create = quota_flags(n, 18, seed ^ 0xC0EA);
    let nested = quota_flags(n, 25, seed ^ 0x0E58);
    // deterministic schema rotation, shuffled
    let mut schema_order: Vec<usize> = (0..n).map(|i| i % zoo.len()).collect();
    schema_order.shuffle(&mut StdRng::seed_from_u64(seed ^ 0x5C1E));
    let mut gens: Vec<QueryGenerator> = zoo
        .iter()
        .enumerate()
        .map(|(i, s)| QueryGenerator::new(s, profile.clone(), seed ^ (0x50A5 + i as u64)))
        .collect();
    let queries = (0..n)
        .map(|i| {
            let si = schema_order[i];
            let stmt = gens[si].generate_forced(Force {
                create: Some(create[i] && !agg[i]),
                aggregate: Some(agg[i]),
                nested: Some(nested[i]),
            });
            let sql = print_statement(&stmt);
            let props = query_props(&sql, &stmt);
            WorkloadQuery {
                id: format!("sqlshare-{i:04}"),
                workload: Workload::SqlShare,
                schema_name: zoo[si].name.clone(),
                sql,
                props,
                elapsed_ms: None,
                description: None,
            }
        })
        .collect();
    Dataset {
        workload: Workload::SqlShare,
        queries,
    }
}

fn build_joborder(seed: u64) -> Dataset {
    let schema = schemas::imdb();
    let n = Workload::JoinOrder.sampled_size();
    let profile = base_profile(Workload::JoinOrder);
    // Table 2: 113 SELECT + 44 CREATE; 119 aggregate / 38 non-aggregate.
    let create = quota_flags(n, 44, seed ^ 0xC0EA8);
    let agg = quota_flags(n, 119, seed ^ 0xA66B);
    let mut g = QueryGenerator::new(&schema, profile, seed ^ 0x10B);
    let queries = (0..n)
        .map(|i| {
            let stmt = g.generate_forced(Force {
                create: Some(create[i]),
                aggregate: Some(agg[i]),
                nested: Some(false),
            });
            let sql = print_statement(&stmt);
            let props = query_props(&sql, &stmt);
            WorkloadQuery {
                id: format!("job-{i:04}"),
                workload: Workload::JoinOrder,
                schema_name: schema.name.clone(),
                sql,
                props,
                elapsed_ms: None,
                description: None,
            }
        })
        .collect();
    Dataset {
        workload: Workload::JoinOrder,
        queries,
    }
}

fn build_spider(seed: u64) -> Dataset {
    let zoo = schemas::spider_zoo();
    let n = Workload::Spider.sampled_size();
    let profile = base_profile(Workload::Spider);
    // Table 2: 96 aggregate / 104 non-aggregate; 185 level-0 / 15 level-1.
    let agg = quota_flags(n, 96, seed ^ 0xA66C);
    let nested = quota_flags(n, 15, seed ^ 0x0E59);
    let mut schema_order: Vec<usize> = (0..n).map(|i| i % zoo.len()).collect();
    schema_order.shuffle(&mut StdRng::seed_from_u64(seed ^ 0x5C1F));
    let mut gens: Vec<QueryGenerator> = zoo
        .iter()
        .enumerate()
        .map(|(i, s)| QueryGenerator::new(s, profile.clone(), seed ^ (0x5B1D + i as u64)))
        .collect();
    let queries = (0..n)
        .map(|i| {
            let si = schema_order[i];
            let stmt = gens[si].generate_forced(Force {
                create: Some(false),
                aggregate: Some(agg[i]),
                nested: Some(nested[i]),
            });
            let sql = print_statement(&stmt);
            let props = query_props(&sql, &stmt);
            let description = Some(describe_statement(&stmt));
            WorkloadQuery {
                id: format!("spider-{i:04}"),
                workload: Workload::Spider,
                schema_name: zoo[si].name.clone(),
                sql,
                props,
                elapsed_ms: None,
                description,
            }
        })
        .collect();
    Dataset {
        workload: Workload::Spider,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_sizes_match_table_2() {
        for (w, n) in [
            (Workload::Sdss, 285),
            (Workload::SqlShare, 250),
            (Workload::JoinOrder, 157),
            (Workload::Spider, 200),
        ] {
            assert_eq!(build(w, 2023).len(), n);
        }
    }

    #[test]
    fn quotas_match_table_2() {
        let sdss = build(Workload::Sdss, 2023);
        assert_eq!(
            sdss.queries.iter().filter(|q| q.props.aggregate).count(),
            21
        );

        let job = build(Workload::JoinOrder, 2023);
        assert_eq!(
            job.queries
                .iter()
                .filter(|q| q.props.query_type == "CREATE")
                .count(),
            44
        );
        assert_eq!(
            job.queries.iter().filter(|q| q.props.aggregate).count(),
            119
        );
        assert!(job.queries.iter().all(|q| q.props.nestedness == 0));

        let spider = build(Workload::Spider, 2023);
        assert_eq!(
            spider.queries.iter().filter(|q| q.props.aggregate).count(),
            96
        );
        assert_eq!(
            spider
                .queries
                .iter()
                .filter(|q| q.props.nestedness >= 1)
                .count(),
            15
        );
        assert!(spider
            .queries
            .iter()
            .all(|q| q.props.query_type == "SELECT"));
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = build(Workload::SqlShare, 7);
        let b = build(Workload::SqlShare, 7);
        for (qa, qb) in a.queries.iter().zip(&b.queries) {
            assert_eq!(qa.sql, qb.sql);
        }
    }

    #[test]
    fn all_queries_parse_and_bind_clean() {
        for ds in build_all(2023) {
            for q in &ds.queries {
                let stmt = squ_parser::parse(&q.sql)
                    .unwrap_or_else(|e| panic!("{}: {}: {e}", q.id, q.sql));
                let schema = schema_for(ds.workload, &q.schema_name);
                let diags = squ_schema::analyze(&stmt, &schema);
                assert!(diags.is_empty(), "{} not clean: {}\n{diags:?}", q.id, q.sql);
            }
        }
    }

    #[test]
    fn sdss_has_elapsed_and_bimodal_costs() {
        let ds = build(Workload::Sdss, 2023);
        assert!(ds.queries.iter().all(|q| q.elapsed_ms.is_some()));
        let high = ds
            .queries
            .iter()
            .filter(|q| q.elapsed_ms.unwrap() > 200.0)
            .count();
        let low = ds.len() - high;
        // Figure 5: a clear two-population split, neither side degenerate
        assert!(high >= 40, "only {high} high-cost queries");
        assert!(low >= 40, "only {low} low-cost queries");
    }

    #[test]
    fn spider_has_descriptions() {
        let ds = build(Workload::Spider, 2023);
        assert!(ds
            .queries
            .iter()
            .all(|q| q.description.as_deref().is_some_and(|d| !d.is_empty())));
    }

    #[test]
    fn joborder_queries_are_join_heavy() {
        let ds = build(Workload::JoinOrder, 2023);
        let avg_tables: f64 = ds
            .queries
            .iter()
            .map(|q| q.props.table_count as f64)
            .sum::<f64>()
            / ds.len() as f64;
        assert!(
            avg_tables > 4.0,
            "JOB should average >4 tables, got {avg_tables:.1}"
        );
        let avg_preds: f64 = ds
            .queries
            .iter()
            .map(|q| q.props.predicate_count as f64)
            .sum::<f64>()
            / ds.len() as f64;
        assert!(
            avg_preds > 6.0,
            "JOB should average >6 predicates, got {avg_preds:.1}"
        );
    }

    #[test]
    fn all_workload_queries_execute_on_witnesses() {
        // every workload's queries run on a witness of their own schema
        // (the resource budget is the only accepted failure, on the widest
        // Join-Order joins)
        for ds in build_all(2023) {
            for q in ds.queries.iter().step_by(9) {
                let Some(query) = squ_parser::parse(&q.sql).unwrap().query().cloned() else {
                    continue;
                };
                let schema = schema_for(ds.workload, &q.schema_name);
                let db = squ_engine::witness_database(&schema, 1234, 4, 9);
                match squ_engine::execute_query(&query, &db) {
                    Ok(_) | Err(squ_engine::ExecError::ResourceLimit) => {}
                    Err(e) => panic!("{}: {}: {e}", q.id, q.sql),
                }
            }
        }
    }

    #[test]
    fn generated_queries_have_plan_and_cost() {
        let model = squ_engine::CostModel::default();
        for ds in build_all(2023) {
            for q in ds.queries.iter().step_by(25) {
                let stmt = squ_parser::parse(&q.sql).unwrap();
                let schema = schema_for(ds.workload, &q.schema_name);
                let ms = model.estimate_ms(&stmt, &schema);
                assert!(ms.is_finite() && ms >= 0.0, "{}: cost {ms}", q.id);
                let plan = squ_engine::explain(&stmt, &schema);
                assert!(
                    plan.contains("Scan") || plan.contains("no query plan"),
                    "{}",
                    q.id
                );
            }
        }
    }

    #[test]
    fn sqlshare_spans_many_schemas() {
        let ds = build(Workload::SqlShare, 2023);
        let mut names: Vec<_> = ds.queries.iter().map(|q| q.schema_name.clone()).collect();
        names.sort();
        names.dedup();
        assert!(names.len() >= 10);
    }
}
