//! Syntactic query properties (paper §2.1).
//!
//! For every query the paper measures: `char_count`, `word_count`,
//! `query_type`, `table_count`, `join_count`, `column_count`,
//! `function_count`, `predicate_count`, `nestedness`, and `aggregate`.
//! This module computes them from the raw SQL plus the parsed AST, with
//! each definition matching the paper's prose.

use serde::{Deserialize, Serialize};
use squ_lexer::{char_count, word_count};
use squ_parser::ast::*;
use squ_parser::visit::{nestedness, walk_exprs, walk_queries, walk_table_refs};
use std::collections::BTreeSet;

/// The paper's ten syntactic properties of one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryProps {
    /// Number of characters in the query text.
    pub char_count: usize,
    /// Number of whitespace-separated words.
    pub word_count: usize,
    /// SELECT vs CREATE.
    pub query_type: String,
    /// Number of *distinct* tables referenced anywhere in the query.
    pub table_count: usize,
    /// Total joins: explicit `JOIN` operators plus implicit joins (extra
    /// comma-separated FROM items with join conditions).
    pub join_count: usize,
    /// Distinct columns referenced in the SELECT clause(s).
    pub column_count: usize,
    /// Total function calls (built-in or user-defined), aggregates included.
    pub function_count: usize,
    /// Conditions in WHERE clauses (AND/OR leaves, summed over subqueries).
    pub predicate_count: usize,
    /// Maximum subquery nesting depth.
    pub nestedness: usize,
    /// Does the query use aggregate functions?
    pub aggregate: bool,
}

/// Compute all properties for a statement and its source text.
pub fn query_props(sql: &str, stmt: &Statement) -> QueryProps {
    QueryProps {
        char_count: char_count(sql),
        word_count: word_count(sql),
        query_type: stmt.query_type().to_string(),
        table_count: table_count(stmt),
        join_count: join_count(stmt),
        column_count: select_column_count(stmt),
        function_count: function_count(stmt),
        predicate_count: predicate_count(stmt),
        nestedness: nestedness(stmt),
        aggregate: uses_aggregate(stmt),
    }
}

/// Number of distinct tables referenced (by name, case-insensitive),
/// anywhere in the statement including subqueries.
pub fn table_count(stmt: &Statement) -> usize {
    let mut names = BTreeSet::new();
    walk_table_refs(stmt, &mut |tr| {
        if let TableRef::Named { name, .. } = tr {
            names.insert(name.to_ascii_lowercase());
        }
    });
    names.len()
}

/// Total join count: explicit join operators + implicit joins. An implicit
/// join is an extra comma-separated item in a FROM clause when the query
/// also has join conditions (the paper's definition).
pub fn join_count(stmt: &Statement) -> usize {
    let mut explicit = 0usize;
    walk_table_refs(stmt, &mut |tr| {
        if matches!(tr, TableRef::Join { .. }) {
            explicit += 1;
        }
    });
    let mut implicit = 0usize;
    walk_queries(stmt, &mut |q, _| {
        if let SetExpr::Select(s) = &q.body {
            if s.from.len() > 1 && s.selection.is_some() {
                implicit += s.from.len() - 1;
            }
        }
        if let SetExpr::SetOp { .. } = &q.body {
            count_setop_implicit(&q.body, &mut implicit);
        }
    });
    explicit + implicit
}

fn count_setop_implicit(body: &SetExpr, implicit: &mut usize) {
    match body {
        SetExpr::Select(s) => {
            if s.from.len() > 1 && s.selection.is_some() {
                *implicit += s.from.len() - 1;
            }
        }
        SetExpr::SetOp { left, right, .. } => {
            count_setop_implicit(left, implicit);
            count_setop_implicit(right, implicit);
        }
    }
}

/// Distinct columns referenced in SELECT clauses (all query blocks).
pub fn select_column_count(stmt: &Statement) -> usize {
    let mut names = BTreeSet::new();
    walk_queries(stmt, &mut |q, _| {
        collect_select_cols(&q.body, &mut names);
    });
    names.len()
}

fn collect_select_cols(body: &SetExpr, names: &mut BTreeSet<String>) {
    match body {
        SetExpr::Select(s) => {
            for item in &s.items {
                if let SelectItem::Expr { expr, .. } = item {
                    collect_cols(expr, names);
                }
            }
        }
        SetExpr::SetOp { left, right, .. } => {
            collect_select_cols(left, names);
            collect_select_cols(right, names);
        }
    }
}

fn collect_cols(e: &Expr, names: &mut BTreeSet<String>) {
    if let Expr::Column(c) = e {
        names.insert(c.name.to_ascii_lowercase());
    }
    e.for_each_child(&mut |child| collect_cols(child, names));
}

/// Total function calls anywhere in the statement.
pub fn function_count(stmt: &Statement) -> usize {
    let mut n = 0;
    walk_exprs(stmt, &mut |e| {
        if matches!(e, Expr::Function { .. }) {
            n += 1;
        }
    });
    n
}

/// Conditions in WHERE clauses: AND/OR leaf predicates, summed over all
/// query blocks (subqueries included).
pub fn predicate_count(stmt: &Statement) -> usize {
    let mut n = 0;
    walk_queries(stmt, &mut |q, _| {
        count_where(&q.body, &mut n);
    });
    n
}

fn count_where(body: &SetExpr, n: &mut usize) {
    match body {
        SetExpr::Select(s) => {
            if let Some(w) = &s.selection {
                *n += leaf_predicates(w);
            }
        }
        SetExpr::SetOp { left, right, .. } => {
            count_where(left, n);
            count_where(right, n);
        }
    }
}

fn leaf_predicates(e: &Expr) -> usize {
    match e {
        Expr::And(a, b) | Expr::Or(a, b) => leaf_predicates(a) + leaf_predicates(b),
        Expr::Not(inner) => leaf_predicates(inner),
        _ => 1,
    }
}

/// Does the statement use aggregate functions anywhere?
pub fn uses_aggregate(stmt: &Statement) -> bool {
    let mut found = false;
    walk_exprs(stmt, &mut |e| {
        if e.is_aggregate_call() {
            found = true;
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use squ_parser::parse;

    fn props(sql: &str) -> QueryProps {
        query_props(sql, &parse(sql).unwrap())
    }

    #[test]
    fn counts_basic() {
        let p = props("SELECT plate, mjd FROM SpecObj WHERE z > 0.5");
        assert_eq!(p.word_count, 9);
        assert_eq!(p.query_type, "SELECT");
        assert_eq!(p.table_count, 1);
        assert_eq!(p.join_count, 0);
        assert_eq!(p.column_count, 2);
        assert_eq!(p.predicate_count, 1);
        assert_eq!(p.nestedness, 0);
        assert!(!p.aggregate);
    }

    #[test]
    fn explicit_and_implicit_joins() {
        let p =
            props("SELECT s.plate FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid");
        assert_eq!(p.join_count, 1);
        assert_eq!(p.table_count, 2);

        let p =
            props("SELECT a.x FROM t1 AS a, t2 AS b, t3 AS c WHERE a.id = b.id AND b.id = c.id");
        assert_eq!(p.join_count, 2, "two implicit joins from three FROM items");

        // comma FROM without any join condition is a cross product, not a join
        let p = props("SELECT a.x FROM t1 AS a, t2 AS b");
        assert_eq!(p.join_count, 0);
    }

    #[test]
    fn distinct_tables_counted_once() {
        let p = props(
            "SELECT s.z FROM SpecObj AS s WHERE s.plate IN (SELECT plate FROM SpecObj WHERE z > 1)",
        );
        assert_eq!(p.table_count, 1);
        assert_eq!(p.nestedness, 1);
        assert_eq!(p.predicate_count, 2, "outer IN predicate + inner z > 1");
    }

    #[test]
    fn aggregates_and_functions() {
        let p = props("SELECT plate, COUNT(*), AVG(z) FROM SpecObj GROUP BY plate");
        assert!(p.aggregate);
        assert_eq!(p.function_count, 2);
        assert_eq!(p.column_count, 2, "plate and z");

        let p = props("SELECT UPPER(class) FROM SpecObj");
        assert!(!p.aggregate);
        assert_eq!(p.function_count, 1);
    }

    #[test]
    fn create_query_type() {
        let p = props("CREATE TABLE hot AS SELECT plate FROM SpecObj WHERE z > 1");
        assert_eq!(p.query_type, "CREATE");
        assert_eq!(p.table_count, 1);
    }

    #[test]
    fn predicates_counted_across_or() {
        let p = props("SELECT x FROM t WHERE a = 1 AND (b = 2 OR c = 3) AND NOT d = 4");
        assert_eq!(p.predicate_count, 4);
    }

    #[test]
    fn set_op_branches_counted() {
        let p =
            props("SELECT x FROM a WHERE p = 1 INTERSECT SELECT x FROM b WHERE q = 2 AND r = 3");
        assert_eq!(p.table_count, 2);
        assert_eq!(p.predicate_count, 3);
        assert_eq!(p.column_count, 1);
    }

    #[test]
    fn join_condition_columns_not_select_columns() {
        let p =
            props("SELECT s.plate FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid");
        assert_eq!(p.column_count, 1, "only the projection column counts");
    }
}
