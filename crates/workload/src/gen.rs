//! Schema-aware random query generation.
//!
//! [`QueryGenerator`] produces *semantically clean* SQL statements over a
//! [`Schema`]: every generated query parses, binds without diagnostics, and
//! executes on witness databases. Workload character (query length, join
//! fan-out, aggregation rate, nesting, DDL share, …) is controlled by a
//! [`GenProfile`]; the four paper workloads are profiles defined in
//! the workload builders in this crate ([`crate::build`]).
//!
//! Generation is deterministic in the seed: the same `(schema, profile,
//! seed)` triple always yields the same statement, which is what makes the
//! benchmark's derived datasets reproducible end-to-end.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use squ_engine::TEXT_VOCAB;
use squ_parser::ast::*;
use squ_parser::CompareOp;
use squ_schema::{Schema, SqlType, Table};

/// Distributional knobs describing a workload's character.
#[derive(Debug, Clone)]
pub struct GenProfile {
    /// Probability that a statement is `CREATE TABLE … AS SELECT`.
    pub create_prob: f64,
    /// Probability that the query aggregates.
    pub aggregate_prob: f64,
    /// Probability of one level of subquery nesting (an `IN` subquery).
    pub nested_prob: f64,
    /// Probability of wrapping the query in a CTE.
    pub cte_prob: f64,
    /// Weighted distribution over the number of tables.
    pub table_count_weights: Vec<(usize, f64)>,
    /// Min/max extra WHERE predicates beyond join conditions.
    pub extra_pred_range: (usize, usize),
    /// Probability of explicit `JOIN … ON` syntax (vs. implicit comma join).
    pub explicit_join_prob: f64,
    /// Probability each table gets an alias.
    pub alias_prob: f64,
    /// Probability of `TOP n` (T-SQL style, SDSS).
    pub top_prob: f64,
    /// Probability of `ORDER BY`.
    pub order_by_prob: f64,
    /// Probability of `LIMIT n` (when no TOP).
    pub limit_prob: f64,
    /// Probability a projected column is wrapped in a scalar function.
    pub scalar_fn_prob: f64,
    /// Probability of `SELECT *` (non-aggregate queries only).
    pub star_prob: f64,
    /// Probability of `SELECT DISTINCT`.
    pub distinct_prob: f64,
    /// Min/max projected columns.
    pub proj_cols_range: (usize, usize),
}

impl Default for GenProfile {
    fn default() -> Self {
        GenProfile {
            create_prob: 0.0,
            aggregate_prob: 0.25,
            nested_prob: 0.15,
            cte_prob: 0.05,
            table_count_weights: vec![(1, 0.5), (2, 0.35), (3, 0.15)],
            extra_pred_range: (1, 4),
            explicit_join_prob: 0.7,
            alias_prob: 0.6,
            top_prob: 0.0,
            order_by_prob: 0.3,
            limit_prob: 0.15,
            scalar_fn_prob: 0.1,
            star_prob: 0.08,
            distinct_prob: 0.1,
            proj_cols_range: (1, 4),
        }
    }
}

/// Forced choices overriding the profile's probabilities for one
/// statement — the workload builders use this to hit the paper's exact
/// per-dataset quotas (e.g. SDSS's 21 aggregate queries out of 285).
#[derive(Debug, Clone, Copy, Default)]
pub struct Force {
    /// Force the statement to be / not be a `CREATE TABLE AS`.
    pub create: Option<bool>,
    /// Force aggregation on/off.
    pub aggregate: Option<bool>,
    /// Force subquery nesting on/off.
    pub nested: Option<bool>,
}

/// A joinable column pair between two tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinEdge {
    /// First table name.
    pub t1: String,
    /// Column of `t1`.
    pub c1: String,
    /// Second table name.
    pub t2: String,
    /// Column of `t2`.
    pub c2: String,
}

/// Build the join graph of a schema: same-named id-like columns across
/// table pairs, plus curated foreign-key hints for the schemas whose naming
/// conventions defeat the generic rule (IMDB's `movie_id → title.id`,
/// Spider's `car_1`).
pub fn join_graph(schema: &Schema) -> Vec<JoinEdge> {
    let mut edges = Vec::new();
    // generic rule: same (case-insensitive) id-like column name
    for (i, a) in schema.tables.iter().enumerate() {
        for b in schema.tables.iter().skip(i + 1) {
            for ca in &a.columns {
                if !squ_engine::is_id_column(&ca.name) {
                    continue;
                }
                for cb in &b.columns {
                    if ca.name.eq_ignore_ascii_case(&cb.name) {
                        edges.push(JoinEdge {
                            t1: a.name.clone(),
                            c1: ca.name.clone(),
                            t2: b.name.clone(),
                            c2: cb.name.clone(),
                        });
                    }
                }
            }
        }
    }
    // curated hints
    let hints: &[(&str, &str, &str, &str)] = match schema.name.as_str() {
        "imdb" => &[
            ("movie_companies", "movie_id", "title", "id"),
            ("movie_info", "movie_id", "title", "id"),
            ("movie_info_idx", "movie_id", "title", "id"),
            ("cast_info", "movie_id", "title", "id"),
            ("movie_keyword", "movie_id", "title", "id"),
            ("movie_link", "movie_id", "title", "id"),
            ("movie_link", "linked_movie_id", "title", "id"),
            ("aka_title", "movie_id", "title", "id"),
            ("complete_cast", "movie_id", "title", "id"),
            ("movie_companies", "company_id", "company_name", "id"),
            ("movie_companies", "company_type_id", "company_type", "id"),
            ("movie_info", "info_type_id", "info_type", "id"),
            ("movie_info_idx", "info_type_id", "info_type", "id"),
            ("cast_info", "person_id", "name", "id"),
            ("cast_info", "person_role_id", "char_name", "id"),
            ("cast_info", "role_id", "role_type", "id"),
            ("movie_keyword", "keyword_id", "keyword", "id"),
            ("person_info", "person_id", "name", "id"),
            ("person_info", "info_type_id", "info_type", "id"),
            ("movie_link", "link_type_id", "link_type", "id"),
            ("title", "kind_id", "kind_type", "id"),
            ("complete_cast", "subject_id", "comp_cast_type", "id"),
            ("complete_cast", "status_id", "comp_cast_type", "id"),
            ("aka_name", "person_id", "name", "id"),
        ],
        "sdss" => &[
            ("SpecObj", "bestobjid", "PhotoObj", "objid"),
            ("Neighbors", "neighborobjid", "PhotoObj", "objid"),
            ("SpecObj", "bestobjid", "Galaxy", "objid"),
            ("SpecObj", "bestobjid", "Star", "objid"),
        ],
        "car_1" => &[
            ("CARS_DATA", "id", "CAR_NAMES", "makeid"),
            ("MODEL_LIST", "maker", "CAR_MAKERS", "id"),
            ("CAR_MAKERS", "country", "COUNTRIES", "countryid"),
        ],
        _ => &[],
    };
    for (t1, c1, t2, c2) in hints {
        let edge = JoinEdge {
            t1: t1.to_string(),
            c1: c1.to_string(),
            t2: t2.to_string(),
            c2: c2.to_string(),
        };
        if !edges.contains(&edge) {
            edges.push(edge);
        }
    }
    edges
}

/// One chosen FROM table with its binding name.
#[derive(Debug, Clone)]
struct Chosen {
    table: String,
    alias: Option<String>,
    /// binding name (alias if any, else table name)
    binding: String,
}

/// Deterministic schema-aware statement generator.
pub struct QueryGenerator<'a> {
    schema: &'a Schema,
    profile: GenProfile,
    edges: Vec<JoinEdge>,
    rng: StdRng,
    counter: u64,
    force: Force,
}

impl<'a> QueryGenerator<'a> {
    /// Construct a generator; `seed` determines the whole stream.
    pub fn new(schema: &'a Schema, profile: GenProfile, seed: u64) -> Self {
        QueryGenerator {
            schema,
            edges: join_graph(schema),
            profile,
            rng: StdRng::seed_from_u64(seed),
            counter: 0,
            force: Force::default(),
        }
    }

    /// Reset the generator to the state of a fresh
    /// `QueryGenerator::new(schema, profile, seed)` without recomputing the
    /// join graph. The streaming synthesis path ([`crate::stream`]) reseeds
    /// one generator per item from a `(stream seed, index)` mix, which is
    /// what makes any cursor restart — and any shard partition — reproduce
    /// byte-identical statements.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
        self.counter = 0;
        self.force = Force::default();
    }

    /// Generate the next statement.
    pub fn generate(&mut self) -> Statement {
        self.generate_forced(Force::default())
    }

    /// Generate the next statement with some choices pinned.
    pub fn generate_forced(&mut self, force: Force) -> Statement {
        self.counter += 1;
        self.force = force;
        let query = self.gen_query();
        let create = force
            .create
            .unwrap_or_else(|| self.rng.gen_bool(self.profile.create_prob));
        if create {
            Statement::CreateTable {
                name: format!("tmp_{}", self.counter),
                columns: Vec::new(),
                source: Some(Box::new(query)),
            }
        } else {
            Statement::Query(query)
        }
    }

    fn gen_query(&mut self) -> Query {
        let select = self.gen_select(0);
        let mut q = Query::from_select(select);
        self.attach_order_limit(&mut q);
        if self.rng.gen_bool(self.profile.cte_prob) {
            q = self.wrap_in_cte(q);
        }
        q
    }

    /// Wrap a query in a pass-through CTE: `WITH w AS (q) SELECT * FROM w`
    /// with ORDER BY/LIMIT hoisted to the outer level so the printer output
    /// stays valid everywhere.
    fn wrap_in_cte(&mut self, mut q: Query) -> Query {
        let order_by = std::mem::take(&mut q.order_by);
        let limit = q.limit.take();
        let name = format!("cte_{}", self.counter);
        // ORDER BY columns may reference inner aliases; keep only ones that
        // are plain output column names.
        let inner_names: Vec<String> = output_names(&q);
        let order_by = order_by
            .into_iter()
            .filter(|o| match &o.expr {
                Expr::Column(c) => inner_names.iter().any(|n| n.eq_ignore_ascii_case(&c.name)),
                _ => false,
            })
            .map(|o| OrderItem {
                expr: match o.expr {
                    Expr::Column(c) => Expr::column(None, &c.name),
                    other => other,
                },
                desc: o.desc,
            })
            .collect();
        Query {
            ctes: vec![Cte {
                name: name.clone(),
                query: Box::new(q),
            }],
            body: SetExpr::Select(Box::new(Select {
                items: vec![SelectItem::Wildcard],
                from: vec![TableRef::named(&name, None)],
                ..Select::new()
            })),
            order_by,
            limit,
            span: Span::default(),
        }
    }

    fn attach_order_limit(&mut self, q: &mut Query) {
        let names = output_names(q);
        let usable: Vec<&String> = names.iter().filter(|n| *n != "*").collect();
        if !usable.is_empty() && self.rng.gen_bool(self.profile.order_by_prob) {
            let n = usable[self.rng.gen_range(0..usable.len())].clone();
            let desc = self.rng.gen_bool(0.5);
            q.order_by.push(OrderItem {
                expr: Expr::column(None, &n),
                desc,
            });
        }
        if self.rng.gen_bool(self.profile.top_prob) {
            if let SetExpr::Select(s) = &mut q.body {
                s.top = Some(
                    *[1u64, 5, 10, 50, 100, 1000]
                        .choose(&mut self.rng)
                        .expect("non-empty"), // lint:allow: drawn from a non-empty set
                );
            }
        } else if self.rng.gen_bool(self.profile.limit_prob) {
            q.limit = Some(
                *[1u64, 5, 10, 20, 100]
                    .choose(&mut self.rng)
                    .expect("non-empty"), // lint:allow: drawn from a non-empty set
            );
        }
    }

    fn gen_select(&mut self, depth: usize) -> Select {
        // 1. choose connected tables
        let k = self.pick_table_count();
        let chosen = self.pick_tables(k);
        let explicit = self.rng.gen_bool(self.profile.explicit_join_prob);

        // join conditions between consecutive chosen tables
        let mut join_conds: Vec<Expr> = Vec::new();
        for i in 1..chosen.len() {
            if let Some(cond) = self.join_condition(&chosen[..i], &chosen[i]) {
                join_conds.push(cond);
            }
        }

        // 2. FROM clause
        let from = if explicit && chosen.len() > 1 {
            let mut it = chosen.iter();
            let first = it.next().expect("k >= 1"); // lint:allow: k is validated at entry
            let mut tree = TableRef::named(&first.table, first.alias.as_deref());
            for (i, c) in it.enumerate() {
                let constraint = join_conds
                    .get(i)
                    .cloned()
                    .map(JoinConstraint::On)
                    .unwrap_or(JoinConstraint::None);
                let kind = if matches!(constraint, JoinConstraint::None) {
                    JoinKind::Cross
                } else {
                    JoinKind::Inner
                };
                tree = TableRef::Join {
                    left: Box::new(tree),
                    right: Box::new(TableRef::named(&c.table, c.alias.as_deref())),
                    kind,
                    constraint,
                };
            }
            join_conds.clear(); // consumed by ON
            vec![tree]
        } else {
            chosen
                .iter()
                .map(|c| TableRef::named(&c.table, c.alias.as_deref()))
                .collect()
        };

        // 3. WHERE: leftover join conditions (implicit join) + extra predicates
        let (lo, hi) = self.profile.extra_pred_range;
        let n_extra = self.rng.gen_range(lo..=hi);
        let mut preds = join_conds;
        for _ in 0..n_extra {
            preds.push(self.gen_predicate(&chosen));
        }
        let want_nested = self
            .force
            .nested
            .unwrap_or_else(|| self.rng.gen_bool(self.profile.nested_prob));
        if depth == 0 && want_nested {
            if let Some(p) = self.gen_in_subquery(&chosen, depth) {
                preds.push(p);
            }
        }
        let selection = preds.into_iter().reduce(|a, b| a.and(b));

        // 4. projection
        let aggregate = self
            .force
            .aggregate
            .unwrap_or_else(|| self.rng.gen_bool(self.profile.aggregate_prob));
        let (items, group_by, having) = if aggregate {
            self.gen_aggregate_projection(&chosen)
        } else {
            (self.gen_plain_projection(&chosen), Vec::new(), None)
        };

        Select {
            distinct: !aggregate && self.rng.gen_bool(self.profile.distinct_prob),
            top: None,
            items,
            from,
            selection,
            group_by,
            having,
        }
    }

    fn pick_table_count(&mut self) -> usize {
        let total: f64 = self
            .profile
            .table_count_weights
            .iter()
            .map(|(_, w)| w)
            .sum();
        let mut x = self.rng.gen_range(0.0..total);
        for (k, w) in &self.profile.table_count_weights {
            if x < *w {
                return *k;
            }
            x -= w;
        }
        1
    }

    /// Pick up to `k` tables connected in the join graph (fewer if the walk
    /// gets stuck), and assign aliases.
    fn pick_tables(&mut self, k: usize) -> Vec<Chosen> {
        let mut names: Vec<String> = Vec::new();
        let start = self
            .schema
            .tables
            .choose(&mut self.rng)
            .expect("schema has tables") // lint:allow: every benchmark schema declares tables
            .name
            .clone();
        names.push(start);
        while names.len() < k {
            let candidates: Vec<&JoinEdge> = self
                .edges
                .iter()
                .filter(|e| {
                    let has1 = names.iter().any(|n| n.eq_ignore_ascii_case(&e.t1));
                    let has2 = names.iter().any(|n| n.eq_ignore_ascii_case(&e.t2));
                    has1 != has2 // exactly one endpoint chosen
                })
                .collect();
            match candidates.choose(&mut self.rng) {
                Some(e) => {
                    let next = if names.iter().any(|n| n.eq_ignore_ascii_case(&e.t1)) {
                        e.t2.clone()
                    } else {
                        e.t1.clone()
                    };
                    names.push(next);
                }
                None => break,
            }
        }
        let use_alias = self.rng.gen_bool(self.profile.alias_prob) || names.len() > 1;
        names
            .into_iter()
            .enumerate()
            .map(|(i, table)| {
                let alias = if use_alias {
                    Some(format!("t{}", i + 1))
                } else {
                    None
                };
                let binding = alias.clone().unwrap_or_else(|| table.clone());
                Chosen {
                    table,
                    alias,
                    binding,
                }
            })
            .collect()
    }

    /// Join condition between the newly added table and any already-chosen
    /// table, via the join graph.
    fn join_condition(&mut self, chosen: &[Chosen], new: &Chosen) -> Option<Expr> {
        let mut candidates: Vec<(usize, &JoinEdge, bool)> = Vec::new();
        for (ci, c) in chosen.iter().enumerate() {
            for e in &self.edges {
                if e.t1.eq_ignore_ascii_case(&c.table) && e.t2.eq_ignore_ascii_case(&new.table) {
                    candidates.push((ci, e, false));
                } else if e.t2.eq_ignore_ascii_case(&c.table)
                    && e.t1.eq_ignore_ascii_case(&new.table)
                {
                    candidates.push((ci, e, true));
                }
            }
        }
        let (ci, e, flipped) = *candidates.choose(&mut self.rng)?;
        let old = &chosen[ci];
        let (oc, nc) = if flipped {
            (&e.c2, &e.c1)
        } else {
            (&e.c1, &e.c2)
        };
        Some(
            Expr::column(Some(&old.binding), oc)
                .compare(CompareOp::Eq, Expr::column(Some(&new.binding), nc)),
        )
    }

    /// A single extra WHERE predicate on a random column of a chosen table.
    fn gen_predicate(&mut self, chosen: &[Chosen]) -> Expr {
        let c = chosen
            .choose(&mut self.rng)
            .expect("chosen non-empty") // lint:allow: chosen set built non-empty
            .clone();
        let table = self.schema.table(&c.table).expect("chosen from schema"); // lint:allow: name came from this schema
        let col = table
            .columns
            .choose(&mut self.rng)
            .expect("tables have columns") // lint:allow: benchmark tables declare columns
            .clone();
        let qualifier = self.qualifier_for(chosen, &c);
        let col_expr = Expr::column(qualifier.as_deref(), &col.name);
        match col.ty {
            SqlType::Int | SqlType::Float => {
                let style = self.rng.gen_range(0..10);
                match style {
                    0..=5 => {
                        let op = *[
                            CompareOp::Eq,
                            CompareOp::Gt,
                            CompareOp::GtEq,
                            CompareOp::Lt,
                            CompareOp::LtEq,
                        ]
                        .choose(&mut self.rng)
                        .expect("non-empty"); // lint:allow: drawn from a non-empty set
                        col_expr.compare(op, Expr::number(self.gen_number(col.ty)))
                    }
                    6..=7 => {
                        let lo = self.gen_number(col.ty);
                        let hi = lo + self.rng.gen_range(1..300) as f64;
                        Expr::Between {
                            expr: Box::new(col_expr),
                            low: Box::new(Expr::number(lo)),
                            high: Box::new(Expr::number(hi)),
                            negated: false,
                        }
                    }
                    _ => {
                        let n = self.rng.gen_range(2..=4);
                        let list = (0..n)
                            .map(|_| Expr::number(self.gen_number(SqlType::Int)))
                            .collect();
                        Expr::InList {
                            expr: Box::new(col_expr),
                            list,
                            negated: self.rng.gen_bool(0.15),
                        }
                    }
                }
            }
            SqlType::Text => {
                if self.rng.gen_bool(0.35) {
                    let word = TEXT_VOCAB.choose(&mut self.rng).expect("non-empty"); // lint:allow: drawn from a non-empty set
                    let frag = &word[..word.len().min(3)];
                    Expr::Like {
                        expr: Box::new(col_expr),
                        pattern: Box::new(Expr::string(&format!("%{frag}%"))),
                        negated: false,
                    }
                } else {
                    let word = TEXT_VOCAB.choose(&mut self.rng).expect("non-empty"); // lint:allow: drawn from a non-empty set
                    col_expr.compare(CompareOp::Eq, Expr::string(word))
                }
            }
            SqlType::Bool => col_expr.compare(CompareOp::Eq, Expr::Literal(Literal::Bool(true))),
        }
    }

    fn gen_number(&mut self, ty: SqlType) -> f64 {
        match ty {
            SqlType::Int => self.rng.gen_range(0..1000) as f64,
            _ => (self.rng.gen_range(0.0..1000.0_f64) * 10.0).round() / 10.0,
        }
    }

    /// Qualifier for a column of `c`: required when several tables are in
    /// scope, optional style choice otherwise.
    fn qualifier_for(&mut self, chosen: &[Chosen], c: &Chosen) -> Option<String> {
        if chosen.len() > 1 || (c.alias.is_some() && self.rng.gen_bool(0.8)) {
            Some(c.binding.clone())
        } else {
            None
        }
    }

    /// An `IN (subquery)` predicate along a join edge.
    fn gen_in_subquery(&mut self, chosen: &[Chosen], depth: usize) -> Option<Expr> {
        let mut candidates: Vec<(usize, &JoinEdge, bool)> = Vec::new();
        for (ci, c) in chosen.iter().enumerate() {
            for e in &self.edges {
                if e.t1.eq_ignore_ascii_case(&c.table) {
                    candidates.push((ci, e, false));
                }
                if e.t2.eq_ignore_ascii_case(&c.table) {
                    candidates.push((ci, e, true));
                }
            }
        }
        let (ci, e, flipped) = match candidates.choose(&mut self.rng) {
            Some(&(ci, e, flipped)) => (ci, e.clone(), flipped),
            None => {
                // no join edge from the chosen tables: fall back to a
                // self-subquery on an id-like column of a chosen table
                let ci = self.rng.gen_range(0..chosen.len());
                let table = self.schema.table(&chosen[ci].table)?;
                let col = table
                    .columns
                    .iter()
                    .find(|c| squ_engine::is_id_column(&c.name))
                    .or_else(|| table.columns.iter().find(|c| c.ty.is_numeric()))?
                    .name
                    .clone();
                let tname = table.name.clone();
                (
                    ci,
                    JoinEdge {
                        t1: tname.clone(),
                        c1: col.clone(),
                        t2: tname,
                        c2: col,
                    },
                    false,
                )
            }
        };
        let outer = chosen[ci].clone();
        let (oc, inner_table, ic) = if flipped {
            (e.c2, e.t1, e.c1)
        } else {
            (e.c1, e.t2, e.c2)
        };
        let outer_q = self.qualifier_for(chosen, &outer);
        // inner select: one predicate, no alias
        let inner_tbl = self.schema.table(&inner_table)?.clone();
        let inner_chosen = vec![Chosen {
            table: inner_tbl.name.clone(),
            alias: None,
            binding: inner_tbl.name.clone(),
        }];
        let mut inner_preds = Vec::new();
        for _ in 0..self.rng.gen_range(1..=2) {
            inner_preds.push(self.gen_predicate(&inner_chosen));
        }
        let mut inner_nested = None;
        if depth == 0 && self.rng.gen_bool(0.15) {
            inner_nested = self.gen_in_subquery(&inner_chosen, depth + 1);
        }
        if let Some(p) = inner_nested {
            inner_preds.push(p);
        }
        let inner = Select {
            items: vec![SelectItem::column(None, &ic)],
            from: vec![TableRef::named(&inner_tbl.name, None)],
            selection: inner_preds.into_iter().reduce(|a, b| a.and(b)),
            ..Select::new()
        };
        Some(Expr::InSubquery {
            expr: Box::new(Expr::column(outer_q.as_deref(), &oc)),
            subquery: Box::new(Query::from_select(inner)),
            negated: false,
        })
    }

    fn gen_plain_projection(&mut self, chosen: &[Chosen]) -> Vec<SelectItem> {
        if self.rng.gen_bool(self.profile.star_prob) {
            return vec![SelectItem::Wildcard];
        }
        let (lo, hi) = self.profile.proj_cols_range;
        let n = self.rng.gen_range(lo..=hi);
        let mut items = Vec::new();
        let mut used: Vec<(String, String)> = Vec::new();
        for _ in 0..n {
            let c = chosen.choose(&mut self.rng).expect("non-empty").clone(); // lint:allow: drawn from a non-empty set
            let table = self.schema.table(&c.table).expect("chosen from schema"); // lint:allow: name came from this schema
            let col = table
                .columns
                .choose(&mut self.rng)
                .expect("has columns") // lint:allow: benchmark tables declare columns
                .clone();
            let key = (c.binding.clone(), col.name.to_ascii_lowercase());
            if used.contains(&key) {
                continue;
            }
            used.push(key);
            let q = self.qualifier_for(chosen, &c);
            let expr = Expr::column(q.as_deref(), &col.name);
            let expr = if self.rng.gen_bool(self.profile.scalar_fn_prob) {
                self.wrap_scalar_fn(expr, col.ty)
            } else {
                expr
            };
            items.push(SelectItem::Expr { expr, alias: None });
        }
        if items.is_empty() {
            // degenerate draw: project the first column of the first table
            let c = &chosen[0];
            let table = self.schema.table(&c.table).expect("chosen from schema"); // lint:allow: name came from this schema
            let q = if chosen.len() > 1 {
                Some(c.binding.clone())
            } else {
                None
            };
            items.push(SelectItem::column(q.as_deref(), &table.columns[0].name));
        }
        items
    }

    fn wrap_scalar_fn(&mut self, expr: Expr, ty: SqlType) -> Expr {
        let name = match ty {
            SqlType::Int | SqlType::Float => *["ABS", "ROUND", "FLOOR", "CEILING"]
                .choose(&mut self.rng)
                .expect("non-empty"), // lint:allow: drawn from a non-empty set
            SqlType::Text => *["UPPER", "LOWER", "TRIM", "LEN"]
                .choose(&mut self.rng)
                .expect("non-empty"), // lint:allow: drawn from a non-empty set
            SqlType::Bool => return expr,
        };
        Expr::Function {
            name: name.to_string(),
            args: vec![expr],
            distinct: false,
        }
    }

    #[allow(clippy::type_complexity)]
    fn gen_aggregate_projection(
        &mut self,
        chosen: &[Chosen],
    ) -> (Vec<SelectItem>, Vec<Expr>, Option<Expr>) {
        // group keys: 0..=2 columns
        let n_keys = self.rng.gen_range(0..=2usize);
        let mut keys: Vec<Expr> = Vec::new();
        let mut used = Vec::new();
        for _ in 0..n_keys {
            let c = chosen.choose(&mut self.rng).expect("non-empty").clone(); // lint:allow: drawn from a non-empty set
            let table = self.schema.table(&c.table).expect("chosen from schema"); // lint:allow: name came from this schema
            let col = table
                .columns
                .choose(&mut self.rng)
                .expect("has columns") // lint:allow: benchmark tables declare columns
                .clone();
            let key = (c.binding.clone(), col.name.to_ascii_lowercase());
            if used.contains(&key) {
                continue;
            }
            used.push(key);
            let q = self.qualifier_for(chosen, &c);
            keys.push(Expr::column(q.as_deref(), &col.name));
        }
        let mut items: Vec<SelectItem> = keys
            .iter()
            .map(|k| SelectItem::Expr {
                expr: k.clone(),
                alias: None,
            })
            .collect();

        // aggregates: 1..=2
        let n_aggs = self.rng.gen_range(1..=2usize);
        for i in 0..n_aggs {
            let agg = if i == 0 && self.rng.gen_bool(0.5) {
                Expr::Function {
                    name: "COUNT".into(),
                    args: vec![Expr::Wildcard],
                    distinct: false,
                }
            } else {
                // numeric column aggregate
                let numeric = self.pick_numeric_column(chosen);
                match numeric {
                    Some((q, name)) => Expr::Function {
                        name: (*["AVG", "SUM", "MIN", "MAX"]
                            .choose(&mut self.rng)
                            .expect("non-empty")) // lint:allow: drawn from a non-empty set
                        .to_string(),
                        args: vec![Expr::column(q.as_deref(), &name)],
                        distinct: false,
                    },
                    None => Expr::Function {
                        name: "COUNT".into(),
                        args: vec![Expr::Wildcard],
                        distinct: false,
                    },
                }
            };
            let alias = if self.rng.gen_bool(0.5) {
                Some(format!("agg_{}", i + 1))
            } else {
                None
            };
            items.push(SelectItem::Expr { expr: agg, alias });
        }

        // HAVING on an aggregate
        let having = if self.rng.gen_bool(0.25) {
            Some(
                Expr::Function {
                    name: "COUNT".into(),
                    args: vec![Expr::Wildcard],
                    distinct: false,
                }
                .compare(
                    CompareOp::Gt,
                    Expr::number(self.rng.gen_range(1..10) as f64),
                ),
            )
        } else {
            None
        };

        (items, keys, having)
    }

    fn pick_numeric_column(&mut self, chosen: &[Chosen]) -> Option<(Option<String>, String)> {
        for _ in 0..8 {
            let c = chosen.choose(&mut self.rng)?.clone();
            let table: &Table = self.schema.table(&c.table)?;
            let col = table.columns.choose(&mut self.rng)?;
            if col.ty.is_numeric() {
                let name = col.name.clone();
                let q = self.qualifier_for(chosen, &c);
                return Some((q, name));
            }
        }
        None
    }
}

/// Output column names of a query (for ORDER BY attachment); `*` for
/// wildcards.
fn output_names(q: &Query) -> Vec<String> {
    let select = match &q.body {
        SetExpr::Select(s) => s,
        SetExpr::SetOp { .. } => return Vec::new(),
    };
    select
        .items
        .iter()
        .map(|i| match i {
            SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => "*".to_string(),
            SelectItem::Expr { expr, alias } => alias.clone().unwrap_or_else(|| match expr {
                Expr::Column(c) => c.name.clone(),
                _ => "*".to_string(), // unnamed expression: not usable in ORDER BY
            }),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use squ_parser::{parse, print_statement};
    use squ_schema::schemas::{imdb, sdss};

    #[test]
    fn generator_is_deterministic() {
        let schema = sdss();
        let mut g1 = QueryGenerator::new(&schema, GenProfile::default(), 7);
        let mut g2 = QueryGenerator::new(&schema, GenProfile::default(), 7);
        for _ in 0..20 {
            assert_eq!(
                print_statement(&g1.generate()),
                print_statement(&g2.generate())
            );
        }
    }

    #[test]
    fn generated_queries_parse_and_bind_clean() {
        let schema = sdss();
        let mut g = QueryGenerator::new(&schema, GenProfile::default(), 11);
        for i in 0..200 {
            let stmt = g.generate();
            let sql = print_statement(&stmt);
            let reparsed = parse(&sql).unwrap_or_else(|e| panic!("q{i}: {sql}: {e}"));
            let diags = squ_schema::analyze(&reparsed, &schema);
            assert!(diags.is_empty(), "q{i} not clean: {sql}\n{diags:?}");
        }
    }

    #[test]
    fn generated_queries_execute_on_witness() {
        let schema = sdss();
        let db = squ_engine::witness_database(&schema, 3, 5, 12);
        let mut g = QueryGenerator::new(&schema, GenProfile::default(), 13);
        for i in 0..100 {
            let stmt = g.generate();
            if let Some(q) = stmt.query() {
                squ_engine::execute_query(q, &db)
                    .unwrap_or_else(|e| panic!("q{i}: {}: {e}", print_statement(&stmt)));
            }
        }
    }

    #[test]
    fn imdb_join_graph_connects_hub() {
        let schema = imdb();
        let edges = join_graph(&schema);
        assert!(edges
            .iter()
            .any(|e| e.t1 == "movie_companies" && e.t2 == "title"));
        assert!(edges.len() > 20);
    }

    #[test]
    fn profile_controls_aggregation_rate() {
        let schema = sdss();
        let profile = GenProfile {
            aggregate_prob: 1.0,
            ..GenProfile::default()
        };
        let mut g = QueryGenerator::new(&schema, profile, 5);
        for _ in 0..20 {
            let stmt = g.generate();
            assert!(crate::props::uses_aggregate(&stmt));
        }
    }

    #[test]
    fn multi_table_profile_produces_joins() {
        let schema = imdb();
        let profile = GenProfile {
            table_count_weights: vec![(4, 1.0)],
            explicit_join_prob: 1.0,
            nested_prob: 0.0,
            ..GenProfile::default()
        };
        let mut g = QueryGenerator::new(&schema, profile, 5);
        let mut saw_multi = 0;
        for _ in 0..20 {
            let stmt = g.generate();
            if crate::props::table_count(&stmt) >= 3 {
                saw_multi += 1;
            }
        }
        assert!(saw_multi >= 15, "only {saw_multi}/20 multi-table");
    }
}
