//! Workload analysis: histograms (paper Figures 1–3) and pairwise Pearson
//! correlations between syntactic properties (paper Figure 4).

use crate::{Dataset, QueryProps};
use serde::Serialize;

/// The numeric properties entering the correlation analysis, in the
/// paper's order.
pub const NUMERIC_PROPS: [&str; 8] = [
    "char_count",
    "word_count",
    "table_count",
    "join_count",
    "column_count",
    "function_count",
    "predicate_count",
    "nestedness",
];

/// Value of a numeric property by name.
pub fn prop_value(p: &QueryProps, name: &str) -> f64 {
    match name {
        "char_count" => p.char_count as f64,
        "word_count" => p.word_count as f64,
        "table_count" => p.table_count as f64,
        "join_count" => p.join_count as f64,
        "column_count" => p.column_count as f64,
        "function_count" => p.function_count as f64,
        "predicate_count" => p.predicate_count as f64,
        "nestedness" => p.nestedness as f64,
        other => panic!("unknown property {other}"), // lint:allow: names come from the fixed property list
    }
}

/// A histogram over bucketed value ranges.
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    /// Property name.
    pub property: String,
    /// `(label, count)` per bucket, in range order.
    pub buckets: Vec<(String, usize)>,
}

/// Bucket `values` into ranges delimited by `edges` (ascending). Produces
/// `edges.len() + 1` buckets: `< e0`, `[e0, e1)`, …, `>= e_last`.
pub fn histogram(property: &str, values: &[f64], edges: &[f64]) -> Histogram {
    debug_assert!(edges.windows(2).all(|w| w[0] < w[1]));
    let mut counts = vec![0usize; edges.len() + 1];
    for &v in values {
        let idx = edges.iter().position(|&e| v < e).unwrap_or(edges.len());
        counts[idx] += 1;
    }
    let mut buckets = Vec::with_capacity(counts.len());
    for (i, &c) in counts.iter().enumerate() {
        let label = if i == 0 {
            format!("<{}", fmt_edge(edges[0]))
        } else if i == edges.len() {
            format!(">={}", fmt_edge(edges[edges.len() - 1]))
        } else {
            format!("{}-{}", fmt_edge(edges[i - 1]), fmt_edge(edges[i]))
        };
        buckets.push((label, c));
    }
    Histogram {
        property: property.to_string(),
        buckets,
    }
}

fn fmt_edge(e: f64) -> String {
    if e.fract() == 0.0 {
        format!("{}", e as i64)
    } else {
        format!("{e}")
    }
}

/// Default bucket edges per property, chosen to mirror the paper's figures.
pub fn default_edges(property: &str) -> Vec<f64> {
    match property {
        "char_count" => vec![100.0, 200.0, 400.0, 800.0, 1600.0],
        "word_count" => vec![10.0, 25.0, 50.0, 100.0, 200.0],
        "table_count" => vec![2.0, 3.0, 4.0, 6.0, 9.0],
        "join_count" => vec![1.0, 2.0, 4.0, 8.0, 12.0],
        "column_count" => vec![2.0, 3.0, 5.0, 8.0, 12.0],
        "function_count" => vec![1.0, 2.0, 3.0, 5.0, 8.0],
        "predicate_count" => vec![1.0, 3.0, 6.0, 10.0, 20.0],
        "nestedness" => vec![1.0, 2.0, 3.0],
        _ => vec![1.0, 2.0, 4.0, 8.0, 16.0],
    }
}

/// Histograms of every numeric property of a dataset (one paper sub-figure
/// each).
pub fn dataset_histograms(ds: &Dataset) -> Vec<Histogram> {
    NUMERIC_PROPS
        .iter()
        .map(|prop| {
            let values: Vec<f64> = ds
                .queries
                .iter()
                .map(|q| prop_value(&q.props, prop))
                .collect();
            histogram(prop, &values, &default_edges(prop))
        })
        .collect()
}

/// Pearson correlation coefficient of two samples; 0 when either side is
/// constant (no linear relationship measurable).
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    let n = x.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx).powi(2);
        vy += (b - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// A full pairwise correlation matrix over [`NUMERIC_PROPS`].
#[derive(Debug, Clone, Serialize)]
pub struct CorrelationMatrix {
    /// Property names (row/column labels).
    pub labels: Vec<String>,
    /// `matrix[i][j]` = Pearson(labels\[i\], labels\[j\]).
    pub matrix: Vec<Vec<f64>>,
}

impl CorrelationMatrix {
    /// Correlation between two properties by name.
    pub fn get(&self, a: &str, b: &str) -> Option<f64> {
        let i = self.labels.iter().position(|l| l == a)?;
        let j = self.labels.iter().position(|l| l == b)?;
        Some(self.matrix[i][j])
    }

    /// Pairs exceeding the paper's 0.7 strong-correlation threshold
    /// (upper triangle only).
    pub fn strong_pairs(&self, threshold: f64) -> Vec<(String, String, f64)> {
        let mut out = Vec::new();
        for i in 0..self.labels.len() {
            for j in (i + 1)..self.labels.len() {
                if self.matrix[i][j].abs() >= threshold {
                    out.push((
                        self.labels[i].clone(),
                        self.labels[j].clone(),
                        self.matrix[i][j],
                    ));
                }
            }
        }
        out
    }
}

/// Compute the dataset's property correlation matrix (paper Figure 4).
pub fn correlation_matrix(ds: &Dataset) -> CorrelationMatrix {
    let columns: Vec<Vec<f64>> = NUMERIC_PROPS
        .iter()
        .map(|prop| {
            ds.queries
                .iter()
                .map(|q| prop_value(&q.props, prop))
                .collect()
        })
        .collect();
    let k = NUMERIC_PROPS.len();
    let mut matrix = vec![vec![0.0; k]; k];
    for i in 0..k {
        for j in 0..k {
            matrix[i][j] = if i == j {
                1.0
            } else {
                pearson(&columns[i], &columns[j])
            };
        }
    }
    CorrelationMatrix {
        labels: NUMERIC_PROPS.iter().map(|s| s.to_string()).collect(),
        matrix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build, Workload};

    #[test]
    fn pearson_basics() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let inv = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &inv) + 1.0).abs() < 1e-12);
        let constant = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(pearson(&x, &constant), 0.0);
    }

    #[test]
    fn histogram_buckets_partition() {
        let h = histogram(
            "word_count",
            &[1.0, 12.0, 30.0, 30.0, 500.0],
            &[10.0, 25.0, 50.0],
        );
        let total: usize = h.buckets.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 5);
        assert_eq!(h.buckets[0], ("<10".to_string(), 1));
        assert_eq!(h.buckets[2].1, 2, "two values in [25,50)");
        assert_eq!(h.buckets[3], (">=50".to_string(), 1));
    }

    #[test]
    fn char_word_correlation_is_strong_everywhere() {
        // paper Figure 4: char_count × word_count > 0.7 in all workloads
        for w in [Workload::Sdss, Workload::SqlShare, Workload::JoinOrder] {
            let ds = build(w, 2023);
            let m = correlation_matrix(&ds);
            let r = m.get("char_count", "word_count").unwrap();
            assert!(r > 0.7, "{w}: char×word r={r:.2}");
        }
    }

    #[test]
    fn table_join_correlation_is_strong() {
        // paper Figure 4: table_count × join_count strongly correlated
        for w in [Workload::Sdss, Workload::JoinOrder] {
            let ds = build(w, 2023);
            let m = correlation_matrix(&ds);
            let r = m.get("table_count", "join_count").unwrap();
            assert!(r > 0.7, "{w}: table×join r={r:.2}");
        }
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let ds = build(Workload::SqlShare, 2023);
        let m = correlation_matrix(&ds);
        for i in 0..m.labels.len() {
            assert!((m.matrix[i][i] - 1.0).abs() < 1e-12);
            for j in 0..m.labels.len() {
                assert!((m.matrix[i][j] - m.matrix[j][i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn strong_pairs_respects_threshold() {
        let ds = build(Workload::Sdss, 2023);
        let m = correlation_matrix(&ds);
        for (_, _, r) in m.strong_pairs(0.7) {
            assert!(r.abs() >= 0.7);
        }
    }
}
