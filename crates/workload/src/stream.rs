//! Streaming, cursor-resumable query synthesis.
//!
//! [`QueryStream`] is the constant-memory counterpart of [`crate::build`]:
//! an unbounded, seeded stream of [`WorkloadQuery`] items in the character
//! of one of the four paper workloads. Unlike the paper builders — whose
//! generator RNG deliberately carries state from query to query so the
//! pinned Table-2 datasets never change — every stream item `i` is
//! produced by **reseeding** a generator from `mix(seed, i)`. Item `i`
//! therefore depends on nothing but `(seed, i)`, which buys three
//! properties at once:
//!
//! 1. **Constant memory** — the stream holds only the schema zoo and one
//!    generator per schema, whatever `N` is;
//! 2. **Cursor resume** — restarting from a [`StreamCursor`] `(seed,
//!    index)` reproduces the exact remaining suffix, byte for byte;
//! 3. **Sharding** — any partition of the index space can be built by any
//!    worker (or process) and concatenated back in index order into the
//!    same bytes the unsharded build would have produced.
//!
//! [`Dataset::from_stream`] stays a thin, *bounded* collector over the
//! stream: materializing more than [`MAX_COLLECT`] queries is a hard
//! error, because at that scale callers must consume the stream (or the
//! sketch-based synthesis summaries) instead of a `Vec`.

use crate::gen::{GenProfile, QueryGenerator};
use crate::props::query_props;
use crate::workloads::{base_profile, Dataset, Workload, WorkloadQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use squ_engine::CostModel;
use squ_parser::print_statement;
use squ_schema::{schemas, Schema};

/// Hard cap on [`Dataset::from_stream`] collection. Anything larger must
/// stay streamed: a million-query workload is summarized (histograms,
/// quantile sketches, chunk fingerprints), never materialized.
pub const MAX_COLLECT: usize = 1 << 20;

/// Salt separating the per-item generator seed domain from schema choice.
const ITEM_SALT: u64 = 0x5EED_17E4;
/// Salt for the per-item elapsed-time noise.
const NOISE_SALT: u64 = 0x0015_E001;

/// SplitMix64 finalizer over `(seed, index)`: the stream's one-way mix
/// from a cursor position to the independent per-item randomness. Also
/// used by the distribution-targeting controller for order-free
/// accept/reject draws.
pub fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A resumable stream position: `(seed, index)` fully determines the
/// remaining suffix of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamCursor {
    /// The stream seed.
    pub seed: u64,
    /// Index of the next item to emit.
    pub index: u64,
}

/// The streaming profile of a workload: its [`base_profile`] with the
/// quota-driven choices (CREATE / aggregate / nesting) re-enabled as
/// probabilities at the paper's observed Table-2 rates, since a stream
/// has no fixed length to quota against.
pub fn synth_profile(base: Workload) -> GenProfile {
    let mut p = base_profile(base);
    match base {
        Workload::Sdss => {
            p.create_prob = 24.0 / 285.0;
            p.aggregate_prob = 21.0 / 285.0;
            p.nested_prob = 38.0 / 285.0;
        }
        Workload::SqlShare => {
            p.create_prob = 18.0 / 250.0;
            p.aggregate_prob = 59.0 / 250.0;
            p.nested_prob = 25.0 / 250.0;
        }
        Workload::JoinOrder => {
            p.create_prob = 44.0 / 157.0;
            p.aggregate_prob = 119.0 / 157.0;
            p.nested_prob = 0.0;
        }
        Workload::Spider => {
            p.create_prob = 0.0;
            p.aggregate_prob = 96.0 / 200.0;
            p.nested_prob = 15.0 / 200.0;
        }
    }
    p
}

/// An unbounded, seeded, constant-memory stream of workload queries (see
/// the module docs for the determinism contract).
pub struct QueryStream {
    base: Workload,
    profile: GenProfile,
    seed: u64,
    schemas: Vec<Schema>,
}

impl QueryStream {
    /// A stream in the character of `base`, using [`synth_profile`].
    pub fn new(base: Workload, seed: u64) -> QueryStream {
        QueryStream::with_profile(base, synth_profile(base), seed)
    }

    /// A stream with an explicit profile (the distribution-targeting
    /// controller anneals the profile between rounds).
    pub fn with_profile(base: Workload, profile: GenProfile, seed: u64) -> QueryStream {
        let schemas = match base {
            Workload::Sdss => vec![schemas::sdss()],
            Workload::JoinOrder => vec![schemas::imdb()],
            Workload::SqlShare => schemas::sqlshare_zoo(),
            Workload::Spider => schemas::spider_zoo(),
        };
        QueryStream {
            base,
            profile,
            seed,
            schemas,
        }
    }

    /// The workload whose character the stream mimics.
    pub fn base(&self) -> Workload {
        self.base
    }

    /// The stream seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Iterate from index 0.
    pub fn iter(&self) -> StreamIter<'_> {
        self.iter_from(StreamCursor {
            seed: self.seed,
            index: 0,
        })
    }

    /// Resume from a cursor. The cursor's seed must match the stream's
    /// (a cursor is only meaningful against the stream that minted it).
    pub fn iter_from(&self, cursor: StreamCursor) -> StreamIter<'_> {
        debug_assert_eq!(cursor.seed, self.seed, "cursor from a different stream");
        let gens = self
            .schemas
            .iter()
            .map(|s| QueryGenerator::new(s, self.profile.clone(), 0))
            .collect();
        StreamIter {
            stream: self,
            gens,
            cost: CostModel::default(),
            index: cursor.index,
        }
    }

    /// One item by index (convenience; `iter_from` is cheaper in bulk).
    pub fn get(&self, index: u64) -> WorkloadQuery {
        let mut it = self.iter_from(StreamCursor {
            seed: self.seed,
            index,
        });
        it.emit()
    }
}

/// Iterator over a [`QueryStream`]. Infinite: `next()` always yields.
pub struct StreamIter<'a> {
    stream: &'a QueryStream,
    gens: Vec<QueryGenerator<'a>>,
    cost: CostModel,
    index: u64,
}

impl StreamIter<'_> {
    /// The cursor identifying the next item — hand this to
    /// [`QueryStream::iter_from`] to resume mid-stream.
    pub fn cursor(&self) -> StreamCursor {
        StreamCursor {
            seed: self.stream.seed,
            index: self.index,
        }
    }

    /// Emit the item at the current index and advance.
    fn emit(&mut self) -> WorkloadQuery {
        let stream = self.stream;
        let i = self.index;
        self.index += 1;
        let si = (mix(stream.seed, i) % self.gens.len() as u64) as usize;
        let schema = &stream.schemas[si];
        let gen = &mut self.gens[si];
        gen.reseed(mix(stream.seed ^ ITEM_SALT, i));
        let stmt = gen.generate();
        let sql = print_statement(&stmt);
        let props = query_props(&sql, &stmt);
        // deterministic elapsed time: analytical cost × per-index
        // log-normal noise (never wall-clock — byte-identity depends on it)
        let base_ms = self.cost.estimate_ms(&stmt, schema);
        let ln: f64 =
            StdRng::seed_from_u64(mix(stream.seed ^ NOISE_SALT, i)).gen_range(-1.0..1.0_f64) * 0.6;
        let elapsed = (base_ms * ln.exp()).max(0.05);
        WorkloadQuery {
            id: format!("synth-{}-{i:07}", short_name(stream.base)),
            workload: stream.base,
            schema_name: schema.name.clone(),
            sql,
            props,
            elapsed_ms: Some(elapsed),
            description: None,
        }
    }
}

impl Iterator for StreamIter<'_> {
    type Item = WorkloadQuery;

    fn next(&mut self) -> Option<WorkloadQuery> {
        Some(self.emit())
    }
}

fn short_name(w: Workload) -> &'static str {
    match w {
        Workload::Sdss => "sdss",
        Workload::SqlShare => "sqlshare",
        Workload::JoinOrder => "job",
        Workload::Spider => "spider",
    }
}

/// Guard used by every stream collector: materializing more than
/// [`MAX_COLLECT`] queries is a bug — at that scale the caller must stay
/// streamed (sketch summaries, not `Vec`s).
pub fn ensure_collectable(n: usize) {
    assert!(
        n <= MAX_COLLECT,
        "refusing to materialize {n} streamed queries (cap {MAX_COLLECT}); \
         consume the stream or its sketch summaries instead"
    );
}

impl Dataset {
    /// Thin, bounded collector over a stream: the first `n` items as a
    /// regular [`Dataset`]. Panics past [`MAX_COLLECT`] — see
    /// [`ensure_collectable`].
    pub fn from_stream(stream: &QueryStream, n: usize) -> Dataset {
        ensure_collectable(n);
        Dataset {
            workload: stream.base(),
            queries: stream.iter().take(n).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_depend_only_on_seed_and_index() {
        let s = QueryStream::new(Workload::Sdss, 7);
        let a: Vec<_> = s.iter().take(20).collect();
        let b: Vec<_> = s.iter().take(20).collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sql, y.sql);
            assert_eq!(x.id, y.id);
            assert_eq!(x.elapsed_ms, y.elapsed_ms);
        }
        // random access agrees with iteration
        assert_eq!(s.get(13).sql, a[13].sql);
    }

    #[test]
    fn cursor_resume_reproduces_the_exact_suffix() {
        let s = QueryStream::new(Workload::SqlShare, 42);
        let full: Vec<_> = s.iter().take(60).collect();
        let mut it = s.iter();
        for _ in 0..25 {
            it.next();
        }
        let cursor = it.cursor();
        assert_eq!(cursor.index, 25);
        let suffix: Vec<_> = s.iter_from(cursor).take(35).collect();
        for (i, q) in suffix.iter().enumerate() {
            assert_eq!(q.sql, full[25 + i].sql, "item {}", 25 + i);
            assert_eq!(q.id, full[25 + i].id);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = QueryStream::new(Workload::Sdss, 1).get(0);
        let b = QueryStream::new(Workload::Sdss, 2).get(0);
        assert_ne!(a.sql, b.sql);
    }

    #[test]
    fn streamed_queries_are_clean_and_costed() {
        for base in [
            Workload::Sdss,
            Workload::SqlShare,
            Workload::JoinOrder,
            Workload::Spider,
        ] {
            let s = QueryStream::new(base, 2023);
            for q in s.iter().take(25) {
                let stmt = squ_parser::parse(&q.sql)
                    .unwrap_or_else(|e| panic!("{}: {}: {e}", q.id, q.sql));
                let schema = crate::schema_for(base, &q.schema_name);
                let diags = squ_schema::analyze(&stmt, &schema);
                assert!(diags.is_empty(), "{} not clean: {}\n{diags:?}", q.id, q.sql);
                assert!(q.elapsed_ms.is_some_and(|ms| ms.is_finite() && ms > 0.0));
            }
        }
    }

    #[test]
    fn dataset_collector_is_a_thin_take() {
        let s = QueryStream::new(Workload::Spider, 5);
        let ds = Dataset::from_stream(&s, 30);
        assert_eq!(ds.len(), 30);
        assert_eq!(ds.workload, Workload::Spider);
        let direct: Vec<_> = s.iter().take(30).collect();
        for (a, b) in ds.queries.iter().zip(&direct) {
            assert_eq!(a.sql, b.sql);
        }
    }

    #[test]
    #[should_panic(expected = "refusing to materialize")]
    fn collector_refuses_unbounded_materialization() {
        ensure_collectable(MAX_COLLECT + 1);
    }

    #[test]
    fn mix_spreads_indices() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..1000 {
            seen.insert(mix(7, i));
        }
        assert_eq!(seen.len(), 1000);
        assert_ne!(mix(7, 0), mix(8, 0));
    }
}
