//! Distribution-targeted synthesis: target specs, the accept/reject
//! rule, and the round-based feedback controller.
//!
//! A [`TargetSpec`] asks for a histogram shape over one or more
//! *property axes* — any of [`crate::analysis::NUMERIC_PROPS`] plus the
//! engine-estimated `runtime_ms` — and the [`Controller`] steers the
//! streamed synthesis toward it with two mechanisms:
//!
//! * **Accept/reject**: each round the controller turns the cumulative
//!   *candidate* histogram `c` and the target `t` into per-bucket
//!   acceptance probabilities `p_b = t'_b / (M · c_b)` where `M` is the
//!   largest `t'_b / c_b` ratio (so the scarcest bucket accepts at 1.0)
//!   and `t'` is the target nudged away from what has already been
//!   accepted. Multi-axis probabilities multiply.
//! * **Profile annealing**: knobs of the [`GenProfile`] that directly
//!   govern an axis (table weights, nesting probability, predicate
//!   range) are nudged toward the target between rounds, so the
//!   candidate pool itself drifts closer and the acceptance rate stays
//!   off the floor.
//!
//! Byte-identity across `--jobs` and shard counts is preserved because
//! every per-candidate decision is a **pure function** of the round plan
//! and `mix(seed ⊕ salt, index)` — the plan in turn derives only from
//! previous rounds' merged, order-independent counts. Round 0 under a
//! target is calibration only (nothing is accepted); the reported
//! acceptance rate covers steering rounds alone.

use crate::analysis::{default_edges, NUMERIC_PROPS};
use crate::gen::GenProfile;
use crate::stream::mix;
use crate::workloads::WorkloadQuery;
use serde::{Deserialize, Serialize};
use squ_engine::RUNTIME_BUCKET_EDGES_MS;

/// Salt separating accept/reject draws from the stream's item seeds.
const ACCEPT_SALT: u64 = 0xACCE_97ED;
/// Acceptance-probability floor for buckets the target still wants.
const PROB_FLOOR: f64 = 0.02;
/// Default per-bucket tolerance when the spec leaves it out.
const DEFAULT_TOLERANCE: f64 = 0.05;

/// One target axis: a property, histogram edges, and desired bucket
/// weights (`edges.len() + 1` buckets, same convention as
/// [`crate::analysis::histogram`]).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AxisTarget {
    /// Property name: one of [`NUMERIC_PROPS`] or `runtime_ms`.
    pub property: String,
    /// Ascending bucket edges; empty means "use the default edges for
    /// this property" ([`default_edges`], or the engine's
    /// [`RUNTIME_BUCKET_EDGES_MS`] for `runtime_ms`).
    pub edges: Vec<f64>,
    /// Desired bucket mass; normalized to sum 1 on load.
    pub weights: Vec<f64>,
}

/// A distribution target: one or more axes plus a tolerance, parsed
/// from the `--target <spec.json>` file.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TargetSpec {
    /// The axes to steer.
    pub axes: Vec<AxisTarget>,
    /// Per-bucket tolerance on `|achieved − target|` (default 0.05).
    pub tolerance: f64,
}

/// JSON shape of the spec file, with optional fields spelled out as
/// `Option` (the derive treats absent fields as `None`).
#[derive(Deserialize)]
struct RawAxis {
    property: String,
    edges: Option<Vec<f64>>,
    weights: Vec<f64>,
}

#[derive(Deserialize)]
struct RawSpec {
    axes: Vec<RawAxis>,
    tolerance: Option<f64>,
}

impl TargetSpec {
    /// Parse and validate a spec from its JSON text. Omitted fields get
    /// defaults: per-property edges and a tolerance of 0.05.
    pub fn from_json(text: &str) -> Result<TargetSpec, String> {
        let raw: RawSpec = serde_json::from_str(text).map_err(|e| format!("target spec: {e}"))?;
        let mut spec = TargetSpec {
            axes: raw
                .axes
                .into_iter()
                .map(|a| AxisTarget {
                    property: a.property,
                    edges: a.edges.unwrap_or_default(),
                    weights: a.weights,
                })
                .collect(),
            tolerance: raw.tolerance.unwrap_or(DEFAULT_TOLERANCE),
        };
        spec.normalize()?;
        Ok(spec)
    }

    /// Validate and normalize in place: fill default edges, check edge
    /// ordering and weight arity, normalize weights to sum 1.
    pub fn normalize(&mut self) -> Result<(), String> {
        if self.axes.is_empty() {
            return Err("target spec: at least one axis is required".into());
        }
        if !(self.tolerance > 0.0 && self.tolerance <= 1.0) {
            return Err(format!(
                "target spec: tolerance {} outside (0, 1]",
                self.tolerance
            ));
        }
        for i in 0..self.axes.len() {
            for j in i + 1..self.axes.len() {
                if self.axes[i].property == self.axes[j].property {
                    return Err(format!(
                        "target spec: duplicate axis {:?}",
                        self.axes[i].property
                    ));
                }
            }
        }
        for axis in &mut self.axes {
            let known =
                axis.property == "runtime_ms" || NUMERIC_PROPS.contains(&axis.property.as_str());
            if !known {
                return Err(format!(
                    "target spec: unknown property {:?} (expected one of {NUMERIC_PROPS:?} or \"runtime_ms\")",
                    axis.property
                ));
            }
            if axis.edges.is_empty() {
                axis.edges = if axis.property == "runtime_ms" {
                    RUNTIME_BUCKET_EDGES_MS.to_vec()
                } else {
                    default_edges(&axis.property)
                };
            }
            if !axis.edges.iter().all(|e| e.is_finite()) {
                return Err(format!("target spec: {}: non-finite edge", axis.property));
            }
            if !axis.edges.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!(
                    "target spec: {}: edges must be strictly ascending",
                    axis.property
                ));
            }
            if axis.weights.len() != axis.edges.len() + 1 {
                return Err(format!(
                    "target spec: {}: {} weights for {} buckets (edges + 1)",
                    axis.property,
                    axis.weights.len(),
                    axis.edges.len() + 1
                ));
            }
            if axis.weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
                return Err(format!(
                    "target spec: {}: weights must be finite and non-negative",
                    axis.property
                ));
            }
            let sum: f64 = axis.weights.iter().sum();
            if sum <= 0.0 {
                return Err(format!(
                    "target spec: {}: weights must not all be zero",
                    axis.property
                ));
            }
            for w in &mut axis.weights {
                *w /= sum;
            }
        }
        Ok(())
    }
}

/// The value of a target axis for one query: `elapsed_ms` for
/// `runtime_ms`, otherwise the numeric property.
pub fn axis_value(q: &WorkloadQuery, property: &str) -> f64 {
    if property == "runtime_ms" {
        q.elapsed_ms.unwrap_or(0.0)
    } else {
        crate::analysis::prop_value(&q.props, property)
    }
}

/// Bucket of `v` under `edges` — same convention as
/// [`crate::analysis::histogram`]: the first edge `e` with `v < e`,
/// else the overflow bucket.
pub fn bucket_index(edges: &[f64], v: f64) -> usize {
    for (i, e) in edges.iter().enumerate() {
        if v < *e {
            return i;
        }
    }
    edges.len()
}

/// Per-axis acceptance probabilities for one round.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisAccept {
    /// Property this axis buckets on.
    pub property: String,
    /// Bucket edges (same as the target axis).
    pub edges: Vec<f64>,
    /// Acceptance probability per bucket.
    pub probs: Vec<f64>,
}

/// The accept/reject rule of one round.
#[derive(Debug, Clone, PartialEq)]
pub enum AcceptRule {
    /// Accept every candidate (untargeted synthesis).
    All,
    /// Accept nothing — round 0 under a target only measures the
    /// candidate distribution.
    Calibrate,
    /// Per-axis bucket probabilities; multi-axis probabilities multiply.
    Probs(Vec<AxisAccept>),
}

/// Everything a shard needs to process one round deterministically.
#[derive(Debug, Clone)]
pub struct RoundPlan {
    /// Round number (0-based).
    pub round: u32,
    /// The (possibly annealed) generation profile for this round.
    pub profile: GenProfile,
    /// The accept/reject rule.
    pub accept: AcceptRule,
}

/// Pure accept/reject decision for candidate `index` whose per-axis
/// values are `values` (aligned with the rule's axes). Identical for
/// any sharding because it depends only on `(rule, seed, index)`.
pub fn accepts(rule: &AcceptRule, seed: u64, index: u64, values: &[f64]) -> bool {
    let axes = match rule {
        AcceptRule::All => return true,
        AcceptRule::Calibrate => return false,
        AcceptRule::Probs(axes) => axes,
    };
    debug_assert_eq!(values.len(), axes.len());
    let mut p = 1.0_f64;
    for (axis, &v) in axes.iter().zip(values) {
        p *= axis.probs[bucket_index(&axis.edges, v)];
    }
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    let u = (mix(seed ^ ACCEPT_SALT, index) >> 11) as f64 / (1u64 << 53) as f64;
    u < p
}

/// Order-independent per-round tallies: total and per-axis-bucket
/// candidate/accepted counts. Shards produce one each; merging is
/// element-wise addition, so any grouping yields the same totals.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundCounts {
    /// Candidates generated this round.
    pub candidates: u64,
    /// Candidates accepted this round.
    pub accepted: u64,
    /// Per-axis candidate counts by bucket (aligned with the spec axes).
    pub axis_candidates: Vec<Vec<u64>>,
    /// Per-axis accepted counts by bucket.
    pub axis_accepted: Vec<Vec<u64>>,
}

impl RoundCounts {
    /// Empty tallies shaped for `spec` (no axes without a target).
    pub fn for_spec(spec: Option<&TargetSpec>) -> RoundCounts {
        let shape = |spec: &TargetSpec| {
            spec.axes
                .iter()
                .map(|a| vec![0u64; a.edges.len() + 1])
                .collect::<Vec<_>>()
        };
        RoundCounts {
            candidates: 0,
            accepted: 0,
            axis_candidates: spec.map(shape).unwrap_or_default(),
            axis_accepted: spec.map(shape).unwrap_or_default(),
        }
    }

    /// Record one candidate's per-axis values.
    pub fn record(&mut self, spec: Option<&TargetSpec>, values: &[f64], accepted: bool) {
        self.candidates += 1;
        if accepted {
            self.accepted += 1;
        }
        if let Some(spec) = spec {
            for (i, (axis, &v)) in spec.axes.iter().zip(values).enumerate() {
                let b = bucket_index(&axis.edges, v);
                self.axis_candidates[i][b] += 1;
                if accepted {
                    self.axis_accepted[i][b] += 1;
                }
            }
        }
    }

    /// Element-wise addition (commutative, the shard-merge operation).
    pub fn merge(&mut self, other: &RoundCounts) {
        self.candidates += other.candidates;
        self.accepted += other.accepted;
        merge_axes(&mut self.axis_candidates, &other.axis_candidates);
        merge_axes(&mut self.axis_accepted, &other.axis_accepted);
    }
}

fn merge_axes(into: &mut Vec<Vec<u64>>, from: &[Vec<u64>]) {
    if into.is_empty() {
        *into = from.to_vec();
        return;
    }
    for (a, b) in into.iter_mut().zip(from) {
        for (x, y) in a.iter_mut().zip(b) {
            *x += y;
        }
    }
}

/// Per-axis convergence summary for `synth.json`.
#[derive(Debug, Clone, Serialize)]
pub struct AxisReport {
    /// Property name.
    pub property: String,
    /// Bucket edges.
    pub edges: Vec<f64>,
    /// Target bucket fractions.
    pub target: Vec<f64>,
    /// Achieved (accepted) bucket fractions.
    pub achieved: Vec<f64>,
    /// `max_b |achieved_b − target_b|`.
    pub deviation: f64,
}

/// The round-based feedback controller (see the module docs).
pub struct Controller {
    base: GenProfile,
    spec: Option<TargetSpec>,
    totals: RoundCounts,
    /// The most recent round's tallies alone: acceptance probabilities
    /// derive from these, because only the latest round's candidates
    /// reflect the *current* annealed profile — cumulative fractions
    /// would keep steering against a distribution that no longer exists.
    last: RoundCounts,
    rounds: u32,
    steer_candidates: u64,
    steer_accepted: u64,
}

impl Controller {
    /// A controller steering `base` toward `spec` (or accepting
    /// everything when `spec` is `None`).
    pub fn new(base: GenProfile, spec: Option<TargetSpec>) -> Controller {
        let totals = RoundCounts::for_spec(spec.as_ref());
        Controller {
            base,
            spec,
            last: totals.clone(),
            totals,
            rounds: 0,
            steer_candidates: 0,
            steer_accepted: 0,
        }
    }

    /// The spec being targeted, if any.
    pub fn spec(&self) -> Option<&TargetSpec> {
        self.spec.as_ref()
    }

    /// Rounds observed so far.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// The plan for the next round. Pure over the controller's merged,
    /// order-independent state.
    pub fn plan(&self) -> RoundPlan {
        let Some(spec) = &self.spec else {
            return RoundPlan {
                round: self.rounds,
                profile: self.base.clone(),
                accept: AcceptRule::All,
            };
        };
        if self.rounds == 0 {
            return RoundPlan {
                round: 0,
                profile: self.base.clone(),
                accept: AcceptRule::Calibrate,
            };
        }
        let axes = spec
            .axes
            .iter()
            .enumerate()
            .map(|(i, axis)| AxisAccept {
                property: axis.property.clone(),
                edges: axis.edges.clone(),
                probs: self.axis_probs(i, axis),
            })
            .collect();
        RoundPlan {
            round: self.rounds,
            profile: self.annealed_profile(spec),
            accept: AcceptRule::Probs(axes),
        }
    }

    /// Fold one round's merged tallies into the controller.
    pub fn observe(&mut self, counts: &RoundCounts) {
        let calibration = self.spec.is_some() && self.rounds == 0;
        if !calibration {
            self.steer_candidates += counts.candidates;
            self.steer_accepted += counts.accepted;
        }
        self.totals.merge(counts);
        self.last = counts.clone();
        self.rounds += 1;
    }

    /// Accepted / candidates over steering rounds (1.0 before any).
    pub fn acceptance_rate(&self) -> f64 {
        if self.steer_candidates == 0 {
            1.0
        } else {
            self.steer_accepted as f64 / self.steer_candidates as f64
        }
    }

    /// Per-axis target vs. achieved summaries (empty without a target).
    pub fn axis_reports(&self) -> Vec<AxisReport> {
        let Some(spec) = &self.spec else {
            return Vec::new();
        };
        spec.axes
            .iter()
            .enumerate()
            .map(|(i, axis)| {
                let achieved = fractions(&self.totals.axis_accepted[i]);
                let deviation = axis
                    .weights
                    .iter()
                    .zip(&achieved)
                    .map(|(t, a)| (t - a).abs())
                    .fold(0.0_f64, f64::max);
                AxisReport {
                    property: axis.property.clone(),
                    edges: axis.edges.clone(),
                    target: axis.weights.clone(),
                    achieved,
                    deviation,
                }
            })
            .collect()
    }

    /// Is every axis within the spec tolerance? (Trivially true without
    /// a target; false until something has been accepted.)
    pub fn converged(&self) -> bool {
        let Some(spec) = &self.spec else {
            return true;
        };
        if self.totals.accepted == 0 {
            return false;
        }
        self.axis_reports()
            .iter()
            .all(|r| r.deviation <= spec.tolerance)
    }

    /// Acceptance probabilities for axis `i`: `p_b = t'_b / (M · c_b)`
    /// with `t'` the feedback-nudged target and `M` the max ratio.
    fn axis_probs(&self, i: usize, axis: &AxisTarget) -> Vec<f64> {
        let cand = fractions(&self.last.axis_candidates[i]);
        let accepted_total: u64 = self.totals.axis_accepted[i].iter().sum();
        // Nudge the target away from mass already accepted, so later
        // rounds fill what's still missing instead of re-sampling the
        // whole shape.
        let nudged: Vec<f64> = if accepted_total == 0 {
            axis.weights.clone()
        } else {
            let achieved = fractions(&self.totals.axis_accepted[i]);
            let raw: Vec<f64> = axis
                .weights
                .iter()
                .zip(&achieved)
                .map(|(t, a)| (t + 0.5 * (t - a)).max(0.0))
                .collect();
            let sum: f64 = raw.iter().sum();
            if sum > 0.0 {
                raw.iter().map(|w| w / sum).collect()
            } else {
                axis.weights.clone()
            }
        };
        let ratio: Vec<f64> = nudged
            .iter()
            .zip(&cand)
            .map(|(t, c)| if *t > 0.0 { t / c.max(1e-9) } else { 0.0 })
            .collect();
        let m = ratio.iter().copied().fold(0.0_f64, f64::max);
        if m <= 0.0 {
            return vec![1.0; nudged.len()];
        }
        ratio
            .iter()
            .zip(&nudged)
            .map(|(r, t)| {
                if *t > 0.0 {
                    (r / m).clamp(PROB_FLOOR, 1.0)
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Nudge profile knobs that directly govern a targeted axis, so the
    /// candidate pool drifts toward the target between rounds.
    fn annealed_profile(&self, spec: &TargetSpec) -> GenProfile {
        let mut p = self.base.clone();
        for (i, axis) in spec.axes.iter().enumerate() {
            let cand = fractions(&self.last.axis_candidates[i]);
            match axis.property.as_str() {
                "table_count" | "join_count" => {
                    // join_count of a k-table query is ~k − 1
                    let shift = if axis.property == "join_count" {
                        1.0
                    } else {
                        0.0
                    };
                    for (k, w) in &mut p.table_count_weights {
                        let b = bucket_index(&axis.edges, *k as f64 - shift);
                        let ratio = (axis.weights[b] / cand[b].max(1e-6)).clamp(0.5, 2.0);
                        *w *= ratio;
                    }
                }
                "nestedness" => {
                    // bucket 0 is "not nested" under the default edges
                    let t0 = axis.weights[0];
                    p.nested_prob = ((p.nested_prob + (1.0 - t0)) / 2.0).clamp(0.0, 0.95);
                }
                "predicate_count" => {
                    let t_mean = bucket_mean(&axis.edges, &axis.weights);
                    let c_mean = bucket_mean(&axis.edges, &cand);
                    let delta = (t_mean - c_mean) * 0.5;
                    let (lo, hi) = p.extra_pred_range;
                    let lo = ((lo as f64 + delta).round().max(0.0) as usize).min(24);
                    let hi = ((hi as f64 + delta).round().max(lo as f64) as usize).min(24);
                    p.extra_pred_range = (lo, hi);
                }
                // remaining axes (runtime_ms, char_count, …) are steered
                // by accept/reject alone
                _ => {}
            }
        }
        p
    }
}

/// Normalize counts to fractions (uniform when the total is zero).
fn fractions(counts: &[u64]) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        vec![1.0 / counts.len().max(1) as f64; counts.len()]
    } else {
        counts.iter().map(|&c| c as f64 / total as f64).collect()
    }
}

/// Mean of a bucket distribution using representative bucket values.
fn bucket_mean(edges: &[f64], weights: &[f64]) -> f64 {
    weights
        .iter()
        .enumerate()
        .map(|(b, w)| w * bucket_rep(edges, b))
        .sum()
}

/// Representative value of bucket `b`: midpoints for interior buckets,
/// half the first edge below, 1.25× the last edge above.
fn bucket_rep(edges: &[f64], b: usize) -> f64 {
    if b == 0 {
        edges[0] / 2.0
    } else if b < edges.len() {
        (edges[b - 1] + edges[b]) / 2.0
    } else {
        edges[edges.len() - 1] * 1.25
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_json(property: &str, weights: &str) -> String {
        format!(r#"{{"axes": [{{"property": "{property}", "weights": {weights}}}]}}"#)
    }

    #[test]
    fn from_json_fills_defaults_and_normalizes() {
        let spec = TargetSpec::from_json(&spec_json("join_count", "[2, 2, 4, 1, 1, 0]")).unwrap();
        assert_eq!(spec.tolerance, DEFAULT_TOLERANCE);
        assert_eq!(spec.axes[0].edges, default_edges("join_count"));
        let sum: f64 = spec.axes[0].weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((spec.axes[0].weights[2] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn runtime_axis_uses_engine_edges() {
        let spec = TargetSpec::from_json(&spec_json("runtime_ms", "[1, 1, 1, 1, 1, 1]")).unwrap();
        assert_eq!(spec.axes[0].edges, RUNTIME_BUCKET_EDGES_MS.to_vec());
    }

    #[test]
    fn bad_specs_are_rejected() {
        for (json, needle) in [
            (r#"{"axes": []}"#.to_string(), "at least one axis"),
            (spec_json("no_such_prop", "[1]"), "unknown property"),
            (spec_json("join_count", "[1, 2]"), "weights for"),
            (spec_json("join_count", "[0, 0, 0, 0, 0, 0]"), "all be zero"),
            (spec_json("join_count", "[1, -2, 1, 1, 1, 1]"), "non-negative"),
            (
                r#"{"tolerance": 0, "axes": [{"property": "join_count", "weights": [1,1,1,1,1,1]}]}"#
                    .to_string(),
                "tolerance",
            ),
            (
                r#"{"axes": [{"property": "join_count", "edges": [3, 1], "weights": [1,1,1]}]}"#
                    .to_string(),
                "ascending",
            ),
            (
                r#"{"axes": [{"property": "join_count", "weights": [1,1,1,1,1,1]}, {"property": "join_count", "weights": [1,1,1,1,1,1]}]}"#
                    .to_string(),
                "duplicate",
            ),
        ] {
            let err = TargetSpec::from_json(&json).unwrap_err();
            assert!(err.contains(needle), "{json} -> {err}");
        }
    }

    #[test]
    fn bucket_index_matches_histogram_convention() {
        let edges = [1.0, 3.0, 6.0];
        assert_eq!(bucket_index(&edges, 0.0), 0);
        assert_eq!(bucket_index(&edges, 1.0), 1);
        assert_eq!(bucket_index(&edges, 2.9), 1);
        assert_eq!(bucket_index(&edges, 3.0), 2);
        assert_eq!(bucket_index(&edges, 100.0), 3);
    }

    #[test]
    fn accepts_is_pure_and_respects_all_and_calibrate() {
        assert!(accepts(&AcceptRule::All, 1, 2, &[]));
        assert!(!accepts(&AcceptRule::Calibrate, 1, 2, &[]));
        let rule = AcceptRule::Probs(vec![AxisAccept {
            property: "join_count".into(),
            edges: vec![2.0],
            probs: vec![1.0, 0.0],
        }]);
        // below the edge: p = 1; above: p = 0 — and pure in (seed, index)
        assert!(accepts(&rule, 9, 4, &[1.0]));
        assert!(!accepts(&rule, 9, 4, &[5.0]));
        for i in 0..100 {
            assert_eq!(accepts(&rule, 9, i, &[1.0]), accepts(&rule, 9, i, &[1.0]));
        }
    }

    #[test]
    fn fractional_probs_accept_roughly_that_fraction() {
        let rule = AcceptRule::Probs(vec![AxisAccept {
            property: "join_count".into(),
            edges: vec![2.0],
            probs: vec![0.25, 1.0],
        }]);
        let hits = (0..10_000)
            .filter(|&i| accepts(&rule, 7, i, &[0.0]))
            .count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn controller_without_target_accepts_everything() {
        let mut c = Controller::new(GenProfile::default(), None);
        assert!(matches!(c.plan().accept, AcceptRule::All));
        let mut counts = RoundCounts::for_spec(None);
        counts.record(None, &[], true);
        c.observe(&counts);
        assert!((c.acceptance_rate() - 1.0).abs() < 1e-12);
        assert!(c.converged());
        assert!(c.axis_reports().is_empty());
    }

    #[test]
    fn round_zero_under_a_target_calibrates() {
        let spec = TargetSpec::from_json(&spec_json("join_count", "[1,1,1,1,1,1]")).unwrap();
        let c = Controller::new(GenProfile::default(), Some(spec));
        assert!(matches!(c.plan().accept, AcceptRule::Calibrate));
    }

    #[test]
    fn steering_round_boosts_scarce_buckets() {
        let spec = TargetSpec::from_json(
            r#"{"axes": [{"property": "join_count", "edges": [2.0], "weights": [1, 1]}]}"#,
        )
        .unwrap();
        let mut c = Controller::new(GenProfile::default(), Some(spec.clone()));
        // calibration observed: 90% of candidates land below the edge
        let counts = RoundCounts {
            candidates: 100,
            accepted: 0,
            axis_candidates: vec![vec![90, 10]],
            axis_accepted: vec![vec![0, 0]],
        };
        c.observe(&counts);
        let plan = c.plan();
        let AcceptRule::Probs(axes) = &plan.accept else {
            panic!("expected probs")
        };
        // scarce bucket accepts at 1.0, abundant one is throttled to
        // c_scarce/c_abundant = 1/9
        assert!((axes[0].probs[1] - 1.0).abs() < 1e-9);
        assert!((axes[0].probs[0] - 10.0 / 90.0).abs() < 1e-9);
    }

    #[test]
    fn convergence_tracks_tolerance() {
        let spec = TargetSpec::from_json(
            r#"{"tolerance": 0.05, "axes": [{"property": "join_count", "edges": [2.0], "weights": [1, 1]}]}"#,
        )
        .unwrap();
        let mut c = Controller::new(GenProfile::default(), Some(spec));
        c.observe(&RoundCounts {
            candidates: 100,
            accepted: 0,
            axis_candidates: vec![vec![50, 50]],
            axis_accepted: vec![vec![0, 0]],
        });
        assert!(!c.converged(), "nothing accepted yet");
        c.observe(&RoundCounts {
            candidates: 100,
            accepted: 96,
            axis_candidates: vec![vec![50, 50]],
            axis_accepted: vec![vec![48, 48]],
        });
        assert!(c.converged());
        assert!((c.acceptance_rate() - 0.96).abs() < 1e-9);
        let reports = c.axis_reports();
        assert!(reports[0].deviation <= 0.05);
    }

    #[test]
    fn annealing_nudges_the_right_knobs() {
        let json = r#"{"axes": [{"property": "nestedness", "weights": [1, 9, 0, 0]}, {"property": "predicate_count", "edges": [1, 3, 6, 10, 20], "weights": [0, 0, 0, 1, 9, 0]}]}"#;
        let spec = TargetSpec::from_json(json).unwrap();
        let base = GenProfile::default();
        let mut c = Controller::new(base.clone(), Some(spec.clone()));
        c.observe(&RoundCounts {
            candidates: 100,
            accepted: 0,
            axis_candidates: vec![vec![85, 15, 0, 0], vec![10, 40, 40, 10, 0, 0]],
            axis_accepted: vec![vec![0; 4], vec![0; 6]],
        });
        let plan = c.plan();
        // nestedness target wants 90% nested → nested_prob rises
        assert!(plan.profile.nested_prob > base.nested_prob);
        // predicate target mean is far above the candidate mean → the
        // extra-predicate range shifts up
        assert!(plan.profile.extra_pred_range.1 > base.extra_pred_range.1);
    }

    #[test]
    fn round_counts_merge_is_elementwise_addition() {
        let spec = TargetSpec::from_json(&spec_json("join_count", "[1,1,1,1,1,1]")).unwrap();
        let mut a = RoundCounts::for_spec(Some(&spec));
        let mut b = RoundCounts::for_spec(Some(&spec));
        a.record(Some(&spec), &[1.0], true);
        b.record(Some(&spec), &[5.0], false);
        b.record(Some(&spec), &[1.0], true);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.candidates, 3);
        assert_eq!(ab.accepted, 2);
        assert_eq!(ab.axis_candidates[0][1], 2);
    }
}
