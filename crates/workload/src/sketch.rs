//! Mergeable quantile sketch over non-negative values.
//!
//! A DDSketch-style log-bucketed sketch: each value lands in the bucket
//! `ceil(ln(v) / ln γ)` with `γ = (1 + α)/(1 − α)`, so every bucket spans a
//! fixed *relative* width and the representative value `2γ^k/(γ + 1)` is
//! within `α` of any value in the bucket. Quantile answers therefore carry
//! a documented relative-error bound of [`QuantileSketch::RELATIVE_ERROR`]
//! (1%), while memory stays `O(log(max/min)/α)` — a few thousand buckets
//! at the absolute worst, independent of how many values were inserted.
//!
//! The sketch exists to replace full-materialization statistics in the
//! streamed synthesis path: per-shard summaries **merge** by adding bucket
//! counts, which is commutative and exact, so `merge(a, b)` equals the
//! single-pass sketch over the concatenated input *field for field* — not
//! just within error bounds. That exactness is what keeps `synth.json`
//! byte-identical for any shard count. (P² is not mergeable at all and GK
//! merges only approximately, which is why neither is used here.)
//!
//! Values must be finite and non-negative: negatives are clamped to the
//! exact zero bucket and NaNs are ignored. Recorded `min`/`max` are exact,
//! and quantile answers are clamped into `[min, max]`.

use serde::{Deserialize, Serialize};

/// `α`: the relative-error bound of every quantile answer.
const ALPHA: f64 = 0.01;
/// Values below this are counted in the exact zero bucket.
const MIN_TRACKED: f64 = 1e-12;

/// A mergeable log-bucketed quantile sketch (see the module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileSketch {
    /// Total inserted values (zeros included, NaNs excluded).
    count: u64,
    /// Values below [`MIN_TRACKED`] (exact-zero bucket).
    zeros: u64,
    /// Exact minimum inserted value (0.0 when empty).
    min: f64,
    /// Exact maximum inserted value (0.0 when empty).
    max: f64,
    /// `(bucket key, count)` sorted by key.
    buckets: Vec<(i32, u64)>,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    /// Documented relative-error bound: for any `q`, the answer `v̂`
    /// satisfies `|v̂ − v| ≤ RELATIVE_ERROR · v` where `v` is the exact
    /// nearest-rank `q`-quantile (zero-bucket values are answered exactly).
    pub const RELATIVE_ERROR: f64 = ALPHA;

    /// An empty sketch.
    pub fn new() -> QuantileSketch {
        QuantileSketch {
            count: 0,
            zeros: 0,
            min: 0.0,
            max: 0.0,
            buckets: Vec::new(),
        }
    }

    /// `γ = (1 + α)/(1 − α)`.
    fn gamma() -> f64 {
        (1.0 + ALPHA) / (1.0 - ALPHA)
    }

    /// Log-bucket key of a tracked (`>= MIN_TRACKED`) value.
    fn key(v: f64) -> i32 {
        (v.ln() / Self::gamma().ln()).ceil() as i32
    }

    /// Representative value of bucket `k`: the relative midpoint
    /// `2γ^k/(γ + 1)`, within `α` of every value in the bucket.
    fn representative(k: i32) -> f64 {
        let gamma = Self::gamma();
        2.0 / (gamma + 1.0) * (f64::from(k) * gamma.ln()).exp()
    }

    /// Insert one value. Negatives clamp to zero; NaN is ignored.
    pub fn insert(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        let v = v.max(0.0);
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        if v < MIN_TRACKED {
            self.zeros += 1;
            return;
        }
        let key = Self::key(v);
        match self.buckets.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => self.buckets[i].1 += 1,
            Err(i) => self.buckets.insert(i, (key, 1)),
        }
    }

    /// Merge another sketch into this one. Bucket counts add, so the
    /// result equals the single-pass sketch over the concatenated inputs
    /// exactly (`PartialEq`-equal), in any merge order or grouping.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.zeros += other.zeros;
        for &(key, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&key, |&(k, _)| k) {
                Ok(i) => self.buckets[i].1 += n,
                Err(i) => self.buckets.insert(i, (key, n)),
            }
        }
    }

    /// Number of inserted values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Is the sketch empty?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum inserted value.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum inserted value.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Number of distinct log buckets in use (memory footprint proxy).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len() + usize::from(self.zeros > 0)
    }

    /// The `q`-quantile (nearest-rank definition: the `⌈q·n⌉`-th smallest
    /// value, clamped to rank 1), within [`Self::RELATIVE_ERROR`] of the
    /// exact answer. `None` on an empty sketch; `q` is clamped to [0, 1].
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank <= self.zeros {
            return Some(0.0);
        }
        let mut seen = self.zeros;
        for &(key, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(Self::representative(key).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Convenience: `(p50, p90, p99)`.
    pub fn percentiles(&self) -> Option<(f64, f64, f64)> {
        Some((
            self.quantile(0.50)?,
            self.quantile(0.90)?,
            self.quantile(0.99)?,
        ))
    }
}

/// Exact nearest-rank quantile of a slice — the reference the sketch is
/// tested against (and spot-checked against in `synth.json` for small
/// runs). `None` on an empty slice.
pub fn exact_quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(approx: f64, exact: f64) -> f64 {
        if exact.abs() < MIN_TRACKED {
            approx.abs()
        } else {
            (approx - exact).abs() / exact.abs()
        }
    }

    fn assert_within_bound(values: &[f64]) {
        let mut s = QuantileSketch::new();
        for &v in values {
            s.insert(v);
        }
        for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let approx = s.quantile(q).unwrap();
            let exact = exact_quantile(values, q).unwrap();
            assert!(
                rel_err(approx, exact) <= QuantileSketch::RELATIVE_ERROR + 1e-9,
                "q={q}: sketch {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn empty_sketch_answers_none() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn sorted_reversed_constant_and_duplicates() {
        let sorted: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        assert_within_bound(&sorted);
        let reversed: Vec<f64> = sorted.iter().rev().copied().collect();
        assert_within_bound(&reversed);
        assert_within_bound(&vec![42.0; 500]);
        let mut dupes = Vec::new();
        for v in [0.5, 3.0, 3.0, 700.0] {
            dupes.extend(std::iter::repeat(v).take(200));
        }
        assert_within_bound(&dupes);
    }

    #[test]
    fn f64_extremes_stay_bounded() {
        let values = [f64::MIN_POSITIVE, 1e-300, 1e-9, 1.0, 1e9, 1e300, f64::MAX];
        assert_within_bound(&values);
        let mut s = QuantileSketch::new();
        for v in values {
            s.insert(v);
        }
        assert_eq!(s.min(), Some(f64::MIN_POSITIVE));
        assert_eq!(s.max(), Some(f64::MAX));
        assert!(s.quantile(1.0).unwrap().is_finite());
    }

    #[test]
    fn zeros_are_exact_and_negatives_clamp() {
        let mut s = QuantileSketch::new();
        for _ in 0..60 {
            s.insert(0.0);
        }
        s.insert(-5.0); // clamps to zero
        for _ in 0..39 {
            s.insert(10.0);
        }
        assert_eq!(s.count(), 100);
        assert_eq!(s.quantile(0.5), Some(0.0));
        assert!(rel_err(s.quantile(0.99).unwrap(), 10.0) <= QuantileSketch::RELATIVE_ERROR);
        // NaN is ignored entirely
        s.insert(f64::NAN);
        assert_eq!(s.count(), 100);
    }

    #[test]
    fn merge_equals_single_pass_exactly() {
        let values: Vec<f64> = (0..500)
            .map(|i| ((i * 2654435761u64 % 99991) as f64) / 7.0)
            .collect();
        let mut whole = QuantileSketch::new();
        for &v in &values {
            whole.insert(v);
        }
        for split in [0, 1, 17, 250, 499, 500] {
            let (a, b) = values.split_at(split);
            let mut left = QuantileSketch::new();
            for &v in a {
                left.insert(v);
            }
            let mut right = QuantileSketch::new();
            for &v in b {
                right.insert(v);
            }
            left.merge(&right);
            assert_eq!(left, whole, "split at {split}");
        }
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for i in 0..100 {
            a.insert(i as f64);
            b.insert((i * 31 % 97) as f64 + 0.5);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn bucket_memory_is_bounded_by_value_range_not_count() {
        let mut s = QuantileSketch::new();
        for i in 0..100_000u64 {
            s.insert(1.0 + (i % 1000) as f64);
        }
        // 1000 distinct values in [1, 1000] need at most
        // ln(1000)/ln(γ) ≈ 346 buckets however many values are inserted
        assert!(s.bucket_count() <= 400, "{} buckets", s.bucket_count());
    }

    #[test]
    fn serde_round_trip() {
        let mut s = QuantileSketch::new();
        for i in 0..50 {
            s.insert(i as f64 * 3.5);
        }
        let json = serde_json::to_string(&s).unwrap();
        let back: QuantileSketch = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
