//! Natural-language query descriptions.
//!
//! Generates the ground-truth English description of a query from its AST —
//! the Spider workload's per-query descriptions, which the paper uses as
//! the reference for the `query_exp` (query explanation) case study. The
//! same templates are reused by the rubric scorer in `squ-eval` to extract
//! the *key facts* an explanation must mention (tables, aggregates, filter
//! conditions, ordering direction, limit).

use squ_parser::ast::*;

/// Produce the reference natural-language description of a statement.
pub fn describe_statement(stmt: &Statement) -> String {
    match stmt {
        Statement::Query(q) => describe_query(q),
        Statement::CreateTable { name, source, .. } => match source {
            Some(q) => format!(
                "Create a table named {name} containing the result of: {}",
                lowercase_first(&describe_query(q))
            ),
            None => format!("Create a table named {name}."),
        },
        Statement::CreateView { name, query } => format!(
            "Create a view named {name} defined as: {}",
            lowercase_first(&describe_query(query))
        ),
    }
}

/// Describe a query.
pub fn describe_query(q: &Query) -> String {
    let mut s = match &q.body {
        SetExpr::Select(sel) => describe_select(sel),
        SetExpr::SetOp {
            op, left, right, ..
        } => {
            let l = describe_set_arm(left);
            let r = describe_set_arm(right);
            match op {
                SetOp::Intersect => format!("Find the results common to both: {l} and {r}"),
                SetOp::Union => format!("Combine the results of: {l} and {r}"),
                SetOp::Except => format!("Find the results of {l} that do not appear in {r}"),
            }
        }
    };
    if let Some(item) = q.order_by.first() {
        let dir = if item.desc { "descending" } else { "ascending" };
        s.push_str(&format!(
            ", ordered by {} in {dir} order",
            describe_expr(&item.expr)
        ));
    }
    if let Some(n) = q.limit {
        if n == 1 {
            if let Some(item) = q.order_by.first() {
                // the paper's Q18 pattern: ORDER BY x ASC LIMIT 1 = "least x"
                let superlative = if item.desc { "greatest" } else { "least" };
                s.push_str(&format!(
                    " — i.e. the single row with the {superlative} {}",
                    describe_expr(&item.expr)
                ));
            } else {
                s.push_str(", returning a single row");
            }
        } else {
            s.push_str(&format!(", limited to {n} rows"));
        }
    }
    s.push('.');
    s
}

fn describe_set_arm(body: &SetExpr) -> String {
    match body {
        SetExpr::Select(s) => lowercase_first(&describe_select(s)),
        SetExpr::SetOp { .. } => "a combined query".to_string(),
    }
}

fn describe_select(s: &Select) -> String {
    let what = describe_projection(&s.items, s.distinct);
    let tables = describe_tables(&s.from);
    let mut out = format!("Find {what} from {tables}");
    if let Some(w) = &s.selection {
        out.push_str(&format!(" where {}", describe_expr(w)));
    }
    if !s.group_by.is_empty() {
        let keys: Vec<String> = s.group_by.iter().map(describe_expr).collect();
        out.push_str(&format!(", for each {}", keys.join(" and ")));
    }
    if let Some(h) = &s.having {
        out.push_str(&format!(", keeping only groups with {}", describe_expr(h)));
    }
    out
}

fn describe_projection(items: &[SelectItem], distinct: bool) -> String {
    let parts: Vec<String> = items
        .iter()
        .map(|i| match i {
            SelectItem::Wildcard => "all columns".to_string(),
            SelectItem::QualifiedWildcard(q) => format!("all columns of {q}"),
            SelectItem::Expr { expr, .. } => describe_expr(expr),
        })
        .collect();
    let joined = join_natural(&parts);
    if distinct {
        format!("the distinct {joined}")
    } else {
        joined
    }
}

fn describe_tables(from: &[TableRef]) -> String {
    let mut names = Vec::new();
    for tr in from {
        collect_table_names(tr, &mut names);
    }
    join_natural(&names)
}

fn collect_table_names(tr: &TableRef, out: &mut Vec<String>) {
    match tr {
        TableRef::Named { name, .. } => out.push(name.clone()),
        TableRef::Derived { .. } => out.push("a derived subquery".to_string()),
        TableRef::Join {
            left, right, kind, ..
        } => {
            collect_table_names(left, out);
            if matches!(kind, JoinKind::Left | JoinKind::Right | JoinKind::Full) {
                if let Some(last) = out.last_mut() {
                    *last = format!("{last} (outer-joined)");
                }
            }
            collect_table_names(right, out);
        }
    }
}

/// Describe an expression in English.
pub fn describe_expr(e: &Expr) -> String {
    match e {
        Expr::Column(c) => c.name.clone(),
        Expr::Literal(l) => match l {
            Literal::Number(v) => {
                if v.fract() == 0.0 {
                    format!("{}", *v as i64)
                } else {
                    format!("{v}")
                }
            }
            Literal::String(s) => format!("'{s}'"),
            Literal::Bool(b) => b.to_string(),
            Literal::Null => "null".to_string(),
        },
        Expr::Compare { op, left, right } => {
            use squ_parser::CompareOp::*;
            let rel = match op {
                Eq => "equals",
                NotEq => "is not",
                Lt => "is less than",
                LtEq => "is at most",
                Gt => "is greater than",
                GtEq => "is at least",
            };
            format!("{} {rel} {}", describe_expr(left), describe_expr(right))
        }
        Expr::And(a, b) => format!("{} and {}", describe_expr(a), describe_expr(b)),
        Expr::Or(a, b) => format!("{} or {}", describe_expr(a), describe_expr(b)),
        Expr::Not(inner) => format!("not ({})", describe_expr(inner)),
        Expr::IsNull { expr, negated } => format!(
            "{} is {}missing",
            describe_expr(expr),
            if *negated { "not " } else { "" }
        ),
        Expr::Between {
            expr, low, high, ..
        } => format!(
            "{} is between {} and {}",
            describe_expr(expr),
            describe_expr(low),
            describe_expr(high)
        ),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let items: Vec<String> = list.iter().map(describe_expr).collect();
            format!(
                "{} is {}one of ({})",
                describe_expr(expr),
                if *negated { "not " } else { "" },
                items.join(", ")
            )
        }
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => format!(
            "{} {}appears in the result of a subquery ({})",
            describe_expr(expr),
            if *negated { "never " } else { "" },
            lowercase_first(&describe_query(subquery))
        ),
        Expr::Exists { subquery, negated } => format!(
            "a matching row {}exists ({})",
            if *negated { "never " } else { "" },
            lowercase_first(&describe_query(subquery))
        ),
        Expr::ScalarSubquery(q) => {
            format!(
                "the value computed by ({})",
                lowercase_first(&describe_query(q))
            )
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => format!(
            "{} {}matches the pattern {}",
            describe_expr(expr),
            if *negated { "never " } else { "" },
            describe_expr(pattern)
        ),
        Expr::Function {
            name,
            args,
            distinct,
        } => {
            let upper = name.to_ascii_uppercase();
            match upper.as_str() {
                "COUNT" if matches!(args.first(), Some(Expr::Wildcard) | None) => {
                    "the number of rows".to_string()
                }
                "COUNT" => {
                    let arg = describe_expr(&args[0]);
                    if *distinct {
                        format!("the number of distinct {arg}")
                    } else {
                        format!("the number of {arg}")
                    }
                }
                "AVG" => format!("the average {}", describe_expr(&args[0])),
                "SUM" => format!("the total {}", describe_expr(&args[0])),
                "MIN" => format!("the minimum {}", describe_expr(&args[0])),
                "MAX" => format!("the maximum {}", describe_expr(&args[0])),
                _ => {
                    let parts: Vec<String> = args.iter().map(describe_expr).collect();
                    format!("{}({})", name.to_lowercase(), parts.join(", "))
                }
            }
        }
        Expr::Wildcard => "rows".to_string(),
        Expr::Arith { op, left, right } => {
            format!("{} {op} {}", describe_expr(left), describe_expr(right))
        }
        Expr::Neg(inner) => format!("-{}", describe_expr(inner)),
        Expr::Case { .. } => "a conditional value".to_string(),
        Expr::Cast { expr, type_name } => {
            format!("{} as {}", describe_expr(expr), type_name.to_lowercase())
        }
    }
}

fn join_natural(parts: &[String]) -> String {
    match parts.len() {
        0 => "nothing".to_string(),
        1 => parts[0].clone(),
        2 => format!("{} and {}", parts[0], parts[1]),
        _ => {
            let head = parts[..parts.len() - 1].join(", ");
            format!("{head}, and {}", parts[parts.len() - 1])
        }
    }
}

fn lowercase_first(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_lowercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squ_parser::parse;

    fn d(sql: &str) -> String {
        describe_statement(&parse(sql).unwrap())
    }

    #[test]
    fn simple_select() {
        let s = d("SELECT plate, mjd FROM SpecObj WHERE z > 0.5");
        assert_eq!(
            s,
            "Find plate and mjd from SpecObj where z is greater than 0.5."
        );
    }

    #[test]
    fn paper_q15_tryouts() {
        let s = d("SELECT count(*), cName FROM tryout GROUP BY cName ORDER BY count(*) DESC");
        assert!(s.contains("the number of rows"), "{s}");
        assert!(s.contains("tryout"), "{s}");
        assert!(s.contains("for each cName"), "{s}");
        assert!(s.contains("descending"), "{s}");
    }

    #[test]
    fn paper_q18_least_acceleration() {
        let s = d(
            "SELECT C.cylinders FROM CARS_DATA AS C JOIN CAR_NAMES AS T ON C.Id = T.MakeId WHERE T.Model = 'volvo' ORDER BY C.accelerate ASC LIMIT 1",
        );
        assert!(s.contains("least accelerate"), "{s}");
        assert!(s.contains("cylinders"), "{s}");
        assert!(s.contains("'volvo'"), "{s}");
    }

    #[test]
    fn intersect_description() {
        let s = d("SELECT name FROM a WHERE y = 2014 INTERSECT SELECT name FROM b WHERE y = 2015");
        assert!(s.starts_with("Find the results common to both:"), "{s}");
        assert!(s.contains("2014") && s.contains("2015"), "{s}");
    }

    #[test]
    fn aggregates_and_groups() {
        let s = d("SELECT class, AVG(z) FROM SpecObj GROUP BY class HAVING COUNT(*) > 5");
        assert!(s.contains("the average z"), "{s}");
        assert!(s.contains("for each class"), "{s}");
        assert!(s.contains("keeping only groups"), "{s}");
    }

    #[test]
    fn order_desc_limit_1_is_greatest() {
        let s = d("SELECT name FROM t ORDER BY score DESC LIMIT 1");
        assert!(s.contains("greatest score"), "{s}");
    }

    #[test]
    fn create_table_described() {
        let s = d("CREATE TABLE hot AS SELECT plate FROM SpecObj WHERE z > 1");
        assert!(s.starts_with("Create a table named hot"), "{s}");
        assert!(s.contains("find plate"), "{s}");
    }

    #[test]
    fn subquery_described() {
        let s = d("SELECT fiberid FROM SpecObj WHERE bestobjid IN (SELECT objid FROM PhotoObj WHERE ra > 180)");
        assert!(s.contains("appears in the result of a subquery"), "{s}");
        assert!(s.contains("PhotoObj"), "{s}");
    }
}
