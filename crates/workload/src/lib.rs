//! # squ-workload — the four benchmark workloads and their analysis
//!
//! Builds the paper's sampled query datasets (SDSS 285, SQLShare 250,
//! Join-Order 157, Spider 200) with quota-controlled, schema-aware random
//! generation; extracts the ten syntactic query properties of §2.1; and
//! provides the histogram / Pearson-correlation analyses behind the paper's
//! Figures 1–4 and Table 2.
//!
//! ```
//! use squ_workload::{build, Workload};
//! let sdss = build(Workload::Sdss, 2023);
//! assert_eq!(sdss.len(), 285);
//! assert!(sdss.queries[0].elapsed_ms.is_some());
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod describe;
pub mod gen;
mod props;
mod workloads;

pub use props::{
    function_count, join_count, predicate_count, query_props, select_column_count, table_count,
    uses_aggregate, QueryProps,
};
pub use workloads::{build, build_all, schema_for, Dataset, Workload, WorkloadQuery};
