//! # squ-workload — the four benchmark workloads and their analysis
//!
//! Builds the paper's sampled query datasets (SDSS 285, SQLShare 250,
//! Join-Order 157, Spider 200) with quota-controlled, schema-aware random
//! generation; extracts the ten syntactic query properties of §2.1; and
//! provides the histogram / Pearson-correlation analyses behind the paper's
//! Figures 1–4 and Table 2.
//!
//! Beyond the pinned paper datasets, the crate scales out: [`stream`] is a
//! constant-memory, cursor-resumable query stream whose items depend only
//! on `(seed, index)` — the substrate for sharded million-query synthesis —
//! [`sketch`] summarizes streamed distributions with a mergeable quantile
//! sketch, and [`target`] steers synthesis toward a requested histogram
//! shape with a round-based accept/reject controller.
//!
//! ```
//! use squ_workload::{build, Workload};
//! let sdss = build(Workload::Sdss, 2023);
//! assert_eq!(sdss.len(), 285);
//! assert!(sdss.queries[0].elapsed_ms.is_some());
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod describe;
pub mod gen;
mod props;
pub mod sketch;
pub mod stream;
pub mod target;
mod workloads;

pub use props::{
    function_count, join_count, predicate_count, query_props, select_column_count, table_count,
    uses_aggregate, QueryProps,
};
pub use sketch::{exact_quantile, QuantileSketch};
pub use stream::{mix, synth_profile, QueryStream, StreamCursor, StreamIter, MAX_COLLECT};
pub use target::{accepts, AcceptRule, Controller, RoundCounts, RoundPlan, TargetSpec};
pub use workloads::{base_profile, build, build_all, schema_for, Dataset, Workload, WorkloadQuery};
