//! Property tests for the quantile sketch: quantile answers stay within
//! the documented relative-error bound against the exact nearest-rank
//! reference on adversarial inputs, and merging any partition of the
//! input is *exactly* equal to the single-pass sketch (the invariant the
//! sharded synthesis path's byte-identity rests on).

use proptest::prelude::*;
use squ_workload::{exact_quantile, QuantileSketch};

const QS: [f64; 9] = [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];

fn sketch_of(values: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &v in values {
        s.insert(v);
    }
    s
}

fn assert_bounded(values: &[f64]) -> Result<(), TestCaseError> {
    let s = sketch_of(values);
    prop_assert_eq!(s.count(), values.len() as u64);
    for q in QS {
        let approx = s.quantile(q).expect("non-empty sketch answers");
        let exact = exact_quantile(values, q).expect("non-empty slice answers");
        let err = if exact.abs() < 1e-12 {
            approx.abs()
        } else {
            (approx - exact).abs() / exact.abs()
        };
        prop_assert!(
            err <= QuantileSketch::RELATIVE_ERROR + 1e-9,
            "q={}: sketch {} vs exact {} (rel err {})",
            q,
            approx,
            exact,
            err
        );
    }
    Ok(())
}

/// Non-negative finite values spanning many magnitudes, zeros included.
fn values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![Just(0.0), 1e-6f64..1e9, 0.0f64..1.0, 1.0f64..1e3,],
        1..300,
    )
}

proptest! {
    /// Every quantile of arbitrary non-negative input is within the
    /// documented relative-error bound of the exact nearest-rank answer.
    #[test]
    fn quantiles_within_bound_on_arbitrary_input(vs in values()) {
        assert_bounded(&vs)?;
    }

    /// Sorted and reversed presentations of the same multiset answer
    /// identically (insertion order is irrelevant), and stay bounded.
    #[test]
    fn insertion_order_is_irrelevant(vs in values()) {
        let mut vs = vs;
        vs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let sorted = sketch_of(&vs);
        vs.reverse();
        let reversed = sketch_of(&vs);
        prop_assert_eq!(&sorted, &reversed);
        assert_bounded(&vs)?;
    }

    /// Heavy duplication (few distinct values, many repeats) keeps both
    /// the error bound and a tiny memory footprint.
    #[test]
    fn heavy_duplicates_stay_bounded(
        distinct in prop::collection::vec(1e-3f64..1e6, 1..5),
        reps in 1usize..200,
    ) {
        let vs: Vec<f64> = distinct
            .iter()
            .flat_map(|&v| std::iter::repeat(v).take(reps))
            .collect();
        assert_bounded(&vs)?;
        prop_assert!(sketch_of(&vs).bucket_count() <= distinct.len() + 1);
    }

    /// NaN-free f64 extremes: subnormal-adjacent through f64::MAX.
    #[test]
    fn extreme_magnitudes_stay_bounded(exps in prop::collection::vec(-300i32..300, 1..40)) {
        let vs: Vec<f64> = exps.iter().map(|&e| 10f64.powi(e)).collect();
        assert_bounded(&vs)?;
    }

    /// merge(a, b) over any split point equals the single-pass sketch
    /// field-for-field, and merge order is irrelevant.
    #[test]
    fn merge_equals_single_pass(vs in values(), cut in 0.0f64..1.0) {
        let split = ((vs.len() as f64) * cut) as usize;
        let whole = sketch_of(&vs);
        let (a, b) = vs.split_at(split.min(vs.len()));
        let left = sketch_of(a);
        let right = sketch_of(b);
        let mut ab = left.clone();
        ab.merge(&right);
        prop_assert_eq!(&ab, &whole, "merge != single pass at split {}", split);
        let mut ba = right;
        ba.merge(&left);
        prop_assert_eq!(&ba, &whole, "reversed merge != single pass");
    }

    /// Merging many shards in any grouping reproduces the single pass —
    /// the exact situation the sharded synthesis merge loop is in.
    #[test]
    fn sharded_merge_is_exact(vs in values(), shards in 1usize..8) {
        let whole = sketch_of(&vs);
        let mut merged = QuantileSketch::new();
        let chunk = vs.len().div_ceil(shards);
        for part in vs.chunks(chunk.max(1)) {
            merged.merge(&sketch_of(part));
        }
        prop_assert_eq!(&merged, &whole);
    }
}
