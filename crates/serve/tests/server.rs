//! End-to-end tests against a live server on an ephemeral port: protocol
//! behavior, cache semantics, admission control, and a heavy-fault soak.

use serde_json::Value;
use squ_llm::FaultProfile;
use squ_serve::{once, Conn, Server, ServerConfig, WireFaultClient, WireOutcome, WireReport};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

/// Per-test scratch store root under the system temp dir.
fn scratch_store(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("squ-serve-it-{}-{tag}-{n}", std::process::id()))
}

fn boot(tag: &str, tune: impl FnOnce(&mut ServerConfig)) -> SocketAddr {
    let mut config = ServerConfig {
        store_root: scratch_store(tag),
        ..ServerConfig::default()
    };
    tune(&mut config);
    Server::spawn("127.0.0.1:0", config).expect("server binds an ephemeral port")
}

const EVAL_BODY: &str =
    r#"{"task":"syntax","workload":"joinorder","model":"GPT4","profile":"none","seed":5}"#;

fn post_eval(addr: SocketAddr, body: &str) -> squ_serve::HttpResponse {
    once(addr, "POST", "/eval", &[], body.as_bytes(), TIMEOUT).expect("eval exchange")
}

#[test]
fn healthz_and_statz_respond() {
    let addr = boot("health", |_| {});
    let health = once(addr, "GET", "/healthz", &[], b"", TIMEOUT).expect("healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.text(), "{\"ok\":true}");

    let statz = once(addr, "GET", "/statz", &[], b"", TIMEOUT).expect("statz");
    assert_eq!(statz.status, 200);
    let doc: Value = serde_json::from_str(&statz.text()).expect("statz is JSON");
    assert_eq!(doc["panics"], 0u64);
}

#[test]
fn keep_alive_carries_multiple_exchanges_on_one_connection() {
    let addr = boot("keepalive", |_| {});
    let mut conn = Conn::connect(addr, TIMEOUT).expect("connect");
    let first = conn
        .request("GET", "/healthz", &[], b"")
        .expect("exchange 1");
    assert_eq!(first.status, 200);
    let second = conn
        .request("POST", "/eval", &[], EVAL_BODY.as_bytes())
        .expect("exchange 2 on the same socket");
    assert_eq!(second.status, 200);
    let third = conn
        .request("GET", "/healthz", &[], b"")
        .expect("exchange 3 on the same socket");
    assert_eq!(third.status, 200);
}

#[test]
fn warm_eval_repeats_are_byte_identical_store_hits() {
    let addr = boot("cache", |_| {});
    let cold = post_eval(addr, EVAL_BODY);
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-squ-cache"), Some("miss"));

    let warm = post_eval(addr, EVAL_BODY);
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-squ-cache"), Some("hit"));
    assert_eq!(cold.body, warm.body, "cached body must be byte-identical");

    let doc: Value = serde_json::from_str(&warm.text()).expect("result is JSON");
    assert_eq!(doc["task"], "syntax_error");
    assert_eq!(doc["workload"], "Join-Order");
    assert!(doc["examples"].as_u64().expect("examples") > 0);
}

#[test]
fn suite_streams_one_ndjson_line_per_evaluation() {
    let addr = boot("suite", |_| {});
    let spec =
        r#"{"tasks":["syntax"],"workloads":["joinorder"],"models":["GPT4","Gemini"],"seed":5}"#;
    let resp = once(addr, "POST", "/suite", &[], spec.as_bytes(), TIMEOUT).expect("suite");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("transfer-encoding"), Some("chunked"));
    let text = resp.text();
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(lines.len(), 2, "syntax × joinorder × 2 models");
    for line in lines {
        let doc: Value = serde_json::from_str(line).expect("each line is JSON");
        assert_eq!(doc["task"], "syntax_error");
    }

    // a spec that selects nothing is a 400, not an empty stream
    let empty = once(
        addr,
        "POST",
        "/suite",
        &[],
        br#"{"tasks":["perf"],"workloads":["spider"]}"#,
        TIMEOUT,
    )
    .expect("empty suite exchange");
    assert_eq!(empty.status, 400);
}

#[test]
fn malformed_oversized_and_truncated_requests_reject_without_panic() {
    let addr = boot("malformed", |_| {});

    // malformed JSON body
    let bad_json = post_eval(addr, "{not json");
    assert_eq!(bad_json.status, 400);
    // unknown fields resolved: bad task
    let bad_task = post_eval(addr, r#"{"task":"nope","workload":"sdss","model":"GPT4"}"#);
    assert_eq!(bad_task.status, 400);
    // inadmissible combination
    let bad_combo = post_eval(
        addr,
        r#"{"task":"perf","workload":"spider","model":"GPT4"}"#,
    );
    assert_eq!(bad_combo.status, 400);
    // wrong method / unknown route
    let method = once(addr, "GET", "/eval", &[], b"", TIMEOUT).expect("405 exchange");
    assert_eq!(method.status, 405);
    let route = once(addr, "GET", "/nope", &[], b"", TIMEOUT).expect("404 exchange");
    assert_eq!(route.status, 404);

    // oversized body: Content-Length over the limit → 413 before any read
    let huge = format!(
        "POST /eval HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
        64 * 1024 * 1024
    );
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(huge.as_bytes())
        .expect("send oversized head");
    let resp = read_raw_status(stream);
    assert_eq!(resp, Some(413));

    // truncated request: half a head, then close — server must shrug
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"POST /eval HTT").expect("send fragment");
    drop(stream);

    // raw garbage
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"\x00\x01\x02 garbage\r\n\r\n")
        .expect("send garbage");
    let resp = read_raw_status(stream);
    assert_eq!(resp, Some(400));

    // after all of that the server is still healthy and panic-free
    let statz = once(addr, "GET", "/statz", &[], b"", TIMEOUT).expect("statz");
    let doc: Value = serde_json::from_str(&statz.text()).expect("statz is JSON");
    assert_eq!(doc["panics"], 0u64, "no handler panicked");
    assert!(doc["protocol_errors"].as_u64().expect("protocol_errors") >= 2);
}

/// Read just the status code of a raw response, if the server sent one.
fn read_raw_status(stream: TcpStream) -> Option<u16> {
    use std::io::{BufRead, BufReader};
    let _ = stream.set_read_timeout(Some(TIMEOUT));
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).ok()?;
    line.split(' ').nth(1)?.parse().ok()
}

#[test]
fn saturated_admission_gate_returns_429_with_retry_after() {
    // zero permits: the gate is saturated by construction, so every
    // evaluation request is turned away deterministically
    let addr = boot("saturated", |c| c.max_in_flight = 0);
    let resp = post_eval(addr, EVAL_BODY);
    assert_eq!(resp.status, 429);
    assert!(resp.header("retry-after").is_some());
    // control endpoints bypass admission and stay observable
    let health = once(addr, "GET", "/healthz", &[], b"", TIMEOUT).expect("healthz");
    assert_eq!(health.status, 200);
}

#[test]
fn exhausted_client_budget_returns_429_with_computed_retry_after() {
    let addr = boot("budget", |c| {
        c.bucket_capacity = 2.0;
        c.bucket_refill_per_s = 0.01;
    });
    let h = [("x-squ-client", "greedy")];
    for _ in 0..2 {
        let ok =
            once(addr, "POST", "/eval", &h, EVAL_BODY.as_bytes(), TIMEOUT).expect("budgeted eval");
        assert_eq!(ok.status, 200);
    }
    let throttled =
        once(addr, "POST", "/eval", &h, EVAL_BODY.as_bytes(), TIMEOUT).expect("throttled eval");
    assert_eq!(throttled.status, 429);
    let retry: u64 = throttled
        .header("retry-after")
        .expect("retry-after present")
        .parse()
        .expect("retry-after is seconds");
    assert!(retry >= 1);
    // an unrelated client is not throttled
    let other = once(
        addr,
        "POST",
        "/eval",
        &[("x-squ-client", "patient")],
        EVAL_BODY.as_bytes(),
        TIMEOUT,
    )
    .expect("other client eval");
    assert_eq!(other.status, 200);
}

#[test]
fn heavy_fault_soak_never_yields_5xx_or_panics() {
    let addr = boot("soak", |_| {});
    // prime the cache so most faulted exchanges are store hits
    assert_eq!(post_eval(addr, EVAL_BODY).status, 200);

    let client = WireFaultClient::new(FaultProfile::heavy(), 2023).with_timeout(TIMEOUT);
    let mut report = WireReport::default();
    for i in 0..60 {
        let (fault, outcome) = client.fire(addr, i, "/eval", EVAL_BODY.as_bytes());
        assert!(
            !matches!(&outcome, WireOutcome::Responses(s) if s.iter().any(|c| *c >= 500)),
            "exchange {i} (fault {fault:?}) produced a 5xx"
        );
        report.observe(fault, &outcome);
    }
    assert!(report.faulted > 10, "heavy profile should fault often");
    assert!(report.ok > 0, "clean exchanges still succeed mid-soak");
    assert_eq!(report.server_errors, 0);

    // the server survived: healthy, zero panics, and the in-flight gauge
    // drains back to just the probing request itself (poll briefly —
    // the last soak exchange's guard may still be dropping)
    let mut gauge = u64::MAX;
    for _ in 0..100 {
        let statz = once(addr, "GET", "/statz", &[], b"", TIMEOUT).expect("statz after soak");
        let doc: Value = serde_json::from_str(&statz.text()).expect("statz is JSON");
        assert_eq!(doc["panics"], 0u64, "soak must not panic any handler");
        gauge = doc["in_flight"].as_u64().expect("in_flight gauge");
        if gauge <= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        gauge <= 1,
        "in-flight gauge must drain after the soak, got {gauge}"
    );
}
