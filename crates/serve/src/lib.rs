//! # squ-serve — benchmark-as-a-service over the artifact store
//!
//! The paper's evaluation is a one-shot batch run; this crate turns it
//! into a long-running service. A hand-rolled HTTP/1.1 server (no async
//! runtime — the vendored offline stack has none) exposes the evaluation
//! pipeline behind four endpoints:
//!
//! | endpoint        | purpose                                             |
//! |-----------------|-----------------------------------------------------|
//! | `POST /eval`    | one `(task, workload, model)` → scored outcome      |
//! | `POST /suite`   | a suite spec → streamed NDJSON results (chunked)    |
//! | `GET /healthz`  | liveness                                            |
//! | `GET /statz`    | store hit/miss, latency histograms, in-flight gauge |
//!
//! Every request shares one process-wide `squ::store::Store` as a hot
//! cache: complete `/eval` bodies are content-addressed in a `serve`
//! stage, so a repeated identical request is a pure store hit with a
//! **byte-identical** body (the `X-Squ-Cache` header tells hit from
//! miss), and datasets share the CLI suite's `dataset` stage, fingerprint
//! for fingerprint.
//!
//! Overload and hostility are first-class: bounded in-flight permits and
//! per-client token buckets answer 429 with `Retry-After`; oversized,
//! malformed, or truncated requests get structured 4xxs; `/suite`
//! streams through a bounded queue so a slow reader blocks the producer
//! instead of growing a buffer; and handler panics become one 500, not a
//! dead process. [`WireFaultClient`] reuses the `squ_llm` fault profiles
//! at the wire to soak-test exactly those properties.

#![warn(missing_docs)]

pub mod client;
pub mod faultnet;
pub mod http;
pub mod server;
pub mod service;
pub mod stats;

pub use client::{once, Conn, HttpResponse};
pub use faultnet::{WireFaultClient, WireOutcome, WireReport};
pub use server::{AdmissionGate, ClientBuckets, Server, ServerConfig};
pub use service::{CacheStatus, EvalService, EvalSpec, SuiteSpec, SERVE_VERSION};
pub use stats::ServerStats;
