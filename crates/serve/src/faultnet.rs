//! Wire-level fault injection: the `Transport` fault model pointed at
//! the server's front door.
//!
//! `squ_llm::FaultProfile` describes how a flaky model-API connection
//! misbehaves; [`WireFaultClient`] reuses those probabilities one layer
//! down, mapping each fault kind onto an HTTP-level misbehavior:
//!
//! | model-transport fault | wire behavior                               |
//! |-----------------------|---------------------------------------------|
//! | `Truncation`          | request cut off mid-bytes, socket closed    |
//! | `Garble`              | request head corrupted before sending       |
//! | `Refusal`             | bogus method token (`bogus!`)               |
//! | `Duplication`         | request pipelined twice on one connection   |
//! | `Unavailable`         | connect, then drop without sending a byte   |
//! | `LatencySpike`        | head and body written with a stall between  |
//! | `Echo`                | an unknown path is requested (`/echo/...`)  |
//!
//! Fault selection is deterministic per `(seed, profile, index)`, so a
//! soak run is replayable. The server's obligation under every one of
//! these: a structured 4xx or a quiet disconnect — never a panic, never
//! a 5xx, never unbounded memory.

use crate::client::read_response;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use squ_llm::{FaultKind, FaultProfile};
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// What one faulted exchange did, from the client's side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireOutcome {
    /// The server answered; statuses in exchange order (duplication
    /// yields two).
    Responses(Vec<u16>),
    /// The client aborted by design (named fault); no response read.
    Aborted(&'static str),
    /// Transport error talking to the server (it may have hung up on a
    /// malformed request before our write finished — that is graceful
    /// degradation, not a server failure).
    NoResponse,
}

/// Tallies across a soak run.
#[derive(Debug, Default, Clone)]
pub struct WireReport {
    /// Exchanges fired.
    pub requests: u64,
    /// Exchanges that carried an injected fault.
    pub faulted: u64,
    /// 2xx responses observed.
    pub ok: u64,
    /// 4xx responses observed (the server defending itself).
    pub rejected: u64,
    /// 5xx responses observed — the soak asserts this stays 0.
    pub server_errors: u64,
    /// Exchanges with no readable response (aborts + disconnects).
    pub silent: u64,
    /// Injected fault counts by kind name.
    pub by_kind: BTreeMap<String, u64>,
}

impl WireReport {
    /// Fold one outcome into the tallies.
    pub fn observe(&mut self, injected: Option<FaultKind>, outcome: &WireOutcome) {
        self.requests += 1;
        if let Some(kind) = injected {
            self.faulted += 1;
            *self.by_kind.entry(kind.name().to_string()).or_insert(0) += 1;
        }
        match outcome {
            WireOutcome::Responses(statuses) => {
                for s in statuses {
                    match s {
                        200..=299 => self.ok += 1,
                        500..=599 => self.server_errors += 1,
                        _ => self.rejected += 1,
                    }
                }
                if statuses.is_empty() {
                    self.silent += 1;
                }
            }
            WireOutcome::Aborted(_) | WireOutcome::NoResponse => self.silent += 1,
        }
    }
}

/// A deterministic wire-fault load client.
pub struct WireFaultClient {
    profile: FaultProfile,
    seed: u64,
    timeout: Duration,
}

impl WireFaultClient {
    /// A client injecting `profile`'s faults, seeded by `seed`.
    pub fn new(profile: FaultProfile, seed: u64) -> WireFaultClient {
        WireFaultClient {
            profile,
            seed,
            timeout: Duration::from_secs(10),
        }
    }

    /// Override the socket timeout (default 10 s).
    pub fn with_timeout(mut self, timeout: Duration) -> WireFaultClient {
        self.timeout = timeout;
        self
    }

    fn rng_for(&self, index: u64) -> StdRng {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.seed.hash(&mut h);
        self.profile.name.hash(&mut h);
        index.hash(&mut h);
        StdRng::seed_from_u64(h.finish())
    }

    /// The fault (if any) exchange `index` will carry.
    pub fn fault_for(&self, index: u64) -> Option<FaultKind> {
        let mut rng = self.rng_for(index);
        let p = &self.profile;
        // sampled in FaultKind::ALL order, first hit wins, mirroring the
        // per-attempt draws in squ_llm::Transport
        let draws = [
            (FaultKind::Truncation, p.p_truncation),
            (FaultKind::Refusal, p.p_refusal),
            (FaultKind::Echo, p.p_echo),
            (FaultKind::Garble, p.p_garble),
            (FaultKind::Duplication, p.p_duplication),
            (FaultKind::Unavailable, p.p_unavailable),
            (FaultKind::LatencySpike, p.p_latency_spike),
        ];
        for (kind, prob) in draws {
            if prob > 0.0 && rng.gen_bool(prob.min(1.0)) {
                return Some(kind);
            }
        }
        None
    }

    /// Fire exchange `index`: a `POST path` with `body`, carrying the
    /// fault [`WireFaultClient::fault_for`] selected.
    pub fn fire(
        &self,
        addr: SocketAddr,
        index: u64,
        path: &str,
        body: &[u8],
    ) -> (Option<FaultKind>, WireOutcome) {
        let fault = self.fault_for(index);
        let outcome = self.fire_with(addr, fault, path, body);
        (fault, outcome)
    }

    fn raw_request(&self, path: &str, body: &[u8]) -> Vec<u8> {
        let head = format!(
            "POST {path} HTTP/1.1\r\nHost: squ-serve\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let mut raw = head.into_bytes();
        raw.extend_from_slice(body);
        raw
    }

    fn fire_with(
        &self,
        addr: SocketAddr,
        fault: Option<FaultKind>,
        path: &str,
        body: &[u8],
    ) -> WireOutcome {
        let stream = match TcpStream::connect_timeout(&addr, self.timeout) {
            Ok(s) => s,
            Err(_) => return WireOutcome::NoResponse,
        };
        let _ = stream.set_read_timeout(Some(self.timeout));
        let _ = stream.set_write_timeout(Some(self.timeout));

        match fault {
            Some(FaultKind::Unavailable) => {
                // connect, say nothing, vanish
                drop(stream);
                WireOutcome::Aborted("unavailable")
            }
            Some(FaultKind::Truncation) => {
                let raw = self.raw_request(path, body);
                let cut = raw.len() / 2;
                let mut stream = stream;
                let _ = stream.write_all(&raw[..cut]);
                let _ = stream.flush();
                drop(stream);
                WireOutcome::Aborted("truncation")
            }
            Some(FaultKind::Refusal) => {
                // a method token the grammar refuses
                let raw = format!("bogus! {path} HTTP/1.1\r\nHost: squ-serve\r\n\r\n");
                self.exchange(stream, raw.into_bytes(), 1)
            }
            Some(FaultKind::Garble) => {
                // corrupt the head: lowercase method + an illegal header
                let raw = format!(
                    "post {path} HTTP/1.1\r\nbad header no colon\r\nContent-Length: {}\r\n\r\n",
                    body.len()
                );
                let mut bytes = raw.into_bytes();
                bytes.extend_from_slice(body);
                self.exchange(stream, bytes, 1)
            }
            Some(FaultKind::Echo) => {
                // an off-route request: the server must 404, not guess
                let raw = self.raw_request(&format!("/echo{path}"), body);
                self.exchange(stream, raw, 1)
            }
            Some(FaultKind::Duplication) => {
                // the same request pipelined twice on one connection
                let mut raw = self.raw_request(path, body);
                let again = raw.clone();
                raw.extend_from_slice(&again);
                self.exchange(stream, raw, 2)
            }
            Some(FaultKind::LatencySpike) => {
                // stall between head and body (bounded: the point is a
                // slow sender, not a stuck soak)
                let raw = self.raw_request(path, body);
                let cut = raw.len().saturating_sub(body.len().max(1));
                let mut stream = stream;
                if stream.write_all(&raw[..cut]).is_err() {
                    return WireOutcome::NoResponse;
                }
                let _ = stream.flush();
                std::thread::sleep(Duration::from_millis(25));
                if stream.write_all(&raw[cut..]).is_err() {
                    return WireOutcome::NoResponse;
                }
                let _ = stream.flush();
                self.read_statuses(stream, 1)
            }
            None => {
                let raw = self.raw_request(path, body);
                self.exchange(stream, raw, 1)
            }
        }
    }

    fn exchange(&self, mut stream: TcpStream, raw: Vec<u8>, expect: usize) -> WireOutcome {
        if stream.write_all(&raw).is_err() || stream.flush().is_err() {
            // the server may legally reset a malformed connection before
            // our write completes
            return WireOutcome::NoResponse;
        }
        self.read_statuses(stream, expect)
    }

    fn read_statuses(&self, stream: TcpStream, expect: usize) -> WireOutcome {
        let mut reader = match stream.try_clone() {
            Ok(s) => BufReader::new(s),
            Err(_) => return WireOutcome::NoResponse,
        };
        let mut statuses = Vec::new();
        for _ in 0..expect {
            match read_response(&mut reader) {
                Ok(resp) => statuses.push(resp.status),
                Err(_) => break, // server hung up (allowed after a 4xx)
            }
        }
        if statuses.is_empty() {
            WireOutcome::NoResponse
        } else {
            WireOutcome::Responses(statuses)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_selection_is_deterministic_and_profile_shaped() {
        let heavy = WireFaultClient::new(FaultProfile::heavy(), 42);
        let again = WireFaultClient::new(FaultProfile::heavy(), 42);
        let picks: Vec<Option<FaultKind>> = (0..200).map(|i| heavy.fault_for(i)).collect();
        let picks2: Vec<Option<FaultKind>> = (0..200).map(|i| again.fault_for(i)).collect();
        assert_eq!(picks, picks2, "same seed, same schedule");
        let faulted = picks.iter().filter(|p| p.is_some()).count();
        assert!(faulted > 50, "heavy profile faults often, got {faulted}");

        let none = WireFaultClient::new(FaultProfile::none(), 42);
        assert!((0..200).all(|i| none.fault_for(i).is_none()));

        let other_seed = WireFaultClient::new(FaultProfile::heavy(), 43);
        let picks3: Vec<Option<FaultKind>> = (0..200).map(|i| other_seed.fault_for(i)).collect();
        assert_ne!(picks, picks3, "different seed, different schedule");
    }

    #[test]
    fn report_tallies_split_status_classes() {
        let mut report = WireReport::default();
        report.observe(None, &WireOutcome::Responses(vec![200]));
        report.observe(Some(FaultKind::Garble), &WireOutcome::Responses(vec![400]));
        report.observe(
            Some(FaultKind::Truncation),
            &WireOutcome::Aborted("truncation"),
        );
        report.observe(
            Some(FaultKind::Duplication),
            &WireOutcome::Responses(vec![200, 200]),
        );
        assert_eq!(report.requests, 4);
        assert_eq!(report.faulted, 3);
        assert_eq!(report.ok, 3);
        assert_eq!(report.rejected, 1);
        assert_eq!(report.server_errors, 0);
        assert_eq!(report.silent, 1);
        assert_eq!(report.by_kind.get("garble"), Some(&1));
    }
}
