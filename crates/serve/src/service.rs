//! The evaluation service behind the HTTP surface.
//!
//! [`EvalService`] owns the process-wide artifact store (one
//! [`squ::store::Store`] behind a mutex) and an in-memory cache of built
//! example sets. `POST /eval` resolves a spec to `(task, workload, model,
//! profile, seeds)`, and the complete response body is content-addressed
//! in a dedicated `serve` store stage — a warm repeat of an identical
//! request is a pure store hit and returns **byte-identical** JSON. Cold
//! requests share the `dataset` stage with the CLI suite (same names,
//! same fingerprints), so a server booted over an existing `repro` store
//! never rebuilds datasets the CLI already built.
//!
//! The store mutex is held only around `load`/`save`; dataset builds and
//! model calls run outside it, so concurrent cold requests may race to
//! build the same artifact — both produce identical bytes and the store's
//! atomic rename makes the race harmless.

use crate::http::Reject;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use squ::registry::{task as task_by_id, DynTask, ExampleSet};
use squ::store::{fp_dataset, Fingerprint, Store};
use squ::PAPER_SEED;
use squ_dialect::Dialect;
use squ_llm::{DatasetId, FaultProfile, ModelId, SimulatedModel, Transport};
use squ_tasks::TaskId;
use squ_workload::Workload;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Bump when the `/eval` response schema changes: invalidates cached
/// response bodies in the `serve` store stage.
///
/// Version 2: the response gained an echoed `dialect` field and the
/// cache key folds the dialect coordinate.
pub const SERVE_VERSION: u32 = 2;

/// Cap on distinct example sets held in memory at once (each is a few
/// hundred examples; the cap bounds server memory across many seeds).
const SET_CACHE_CAP: usize = 64;

/// `POST /eval` request body. String fields are resolved case- and
/// spelling-leniently (`"syntax"` or `"syntax_error"`, `"SDSS"` or
/// `"sdss"`); omitted fields take the documented defaults.
#[derive(Debug, Clone, Deserialize)]
pub struct EvalSpec {
    /// Task family (`syntax`, `tokens`, `equiv`, `perf`, `explain`, or
    /// the paper names like `syntax_error`).
    pub task: String,
    /// Workload name (`SDSS`, `SQLShare`, `Join-Order`, `Spider`).
    pub workload: String,
    /// Model name (`GPT4`, `GPT3.5`, `Llama3`, `MistralAI`, `Gemini`).
    pub model: String,
    /// Transport fault profile (`none`, `light`, `heavy`, `flaky`);
    /// default `none`.
    pub profile: Option<String>,
    /// Transport fault seed; default 0.
    pub fault_seed: Option<u64>,
    /// Workload sampling seed; default [`PAPER_SEED`].
    pub seed: Option<u64>,
    /// SQL dialect coordinate (`squ`, `sqlite`, `postgres`, `mysql`,
    /// `tsql`); default `squ`. Validated against the dialect matrix and
    /// folded into the cache key, so each dialect caches independently.
    pub dialect: Option<String>,
}

/// `POST /suite` request body: the cross product of tasks × their
/// admissible workloads × models, each evaluated like one `/eval` call.
#[derive(Debug, Clone, Deserialize)]
pub struct SuiteSpec {
    /// Task families to run; default all five.
    pub tasks: Option<Vec<String>>,
    /// Models to run; default all five.
    pub models: Option<Vec<String>>,
    /// Restrict workloads to this set (each task still only runs its own
    /// admissible workloads); default unrestricted.
    pub workloads: Option<Vec<String>>,
    /// Transport fault profile; default `none`.
    pub profile: Option<String>,
    /// Transport fault seed; default 0.
    pub fault_seed: Option<u64>,
    /// Workload sampling seed; default [`PAPER_SEED`].
    pub seed: Option<u64>,
    /// SQL dialect coordinate; default `squ`.
    pub dialect: Option<String>,
}

/// One fault kind tally in an [`EvalResult`].
#[derive(Debug, Clone, Serialize)]
pub struct FaultCount {
    /// Fault kind name (from `FaultKind::name`).
    pub kind: String,
    /// Calls that observed it at least once.
    pub calls: u64,
}

/// The scored outcome of one `(task, workload, model)` evaluation.
#[derive(Debug, Clone, Serialize)]
pub struct EvalResult {
    /// Resolved task name (paper identifier).
    pub task: String,
    /// Resolved workload name.
    pub workload: String,
    /// Resolved model name.
    pub model: String,
    /// Fault profile applied at the model-transport layer.
    pub profile: String,
    /// SQL dialect coordinate the evaluation was keyed under.
    pub dialect: String,
    /// Workload sampling seed.
    pub seed: u64,
    /// Transport fault seed.
    pub fault_seed: u64,
    /// Examples evaluated.
    pub examples: usize,
    /// Outcomes routed to human review (empty/ambiguous extractions).
    pub needs_review: usize,
    /// `needs_review / examples`.
    pub review_rate: f64,
    /// Model-call attempts across all examples (retries included).
    pub attempts: u64,
    /// Calls that exhausted their retry budget and failed open.
    pub exhausted: u64,
    /// Virtual milliseconds consumed (latency + backoff waits).
    pub virtual_ms: u64,
    /// Per-fault-kind call tallies, sorted by kind name.
    pub faults: Vec<FaultCount>,
}

/// A resolved, validated evaluation coordinate.
#[derive(Debug, Clone, Copy)]
pub struct EvalKey {
    /// Task family.
    pub task: TaskId,
    /// Workload.
    pub workload: Workload,
    /// Model.
    pub model: ModelId,
    /// Fault profile (referenced by name; profiles are static).
    pub profile: &'static str,
    /// SQL dialect (referenced by canonical name; dialects are static).
    pub dialect: &'static str,
    /// Transport fault seed.
    pub fault_seed: u64,
    /// Workload sampling seed.
    pub seed: u64,
}

/// Whether an `/eval` body came from the store or was computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from the `serve` store stage.
    Hit,
    /// Computed (and saved) on this request.
    Miss,
}

impl CacheStatus {
    /// Header value for `X-Squ-Cache`.
    pub fn header_value(&self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
        }
    }
}

fn resolve_task(name: &str) -> Result<TaskId, Reject> {
    let lower = name.to_ascii_lowercase();
    TaskId::ALL
        .into_iter()
        .find(|t| t.short() == lower || t.name() == lower || t.file_stem() == lower)
        .ok_or_else(|| Reject::new(400, format!("unknown task {name:?}")))
}

fn resolve_workload(name: &str) -> Result<Workload, Reject> {
    let slug: String = name
        .chars()
        .filter(|c| *c != '-' && *c != '_')
        .collect::<String>()
        .to_ascii_lowercase();
    [
        Workload::Sdss,
        Workload::SqlShare,
        Workload::JoinOrder,
        Workload::Spider,
    ]
    .into_iter()
    .find(|w| {
        w.name()
            .chars()
            .filter(|c| *c != '-')
            .collect::<String>()
            .to_ascii_lowercase()
            == slug
    })
    .ok_or_else(|| Reject::new(400, format!("unknown workload {name:?}")))
}

fn resolve_model(name: &str) -> Result<ModelId, Reject> {
    let slug: String = name
        .chars()
        .filter(|c| *c != '.' && *c != '-' && *c != '_')
        .collect::<String>()
        .to_ascii_lowercase();
    ModelId::ALL
        .into_iter()
        .find(|m| {
            m.name()
                .chars()
                .filter(|c| *c != '.')
                .collect::<String>()
                .to_ascii_lowercase()
                == slug
        })
        .ok_or_else(|| Reject::new(400, format!("unknown model {name:?}")))
}

fn resolve_profile(name: Option<&str>) -> Result<&'static str, Reject> {
    let name = name.unwrap_or("none");
    let lower = name.to_ascii_lowercase();
    FaultProfile::NAMES
        .iter()
        .find(|n| **n == lower)
        .copied()
        .ok_or_else(|| Reject::new(400, format!("unknown fault profile {name:?}")))
}

fn resolve_dialect(name: Option<&str>) -> Result<&'static str, Reject> {
    let name = name.unwrap_or("squ");
    let lower = name.to_ascii_lowercase();
    Dialect::by_name(&lower).map(|d| d.name()).ok_or_else(|| {
        Reject::new(
            400,
            format!(
                "unknown dialect {name:?} (one of {})",
                Dialect::NAMES.join(", ")
            ),
        )
    })
}

fn dataset_id(w: Workload) -> DatasetId {
    squ::pipeline::dataset_id(w)
}

/// Lowercased, dash-free slug (mirrors the suite's store naming so the
/// server shares `dataset`-stage entries with the CLI).
fn slug(name: &str) -> String {
    name.chars()
        .filter(|c| *c != '-')
        .collect::<String>()
        .to_ascii_lowercase()
}

fn set_name(task: &dyn DynTask, w: Workload) -> String {
    format!("{}_{}", task.id().short(), slug(w.name()))
}

/// The shared evaluation service: one store, one set cache, any number
/// of connection threads.
pub struct EvalService {
    store: Mutex<Store>,
    sets: Mutex<BTreeMap<u64, Arc<ExampleSet>>>,
}

impl EvalService {
    /// Open the service over the store rooted at `store_root`.
    pub fn new(store_root: impl Into<std::path::PathBuf>) -> EvalService {
        EvalService {
            store: Mutex::new(Store::open(store_root)),
            sets: Mutex::new(BTreeMap::new()),
        }
    }

    /// Resolve and validate a raw spec into an [`EvalKey`].
    pub fn resolve(&self, spec: &EvalSpec) -> Result<EvalKey, Reject> {
        let task = resolve_task(&spec.task)?;
        let workload = resolve_workload(&spec.workload)?;
        let model = resolve_model(&spec.model)?;
        let profile = resolve_profile(spec.profile.as_deref())?;
        let dialect = resolve_dialect(spec.dialect.as_deref())?;
        if !task.workloads().contains(&workload) {
            return Err(Reject::new(
                400,
                format!(
                    "task {:?} does not run on workload {:?} (admissible: {:?})",
                    task.name(),
                    workload.name(),
                    task.workloads()
                        .iter()
                        .map(|w| w.name())
                        .collect::<Vec<_>>()
                ),
            ));
        }
        Ok(EvalKey {
            task,
            workload,
            model,
            profile,
            dialect,
            fault_seed: spec.fault_seed.unwrap_or(0),
            seed: spec.seed.unwrap_or(PAPER_SEED),
        })
    }

    /// Expand a suite spec into the evaluation keys it covers, in
    /// deterministic (task-major, then workload, then model) order.
    pub fn expand_suite(&self, spec: &SuiteSpec) -> Result<Vec<EvalKey>, Reject> {
        let tasks: Vec<TaskId> = match &spec.tasks {
            None => TaskId::ALL.to_vec(),
            Some(names) => names
                .iter()
                .map(|n| resolve_task(n))
                .collect::<Result<_, _>>()?,
        };
        let models: Vec<ModelId> = match &spec.models {
            None => ModelId::ALL.to_vec(),
            Some(names) => names
                .iter()
                .map(|n| resolve_model(n))
                .collect::<Result<_, _>>()?,
        };
        let restrict: Option<Vec<Workload>> = match &spec.workloads {
            None => None,
            Some(names) => Some(
                names
                    .iter()
                    .map(|n| resolve_workload(n))
                    .collect::<Result<_, _>>()?,
            ),
        };
        let profile = resolve_profile(spec.profile.as_deref())?;
        let dialect = resolve_dialect(spec.dialect.as_deref())?;
        let mut keys = Vec::new();
        for task in &tasks {
            for workload in task.workloads() {
                if let Some(allow) = &restrict {
                    if !allow.contains(workload) {
                        continue;
                    }
                }
                for model in &models {
                    keys.push(EvalKey {
                        task: *task,
                        workload: *workload,
                        model: *model,
                        profile,
                        dialect,
                        fault_seed: spec.fault_seed.unwrap_or(0),
                        seed: spec.seed.unwrap_or(PAPER_SEED),
                    });
                }
            }
        }
        if keys.is_empty() {
            return Err(Reject::new(400, "suite spec selects no evaluations"));
        }
        Ok(keys)
    }

    /// Content address of a complete `/eval` response body.
    fn fp_serve(key: &EvalKey) -> u64 {
        let t = task_by_id(key.task);
        Fingerprint::new("serve")
            .num(u64::from(SERVE_VERSION))
            .push(key.task.name())
            .push(key.workload.name())
            .push(match key.model {
                ModelId::Gpt4 => "GPT4",
                ModelId::Gpt35 => "GPT3.5",
                ModelId::Llama3 => "Llama3",
                ModelId::MistralAi => "MistralAI",
                ModelId::Gemini => "Gemini",
            })
            .push(key.profile)
            .push(key.dialect)
            .num(key.fault_seed)
            .num(key.seed)
            .num(fp_dataset(key.seed, t, key.workload))
            .finish()
    }

    /// The example set for `(task, workload, seed)`: in-memory cache,
    /// then the shared `dataset` store stage, then a fresh build (which
    /// is saved back for the next process).
    fn set_for(&self, key: &EvalKey) -> Arc<ExampleSet> {
        let t = task_by_id(key.task);
        let fp = fp_dataset(key.seed, t, key.workload);
        let cache = self.sets.lock().expect("set cache lock"); // lint:allow: poisoned only if a handler already panicked
        if let Some(set) = cache.get(&fp) {
            return Arc::clone(set);
        }
        drop(cache);
        let name = set_name(t, key.workload);
        let cached = self
            .store
            .lock()
            .expect("store lock") // lint:allow: poisoned only if a handler already panicked
            .load("dataset", &name, fp);
        let set: ExampleSet = match cached.and_then(|json| t.decode_set(&json).ok()) {
            Some(set) => set,
            None => {
                let ds = squ_workload::build(key.workload, key.seed);
                let set = t.build(&ds, key.seed);
                let encoded = t.encode_set(&set);
                self.store
                    .lock()
                    .expect("store lock") // lint:allow: poisoned only if a handler already panicked
                    .save("dataset", &name, fp, &encoded);
                set
            }
        };
        let set = Arc::new(set);
        let mut cache = self.sets.lock().expect("set cache lock"); // lint:allow: poisoned only if a handler already panicked
        if cache.len() >= SET_CACHE_CAP {
            // drop an arbitrary old entry to bound memory; the store
            // still has the bytes, so eviction only costs a re-decode
            let evict = cache.keys().next().copied();
            if let Some(k) = evict {
                cache.remove(&k);
            }
        }
        Arc::clone(cache.entry(fp).or_insert(set))
    }

    /// Evaluate one key, serving the response body from the `serve`
    /// store stage when an identical request was answered before.
    pub fn eval(&self, key: &EvalKey) -> (String, CacheStatus) {
        let fp = Self::fp_serve(key);
        // the historical name for the default dialect; a `_{dialect}`
        // suffix otherwise, so dialects never clobber each other's
        // name-keyed store entries
        let mut name = format!(
            "eval_{}_{}_{}",
            key.task.short(),
            slug(key.workload.name()),
            slug(&key.model.name().replace('.', ""))
        );
        if key.dialect != "squ" {
            name.push('_');
            name.push_str(key.dialect);
        }
        if let Some(body) = self
            .store
            .lock()
            .expect("store lock") // lint:allow: poisoned only if a handler already panicked
            .load("serve", &name, fp)
        {
            return (body, CacheStatus::Hit);
        }
        let body = self.eval_cold(key);
        self.store
            .lock()
            .expect("store lock") // lint:allow: poisoned only if a handler already panicked
            .save("serve", &name, fp, &body);
        (body, CacheStatus::Miss)
    }

    fn eval_cold(&self, key: &EvalKey) -> String {
        let t = task_by_id(key.task);
        let set = self.set_for(key);
        let profile = FaultProfile::by_name(key.profile).unwrap_or_else(FaultProfile::none);
        let client = Transport::new(SimulatedModel::new(key.model), profile, key.fault_seed);
        let facts = t.call_facts(&client, dataset_id(key.workload), &set);

        let examples = facts.len();
        let needs_review = facts.iter().filter(|(review, _)| *review).count();
        let attempts: u64 = facts.iter().map(|(_, c)| u64::from(c.attempts)).sum();
        let exhausted = facts.iter().filter(|(_, c)| c.exhausted).count() as u64;
        let virtual_ms: u64 = facts.iter().map(|(_, c)| c.virtual_ms).sum();
        let mut fault_calls: BTreeMap<&'static str, u64> = BTreeMap::new();
        for (_, call) in &facts {
            for kind in &call.faults {
                *fault_calls.entry(kind.name()).or_insert(0) += 1;
            }
        }
        let result = EvalResult {
            task: key.task.name().to_string(),
            workload: key.workload.name().to_string(),
            model: key.model.name().to_string(),
            profile: key.profile.to_string(),
            dialect: key.dialect.to_string(),
            seed: key.seed,
            fault_seed: key.fault_seed,
            examples,
            needs_review,
            review_rate: if examples == 0 {
                0.0
            } else {
                needs_review as f64 / examples as f64
            },
            attempts,
            exhausted,
            virtual_ms,
            faults: fault_calls
                .into_iter()
                .map(|(kind, calls)| FaultCount {
                    kind: kind.to_string(),
                    calls,
                })
                .collect(),
        };
        serde_json::to_string(&result).expect("eval result serializes") // lint:allow: plain data structs always serialize
    }

    /// The store's per-stage hit/miss table for `/statz`.
    pub fn store_stats_json(&self) -> Value {
        let store = self.store.lock().expect("store lock"); // lint:allow: poisoned only if a handler already panicked
        let stages: Vec<(String, Value)> = store
            .stats()
            .iter()
            .map(|(stage, s)| {
                (
                    stage.clone(),
                    Value::Object(vec![
                        ("hits".to_string(), Value::U64(s.hits as u64)),
                        ("misses".to_string(), Value::U64(s.misses as u64)),
                        ("bytes_written".to_string(), Value::U64(s.bytes_written)),
                    ]),
                )
            })
            .collect();
        Value::Object(stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> (tempdir::TempDir, EvalService) {
        let dir = tempdir::TempDir::new();
        let svc = EvalService::new(dir.path().join("store"));
        (dir, svc)
    }

    /// Minimal self-cleaning temp dir (std has none; test-only).
    mod tempdir {
        use std::path::{Path, PathBuf};
        use std::sync::atomic::{AtomicU64, Ordering};

        pub struct TempDir(PathBuf);

        impl TempDir {
            pub fn new() -> TempDir {
                static SEQ: AtomicU64 = AtomicU64::new(0);
                let n = SEQ.fetch_add(1, Ordering::Relaxed);
                let dir =
                    std::env::temp_dir().join(format!("squ-serve-test-{}-{n}", std::process::id()));
                std::fs::create_dir_all(&dir).expect("create temp dir");
                TempDir(dir)
            }

            pub fn path(&self) -> &Path {
                &self.0
            }
        }

        impl Drop for TempDir {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }
    }

    #[test]
    fn specs_resolve_leniently_and_validate_combinations() {
        let (_dir, svc) = service();
        let key = svc
            .resolve(&EvalSpec {
                task: "syntax".into(),
                workload: "sdss".into(),
                model: "gpt-3.5".into(),
                profile: None,
                fault_seed: None,
                seed: None,
                dialect: None,
            })
            .expect("resolves");
        assert_eq!(key.task, TaskId::Syntax);
        assert_eq!(key.workload, Workload::Sdss);
        assert_eq!(key.model, ModelId::Gpt35);
        assert_eq!(key.profile, "none");
        assert_eq!(key.seed, PAPER_SEED);

        // paper names work too
        assert!(svc
            .resolve(&EvalSpec {
                task: "syntax_error".into(),
                workload: "Join-Order".into(),
                model: "MistralAI".into(),
                profile: Some("heavy".into()),
                fault_seed: Some(7),
                seed: Some(11),
                dialect: None,
            })
            .is_ok());

        // perf only runs on SDSS
        let err = svc
            .resolve(&EvalSpec {
                task: "perf".into(),
                workload: "spider".into(),
                model: "GPT4".into(),
                profile: None,
                fault_seed: None,
                seed: None,
                dialect: None,
            })
            .expect_err("inadmissible combination");
        assert_eq!(err.status, 400);

        for (task, workload, model, profile) in [
            ("nope", "sdss", "GPT4", None),
            ("syntax", "nope", "GPT4", None),
            ("syntax", "sdss", "nope", None),
            ("syntax", "sdss", "GPT4", Some("nope".to_string())),
        ] {
            let err = svc
                .resolve(&EvalSpec {
                    task: task.into(),
                    workload: workload.into(),
                    model: model.into(),
                    profile,
                    fault_seed: None,
                    seed: None,
                    dialect: None,
                })
                .expect_err("bad spec");
            assert_eq!(err.status, 400);
        }
    }

    #[test]
    fn suite_expansion_is_deterministic_and_respects_restrictions() {
        let (_dir, svc) = service();
        let spec = SuiteSpec {
            tasks: Some(vec!["syntax".into(), "perf".into()]),
            models: Some(vec!["GPT4".into(), "Gemini".into()]),
            workloads: Some(vec!["sdss".into()]),
            profile: None,
            fault_seed: None,
            seed: None,
            dialect: None,
        };
        let keys = svc.expand_suite(&spec).expect("expands");
        // syntax×sdss×2 models + perf×sdss×2 models
        assert_eq!(keys.len(), 4);
        assert!(keys.iter().all(|k| k.workload == Workload::Sdss));

        // an over-restricted spec is a 400, not an empty stream
        let none = svc.expand_suite(&SuiteSpec {
            tasks: Some(vec!["explain".into()]),
            models: None,
            workloads: Some(vec!["sdss".into()]),
            profile: None,
            fault_seed: None,
            seed: None,
            dialect: None,
        });
        assert!(matches!(none, Err(r) if r.status == 400));
    }

    #[test]
    fn warm_eval_is_a_byte_identical_store_hit() {
        let (_dir, svc) = service();
        let key = svc
            .resolve(&EvalSpec {
                task: "syntax".into(),
                workload: "joinorder".into(),
                model: "Llama3".into(),
                profile: Some("light".into()),
                fault_seed: Some(3),
                seed: Some(5),
                dialect: None,
            })
            .expect("resolves");
        let (cold, status_cold) = svc.eval(&key);
        assert_eq!(status_cold, CacheStatus::Miss);
        let (warm, status_warm) = svc.eval(&key);
        assert_eq!(status_warm, CacheStatus::Hit);
        assert_eq!(cold, warm, "warm body must be byte-identical");

        let doc: Value = serde_json::from_str(&cold).expect("result parses");
        assert_eq!(doc["task"], "syntax_error");
        assert_eq!(doc["workload"], "Join-Order");
        assert_eq!(doc["model"], "Llama3");
        assert!(doc["examples"].as_u64().expect("examples") > 0);

        // a different fault seed is a different coordinate → cold again
        let other = EvalKey {
            fault_seed: 4,
            ..key
        };
        let (_, status_other) = svc.eval(&other);
        assert_eq!(status_other, CacheStatus::Miss);
    }

    #[test]
    fn dialect_is_validated_echoed_and_keys_the_cache() {
        let (_dir, svc) = service();

        // unknown dialect → 400 listing the valid names
        let err = svc
            .resolve(&EvalSpec {
                task: "syntax".into(),
                workload: "sdss".into(),
                model: "GPT4".into(),
                profile: None,
                fault_seed: None,
                seed: None,
                dialect: Some("oracle".into()),
            })
            .expect_err("unknown dialect");
        assert_eq!(err.status, 400);
        assert!(err.detail.contains("unknown dialect"), "{}", err.detail);
        for name in Dialect::NAMES {
            assert!(err.detail.contains(name), "{} missing {name}", err.detail);
        }

        // every known dialect resolves, case-insensitively
        for name in Dialect::NAMES {
            let key = svc
                .resolve(&EvalSpec {
                    task: "syntax".into(),
                    workload: "joinorder".into(),
                    model: "GPT4".into(),
                    profile: None,
                    fault_seed: None,
                    seed: Some(5),
                    dialect: Some(name.to_ascii_uppercase()),
                })
                .expect("known dialect resolves");
            assert_eq!(key.dialect, name);
        }

        // omitted dialect defaults to squ and is echoed in the body
        let base = svc
            .resolve(&EvalSpec {
                task: "syntax".into(),
                workload: "joinorder".into(),
                model: "GPT4".into(),
                profile: None,
                fault_seed: None,
                seed: Some(5),
                dialect: None,
            })
            .expect("resolves");
        assert_eq!(base.dialect, "squ");
        let (body, status) = svc.eval(&base);
        assert_eq!(status, CacheStatus::Miss);
        let doc: Value = serde_json::from_str(&body).expect("parses");
        assert_eq!(doc["dialect"], "squ");

        // a different dialect is a different cache coordinate
        let tsql = EvalKey {
            dialect: "tsql",
            ..base
        };
        let (body_tsql, status_tsql) = svc.eval(&tsql);
        assert_eq!(status_tsql, CacheStatus::Miss);
        let doc: Value = serde_json::from_str(&body_tsql).expect("parses");
        assert_eq!(doc["dialect"], "tsql");

        // and each dialect hits its own warm entry independently
        assert_eq!(svc.eval(&base).1, CacheStatus::Hit);
        assert_eq!(svc.eval(&tsql).1, CacheStatus::Hit);
    }

    #[test]
    fn fresh_service_reuses_the_on_disk_store() {
        let dir = tempdir::TempDir::new();
        let root = dir.path().join("store");
        let key = {
            let svc = EvalService::new(&root);
            let key = svc
                .resolve(&EvalSpec {
                    task: "syntax".into(),
                    workload: "joinorder".into(),
                    model: "GPT4".into(),
                    profile: None,
                    fault_seed: None,
                    seed: Some(5),
                    dialect: None,
                })
                .expect("resolves");
            svc.eval(&key);
            key
        };
        // a second service (fresh process, same store root) hits warm
        let svc2 = EvalService::new(&root);
        let (_, status) = svc2.eval(&key);
        assert_eq!(status, CacheStatus::Hit);
    }
}
