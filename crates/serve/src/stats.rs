//! Lock-free server telemetry behind `GET /statz`.
//!
//! Every counter is a plain atomic so the hot request path never takes a
//! lock to account for itself. Latencies land in a log₂-bucketed
//! [`Histogram`] per endpoint (buckets in microseconds, doubling from
//! 1 µs to ~34 s), which is coarse but monotone-merge-safe across
//! threads and cheap to snapshot.

use serde_json::Value;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ latency buckets (`2^0 .. 2^24` µs, plus overflow).
pub const BUCKETS: usize = 26;

/// Build a JSON object from `(key, value)` pairs (the vendored stack has
/// no `json!` macro).
fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// A log₂-bucketed latency histogram over microseconds.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
}

impl Histogram {
    /// Record one observation in microseconds.
    pub fn observe_us(&self, us: u64) {
        let idx = (64 - u64::leading_zeros(us.max(1)) as usize - 1).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.total_us
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Snapshot of non-empty buckets as `(upper_bound_us, count)` pairs.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        (0..BUCKETS)
            .filter_map(|i| {
                let c = self.buckets[i].load(Ordering::Relaxed);
                (c > 0).then(|| (1u64 << (i + 1), c))
            })
            .collect()
    }
}

/// Telemetry for one endpoint.
#[derive(Debug, Default)]
pub struct EndpointStats {
    /// Requests that completed with a 2xx.
    pub ok: AtomicU64,
    /// Requests answered with a 4xx.
    pub rejected: AtomicU64,
    /// Requests answered with a 5xx.
    pub failed: AtomicU64,
    /// Latency distribution of all completed requests.
    pub latency: Histogram,
}

impl EndpointStats {
    /// Account one completed exchange.
    pub fn record(&self, status: u16, us: u64) {
        let cell = match status {
            200..=299 => &self.ok,
            500..=599 => &self.failed,
            _ => &self.rejected,
        };
        cell.fetch_add(1, Ordering::Relaxed);
        self.latency.observe_us(us);
    }

    fn to_json(&self) -> Value {
        let buckets: Vec<Value> = self
            .latency
            .snapshot()
            .into_iter()
            .map(|(le_us, n)| obj(vec![("le_us", Value::U64(le_us)), ("count", Value::U64(n))]))
            .collect();
        obj(vec![
            ("ok", Value::U64(self.ok.load(Ordering::Relaxed))),
            (
                "rejected",
                Value::U64(self.rejected.load(Ordering::Relaxed)),
            ),
            ("failed", Value::U64(self.failed.load(Ordering::Relaxed))),
            (
                "latency",
                obj(vec![
                    ("count", Value::U64(self.latency.count())),
                    ("mean_us", Value::U64(self.latency.mean_us())),
                    ("buckets", Value::Array(buckets)),
                ]),
            ),
        ])
    }
}

/// Whole-server telemetry, shared by every connection thread.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted since boot.
    pub connections: AtomicU64,
    /// Connections dropped for protocol violations.
    pub protocol_errors: AtomicU64,
    /// Requests turned away by admission control or client budgets.
    pub throttled: AtomicU64,
    /// Handler panics converted to structured 500s.
    pub panics: AtomicU64,
    /// Requests currently being served (the in-flight gauge).
    pub in_flight: AtomicU64,
    /// `POST /eval` telemetry.
    pub eval: EndpointStats,
    /// `POST /suite` telemetry.
    pub suite: EndpointStats,
    /// `GET /healthz` + `GET /statz` telemetry.
    pub control: EndpointStats,
}

impl ServerStats {
    /// Endpoint bucket for a request path.
    pub fn endpoint(&self, path: &str) -> &EndpointStats {
        match path {
            "/eval" => &self.eval,
            "/suite" => &self.suite,
            _ => &self.control,
        }
    }

    /// Render the `/statz` document. `store_stats` is the store's
    /// per-stage hit/miss table serialized by the service layer.
    pub fn statz_json(&self, store_stats: Value) -> String {
        let doc = obj(vec![
            (
                "connections",
                Value::U64(self.connections.load(Ordering::Relaxed)),
            ),
            (
                "protocol_errors",
                Value::U64(self.protocol_errors.load(Ordering::Relaxed)),
            ),
            (
                "throttled",
                Value::U64(self.throttled.load(Ordering::Relaxed)),
            ),
            ("panics", Value::U64(self.panics.load(Ordering::Relaxed))),
            (
                "in_flight",
                Value::U64(self.in_flight.load(Ordering::Relaxed)),
            ),
            (
                "endpoints",
                obj(vec![
                    ("eval", self.eval.to_json()),
                    ("suite", self.suite.to_json()),
                    ("control", self.control.to_json()),
                ]),
            ),
            ("store", store_stats),
        ]);
        doc.to_pretty_string()
    }
}

/// RAII guard for the in-flight gauge.
pub struct InFlight<'a>(&'a ServerStats);

impl<'a> InFlight<'a> {
    /// Bump the gauge; it drops back down with the guard.
    pub fn enter(stats: &'a ServerStats) -> InFlight<'a> {
        stats.in_flight.fetch_add(1, Ordering::Relaxed);
        InFlight(stats)
    }
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2_and_totals_add_up() {
        let h = Histogram::default();
        h.observe_us(0); // clamps to the 1 µs bucket
        h.observe_us(1);
        h.observe_us(3);
        h.observe_us(1000);
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean_us(), (1 + 3 + 1000) / 4);
        let snap = h.snapshot();
        assert!(snap.iter().any(|(le, n)| *le == 2 && *n == 2));
        assert!(snap.iter().any(|(le, n)| *le == 4 && *n == 1));
        assert!(snap.iter().any(|(le, n)| *le == 1024 && *n == 1));
        let total: u64 = snap.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn huge_latencies_land_in_the_overflow_bucket() {
        let h = Histogram::default();
        h.observe_us(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].1, 1);
    }

    #[test]
    fn endpoint_stats_split_by_status_class() {
        let e = EndpointStats::default();
        e.record(200, 10);
        e.record(429, 5);
        e.record(500, 7);
        assert_eq!(e.ok.load(Ordering::Relaxed), 1);
        assert_eq!(e.rejected.load(Ordering::Relaxed), 1);
        assert_eq!(e.failed.load(Ordering::Relaxed), 1);
        assert_eq!(e.latency.count(), 3);
    }

    #[test]
    fn in_flight_gauge_is_raii_and_statz_parses() {
        let s = ServerStats::default();
        {
            let _a = InFlight::enter(&s);
            let _b = InFlight::enter(&s);
            assert_eq!(s.in_flight.load(Ordering::Relaxed), 2);
        }
        assert_eq!(s.in_flight.load(Ordering::Relaxed), 0);
        s.eval.record(200, 42);
        let doc: Value = serde_json::from_str(&s.statz_json(obj(vec![]))).expect("statz parses");
        assert_eq!(doc["in_flight"], 0u64);
        assert_eq!(doc["endpoints"]["eval"]["ok"], 1u64);
    }
}
