//! A minimal, defensive HTTP/1.1 wire layer on blocking I/O.
//!
//! Hand-rolled because the vendored offline stack has no async runtime or
//! HTTP dependency — and because the server's job is to *survive* hostile
//! input, every read is bounded: request-line and header bytes against
//! [`Limits::max_head_bytes`], bodies against [`Limits::max_body_bytes`],
//! and the underlying socket carries read/write timeouts set by the
//! connection handler. Anything over a limit or outside the grammar
//! becomes a structured [`Reject`] (a 4xx with a JSON error body), never
//! a panic.
//!
//! The response side writes either a complete [`Response`] with
//! `Content-Length`, or a [`ChunkedWriter`] stream for `/suite` (one
//! chunk per task result, so clients see progress while later tasks are
//! still evaluating).

use std::io::{BufRead, Write};

/// Parsing bounds for one request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Byte budget for the request line plus all headers.
    pub max_head_bytes: usize,
    /// Byte budget for the body (`Content-Length`).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercased method token (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path plus any query string).
    pub target: String,
    /// Protocol version token (`HTTP/1.1`).
    pub version: String,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The path without any query string.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Did the client ask to drop the connection after this exchange?
    /// (HTTP/1.0 closes by default; HTTP/1.1 keeps alive by default.)
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) => v.eq_ignore_ascii_case("close"),
            None => self.version == "HTTP/1.0",
        }
    }
}

/// A protocol-level rejection: status plus human-readable detail, turned
/// into a JSON error body by [`Response::reject`].
#[derive(Debug, Clone)]
pub struct Reject {
    /// HTTP status to respond with (4xx/5xx).
    pub status: u16,
    /// One-line diagnosis, safe to echo to the client.
    pub detail: String,
}

impl Reject {
    /// Build a rejection.
    pub fn new(status: u16, detail: impl Into<String>) -> Reject {
        Reject {
            status,
            detail: detail.into(),
        }
    }
}

/// Why reading a request stopped.
#[derive(Debug)]
pub enum ReadError {
    /// Clean EOF before the first request byte: the keep-alive peer left.
    Closed,
    /// The socket timed out (idle keep-alive or a stalled sender).
    TimedOut,
    /// Any other transport error.
    Io(std::io::Error),
    /// Protocol violation: answer with the [`Reject`] and close.
    Bad(Reject),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> ReadError {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ReadError::TimedOut,
            _ => ReadError::Io(e),
        }
    }
}

/// Read one line (through `\n`) with a byte cap; returns the line without
/// the trailing `\r\n` and the raw byte count consumed.
fn read_line_bounded<R: BufRead>(
    r: &mut R,
    cap: usize,
    over_cap: &Reject,
) -> Result<(String, usize), ReadError> {
    let mut raw: Vec<u8> = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let n = r.read(&mut byte)?;
        if n == 0 {
            if raw.is_empty() {
                return Err(ReadError::Closed);
            }
            return Err(ReadError::Bad(Reject::new(
                400,
                "connection closed mid-request",
            )));
        }
        if raw.len() >= cap {
            return Err(ReadError::Bad(over_cap.clone()));
        }
        if byte[0] == b'\n' {
            break;
        }
        raw.push(byte[0]);
    }
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    let consumed = raw.len() + 2;
    match String::from_utf8(raw) {
        Ok(s) => Ok((s, consumed)),
        Err(_) => Err(ReadError::Bad(Reject::new(400, "non-UTF-8 request head"))),
    }
}

/// Read and validate one request from `r`.
pub fn read_request<R: BufRead>(r: &mut R, limits: &Limits) -> Result<Request, ReadError> {
    let head_cap = Reject::new(431, "request head exceeds limit");
    let (request_line, mut head_bytes) = read_line_bounded(r, limits.max_head_bytes, &head_cap)?;

    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => {
            (m.to_string(), t.to_string(), v.to_string())
        }
        _ => {
            return Err(ReadError::Bad(Reject::new(
                400,
                format!("malformed request line {request_line:?}"),
            )))
        }
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ReadError::Bad(Reject::new(
            400,
            format!("malformed method {method:?}"),
        )));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ReadError::Bad(Reject::new(
            505,
            format!("unsupported protocol version {version:?}"),
        )));
    }
    if !target.starts_with('/') {
        return Err(ReadError::Bad(Reject::new(
            400,
            format!("unsupported request target {target:?}"),
        )));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let budget = limits.max_head_bytes.saturating_sub(head_bytes);
        let (line, consumed) = read_line_bounded(r, budget, &head_cap)?;
        head_bytes += consumed;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Bad(Reject::new(
                400,
                format!("malformed header line {line:?}"),
            )));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(ReadError::Bad(Reject::new(
                400,
                format!("malformed header name {name:?}"),
            )));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    let mut req = Request {
        method,
        target,
        version,
        headers,
        body: Vec::new(),
    };

    if req.header("transfer-encoding").is_some() {
        return Err(ReadError::Bad(Reject::new(
            501,
            "chunked request bodies are not supported",
        )));
    }
    let content_length = match req.header("content-length") {
        None => 0usize,
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return Err(ReadError::Bad(Reject::new(
                    400,
                    format!("malformed Content-Length {v:?}"),
                )))
            }
        },
    };
    if content_length > limits.max_body_bytes {
        return Err(ReadError::Bad(Reject::new(
            413,
            format!(
                "body of {content_length} bytes exceeds the {}-byte limit",
                limits.max_body_bytes
            ),
        )));
    }
    if content_length > 0 {
        let mut body = vec![0u8; content_length];
        if let Err(e) = r.read_exact(&mut body) {
            return Err(match e.kind() {
                std::io::ErrorKind::UnexpectedEof => {
                    ReadError::Bad(Reject::new(400, "body shorter than Content-Length"))
                }
                _ => ReadError::from(e),
            });
        }
        req.body = body;
    }
    Ok(req)
}

/// Canonical reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Response",
    }
}

/// One complete (non-streamed) response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes (sent with `Content-Length`).
    pub body: Vec<u8>,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Additional `(name, value)` headers.
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            body: body.into_bytes(),
            content_type: "application/json",
            extra_headers: Vec::new(),
        }
    }

    /// A structured JSON error body for a [`Reject`].
    pub fn reject(r: &Reject) -> Response {
        let detail =
            serde_json::to_string(&r.detail).unwrap_or_else(|_| "\"rejected\"".to_string());
        let mut resp = Response::json(
            r.status,
            format!("{{\"error\":{detail},\"status\":{}}}", r.status),
        );
        if r.status == 429 {
            resp.extra_headers
                .push(("Retry-After".to_string(), "1".to_string()));
        }
        resp
    }

    /// Attach one extra header.
    pub fn with_header(mut self, name: &str, value: String) -> Response {
        self.extra_headers.push((name.to_string(), value));
        self
    }
}

/// Write a complete response; `close` controls the `Connection` header.
pub fn write_response<W: Write>(w: &mut W, resp: &Response, close: bool) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    for (name, value) in &resp.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(&resp.body)?;
    w.flush()
}

/// Incremental chunked-transfer response writer.
pub struct ChunkedWriter<'a, W: Write> {
    w: &'a mut W,
    done: bool,
}

impl<'a, W: Write> ChunkedWriter<'a, W> {
    /// Write the response head and switch the connection to chunked
    /// transfer. The connection always closes after a stream: a chunked
    /// response interrupted by a slow-reader disconnect must not be
    /// followed by another exchange on the same socket.
    pub fn begin(
        w: &'a mut W,
        status: u16,
        content_type: &str,
    ) -> std::io::Result<ChunkedWriter<'a, W>> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status,
            reason(status),
        );
        w.write_all(head.as_bytes())?;
        w.flush()?;
        Ok(ChunkedWriter { w, done: false })
    }

    /// Write one chunk (empty input is skipped: a zero-length chunk would
    /// terminate the stream).
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Terminate the stream.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.done = true;
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()), &Limits::default())
    }

    #[test]
    fn parses_a_simple_request() {
        let req =
            parse("POST /eval?x=1 HTTP/1.1\r\nHost: localhost\r\nContent-Length: 4\r\n\r\nbody")
                .expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/eval");
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.header("HOST"), Some("localhost"));
        assert_eq!(req.body, b"body");
        assert!(!req.wants_close());
    }

    #[test]
    fn connection_close_and_http10_defaults() {
        let req = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").expect("parses");
        assert!(req.wants_close());
        let req = parse("GET /healthz HTTP/1.0\r\n\r\n").expect("parses");
        assert!(req.wants_close());
    }

    #[test]
    fn malformed_requests_reject_not_panic() {
        for raw in [
            "not-http\r\n\r\n",
            "GET\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "get /x HTTP/1.1\r\n\r\n",
            "GET x HTTP/1.1\r\n\r\n",
            "GET /x HTTP/2.0\r\n\r\n",
            "GET /x HTTP/1.1\r\nbad header line\r\n\r\n",
            "GET /x HTTP/1.1\r\n: novalue\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
            "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            match parse(raw) {
                Err(ReadError::Bad(r)) => assert!(
                    (400..=505).contains(&r.status),
                    "{raw:?} → status {}",
                    r.status
                ),
                other => panic!("{raw:?} should be rejected, got {other:?}"),
            }
        }
    }

    #[test]
    fn eof_before_any_byte_is_closed_and_mid_request_is_bad() {
        assert!(matches!(parse(""), Err(ReadError::Closed)));
        assert!(matches!(
            parse("GET /x HTT"),
            Err(ReadError::Bad(r)) if r.status == 400
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(ReadError::Bad(r)) if r.status == 400
        ));
    }

    #[test]
    fn oversized_head_and_body_are_rejected() {
        let long_header = format!(
            "GET /x HTTP/1.1\r\nX-Big: {}\r\n\r\n",
            "a".repeat(Limits::default().max_head_bytes)
        );
        assert!(matches!(
            parse(&long_header),
            Err(ReadError::Bad(r)) if r.status == 431
        ));
        let big_body = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            Limits::default().max_body_bytes + 1
        );
        assert!(matches!(
            parse(&big_body),
            Err(ReadError::Bad(r)) if r.status == 413
        ));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            &Response::json(200, "{\"ok\":true}".into()),
            false,
        )
        .expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn reject_bodies_are_json_with_retry_after_on_429() {
        let resp = Response::reject(&Reject::new(429, "slow down \"now\""));
        assert_eq!(resp.status, 429);
        let body = String::from_utf8(resp.body.clone()).expect("utf8");
        let doc: serde_json::Value = serde_json::from_str(&body).expect("valid JSON");
        assert_eq!(doc["status"], 429u64);
        assert!(resp.extra_headers.iter().any(|(k, _)| k == "Retry-After"));
    }

    #[test]
    fn chunked_stream_format() {
        let mut out = Vec::new();
        {
            let mut cw = ChunkedWriter::begin(&mut out, 200, "application/json").expect("begin");
            cw.chunk(b"{\"a\":1}\n").expect("chunk");
            cw.chunk(b"").expect("empty chunk skipped");
            cw.chunk(b"{\"b\":2}\n").expect("chunk");
            cw.finish().expect("finish");
        }
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.contains("8\r\n{\"a\":1}\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }
}
