//! A small blocking HTTP/1.1 client for the load generator, the smoke
//! harness, and the integration tests.
//!
//! Speaks exactly the subset the server emits: `Content-Length` bodies
//! and chunked transfer (decoded transparently into the response body).
//! [`Conn`] holds one keep-alive connection for multiple exchanges;
//! [`once`] is the connect-request-close convenience.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Body bytes (chunked transfer already decoded).
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First value of a header, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn bad(detail: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, detail.into())
}

/// One keep-alive client connection.
pub struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    /// Connect to `addr` with `timeout` applied to connect/read/write.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Conn> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let read_half = stream.try_clone()?;
        Ok(Conn {
            reader: BufReader::new(read_half),
            writer: stream,
        })
    }

    /// Perform one exchange on this connection.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<HttpResponse> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: squ-serve\r\n");
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if !body.is_empty() || method == "POST" {
            head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        read_response(&mut self.reader)
    }
}

/// Connect, perform one exchange, and close.
pub fn once(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    let mut conn = Conn::connect(addr, timeout)?;
    conn.request(method, path, headers, body)
}

fn read_line(reader: &mut BufReader<TcpStream>) -> std::io::Result<String> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed",
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

pub(crate) fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<HttpResponse> {
    let status_line = read_line(reader)?;
    let mut parts = status_line.splitn(3, ' ');
    let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
        return Err(bad(format!("malformed status line {status_line:?}")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("unexpected protocol {version:?}")));
    }
    let status: u16 = code
        .parse()
        .map_err(|_| bad(format!("malformed status code {code:?}")))?;

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad(format!("malformed response header {line:?}")));
        };
        headers.push((name.to_string(), value.trim().to_string()));
    }

    let header = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    };

    let body = if header("transfer-encoding")
        .map(|v| v.eq_ignore_ascii_case("chunked"))
        .unwrap_or(false)
    {
        read_chunked(reader)?
    } else {
        let len: usize = header("content-length")
            .unwrap_or("0")
            .parse()
            .map_err(|_| bad("malformed Content-Length"))?;
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body)?;
        body
    };
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

fn read_chunked(reader: &mut BufReader<TcpStream>) -> std::io::Result<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        let size_line = read_line(reader)?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| bad(format!("malformed chunk size {size_line:?}")))?;
        if size == 0 {
            // trailing CRLF after the last chunk (no trailers supported)
            let _ = read_line(reader);
            return Ok(body);
        }
        let mut chunk = vec![0u8; size];
        reader.read_exact(&mut chunk)?;
        body.extend_from_slice(&chunk);
        let sep = read_line(reader)?;
        if !sep.is_empty() {
            return Err(bad("missing CRLF after chunk"));
        }
    }
}
