//! The HTTP server: accept loop, routing, admission control, and
//! backpressure.
//!
//! Thread-per-connection on [`std::net::TcpListener`], in the same
//! spirit as the slot-indexed worker pool in `squ::par`: plain OS
//! threads, shared state behind atomics, no async runtime (the vendored
//! offline stack has none). Three layers keep an overloaded or hostile
//! client from taking the process down:
//!
//! 1. **Connection cap** — beyond [`ServerConfig::max_connections`]
//!    concurrent connections, new sockets get an immediate 503 and
//!    close; no thread is spawned for them.
//! 2. **Admission control** — `/eval` and `/suite` take a permit from a
//!    bounded in-flight gate; when the gate is saturated the request is
//!    a 429 with `Retry-After`. Per-client token buckets (keyed on the
//!    `x-squ-client` header) throttle chatty clients before they reach
//!    the gate. `/healthz` and `/statz` bypass both, so the server stays
//!    observable under load.
//! 3. **Write-side backpressure** — `/suite` streams through a bounded
//!    queue; a reader that stops draining blocks the writer into the
//!    socket's write timeout, the connection drops, and the producer
//!    unblocks when the queue closes. Memory stays bounded end to end.
//!
//! Handler panics are caught per request (`catch_unwind`) and converted
//! to structured 500s — the soak tests assert the count stays zero, but
//! a bug must cost one response, not the process.

use crate::http::{
    read_request, write_response, ChunkedWriter, Limits, ReadError, Reject, Request, Response,
};
use crate::service::{CacheStatus, EvalKey, EvalService, EvalSpec, SuiteSpec};
use crate::stats::{InFlight, ServerStats};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Root directory of the shared artifact store.
    pub store_root: std::path::PathBuf,
    /// Concurrent `/eval` + `/suite` requests admitted at once.
    pub max_in_flight: usize,
    /// Concurrent connections before new sockets get an immediate 503.
    pub max_connections: usize,
    /// Token-bucket burst capacity per client.
    pub bucket_capacity: f64,
    /// Token-bucket refill rate per client, tokens per second.
    pub bucket_refill_per_s: f64,
    /// Distinct clients tracked before the stalest bucket is evicted.
    pub max_clients: usize,
    /// Request parsing bounds.
    pub limits: Limits,
    /// Socket read timeout (also the keep-alive idle timeout), ms.
    pub read_timeout_ms: u64,
    /// Socket write timeout — how long a slow reader may stall a write
    /// before the connection is dropped, ms.
    pub write_timeout_ms: u64,
    /// Bounded `/suite` result queue depth (producer blocks beyond it).
    pub suite_queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            store_root: std::path::PathBuf::from("target/repro/store"),
            max_in_flight: 8,
            max_connections: 64,
            bucket_capacity: 64.0,
            bucket_refill_per_s: 32.0,
            max_clients: 1024,
            limits: Limits::default(),
            read_timeout_ms: 10_000,
            write_timeout_ms: 10_000,
            suite_queue_depth: 16,
        }
    }
}

/// Bounded in-flight permit gate.
pub struct AdmissionGate {
    in_use: AtomicUsize,
    cap: usize,
}

impl AdmissionGate {
    /// A gate admitting up to `cap` concurrent holders.
    pub fn new(cap: usize) -> AdmissionGate {
        AdmissionGate {
            in_use: AtomicUsize::new(0),
            cap,
        }
    }

    /// Try to take a permit; `None` when saturated.
    pub fn try_acquire(&self) -> Option<Permit<'_>> {
        let mut cur = self.in_use.load(Ordering::Relaxed);
        loop {
            if cur >= self.cap {
                return None;
            }
            match self.in_use.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(Permit(self)),
                Err(seen) => cur = seen,
            }
        }
    }
}

/// RAII admission permit.
pub struct Permit<'a>(&'a AdmissionGate);

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.0.in_use.fetch_sub(1, Ordering::AcqRel);
    }
}

struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Per-client token buckets with a bounded client map.
pub struct ClientBuckets {
    map: Mutex<std::collections::BTreeMap<String, Bucket>>,
    capacity: f64,
    refill_per_s: f64,
    max_clients: usize,
}

impl ClientBuckets {
    /// Buckets of `capacity` tokens refilling at `refill_per_s`.
    pub fn new(capacity: f64, refill_per_s: f64, max_clients: usize) -> ClientBuckets {
        ClientBuckets {
            map: Mutex::new(std::collections::BTreeMap::new()),
            capacity,
            refill_per_s,
            max_clients: max_clients.max(1),
        }
    }

    /// Spend one token for `client` at time `now`; on refusal returns
    /// the suggested `Retry-After` in whole seconds.
    pub fn admit(&self, client: &str, now: Instant) -> Result<(), u64> {
        let mut map = self.map.lock().expect("bucket map lock"); // lint:allow: poisoned only if a handler already panicked
        if !map.contains_key(client) && map.len() >= self.max_clients {
            // bound the map: evict the client that was seen longest ago
            let stalest = map
                .iter()
                .min_by_key(|(_, b)| b.last)
                .map(|(k, _)| k.clone());
            if let Some(k) = stalest {
                map.remove(&k);
            }
        }
        let bucket = map.entry(client.to_string()).or_insert(Bucket {
            tokens: self.capacity,
            last: now,
        });
        let elapsed = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.refill_per_s).min(self.capacity);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let wait = if self.refill_per_s > 0.0 {
                ((1.0 - bucket.tokens) / self.refill_per_s).min(3600.0)
            } else {
                3600.0
            };
            Err((wait.ceil() as u64).max(1))
        }
    }
}

struct Shared {
    service: EvalService,
    stats: ServerStats,
    config: ServerConfig,
    gate: AdmissionGate,
    buckets: ClientBuckets,
    connections: AtomicUsize,
}

/// The bound server. [`Server::run`] consumes it and serves until the
/// listener fails (tests and the smoke harness kill the process).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: &str, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let shared = Arc::new(Shared {
            service: EvalService::new(config.store_root.clone()),
            stats: ServerStats::default(),
            gate: AdmissionGate::new(config.max_in_flight),
            buckets: ClientBuckets::new(
                config.bucket_capacity,
                config.bucket_refill_per_s,
                config.max_clients,
            ),
            config,
            connections: AtomicUsize::new(0),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (the real port when bound with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Server telemetry (shared with every connection thread).
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Serve until the listener errors. Each accepted connection gets
    /// its own thread; connections beyond the cap get an immediate 503.
    pub fn run(self) -> std::io::Result<()> {
        for conn in self.listener.incoming() {
            let stream = match conn {
                Ok(s) => s,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => continue,
                Err(e) => return Err(e),
            };
            let shared = Arc::clone(&self.shared);
            shared.stats.connections.fetch_add(1, Ordering::Relaxed);
            if shared.connections.load(Ordering::Relaxed) >= shared.config.max_connections {
                shared.stats.throttled.fetch_add(1, Ordering::Relaxed);
                let mut stream = stream;
                let _ = stream.set_write_timeout(Some(Duration::from_millis(1000)));
                let _ = write_response(
                    &mut stream,
                    &Response::reject(&Reject::new(503, "connection limit reached")),
                    true,
                );
                continue;
            }
            shared.connections.fetch_add(1, Ordering::AcqRel);
            std::thread::spawn(move || {
                handle_connection(&shared, stream);
                shared.connections.fetch_sub(1, Ordering::AcqRel);
            });
        }
        Ok(())
    }

    /// Bind and serve on a background thread; returns the bound address.
    /// Convenience for tests and the smoke harness.
    pub fn spawn(addr: &str, config: ServerConfig) -> std::io::Result<SocketAddr> {
        let server = Server::bind(addr, config)?;
        let bound = server.local_addr()?;
        std::thread::spawn(move || {
            let _ = server.run();
        });
        Ok(bound)
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let cfg = &shared.config;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(cfg.read_timeout_ms)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(cfg.write_timeout_ms)));
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match read_request(&mut reader, &cfg.limits) {
            Ok(req) => {
                let close = dispatch(shared, &req, &mut writer);
                if close || req.wants_close() {
                    break;
                }
            }
            Err(ReadError::Closed) | Err(ReadError::TimedOut) | Err(ReadError::Io(_)) => break,
            Err(ReadError::Bad(reject)) => {
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                shared.stats.endpoint("/").record(reject.status, 0);
                let _ = write_response(&mut writer, &Response::reject(&reject), true);
                break;
            }
        }
    }
}

/// Route one request and write its response; returns whether the
/// connection must close afterwards.
fn dispatch(shared: &Shared, req: &Request, writer: &mut TcpStream) -> bool {
    let start = Instant::now();
    let _gauge = InFlight::enter(&shared.stats);
    let path = req.path().to_string();
    let (status, close) = match (req.method.as_str(), path.as_str()) {
        ("GET", "/healthz") => {
            let resp = Response::json(200, "{\"ok\":true}".to_string());
            write_and_status(writer, &resp)
        }
        ("GET", "/statz") => {
            let body = shared.stats.statz_json(shared.service.store_stats_json());
            write_and_status(writer, &Response::json(200, body))
        }
        ("POST", "/eval") => match admit(shared, req) {
            Err(resp) => write_and_status(writer, &resp),
            Ok(_permit) => {
                let resp = eval_response(shared, req);
                write_and_status(writer, &resp)
            }
        },
        ("POST", "/suite") => match admit(shared, req) {
            Err(resp) => write_and_status(writer, &resp),
            Ok(_permit) => (stream_suite(shared, req, writer), true),
        },
        (_, "/healthz" | "/statz" | "/eval" | "/suite") => write_and_status(
            writer,
            &Response::reject(&Reject::new(
                405,
                format!("method {} not allowed on {path}", req.method),
            )),
        ),
        _ => write_and_status(
            writer,
            &Response::reject(&Reject::new(404, format!("no route for {path}"))),
        ),
    };
    let us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    shared.stats.endpoint(&path).record(status, us);
    close
}

/// Write a complete response honoring nothing but its own status;
/// returns `(status, close)` where close mirrors a write failure (a dead
/// peer means the connection is done regardless of keep-alive).
fn write_and_status(writer: &mut TcpStream, resp: &Response) -> (u16, bool) {
    match write_response(writer, resp, false) {
        Ok(()) => (resp.status, false),
        Err(_) => (resp.status, true),
    }
}

/// Admission control for the evaluation endpoints: per-client token
/// bucket first, then the bounded in-flight gate.
fn admit<'a>(shared: &'a Shared, req: &Request) -> Result<Permit<'a>, Response> {
    let client = req.header("x-squ-client").unwrap_or("anon");
    if let Err(retry_after) = shared.buckets.admit(client, Instant::now()) {
        shared.stats.throttled.fetch_add(1, Ordering::Relaxed);
        let mut resp = Response::reject(&Reject::new(
            429,
            format!("client {client:?} exceeded its request budget"),
        ));
        resp.extra_headers.retain(|(k, _)| k != "Retry-After");
        resp.extra_headers
            .push(("Retry-After".to_string(), retry_after.to_string()));
        return Err(resp);
    }
    match shared.gate.try_acquire() {
        Some(permit) => Ok(permit),
        None => {
            shared.stats.throttled.fetch_add(1, Ordering::Relaxed);
            Err(Response::reject(&Reject::new(
                429,
                "server is at its in-flight request limit",
            )))
        }
    }
}

fn parse_body<T: serde::Deserialize>(req: &Request) -> Result<T, Reject> {
    let text = std::str::from_utf8(&req.body).map_err(|_| Reject::new(400, "body is not UTF-8"))?;
    serde_json::from_str::<T>(text)
        .map_err(|e| Reject::new(400, format!("malformed request body: {e}")))
}

/// `POST /eval`: resolve, evaluate (panic-safe), tag cache status.
fn eval_response(shared: &Shared, req: &Request) -> Response {
    let key = match parse_body::<EvalSpec>(req).and_then(|spec| shared.service.resolve(&spec)) {
        Ok(key) => key,
        Err(reject) => return Response::reject(&reject),
    };
    match eval_guarded(shared, &key) {
        Ok((body, cache)) => {
            Response::json(200, body).with_header("X-Squ-Cache", cache.header_value().to_string())
        }
        Err(resp) => resp,
    }
}

/// Run one evaluation with panics converted to a structured 500.
fn eval_guarded(shared: &Shared, key: &EvalKey) -> Result<(String, CacheStatus), Response> {
    match catch_unwind(AssertUnwindSafe(|| shared.service.eval(key))) {
        Ok(out) => Ok(out),
        Err(_) => {
            shared.stats.panics.fetch_add(1, Ordering::Relaxed);
            Err(Response::reject(&Reject::new(
                500,
                "evaluation panicked; see server logs",
            )))
        }
    }
}

/// `POST /suite`: expand the spec and stream one NDJSON line per
/// evaluation through a bounded queue. The producer thread blocks when
/// the queue is full; a reader that stops draining trips the socket
/// write timeout, the writer drops the receiver, and the producer's next
/// send fails — bounded memory with no watchdog. Returns the status to
/// account (200 once the stream began).
fn stream_suite(shared: &Shared, req: &Request, writer: &mut TcpStream) -> u16 {
    let keys =
        match parse_body::<SuiteSpec>(req).and_then(|spec| shared.service.expand_suite(&spec)) {
            Ok(keys) => keys,
            Err(reject) => {
                let resp = Response::reject(&reject);
                let _ = write_response(writer, &resp, true);
                return resp.status;
            }
        };
    let (tx, rx) = mpsc::sync_channel::<String>(shared.config.suite_queue_depth.max(1));
    std::thread::scope(|scope| {
        scope.spawn(move || {
            for key in &keys {
                let line = match eval_guarded(shared, key) {
                    Ok((body, _)) => body,
                    Err(resp) => String::from_utf8_lossy(&resp.body).into_owned(),
                };
                if tx.send(line).is_err() {
                    break; // writer hung up (slow reader disconnected)
                }
            }
        });
        let mut cw = match ChunkedWriter::begin(writer, 200, "application/x-ndjson") {
            Ok(cw) => cw,
            Err(_) => return 200,
        };
        for line in rx {
            let mut chunk = line.into_bytes();
            chunk.push(b'\n');
            if cw.chunk(&chunk).is_err() {
                return 200; // drops rx; producer unblocks and exits
            }
        }
        let _ = cw.finish();
        200
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_gate_is_bounded_and_releases_on_drop() {
        let gate = AdmissionGate::new(2);
        let a = gate.try_acquire().expect("permit 1");
        let _b = gate.try_acquire().expect("permit 2");
        assert!(gate.try_acquire().is_none(), "gate saturated at cap");
        drop(a);
        assert!(gate.try_acquire().is_some(), "released permit readmits");
        assert!(AdmissionGate::new(0).try_acquire().is_none());
    }

    #[test]
    fn token_bucket_throttles_and_refills() {
        let buckets = ClientBuckets::new(2.0, 1.0, 8);
        let t0 = Instant::now();
        assert!(buckets.admit("a", t0).is_ok());
        assert!(buckets.admit("a", t0).is_ok());
        let retry = buckets.admit("a", t0).expect_err("budget spent");
        assert!(retry >= 1);
        // a different client has its own bucket
        assert!(buckets.admit("b", t0).is_ok());
        // one refill-second later the client gets one token back
        assert!(buckets.admit("a", t0 + Duration::from_secs(1)).is_ok());
        assert!(buckets.admit("a", t0 + Duration::from_secs(1)).is_err());
    }

    #[test]
    fn zero_refill_buckets_suggest_a_bounded_retry() {
        let buckets = ClientBuckets::new(1.0, 0.0, 8);
        let t0 = Instant::now();
        assert!(buckets.admit("a", t0).is_ok());
        let retry = buckets.admit("a", t0).expect_err("no refill");
        assert!(retry <= 3600, "retry-after stays bounded, got {retry}");
    }

    #[test]
    fn bucket_map_stays_bounded_by_evicting_the_stalest_client() {
        let buckets = ClientBuckets::new(8.0, 1.0, 2);
        let t0 = Instant::now();
        assert!(buckets.admit("old", t0).is_ok());
        assert!(buckets.admit("mid", t0 + Duration::from_millis(10)).is_ok());
        assert!(buckets.admit("new", t0 + Duration::from_millis(20)).is_ok());
        let map = buckets.map.lock().expect("bucket map");
        assert_eq!(map.len(), 2);
        assert!(!map.contains_key("old"), "stalest client evicted");
        assert!(map.contains_key("new"));
    }
}
