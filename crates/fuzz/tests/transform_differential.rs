//! Differential suite over the transform catalog: every query produced by
//! every transform (both the equivalence-preserving and the
//! equivalence-breaking rewrites) must execute identically on the compiled
//! engine and the naive reference interpreter.
//!
//! This is the compiled engine's broadest correctness net: the transforms
//! deliberately produce shapes the grammar generator alone underweights
//! (pushed-down predicates, rewritten joins, added subqueries, DISTINCT /
//! LIMIT toggles), so agreement here pins the compiler across the whole
//! rewrite surface, not just the generator's distribution.

use rand::rngs::StdRng;
use rand::SeedableRng;
use squ_engine::{compile_query, reference_query, witness_batch_cached, ExecError};
use squ_fuzz::{fallback_query, generate_query, generate_schema, mix, GenSchema, SCHEMA_POOL};
use squ_parser::ast::{Query, Statement};
use squ_parser::{parse_query, print_query};
use squ_schema::analyze;
use squ_tasks::transform_catalog;
use std::collections::BTreeMap;

/// Cases to replay; enough for every catalog transform to apply at least
/// once under this seed.
const CASES: u64 = 64;
const SEED: u64 = 0x7_E57;

fn clean(q: &Query, gs: &GenSchema) -> bool {
    analyze(&Statement::Query(q.clone()), &gs.schema).is_empty()
}

/// The fuzz driver's subject-query derivation (same retry + fallback
/// policy; `squ_fuzz::oracle` keeps its version crate-private).
fn subject_query(rng: &mut StdRng, gs: &GenSchema) -> Query {
    for _ in 0..50 {
        let q = generate_query(rng, gs);
        let sql = print_query(&q);
        let Ok(parsed) = parse_query(&sql) else {
            continue;
        };
        if clean(&parsed, gs) {
            return parsed;
        }
    }
    fallback_query(gs)
}

#[test]
fn compiled_engine_agrees_with_reference_on_every_transform_output() {
    let catalog = transform_catalog();
    let mut applied: BTreeMap<&str, u64> = BTreeMap::new();
    let mut compiled_runs = 0u64;
    let mut disagreements: Vec<String> = Vec::new();

    for index in 0..CASES {
        let slot = index % SCHEMA_POOL;
        let gs = generate_schema(SEED, slot);
        let mut rng = StdRng::seed_from_u64(mix(SEED, 0xCA5E_0000 ^ index));
        let query = subject_query(&mut rng, &gs);
        let witnesses = witness_batch_cached(&gs.schema, mix(SEED, 0xB17C_0000 ^ slot));

        for (ti, tinfo) in catalog.iter().enumerate() {
            let tseed = mix(SEED, mix(index, 0x7A0F_0000 ^ ti as u64));
            let mut trng = StdRng::seed_from_u64(tseed);
            let Some((q1, q2)) = tinfo.apply(&query, &mut trng) else {
                continue;
            };
            if !clean(&q1, &gs) || !clean(&q2, &gs) {
                continue;
            }
            *applied.entry(tinfo.label()).or_default() += 1;

            for q in [&q1, &q2] {
                for db in witnesses.iter() {
                    // only the compiled path is under test here: when the
                    // compiler rejects the shape, the hybrid engine runs
                    // the interpreter, which the main fuzz oracles cover
                    let Some(cq) = compile_query(q, db) else {
                        continue;
                    };
                    compiled_runs += 1;
                    let fast = cq.execute(db).map(|(r, _)| r);
                    let slow = reference_query(q, db);
                    let verdict = match (fast, slow) {
                        (Ok(a), Ok(b)) => (a.columns.len() == b.columns.len()
                            && a.canonical_digest() == b.canonical_digest())
                        .then_some(())
                        .ok_or_else(|| {
                            format!(
                                "{} row(s) vs reference {} row(s)",
                                a.rows.len(),
                                b.rows.len()
                            )
                        }),
                        (Err(_), Err(_)) => Ok(()),
                        (Ok(_), Err(ExecError::ResourceLimit))
                        | (Err(ExecError::ResourceLimit), Ok(_)) => Ok(()),
                        (Ok(_), Err(e)) => Err(format!("reference failed where compiled ran: {e}")),
                        (Err(e), Ok(_)) => Err(format!("compiled failed where reference ran: {e}")),
                    };
                    if let Err(detail) = verdict {
                        disagreements.push(format!(
                            "case {index} transform `{}`: {detail}\n  sql: {}",
                            tinfo.label(),
                            print_query(q)
                        ));
                    }
                }
            }
        }
    }

    assert!(
        disagreements.is_empty(),
        "compiled engine diverged from the reference interpreter:\n{}",
        disagreements.join("\n")
    );
    assert_eq!(
        applied.len(),
        catalog.len(),
        "every catalog transform must apply at least once under this seed; \
         applied: {applied:?}"
    );
    assert!(
        compiled_runs > 100,
        "the compiler covered too little of the transformed stream: {compiled_runs} runs"
    );
}
