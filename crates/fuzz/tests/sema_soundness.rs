//! Property tests: `squ-sema` verdict soundness by differential execution.
//!
//! For arbitrary fuzz-generated star-schema queries, every proof the
//! semantic analyzer emits is re-checked against the reference interpreter
//! on the case's cached witness databases:
//!
//! - a provably-empty query must return zero rows on every witness;
//! - a proven-redundant WHERE conjunct must be droppable without changing
//!   any witness result;
//! - a proven `max_rows` bound must dominate every executed row count;
//! - the canonicalizer must preserve reference results exactly;
//! - pair certificates must never contradict execution (Equivalent pairs
//!   cannot diverge) or construction (preserving transforms cannot be
//!   statically convicted).
//!
//! Also pins the analyzer's id-column mirror to the witness generator's.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use squ_engine::{reference_query, witness_batch_cached};
use squ_fuzz::{generate_query, generate_schema, mix, GenSchema, SCHEMA_POOL};
use squ_parser::ast::{Query, SetExpr, Statement};
use squ_parser::{parse_query, print_query};
use squ_sema::{analyze_query, canonicalize, certify_pair, Certificate};
use squ_tasks::{transform_catalog, TransformKind};

/// A binder-clean generated subject query over its generated schema, or
/// `None` when the retry budget never produced one (rare; skip the case).
fn subject(seed: u64) -> Option<(GenSchema, Query)> {
    let gs = generate_schema(seed, seed % SCHEMA_POOL);
    let mut rng = StdRng::seed_from_u64(mix(seed, 0x5EAA_0001));
    for _ in 0..20 {
        let q = generate_query(&mut rng, &gs);
        let sql = print_query(&q);
        let Ok(parsed) = parse_query(&sql) else {
            continue;
        };
        if squ_schema::analyze(&Statement::Query(parsed.clone()), &gs.schema).is_empty() {
            return Some((gs, parsed));
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Emptiness, redundancy, and cardinality proofs hold under execution.
    #[test]
    fn analysis_claims_hold_under_execution(seed in 0u64..100_000) {
        let Some((gs, q)) = subject(seed) else { return Ok(()) };
        let witnesses = witness_batch_cached(&gs.schema, mix(seed, 0xB17C_0002));
        let analysis = analyze_query(&q, &gs.schema);
        for db in witnesses.iter() {
            let Ok(r) = reference_query(&q, db) else { continue };
            if analysis.provably_empty {
                prop_assert!(
                    r.rows.is_empty(),
                    "sema proved empty, witness returned {} row(s): {}",
                    r.rows.len(),
                    print_query(&q)
                );
            }
            if let Some(bound) = analysis.max_rows {
                prop_assert!(
                    r.rows.len() as u64 <= bound,
                    "sema bound {bound} violated by {} row(s): {}",
                    r.rows.len(),
                    print_query(&q)
                );
            }
        }
        if let SetExpr::Select(s) = &q.body {
            if let Some(w) = &s.selection {
                for &ci in &analysis.redundant_conjuncts {
                    let mut dropped = q.clone();
                    if let SetExpr::Select(ds) = &mut dropped.body {
                        ds.selection = squ_sema::analyze::drop_conjunct_at(w, ci);
                    }
                    for db in witnesses.iter() {
                        let (Ok(a), Ok(b)) =
                            (reference_query(&q, db), reference_query(&dropped, db))
                        else {
                            continue;
                        };
                        prop_assert!(
                            a.result_equal(&b),
                            "dropping proven-redundant conjunct #{ci} changed results: {}",
                            print_query(&q)
                        );
                    }
                }
            }
        }
    }

    /// The canonicalizer is sound: canonical forms execute to the same
    /// results as the original on every witness.
    #[test]
    fn canonicalization_preserves_reference_results(seed in 0u64..100_000) {
        let Some((gs, q)) = subject(seed) else { return Ok(()) };
        let witnesses = witness_batch_cached(&gs.schema, mix(seed, 0xB17C_0003));
        let canon = canonicalize(&q);
        for db in witnesses.iter() {
            let (Ok(a), Ok(b)) = (reference_query(&q, db), reference_query(&canon, db)) else {
                continue;
            };
            prop_assert!(
                a.result_equal(&b),
                "canonicalization changed results:\n  original: {}\n  rows {} vs {}",
                print_query(&q),
                a.rows.len(),
                b.rows.len()
            );
        }
    }

    /// Pair certificates never contradict execution or the transform's own
    /// construction, across the whole 18-transform catalog.
    #[test]
    fn certificates_never_contradict_execution(seed in 0u64..100_000) {
        let Some((gs, q)) = subject(seed) else { return Ok(()) };
        let witnesses = witness_batch_cached(&gs.schema, mix(seed, 0xB17C_0004));
        for (ti, tinfo) in transform_catalog().iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(mix(seed, 0x7A0F_0000 ^ ti as u64));
            let Some((q1, q2)) = tinfo.apply(&q, &mut rng) else { continue };
            let c1 = Statement::Query(q1.clone());
            let c2 = Statement::Query(q2.clone());
            if !squ_schema::analyze(&c1, &gs.schema).is_empty()
                || !squ_schema::analyze(&c2, &gs.schema).is_empty()
            {
                continue;
            }
            let cert = certify_pair(&q1, &q2, &gs.schema);
            if tinfo.kind() == TransformKind::Preserving {
                prop_assert!(
                    !matches!(cert, Certificate::Inequivalent(_)),
                    "preserving `{}` statically convicted ({:?}):\n  {}\n  {}",
                    tinfo.label(),
                    cert,
                    print_query(&q1),
                    print_query(&q2)
                );
            }
            if matches!(cert, Certificate::Equivalent(_)) {
                for db in witnesses.iter() {
                    let (Ok(a), Ok(b)) =
                        (reference_query(&q1, db), reference_query(&q2, db))
                    else {
                        continue;
                    };
                    prop_assert!(
                        a.result_equal(&b),
                        "certified-equivalent pair diverged under `{}`:\n  {}\n  {}",
                        tinfo.label(),
                        print_query(&q1),
                        print_query(&q2)
                    );
                }
            }
        }
    }

    /// The analyzer's id-column heuristic is byte-for-byte the witness
    /// generator's: the NOT NULL assumption rests on this equality.
    #[test]
    fn id_column_mirror_matches_witness_generator(name in "[a-zA-Z_]{0,12}") {
        prop_assert_eq!(
            squ_sema::analyze::is_id_column(&name),
            squ_engine::is_id_column(&name),
            "is_id_column mirror diverged on {:?}",
            name
        );
    }
}

#[test]
fn id_column_mirror_fixed_points() {
    for (name, expect) in [
        ("id", true),
        ("ID", true),
        ("specobjid", true),
        ("orderid", true),
        ("idx", false),
        ("identity", false),
        ("value", false),
        ("", false),
    ] {
        assert_eq!(squ_sema::analyze::is_id_column(name), expect, "{name}");
        assert_eq!(squ_engine::is_id_column(name), expect, "{name}");
    }
}
