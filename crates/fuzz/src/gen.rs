//! Seedable generation of random schemas and schema-valid queries.
//!
//! The generator is grammar-driven: it builds ASTs directly (never strings)
//! over a small randomly generated star schema, then prints them with the
//! canonical printer. Every emitted query is checked against the binder
//! ([`squ_schema::analyze`]) before the oracles run; the grammar is tuned
//! so that check almost always passes on the first attempt, with a trivial
//! fallback query guaranteeing progress.
//!
//! Shapes covered: single-table selects, explicit `JOIN`/`LEFT JOIN` and
//! implicit comma joins over foreign keys, projections with arithmetic and
//! `CASE` expressions, `WHERE` trees over comparisons / `BETWEEN` / `IN` /
//! `IS NULL` / `LIKE` with `AND`/`OR`/`NOT`, `IN`-subqueries and scalar
//! aggregate subqueries, `GROUP BY` + aggregates + `HAVING`, `DISTINCT`,
//! `ORDER BY`/`LIMIT`, set operations, CTEs, and derived tables.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use squ_engine::TEXT_VOCAB;
use squ_parser::ast::*;
use squ_parser::CompareOp;
use squ_schema::{Schema, SqlType, Table};

/// SplitMix64 — the standard way to derive independent sub-seeds from a
/// master seed without correlating the resulting ChaCha streams.
pub fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How many distinct schemas one run cycles through. Small enough that the
/// witness-batch cache amortizes across cases, large enough for variety.
pub const SCHEMA_POOL: u64 = 8;

/// One generated column, with the type information the grammar needs.
#[derive(Debug, Clone)]
pub struct GenColumn {
    /// Column name (unique within its table).
    pub name: String,
    /// Declared type.
    pub ty: SqlType,
    /// Is this an id-like column (witness domain `1..=12`, never NULL)?
    pub id_like: bool,
}

/// One generated table.
#[derive(Debug, Clone)]
pub struct GenTable {
    /// Table name (`t0`, `t1`, …).
    pub name: String,
    /// Columns; the first is always the primary key `t{i}id`, and every
    /// table after the first carries a `t0id` foreign key.
    pub columns: Vec<GenColumn>,
}

/// A generated schema plus the catalog form the binder and witnesses use.
pub struct GenSchema {
    /// Catalog for the binder and witness generator.
    pub schema: Schema,
    /// The generator's own view of the same tables.
    pub tables: Vec<GenTable>,
}

/// Generate the schema for one pool slot of a run.
pub fn generate_schema(seed: u64, slot: u64) -> GenSchema {
    let mut rng = StdRng::seed_from_u64(mix(seed, 0x5CE3_A000 ^ slot));
    let n_tables = rng.gen_range(2..=3usize);
    let mut tables = Vec::with_capacity(n_tables);
    for ti in 0..n_tables {
        let mut columns = vec![GenColumn {
            name: format!("t{ti}id"),
            ty: SqlType::Int,
            id_like: true,
        }];
        if ti > 0 {
            columns.push(GenColumn {
                name: format!("fk{ti}t0id"),
                ty: SqlType::Int,
                id_like: true, // name ends in "id": witness domain 1..=12
            });
        }
        let extras = rng.gen_range(2..=4usize);
        for ci in 0..extras {
            let ty = match rng.gen_range(0..5u32) {
                0 | 1 => SqlType::Int,
                2 => SqlType::Float,
                3 => SqlType::Text,
                _ => SqlType::Bool,
            };
            let prefix = match ty {
                SqlType::Int => "v",
                SqlType::Float => "f",
                SqlType::Text => "s",
                SqlType::Bool => "b",
            };
            columns.push(GenColumn {
                name: format!("{prefix}{ti}x{ci}"),
                ty,
                id_like: false,
            });
        }
        tables.push(GenTable {
            name: format!("t{ti}"),
            columns,
        });
    }

    let mut schema = Schema::new(&format!("fuzz{slot}"));
    for t in &tables {
        let cols: Vec<(&str, SqlType)> =
            t.columns.iter().map(|c| (c.name.as_str(), c.ty)).collect();
        schema = schema.with_table(Table::new(&t.name, 40, &cols));
    }
    GenSchema { schema, tables }
}

/// A table in scope: its binding name (alias or table name) and columns.
#[derive(Clone)]
struct InScope {
    binding: String,
    columns: Vec<GenColumn>,
}

/// Generate one query AST over `gs`. The result is *intended* to be
/// binder-clean; callers still gate it through [`squ_schema::analyze`].
pub fn generate_query(rng: &mut StdRng, gs: &GenSchema) -> Query {
    match rng.gen_range(0..10u32) {
        0 => gen_set_op(rng, gs),
        1 => gen_cte(rng, gs),
        2 => gen_derived(rng, gs),
        _ => gen_select_query(rng, gs, true),
    }
}

/// The always-valid fallback used when the grammar's attempts keep
/// tripping the binder (never observed in practice, but termination must
/// not depend on that).
pub fn fallback_query(gs: &GenSchema) -> Query {
    let t = &gs.tables[0];
    let mut s = Select::new();
    s.items = vec![SelectItem::column(None, &t.columns[0].name)];
    s.from = vec![TableRef::Named {
        name: t.name.clone(),
        alias: None,
    }];
    Query::from_select(s)
}

fn gen_select_query(rng: &mut StdRng, gs: &GenSchema, allow_subquery: bool) -> Query {
    let (from, scopes) = gen_from(rng, gs);
    let multi = scopes.len() > 1;

    let grouped = rng.gen_bool(0.22);
    let mut s = Select::new();
    s.from = from;

    if grouped {
        let scope = &scopes[0];
        let group_col = pick_column(rng, scope, |_| true);
        let group_expr = column_expr(multi, scope, &group_col);
        s.group_by = vec![group_expr.clone()];
        let mut items = vec![SelectItem::Expr {
            expr: group_expr.clone(),
            alias: None,
        }];
        let (agg_expr, _) = gen_aggregate(rng, &scopes, multi);
        items.push(SelectItem::Expr {
            expr: agg_expr,
            alias: Some("agg".to_string()),
        });
        s.items = items;
        if rng.gen_bool(0.4) {
            let (h_agg, _) = gen_aggregate(rng, &scopes, multi);
            s.having = Some(Expr::Compare {
                op: pick_compare(rng),
                left: Box::new(h_agg),
                right: Box::new(Expr::number(rng.gen_range(0..6) as f64)),
            });
        }
    } else {
        s.distinct = rng.gen_bool(0.15);
        let n_items = rng.gen_range(1..=3usize);
        let mut items = Vec::with_capacity(n_items);
        for i in 0..n_items {
            items.push(gen_select_item(rng, &scopes, multi, i));
        }
        s.items = items;
    }

    if rng.gen_bool(0.8) {
        s.selection = Some(gen_predicate(rng, gs, &scopes, multi, 2, allow_subquery));
    }

    let mut q = Query::from_select(s);

    if rng.gen_bool(0.4) {
        q.order_by = gen_order_by(rng, &q);
    }
    if rng.gen_bool(0.3) {
        q.limit = Some(rng.gen_range(1..=10u64));
    }
    q
}

/// FROM clause: single table, explicit join, or implicit comma join.
fn gen_from(rng: &mut StdRng, gs: &GenSchema) -> (Vec<TableRef>, Vec<InScope>) {
    let joinable = gs.tables.len() > 1;
    match rng.gen_range(0..10u32) {
        // explicit two-table join on the t0 foreign key
        0..=2 if joinable => {
            let right_idx = rng.gen_range(1..gs.tables.len());
            let (a, b) = ("a".to_string(), "b".to_string());
            let left = TableRef::Named {
                name: gs.tables[0].name.clone(),
                alias: Some(a.clone()),
            };
            let right = TableRef::Named {
                name: gs.tables[right_idx].name.clone(),
                alias: Some(b.clone()),
            };
            let on = Expr::Compare {
                op: CompareOp::Eq,
                left: Box::new(Expr::column(Some(&a), "t0id")),
                right: Box::new(Expr::column(Some(&b), &format!("fk{right_idx}t0id"))),
            };
            let kind = if rng.gen_bool(0.3) {
                JoinKind::Left
            } else {
                JoinKind::Inner
            };
            let join = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                constraint: JoinConstraint::On(on),
            };
            let scopes = vec![
                InScope {
                    binding: a,
                    columns: gs.tables[0].columns.clone(),
                },
                InScope {
                    binding: b,
                    columns: gs.tables[right_idx].columns.clone(),
                },
            ];
            (vec![join], scopes)
        }
        // implicit comma join; the FK equality lands in WHERE via the
        // caller's predicate conjunction
        3..=4 if joinable => {
            let right_idx = rng.gen_range(1..gs.tables.len());
            let (a, b) = ("a".to_string(), "b".to_string());
            let refs = vec![
                TableRef::Named {
                    name: gs.tables[0].name.clone(),
                    alias: Some(a.clone()),
                },
                TableRef::Named {
                    name: gs.tables[right_idx].name.clone(),
                    alias: Some(b.clone()),
                },
            ];
            let scopes = vec![
                InScope {
                    binding: a,
                    columns: gs.tables[0].columns.clone(),
                },
                InScope {
                    binding: b,
                    columns: gs.tables[right_idx].columns.clone(),
                },
            ];
            (refs, scopes)
        }
        // single table, sometimes aliased
        _ => {
            let ti = rng.gen_range(0..gs.tables.len());
            let alias = rng.gen_bool(0.4).then(|| "a".to_string());
            let binding = alias.clone().unwrap_or_else(|| gs.tables[ti].name.clone());
            let refs = vec![TableRef::Named {
                name: gs.tables[ti].name.clone(),
                alias,
            }];
            let scopes = vec![InScope {
                binding,
                columns: gs.tables[ti].columns.clone(),
            }];
            (refs, scopes)
        }
    }
}

fn pick_column<F: Fn(&GenColumn) -> bool>(rng: &mut StdRng, scope: &InScope, f: F) -> GenColumn {
    let matching: Vec<&GenColumn> = scope.columns.iter().filter(|c| f(c)).collect();
    match matching.choose(rng) {
        Some(c) => (*c).clone(),
        None => scope.columns[0].clone(),
    }
}

fn pick_scope<'s>(rng: &mut StdRng, scopes: &'s [InScope]) -> &'s InScope {
    &scopes[rng.gen_range(0..scopes.len())]
}

fn column_expr(multi: bool, scope: &InScope, col: &GenColumn) -> Expr {
    let q = multi.then_some(scope.binding.as_str());
    Expr::column(q, &col.name)
}

fn pick_compare(rng: &mut StdRng) -> CompareOp {
    match rng.gen_range(0..6u32) {
        0 => CompareOp::Eq,
        1 => CompareOp::NotEq,
        2 => CompareOp::Lt,
        3 => CompareOp::LtEq,
        4 => CompareOp::Gt,
        _ => CompareOp::GtEq,
    }
}

/// A literal matching the witness value domain for `col`.
fn gen_literal(rng: &mut StdRng, col: &GenColumn) -> Expr {
    if col.id_like {
        return Expr::number(rng.gen_range(1..=12u32) as f64);
    }
    match col.ty {
        SqlType::Int => Expr::number(rng.gen_range(0..1000u32) as f64),
        SqlType::Float => Expr::number(rng.gen_range(0..10000u32) as f64 / 10.0),
        SqlType::Text => match TEXT_VOCAB.choose(rng) {
            Some(w) => Expr::string(w),
            None => Expr::string("alpha"),
        },
        SqlType::Bool => Expr::Literal(Literal::Bool(rng.gen_bool(0.5))),
    }
}

fn gen_select_item(rng: &mut StdRng, scopes: &[InScope], multi: bool, idx: usize) -> SelectItem {
    let scope = pick_scope(rng, scopes);
    match rng.gen_range(0..10u32) {
        // arithmetic over a numeric column, always aliased
        0..=1 => {
            let col = pick_column(rng, scope, |c| {
                matches!(c.ty, SqlType::Int | SqlType::Float)
            });
            let op = match rng.gen_range(0..3u32) {
                0 => '+',
                1 => '-',
                _ => '*',
            };
            SelectItem::Expr {
                expr: Expr::Arith {
                    op,
                    left: Box::new(column_expr(multi, scope, &col)),
                    right: Box::new(Expr::number(rng.gen_range(1..9u32) as f64)),
                },
                alias: Some(format!("e{idx}")),
            }
        }
        // searched CASE, always aliased
        2 => {
            let col = pick_column(rng, scope, |c| {
                matches!(c.ty, SqlType::Int | SqlType::Float)
            });
            let pred = Expr::Compare {
                op: CompareOp::Gt,
                left: Box::new(column_expr(multi, scope, &col)),
                right: Box::new(gen_literal(rng, &col)),
            };
            SelectItem::Expr {
                expr: Expr::Case {
                    operand: None,
                    branches: vec![(pred, Expr::string("hi"))],
                    else_expr: Some(Box::new(Expr::string("lo"))),
                },
                alias: Some(format!("e{idx}")),
            }
        }
        // bare column
        _ => {
            let col = pick_column(rng, scope, |_| true);
            SelectItem::Expr {
                expr: column_expr(multi, scope, &col),
                alias: None,
            }
        }
    }
}

fn gen_aggregate(rng: &mut StdRng, scopes: &[InScope], multi: bool) -> (Expr, SqlType) {
    let scope = pick_scope(rng, scopes);
    if rng.gen_bool(0.3) {
        return (
            Expr::Function {
                name: "COUNT".to_string(),
                args: vec![Expr::Wildcard],
                distinct: false,
            },
            SqlType::Int,
        );
    }
    let col = pick_column(rng, scope, |c| {
        matches!(c.ty, SqlType::Int | SqlType::Float)
    });
    let name = match rng.gen_range(0..5u32) {
        0 => "SUM",
        1 => "AVG",
        2 => "MIN",
        3 => "MAX",
        _ => "COUNT",
    };
    (
        Expr::Function {
            name: name.to_string(),
            args: vec![column_expr(multi, scope, &col)],
            distinct: name == "COUNT" && rng.gen_bool(0.3),
        },
        SqlType::Float,
    )
}

/// A WHERE predicate tree. When the FROM clause is an implicit comma join,
/// the foreign-key equality is conjoined so the product stays meaningful.
fn gen_predicate(
    rng: &mut StdRng,
    gs: &GenSchema,
    scopes: &[InScope],
    multi: bool,
    depth: u32,
    allow_subquery: bool,
) -> Expr {
    let mut pred = gen_pred_node(rng, gs, scopes, multi, depth, allow_subquery);
    // Implicit join detection: two scopes and the FROM refs are plain named
    // tables (the caller only builds comma joins that way).
    if scopes.len() == 2 && rng.gen_bool(0.9) {
        let right = &scopes[1];
        if let Some(fk) = right.columns.iter().find(|c| c.name.starts_with("fk")) {
            let link = Expr::Compare {
                op: CompareOp::Eq,
                left: Box::new(Expr::column(Some(&scopes[0].binding), "t0id")),
                right: Box::new(Expr::column(Some(&right.binding), &fk.name)),
            };
            pred = Expr::And(Box::new(link), Box::new(pred));
        }
    }
    pred
}

fn gen_pred_node(
    rng: &mut StdRng,
    gs: &GenSchema,
    scopes: &[InScope],
    multi: bool,
    depth: u32,
    allow_subquery: bool,
) -> Expr {
    if depth > 0 && rng.gen_bool(0.45) {
        let l = gen_pred_node(rng, gs, scopes, multi, depth - 1, allow_subquery);
        let r = gen_pred_node(rng, gs, scopes, multi, depth - 1, allow_subquery);
        let node = if rng.gen_bool(0.5) {
            Expr::And(Box::new(l), Box::new(r))
        } else {
            Expr::Or(Box::new(l), Box::new(r))
        };
        return if rng.gen_bool(0.15) {
            Expr::Not(Box::new(node))
        } else {
            node
        };
    }
    gen_pred_leaf(rng, gs, scopes, multi, allow_subquery)
}

fn gen_pred_leaf(
    rng: &mut StdRng,
    gs: &GenSchema,
    scopes: &[InScope],
    multi: bool,
    allow_subquery: bool,
) -> Expr {
    let scope = pick_scope(rng, scopes);
    match rng.gen_range(0..12u32) {
        // BETWEEN on a numeric column
        0..=1 => {
            let col = pick_column(rng, scope, |c| {
                matches!(c.ty, SqlType::Int | SqlType::Float)
            });
            let (mut lo, mut hi) = (rng.gen_range(0..800u32), rng.gen_range(0..800u32));
            if lo > hi {
                std::mem::swap(&mut lo, &mut hi);
            }
            Expr::Between {
                expr: Box::new(column_expr(multi, scope, &col)),
                low: Box::new(Expr::number(lo as f64)),
                high: Box::new(Expr::number((hi + rng.gen_range(0..200u32)) as f64)),
                negated: rng.gen_bool(0.2),
            }
        }
        // IN over a literal list
        2..=3 => {
            let col = pick_column(rng, scope, |_| true);
            let n = rng.gen_range(2..=3usize);
            let list = (0..n).map(|_| gen_literal(rng, &col)).collect();
            Expr::InList {
                expr: Box::new(column_expr(multi, scope, &col)),
                list,
                negated: rng.gen_bool(0.25),
            }
        }
        // IS [NOT] NULL (id columns are never null in witnesses, so prefer
        // nullable ones)
        4 => {
            let col = pick_column(rng, scope, |c| !c.id_like);
            Expr::IsNull {
                expr: Box::new(column_expr(multi, scope, &col)),
                negated: rng.gen_bool(0.5),
            }
        }
        // LIKE on a text column
        5 => {
            let col = pick_column(rng, scope, |c| c.ty == SqlType::Text);
            if col.ty != SqlType::Text {
                // scope had no text column; degrade to a comparison
                return gen_compare_leaf(rng, scope, multi);
            }
            let word = TEXT_VOCAB.choose(rng).copied().unwrap_or("alpha");
            let frag: String = word.chars().take(2).collect();
            let pattern = match rng.gen_range(0..3u32) {
                0 => format!("{frag}%"),
                1 => format!("%{frag}%"),
                _ => format!("%{frag}"),
            };
            Expr::Like {
                expr: Box::new(column_expr(multi, scope, &col)),
                pattern: Box::new(Expr::string(&pattern)),
                negated: rng.gen_bool(0.2),
            }
        }
        // IN (SELECT pk FROM other) — uncorrelated, single-column
        6 if allow_subquery => {
            let col = pick_column(rng, scope, |c| c.id_like);
            let inner_t = &gs.tables[rng.gen_range(0..gs.tables.len())];
            let mut inner = Select::new();
            let ids: Vec<&GenColumn> = inner_t.columns.iter().filter(|c| c.id_like).collect();
            let inner_col = match ids.choose(rng) {
                Some(c) => (*c).clone(),
                None => inner_t.columns[0].clone(),
            };
            inner.items = vec![SelectItem::column(None, &inner_col.name)];
            inner.from = vec![TableRef::Named {
                name: inner_t.name.clone(),
                alias: None,
            }];
            if rng.gen_bool(0.5) {
                let filter_col = inner_t.columns[rng.gen_range(0..inner_t.columns.len())].clone();
                inner.selection = Some(Expr::Compare {
                    op: pick_compare(rng),
                    left: Box::new(Expr::column(None, &filter_col.name)),
                    right: Box::new(gen_literal(rng, &filter_col)),
                });
            }
            Expr::InSubquery {
                expr: Box::new(column_expr(multi, scope, &col)),
                subquery: Box::new(Query::from_select(inner)),
                negated: rng.gen_bool(0.25),
            }
        }
        // scalar aggregate subquery: col < (SELECT AVG(x) FROM t)
        7 if allow_subquery => {
            let col = pick_column(rng, scope, |c| {
                matches!(c.ty, SqlType::Int | SqlType::Float)
            });
            let inner_t = &gs.tables[rng.gen_range(0..gs.tables.len())];
            let nums: Vec<&GenColumn> = inner_t
                .columns
                .iter()
                .filter(|c| matches!(c.ty, SqlType::Int | SqlType::Float))
                .collect();
            let inner_col = match nums.choose(rng) {
                Some(c) => (*c).clone(),
                None => inner_t.columns[0].clone(),
            };
            let mut inner = Select::new();
            inner.items = vec![SelectItem::Expr {
                expr: Expr::Function {
                    name: if rng.gen_bool(0.5) { "AVG" } else { "MAX" }.to_string(),
                    args: vec![Expr::column(None, &inner_col.name)],
                    distinct: false,
                },
                alias: None,
            }];
            inner.from = vec![TableRef::Named {
                name: inner_t.name.clone(),
                alias: None,
            }];
            Expr::Compare {
                op: pick_compare(rng),
                left: Box::new(column_expr(multi, scope, &col)),
                right: Box::new(Expr::ScalarSubquery(Box::new(Query::from_select(inner)))),
            }
        }
        // plain comparison
        _ => gen_compare_leaf(rng, scope, multi),
    }
}

fn gen_compare_leaf(rng: &mut StdRng, scope: &InScope, multi: bool) -> Expr {
    let col = pick_column(rng, scope, |_| true);
    let op = if col.ty == SqlType::Bool || col.ty == SqlType::Text {
        if rng.gen_bool(0.5) {
            CompareOp::Eq
        } else {
            CompareOp::NotEq
        }
    } else {
        pick_compare(rng)
    };
    Expr::Compare {
        op,
        left: Box::new(column_expr(multi, scope, &col)),
        right: Box::new(gen_literal(rng, &col)),
    }
}

/// ORDER BY over the query's *output* names only (plain columns/aliases),
/// which both engines support everywhere — including over set operations.
fn gen_order_by(rng: &mut StdRng, q: &Query) -> Vec<OrderItem> {
    let names = output_names_of(q);
    if names.is_empty() {
        return Vec::new();
    }
    let n = rng.gen_range(1..=names.len().min(2));
    let mut picked: Vec<String> = Vec::new();
    let mut items = Vec::new();
    for _ in 0..n {
        if let Some(name) = names.choose(rng) {
            if picked.contains(name) {
                continue;
            }
            picked.push(name.clone());
            items.push(OrderItem {
                expr: Expr::column(None, name),
                desc: rng.gen_bool(0.5),
            });
        }
    }
    items
}

/// Output column names usable as ORDER BY keys: plain projected columns
/// (unqualified reference is unambiguous only if the name is unique) and
/// explicit aliases.
fn output_names_of(q: &Query) -> Vec<String> {
    let s = match &q.body {
        SetExpr::Select(s) => s,
        SetExpr::SetOp { left, .. } => {
            let mut probe = left;
            loop {
                match probe.as_ref() {
                    SetExpr::Select(s) => break s,
                    SetExpr::SetOp { left, .. } => probe = left,
                }
            }
        }
    };
    let mut names = Vec::new();
    for item in &s.items {
        match item {
            SelectItem::Expr { alias: Some(a), .. } => names.push(a.clone()),
            SelectItem::Expr {
                expr: Expr::Column(c),
                alias: None,
            } => names.push(c.name.clone()),
            _ => {}
        }
    }
    // drop duplicates: ORDER BY on a duplicated output name is ambiguous
    let mut uniq = Vec::new();
    for n in names {
        let dup = uniq.iter().any(|u: &String| u.eq_ignore_ascii_case(&n));
        if !dup {
            uniq.push(n);
        } else {
            uniq.retain(|u| !u.eq_ignore_ascii_case(&n));
        }
    }
    uniq
}

/// `left UNION/INTERSECT/EXCEPT right` over the same table with the same
/// projection and different predicates.
fn gen_set_op(rng: &mut StdRng, gs: &GenSchema) -> Query {
    let ti = rng.gen_range(0..gs.tables.len());
    let t = &gs.tables[ti];
    let n_cols = rng.gen_range(1..=2usize);
    let mut cols: Vec<GenColumn> = Vec::new();
    for _ in 0..n_cols {
        if let Some(c) = t.columns.choose(rng) {
            if !cols.iter().any(|x| x.name == c.name) {
                cols.push(c.clone());
            }
        }
    }
    let scope = InScope {
        binding: t.name.clone(),
        columns: t.columns.clone(),
    };
    let side = |rng: &mut StdRng| {
        let mut s = Select::new();
        s.items = cols
            .iter()
            .map(|c| SelectItem::column(None, &c.name))
            .collect();
        s.from = vec![TableRef::Named {
            name: t.name.clone(),
            alias: None,
        }];
        s.selection = Some(gen_pred_node(
            rng,
            gs,
            std::slice::from_ref(&scope),
            false,
            1,
            false,
        ));
        SetExpr::Select(Box::new(s))
    };
    let l = side(rng);
    let r = side(rng);
    let op = match rng.gen_range(0..3u32) {
        0 => SetOp::Union,
        1 => SetOp::Intersect,
        _ => SetOp::Except,
    };
    let mut q = Query::from_select(Select::new());
    q.body = SetExpr::SetOp {
        op,
        all: rng.gen_bool(0.4),
        left: Box::new(l),
        right: Box::new(r),
    };
    if rng.gen_bool(0.5) {
        q.order_by = vec![OrderItem {
            expr: Expr::column(None, &cols[0].name),
            desc: rng.gen_bool(0.5),
        }];
    }
    q
}

/// `WITH w AS (SELECT … FROM t WHERE …) SELECT … FROM w [WHERE …]`.
fn gen_cte(rng: &mut StdRng, gs: &GenSchema) -> Query {
    let ti = rng.gen_range(0..gs.tables.len());
    let t = &gs.tables[ti];
    let scope = InScope {
        binding: t.name.clone(),
        columns: t.columns.clone(),
    };
    let n_cols = rng.gen_range(2..=t.columns.len().min(4));
    let cte_cols: Vec<GenColumn> = t.columns.iter().take(n_cols).cloned().collect();

    let mut inner = Select::new();
    inner.items = cte_cols
        .iter()
        .map(|c| SelectItem::column(None, &c.name))
        .collect();
    inner.from = vec![TableRef::Named {
        name: t.name.clone(),
        alias: None,
    }];
    inner.selection = Some(gen_pred_node(
        rng,
        gs,
        std::slice::from_ref(&scope),
        false,
        1,
        false,
    ));

    let w_scope = InScope {
        binding: "w".to_string(),
        columns: cte_cols.clone(),
    };
    let mut outer = Select::new();
    let pick = rng.gen_range(0..cte_cols.len());
    outer.items = vec![SelectItem::column(None, &cte_cols[pick].name)];
    outer.from = vec![TableRef::Named {
        name: "w".to_string(),
        alias: None,
    }];
    if rng.gen_bool(0.6) {
        outer.selection = Some(gen_pred_node(
            rng,
            gs,
            std::slice::from_ref(&w_scope),
            false,
            1,
            false,
        ));
    }
    let mut q = Query::from_select(outer);
    q.ctes = vec![Cte {
        name: "w".to_string(),
        query: Box::new(Query::from_select(inner)),
    }];
    q
}

/// `SELECT … FROM (SELECT … FROM t WHERE …) AS d [WHERE …]`.
fn gen_derived(rng: &mut StdRng, gs: &GenSchema) -> Query {
    let ti = rng.gen_range(0..gs.tables.len());
    let t = &gs.tables[ti];
    let scope = InScope {
        binding: t.name.clone(),
        columns: t.columns.clone(),
    };
    let n_cols = rng.gen_range(2..=t.columns.len().min(4));
    let d_cols: Vec<GenColumn> = t.columns.iter().take(n_cols).cloned().collect();

    let mut inner = Select::new();
    inner.items = d_cols
        .iter()
        .map(|c| SelectItem::column(None, &c.name))
        .collect();
    inner.from = vec![TableRef::Named {
        name: t.name.clone(),
        alias: None,
    }];
    inner.selection = Some(gen_pred_node(
        rng,
        gs,
        std::slice::from_ref(&scope),
        false,
        1,
        false,
    ));

    let d_scope = InScope {
        binding: "d".to_string(),
        columns: d_cols.clone(),
    };
    let mut outer = Select::new();
    let pick = rng.gen_range(0..d_cols.len());
    outer.items = vec![SelectItem::column(None, &d_cols[pick].name)];
    outer.from = vec![TableRef::Derived {
        query: Box::new(Query::from_select(inner)),
        alias: Some("d".to_string()),
    }];
    if rng.gen_bool(0.6) {
        outer.selection = Some(gen_pred_node(
            rng,
            gs,
            std::slice::from_ref(&d_scope),
            false,
            1,
            false,
        ));
    }
    Query::from_select(outer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use squ_parser::{parse_query, print_query};
    use squ_schema::analyze;

    #[test]
    fn schemas_are_deterministic_and_star_shaped() {
        let a = generate_schema(7, 3);
        let b = generate_schema(7, 3);
        assert_eq!(a.schema.name, b.schema.name);
        assert_eq!(a.tables.len(), b.tables.len());
        for (ta, tb) in a.tables.iter().zip(&b.tables) {
            assert_eq!(ta.name, tb.name);
            let names_a: Vec<&String> = ta.columns.iter().map(|c| &c.name).collect();
            let names_b: Vec<&String> = tb.columns.iter().map(|c| &c.name).collect();
            assert_eq!(names_a, names_b);
        }
        // every non-hub table carries a t0 foreign key
        for t in &a.tables[1..] {
            assert!(t.columns.iter().any(|c| c.name.starts_with("fk")));
        }
    }

    #[test]
    fn generated_queries_are_overwhelmingly_binder_clean() {
        let gs = generate_schema(42, 0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut clean = 0;
        let total = 200;
        for _ in 0..total {
            let q = generate_query(&mut rng, &gs);
            let sql = print_query(&q);
            let parsed = parse_query(&sql).expect("generated SQL parses");
            let stmt = Statement::Query(parsed);
            if analyze(&stmt, &gs.schema).is_empty() {
                clean += 1;
            }
        }
        assert!(clean * 10 >= total * 9, "only {clean}/{total} binder-clean");
    }

    #[test]
    fn fallback_is_always_clean() {
        for slot in 0..SCHEMA_POOL {
            let gs = generate_schema(9, slot);
            let q = fallback_query(&gs);
            let stmt = Statement::Query(q);
            assert!(analyze(&stmt, &gs.schema).is_empty());
        }
    }

    #[test]
    fn mix_decorrelates_streams() {
        assert_ne!(mix(7, 0), mix(7, 1));
        assert_ne!(mix(7, 0), mix(8, 0));
        assert_eq!(mix(7, 5), mix(7, 5));
    }
}
