//! Token-level mutation and lexer span-consistency checking.
//!
//! The round-trip oracle's second half: take a known-good query, knock a
//! token out (or duplicate / swap tokens), and check that the *lexer* still
//! tells the truth about the mutant — spans in bounds, non-overlapping,
//! ordered, and slicing the source at them reconstructs the token stream.
//! If the mutant happens to still parse, the full print/parse round-trip
//! law must hold for it too.

use rand::rngs::StdRng;
use rand::Rng;
use squ_lexer::{tokenize, tokenize_lossy, Span};

/// A mutant derived from a valid query's token stream.
#[derive(Debug, Clone)]
pub struct Mutant {
    /// Which edit produced it.
    pub kind: &'static str,
    /// The mutated SQL text.
    pub sql: String,
}

/// Slice `src` at the token spans of its (lossless) tokenization.
///
/// Uses spans, not `Token::text`: the lexer normalizes quoted identifiers
/// and string literals, so `text` is *not* the source bytes.
fn token_slices(src: &str) -> Option<Vec<Span>> {
    tokenize(src)
        .ok()
        .map(|ts| ts.iter().map(|t| t.span).collect())
}

/// Build up to `max` deterministic token-level mutants of `sql`.
///
/// Returns an empty vector when the query has too few tokens to mutate
/// meaningfully.
pub fn mutants_of(sql: &str, rng: &mut StdRng, max: usize) -> Vec<Mutant> {
    let spans = match token_slices(sql) {
        Some(s) if s.len() >= 2 => s,
        _ => return Vec::new(),
    };
    let mut out = Vec::with_capacity(max);
    for _ in 0..max {
        let kind = match rng.gen_range(0..3u32) {
            0 => "delete",
            1 => "duplicate",
            _ => "swap",
        };
        let sql = match kind {
            "delete" => {
                let i = rng.gen_range(0..spans.len());
                rebuild(
                    sql,
                    &spans,
                    |j| if j == i { Edit::Drop } else { Edit::Keep },
                )
            }
            "duplicate" => {
                let i = rng.gen_range(0..spans.len());
                rebuild(
                    sql,
                    &spans,
                    |j| if j == i { Edit::Double } else { Edit::Keep },
                )
            }
            _ => {
                if spans.len() < 2 {
                    continue;
                }
                let i = rng.gen_range(0..spans.len() - 1);
                let mut pieces: Vec<&str> = spans.iter().map(|s| s.slice(sql)).collect();
                pieces.swap(i, i + 1);
                pieces.join(" ")
            }
        };
        out.push(Mutant { kind, sql });
    }
    out
}

enum Edit {
    Keep,
    Drop,
    Double,
}

fn rebuild<F: Fn(usize) -> Edit>(src: &str, spans: &[Span], f: F) -> String {
    let mut pieces: Vec<&str> = Vec::with_capacity(spans.len() + 1);
    for (j, s) in spans.iter().enumerate() {
        match f(j) {
            Edit::Keep => pieces.push(s.slice(src)),
            Edit::Drop => {}
            Edit::Double => {
                pieces.push(s.slice(src));
                pieces.push(s.slice(src));
            }
        }
    }
    pieces.join(" ")
}

/// Check the lexer's span contract on arbitrary input: every reported span
/// (from the lossy tokenizer, which never refuses input) must be in bounds,
/// start on char boundaries, be non-empty, strictly ordered, and
/// non-overlapping. Returns a description of the first violation.
pub fn check_span_consistency(src: &str) -> Result<(), String> {
    let (tokens, _errors) = tokenize_lossy(src);
    let mut prev_end = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        let Span { start, end } = t.span;
        if start >= end {
            return Err(format!("token {i}: empty or inverted span {start}..{end}"));
        }
        if end > src.len() {
            return Err(format!(
                "token {i}: span {start}..{end} exceeds input length {}",
                src.len()
            ));
        }
        if !src.is_char_boundary(start) || !src.is_char_boundary(end) {
            return Err(format!(
                "token {i}: span {start}..{end} not on char boundaries"
            ));
        }
        if start < prev_end {
            return Err(format!(
                "token {i}: span {start}..{end} overlaps previous token ending at {prev_end}"
            ));
        }
        // the gap between tokens must be pure whitespace or comment text —
        // at minimum it must not contain another token's worth of
        // non-whitespace when the lexer produced no error for it
        prev_end = end;
    }
    Ok(())
}

/// Check that the token span slices of `src`, concatenated with the
/// inter-token gaps, reproduce `src` exactly.
pub fn check_reconstruction(src: &str) -> Result<(), String> {
    let (tokens, _errors) = tokenize_lossy(src);
    let mut rebuilt = String::with_capacity(src.len());
    let mut cursor = 0usize;
    for t in &tokens {
        let Span { start, end } = t.span;
        if start < cursor || end > src.len() || !src.is_char_boundary(start) {
            return Err(format!("span {start}..{end} unusable from cursor {cursor}"));
        }
        rebuilt.push_str(&src[cursor..start]);
        rebuilt.push_str(&src[start..end]);
        cursor = end;
    }
    rebuilt.push_str(&src[cursor..]);
    if rebuilt != src {
        return Err("token spans plus gaps do not reconstruct the input".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mutants_are_deterministic_for_a_seed() {
        let sql = "SELECT a, b FROM t WHERE a > 3 ORDER BY b";
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let m1: Vec<String> = mutants_of(sql, &mut r1, 4)
            .into_iter()
            .map(|m| m.sql)
            .collect();
        let m2: Vec<String> = mutants_of(sql, &mut r2, 4)
            .into_iter()
            .map(|m| m.sql)
            .collect();
        assert_eq!(m1, m2);
        assert_eq!(m1.len(), 4);
        for m in &m1 {
            assert_ne!(m, sql);
        }
    }

    #[test]
    fn span_checks_hold_on_ordinary_sql() {
        let sql = "SELECT \"quoted id\", 'str''esc' FROM t -- tail";
        check_span_consistency(sql).unwrap();
        check_reconstruction(sql).unwrap();
    }

    #[test]
    fn span_checks_hold_on_junk() {
        for junk in [
            "###@@@!!!",
            "SELECT \u{1F600} FROM \u{00E9}t",
            "",
            "   ",
            "'unterminated",
        ] {
            check_span_consistency(junk).unwrap();
            check_reconstruction(junk).unwrap();
        }
    }
}
