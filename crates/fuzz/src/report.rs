//! Fuzz-run result types and their deterministic JSON rendering.
//!
//! Everything here is plain data with a fixed serialization order and no
//! timestamps or host-dependent fields, so a run's `fuzz.json` is
//! byte-identical for any `--jobs` value and across machines.

use serde::{Deserialize, Serialize};

/// Per-oracle tallies, summed over cases. All fields count *checks*: one
/// round-trip check per case, one mutation check per mutant, one
/// differential check per witness database, one metamorphic check per
/// applicable transform.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleCounts {
    /// `parse(print(parse(q)))` identical and print is a fixpoint.
    pub roundtrip_pass: u64,
    /// Round-trip violations.
    pub roundtrip_fail: u64,
    /// Token-level mutants whose spans stayed byte-consistent.
    pub mutation_pass: u64,
    /// Mutants with out-of-bounds / overlapping / non-reconstructing spans,
    /// or whose reparsed form broke the round-trip law.
    pub mutation_fail: u64,
    /// Witness databases on which engine and reference agreed.
    pub differential_pass: u64,
    /// Witness databases skipped because exactly one side hit its
    /// intermediate-row budget (the reference engine has no pushdown, so it
    /// legitimately exhausts the budget earlier).
    pub differential_skip: u64,
    /// Witness databases on which the two interpreters disagreed.
    pub differential_fail: u64,
    /// Equivalence-preserving transforms that agreed on every witness.
    pub preserving_pass: u64,
    /// Equivalence-preserving transforms caught changing results.
    pub preserving_fail: u64,
    /// Equivalence-breaking transforms distinguished by some witness.
    pub breaking_distinguished: u64,
    /// Equivalence-breaking transforms no witness distinguished (reported,
    /// not failed: witnesses are probabilistic distinguishers).
    pub breaking_undistinguished: u64,
    /// Transform applications skipped (rewrite produced a query the binder
    /// rejects, or execution failed on a witness).
    pub metamorphic_skip: u64,
    /// Dialect corpus entries (subject query translated into the run's
    /// dialect) that held the dialect round-trip law. Always 0 for
    /// `squ`-dialect runs.
    pub dialect_pass: u64,
    /// Dialect corpus entries that violated it.
    pub dialect_fail: u64,
}

impl OracleCounts {
    /// Fold another tally into this one.
    pub fn absorb(&mut self, other: &OracleCounts) {
        self.roundtrip_pass += other.roundtrip_pass;
        self.roundtrip_fail += other.roundtrip_fail;
        self.mutation_pass += other.mutation_pass;
        self.mutation_fail += other.mutation_fail;
        self.differential_pass += other.differential_pass;
        self.differential_skip += other.differential_skip;
        self.differential_fail += other.differential_fail;
        self.preserving_pass += other.preserving_pass;
        self.preserving_fail += other.preserving_fail;
        self.breaking_distinguished += other.breaking_distinguished;
        self.breaking_undistinguished += other.breaking_undistinguished;
        self.metamorphic_skip += other.metamorphic_skip;
        self.dialect_pass += other.dialect_pass;
        self.dialect_fail += other.dialect_fail;
    }

    /// Any hard oracle violation? (Skips and undistinguished-breaking
    /// checks are not violations.)
    pub fn has_failures(&self) -> bool {
        self.roundtrip_fail > 0
            || self.mutation_fail > 0
            || self.differential_fail > 0
            || self.preserving_fail > 0
            || self.dialect_fail > 0
    }
}

/// Engine execution counters accumulated over the differential oracle's
/// subject-query runs (the hybrid engine side only — reference runs and
/// shrink-predicate probes are not counted). Every field is deterministic
/// for a given `(seed, index)`, so these survive the byte-identical
/// across-`--jobs` guarantee.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineCounters {
    /// Base-table rows materialized into the pipeline.
    pub rows_scanned: u64,
    /// Row pairs considered by join loops.
    pub join_pairs: u64,
    /// Operator batches evaluated by the vectorized filter path.
    pub batches: u64,
    /// Hash-index equality probes issued.
    pub index_probes: u64,
    /// Rows fetched via index probes.
    pub index_hits: u64,
    /// Subquery (re-)executions.
    pub subquery_evals: u64,
    /// Queries that ran on the compiled engine.
    pub compiled: u64,
    /// Queries that fell back to the tree-walking interpreter.
    pub fallbacks: u64,
    /// Select blocks short-circuited because `squ-sema` proved their WHERE
    /// unsatisfiable at compile time.
    pub empty_prunes: u64,
}

impl EngineCounters {
    /// Fold another tally into this one.
    pub fn absorb(&mut self, other: &EngineCounters) {
        self.rows_scanned += other.rows_scanned;
        self.join_pairs += other.join_pairs;
        self.batches += other.batches;
        self.index_probes += other.index_probes;
        self.index_hits += other.index_hits;
        self.subquery_evals += other.subquery_evals;
        self.compiled += other.compiled;
        self.fallbacks += other.fallbacks;
        self.empty_prunes += other.empty_prunes;
    }
}

/// Tallies of the semantic-analysis oracle: every `squ-sema` claim that was
/// cross-checked against real execution, plus certificate statistics from
/// the metamorphic pairs. Deterministic per `(seed, index)` like everything
/// else in the report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SemaCounters {
    /// Subject queries run through `squ_sema::analyze_query`.
    pub queries_analyzed: u64,
    /// Queries proven empty by the analyzer.
    pub empties_proven: u64,
    /// Emptiness proofs confirmed by execution (zero rows on a witness).
    pub empty_checks: u64,
    /// Redundant-conjunct proofs cross-checked by executing the query with
    /// the conjunct dropped.
    pub redundancy_checks: u64,
    /// `max_rows` bounds cross-checked against executed row counts.
    pub bound_checks: u64,
    /// Metamorphic pairs certified equivalent.
    pub certified_equivalent: u64,
    /// Metamorphic pairs certified inequivalent.
    pub certified_inequivalent: u64,
    /// Metamorphic pairs the certifier left undecided.
    pub certified_unknown: u64,
    /// Execution-checked sema claims that held.
    pub soundness_pass: u64,
    /// Execution-checked sema claims that did **not** hold — hard failures.
    pub soundness_fail: u64,
}

impl SemaCounters {
    /// Fold another tally into this one.
    pub fn absorb(&mut self, other: &SemaCounters) {
        self.queries_analyzed += other.queries_analyzed;
        self.empties_proven += other.empties_proven;
        self.empty_checks += other.empty_checks;
        self.redundancy_checks += other.redundancy_checks;
        self.bound_checks += other.bound_checks;
        self.certified_equivalent += other.certified_equivalent;
        self.certified_inequivalent += other.certified_inequivalent;
        self.certified_unknown += other.certified_unknown;
        self.soundness_pass += other.soundness_pass;
        self.soundness_fail += other.soundness_fail;
    }
}

/// One oracle violation, with its shrunk reproducer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Failure {
    /// Index of the generated case that exposed it.
    pub case: u64,
    /// Which oracle fired: `round-trip`, `mutation`, `differential`, or
    /// `metamorphic`.
    pub oracle: String,
    /// Transform label for metamorphic failures.
    pub transform: Option<String>,
    /// The original failing SQL.
    pub sql: String,
    /// Human-readable description of the disagreement.
    pub detail: String,
    /// Token-deletion-minimized SQL that still fails the same predicate.
    pub minimized: String,
    /// Token count of `minimized`.
    pub minimized_tokens: u64,
}

/// The outcome of one generated case: its tallies plus any failures.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CaseReport {
    /// Case index within the run.
    pub index: u64,
    /// The generated (valid) SQL this case exercised.
    pub sql: String,
    /// Oracle tallies for this case.
    pub counts: OracleCounts,
    /// Engine counters from the differential oracle's subject runs.
    pub engine: EngineCounters,
    /// Semantic-analysis oracle tallies for this case.
    pub sema: SemaCounters,
    /// Violations found in this case.
    pub failures: Vec<Failure>,
}

/// A whole fuzz run, written to `target/repro/fuzz.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FuzzReport {
    /// Report format version.
    pub version: u32,
    /// Generator seed for the run.
    pub seed: u64,
    /// Corpus dialect of the run (`squ` for the historical oracles).
    pub dialect: String,
    /// Number of generated cases.
    pub cases: u64,
    /// Aggregated oracle tallies.
    pub counts: OracleCounts,
    /// Aggregated engine counters.
    pub engine: EngineCounters,
    /// Aggregated semantic-analysis oracle tallies.
    pub sema: SemaCounters,
    /// Every violation, in case order.
    pub failures: Vec<Failure>,
}

impl FuzzReport {
    /// Aggregate per-case reports (in case order) into a run report.
    pub fn from_cases(seed: u64, cases: &[CaseReport]) -> FuzzReport {
        FuzzReport::from_cases_in(seed, "squ", cases)
    }

    /// Aggregate per-case reports of a run whose corpus is in `dialect`.
    pub fn from_cases_in(seed: u64, dialect: &str, cases: &[CaseReport]) -> FuzzReport {
        let mut counts = OracleCounts::default();
        let mut engine = EngineCounters::default();
        let mut sema = SemaCounters::default();
        let mut failures = Vec::new();
        for c in cases {
            counts.absorb(&c.counts);
            engine.absorb(&c.engine);
            sema.absorb(&c.sema);
            failures.extend(c.failures.iter().cloned());
        }
        FuzzReport {
            version: 4,
            seed,
            dialect: dialect.to_string(),
            cases: cases.len() as u64,
            counts,
            engine,
            sema,
            failures,
        }
    }

    /// Did every hard oracle hold?
    pub fn is_clean(&self) -> bool {
        !self.counts.has_failures() && self.sema.soundness_fail == 0
    }

    /// Deterministic pretty JSON (field order is struct order; no maps).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// One-line human summary for the console.
    pub fn summary_line(&self) -> String {
        let c = &self.counts;
        let dialect = if self.dialect == "squ" {
            String::new()
        } else {
            format!(
                ", dialect[{}] {}/{} fail",
                self.dialect,
                c.dialect_fail,
                c.dialect_pass + c.dialect_fail
            )
        };
        format!(
            "fuzz: {} cases, roundtrip {}/{} fail, mutation {}/{} fail, \
             differential {} pass / {} skip / {} fail, metamorphic {} pass / {} fail \
             ({} breaking distinguished, {} undistinguished, {} skipped), \
             engine {} compiled / {} fallback, \
             sema {} empties / {} certified eq / {} ineq, {} soundness fail{dialect}",
            self.cases,
            c.roundtrip_fail,
            c.roundtrip_pass + c.roundtrip_fail,
            c.mutation_fail,
            c.mutation_pass + c.mutation_fail,
            c.differential_pass,
            c.differential_skip,
            c.differential_fail,
            c.preserving_pass,
            c.preserving_fail,
            c.breaking_distinguished,
            c.breaking_undistinguished,
            c.metamorphic_skip,
            self.engine.compiled,
            self.engine.fallbacks,
            self.sema.empties_proven,
            self.sema.certified_equivalent,
            self.sema.certified_inequivalent,
            self.sema.soundness_fail,
        )
    }
}
