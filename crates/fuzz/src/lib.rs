//! # squ-fuzz — deterministic differential & metamorphic testing
//!
//! A seedable, dependency-free fuzzing subsystem for the whole
//! lexer→parser→binder→engine stack. A grammar generator emits random
//! schema-valid queries over random star schemas ([`gen`]); every case
//! then runs three oracles ([`oracle`]):
//!
//! 1. **round-trip** — `parse(print(parse(q)))` is AST-identical, the
//!    printer is a fixpoint, and lexer spans stay byte-consistent under
//!    token-level mutation ([`mutate`]);
//! 2. **differential** — the optimized engine and a naive reference
//!    interpreter ([`squ_engine::reference_query`]) agree row-for-row
//!    under canonical ordering on every witness database;
//! 3. **metamorphic** — every equivalence-preserving transform in the
//!    `squ-tasks` catalog keeps differential results equal, and every
//!    equivalence-breaking transform is distinguishable by some witness;
//! 4. **sema** — every claim the `squ-sema` abstract interpreter makes
//!    (provably-empty results, redundant conjuncts, row bounds, and
//!    equivalence/inequivalence certificates for transform pairs) is
//!    cross-checked against real execution; a provably-empty query that
//!    returns rows or a certified-equivalent pair that diverges is a hard
//!    failure.
//!
//! A run configured with a concrete [`Dialect`] (sqlite / postgres /
//! mysql / tsql) additionally translates every subject query into that
//! dialect — function and type-name spellings, quoting style,
//! `LIMIT`/`TOP` — emits the corpus SQL in it, and holds the text to the
//! dialect round-trip law, so each dialect frontend gets its own fuzzed
//! corpus.
//!
//! Violations are minimized by deterministic token deletion ([`shrink`])
//! and reported as plain data ([`report`]) whose JSON rendering is
//! byte-identical for any `--jobs` value.

#![warn(missing_docs)]

pub mod gen;
pub mod mutate;
pub mod oracle;
pub mod perf;
pub mod report;
pub mod shrink;

pub use gen::{fallback_query, generate_query, generate_schema, mix, GenSchema, SCHEMA_POOL};
pub use mutate::{check_reconstruction, check_span_consistency, mutants_of, Mutant};
pub use oracle::{run_case, FuzzConfig};
pub use perf::{engine_bench, EngineBench};
pub use report::{CaseReport, EngineCounters, Failure, FuzzReport, OracleCounts, SemaCounters};
pub use shrink::shrink_sql;
pub use squ_parser::Dialect;
