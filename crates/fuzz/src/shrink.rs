//! Deterministic token-deletion shrinking.
//!
//! Given a failing SQL string and a predicate that recognizes the failure,
//! greedily delete tokens left-to-right (restarting after each successful
//! deletion round) until no single-token deletion preserves the failure.
//! Purely deterministic: same input and predicate → same minimized output.

use squ_lexer::tokenize;

/// Maximum predicate evaluations per shrink, a safety valve so a slow
/// predicate on a long query cannot stall the run.
const MAX_PROBES: usize = 2_000;

/// Shrink `sql` while `still_fails` holds.
///
/// The candidate at each step is the remaining token texts joined with
/// single spaces (token text is re-read from the source via spans, so
/// quoted forms survive). Returns the minimized SQL and its token count;
/// when `sql` does not tokenize, it is returned unshrunk with count 0.
pub fn shrink_sql<F: FnMut(&str) -> bool>(sql: &str, mut still_fails: F) -> (String, u64) {
    let Ok(tokens) = tokenize(sql) else {
        return (sql.to_string(), 0);
    };
    let mut pieces: Vec<String> = tokens
        .iter()
        .map(|t| t.span.slice(sql).to_string())
        .collect();

    let mut probes = 0usize;
    let mut changed = true;
    while changed && probes < MAX_PROBES {
        changed = false;
        let mut i = 0;
        while i < pieces.len() {
            if pieces.len() == 1 {
                break;
            }
            let mut candidate_pieces = pieces.clone();
            candidate_pieces.remove(i);
            let candidate = candidate_pieces.join(" ");
            probes += 1;
            if probes >= MAX_PROBES {
                break;
            }
            if still_fails(&candidate) {
                pieces = candidate_pieces;
                changed = true;
                // do not advance: the next token shifted into slot i
            } else {
                i += 1;
            }
        }
    }

    let minimized = pieces.join(" ");
    let count = pieces.len() as u64;
    (minimized, count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_failure_kernel() {
        // "failure" = the text contains the token `poison`
        let sql = "SELECT a , b , poison , c FROM t WHERE a > 3";
        let (min, n) = shrink_sql(sql, |s| s.contains("poison"));
        assert_eq!(min, "poison");
        assert_eq!(n, 1);
    }

    #[test]
    fn deterministic_and_stable_when_nothing_shrinks() {
        let sql = "SELECT a FROM t";
        let (min1, n1) = shrink_sql(sql, |_| false);
        let (min2, n2) = shrink_sql(sql, |_| false);
        assert_eq!(min1, min2);
        assert_eq!(n1, n2);
        assert_eq!(min1, "SELECT a FROM t");
        assert_eq!(n1, 4);
    }

    #[test]
    fn untokenizable_input_is_returned_unshrunk() {
        let (min, n) = shrink_sql("'open string", |_| true);
        assert_eq!(min, "'open string");
        assert_eq!(n, 0);
    }
}
