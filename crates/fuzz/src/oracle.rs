//! The three fuzz oracles and the per-case driver.
//!
//! Each case is fully determined by `(seed, index)`: the schema slot, the
//! generated query, the token mutants, every transform's RNG stream, and
//! the witness databases all derive from those two numbers. That is what
//! makes `fuzz.json` byte-identical across `--jobs` values and lets the
//! artifact store resume a run case-by-case.

use rand::rngs::StdRng;
use rand::SeedableRng;
use squ_engine::{
    execute_query, reference_query, witness_batch_cached, Database, ExecError, Relation,
};
use squ_parser::ast::{Query, Statement};
use squ_parser::{parse_query, parse_query_dialect, print_query, print_query_dialect, Dialect};
use squ_schema::analyze;
use squ_tasks::{transform_catalog, translate_query, TransformInfo, TransformKind, Verdict};

use crate::gen::{fallback_query, generate_query, generate_schema, mix, GenSchema, SCHEMA_POOL};
use crate::mutate::{check_reconstruction, check_span_consistency, mutants_of};
use crate::report::{CaseReport, EngineCounters, Failure};
use crate::shrink::shrink_sql;
use squ_parser::ast::SetExpr;
use squ_sema::Certificate;

/// How many times the generator may retry before falling back to the
/// trivial always-valid query.
const GEN_RETRIES: usize = 50;

/// Token mutants per case.
const MUTANTS_PER_CASE: usize = 3;

/// Configuration for a fuzz run.
pub struct FuzzConfig {
    /// Master seed; every case derives its streams from `(seed, index)`.
    pub seed: u64,
    /// Corpus dialect. [`Dialect::Squ`] runs exactly the historical
    /// oracles; a concrete dialect additionally translates every subject
    /// query into that dialect (function/type spellings, quoting,
    /// `LIMIT`/`TOP`), emits the case SQL in it, and checks the dialect
    /// round-trip law on the result.
    pub dialect: Dialect,
    /// Transforms checked by the metamorphic oracle *in addition to* the
    /// built-in catalog. Tests use this to inject a deliberately unsound
    /// "preserving" transform and watch the harness convict it.
    pub extra_transforms: Vec<TransformInfo>,
}

impl FuzzConfig {
    /// A run over the built-in transform catalog only.
    pub fn new(seed: u64) -> FuzzConfig {
        FuzzConfig::for_dialect(seed, Dialect::Squ)
    }

    /// A run whose corpus is rendered and round-tripped in `dialect`.
    pub fn for_dialect(seed: u64, dialect: Dialect) -> FuzzConfig {
        FuzzConfig {
            seed,
            dialect,
            extra_transforms: Vec::new(),
        }
    }
}

/// Is this query binder-clean against `schema`?
fn clean(q: &Query, gs: &GenSchema) -> bool {
    let stmt = Statement::Query(q.clone());
    analyze(&stmt, &gs.schema).is_empty()
}

/// Generate the case's subject query: retry the grammar until the binder
/// accepts the printed-and-reparsed form, with a guaranteed fallback.
pub(crate) fn subject_query(rng: &mut StdRng, gs: &GenSchema) -> (Query, String) {
    for _ in 0..GEN_RETRIES {
        let q = generate_query(rng, gs);
        let sql = print_query(&q);
        let Ok(parsed) = parse_query(&sql) else {
            continue;
        };
        if clean(&parsed, gs) {
            return (parsed, sql);
        }
    }
    let q = fallback_query(gs);
    let sql = print_query(&q);
    (q, sql)
}

/// Run every oracle on case `index` of the run described by `cfg`.
pub fn run_case(cfg: &FuzzConfig, index: u64) -> CaseReport {
    let slot = index % SCHEMA_POOL;
    let gs = generate_schema(cfg.seed, slot);
    let mut rng = StdRng::seed_from_u64(mix(cfg.seed, 0xCA5E_0000 ^ index));
    let (query, sql) = subject_query(&mut rng, &gs);

    let mut report = CaseReport {
        index,
        sql: sql.clone(),
        ..CaseReport::default()
    };

    oracle_roundtrip(&mut report, &sql);
    oracle_mutation(&mut report, &sql, &mut rng);

    let witness_seed = mix(cfg.seed, 0xB17C_0000 ^ slot);
    let witnesses = witness_batch_cached(&gs.schema, witness_seed);
    oracle_differential(&mut report, &query, &sql, &gs, &witnesses);
    oracle_sema(&mut report, &query, &sql, &gs, &witnesses);
    oracle_metamorphic(cfg, &mut report, &query, &sql, &gs, &witnesses, index);
    if cfg.dialect != Dialect::Squ {
        oracle_dialect(&mut report, &query, cfg.dialect);
    }

    report
}

/// Does `sql`, read as `d`-dialect text, violate the dialect round-trip
/// law? Mirrors [`roundtrip_violation`] with the dialect parser/printer:
/// the text must parse in its own dialect (the subject is always our own
/// printer's output, so a parse failure *is* a violation), the dialect
/// print must be a parse∘print fixpoint, and the reparse must yield the
/// same AST.
fn dialect_roundtrip_violation(sql: &str, d: Dialect) -> Option<String> {
    let q = match parse_query_dialect(sql, d) {
        Ok(q) => q,
        Err(e) => return Some(format!("does not parse as {} text: {e}", d.name())),
    };
    let printed = print_query_dialect(&q, d);
    let q2 = match parse_query_dialect(&printed, d) {
        Ok(q2) => q2,
        Err(e) => return Some(format!("{} print fails to re-parse: {e}", d.name())),
    };
    if q2 != q {
        return Some(format!(
            "{} reparse of printed form differs from original AST",
            d.name()
        ));
    }
    if print_query_dialect(&q2, d) != printed {
        return Some(format!("{} printer is not a fixpoint over parse", d.name()));
    }
    None
}

/// Per-dialect corpus oracle: translate the subject query into `d`
/// (function and type-name spellings), render it with `d`'s printer
/// (quoting style, `LIMIT`/`TOP` folding), make that text the case's
/// corpus entry, and hold it to the dialect round-trip law.
fn oracle_dialect(report: &mut CaseReport, query: &Query, d: Dialect) {
    let dsql = print_query_dialect(&translate_query(query, d), d);
    report.sql = dsql.clone();
    match dialect_roundtrip_violation(&dsql, d) {
        None => report.counts.dialect_pass += 1,
        Some(detail) => {
            report.counts.dialect_fail += 1;
            let (minimized, minimized_tokens) =
                shrink_sql(&dsql, |s| dialect_roundtrip_violation(s, d).is_some());
            report.failures.push(Failure {
                case: report.index,
                oracle: "dialect-round-trip".to_string(),
                transform: Some(d.name().to_string()),
                sql: dsql,
                detail,
                minimized,
                minimized_tokens,
            });
        }
    }
}

/// Execution-check every claim `squ-sema` makes about the subject query:
/// a provably-empty verdict must see zero rows on every witness, a proven
/// redundant conjunct must be droppable without changing any result, and a
/// proven `max_rows` bound must dominate every executed row count. Any
/// counterexample is a hard soundness failure with a shrunk reproducer.
fn oracle_sema(
    report: &mut CaseReport,
    query: &Query,
    sql: &str,
    gs: &GenSchema,
    witnesses: &[Database],
) {
    let analysis = squ_sema::analyze_query(query, &gs.schema);
    report.sema.queries_analyzed += 1;

    if analysis.provably_empty {
        report.sema.empties_proven += 1;
        for db in witnesses {
            let Ok(r) = reference_query(query, db) else {
                continue; // budget exhaustion cannot confirm or refute
            };
            report.sema.empty_checks += 1;
            if r.rows.is_empty() {
                report.sema.soundness_pass += 1;
            } else {
                report.sema.soundness_fail += 1;
                sema_failure(
                    report,
                    sql,
                    gs,
                    witnesses,
                    format!(
                        "sema proved the result empty but a witness returned {} row(s)",
                        r.rows.len()
                    ),
                );
                break;
            }
        }
    }

    if let SetExpr::Select(s) = &query.body {
        if let Some(w) = &s.selection {
            for &ci in &analysis.redundant_conjuncts {
                let mut dropped = query.clone();
                if let SetExpr::Select(ds) = &mut dropped.body {
                    ds.selection = squ_sema::analyze::drop_conjunct_at(w, ci);
                }
                let mut failed = false;
                for db in witnesses {
                    let (Ok(a), Ok(b)) =
                        (reference_query(query, db), reference_query(&dropped, db))
                    else {
                        continue;
                    };
                    report.sema.redundancy_checks += 1;
                    if a.result_equal(&b) {
                        report.sema.soundness_pass += 1;
                    } else {
                        report.sema.soundness_fail += 1;
                        sema_failure(report, sql, gs, witnesses, format!(
                            "sema proved WHERE conjunct #{ci} redundant but dropping it changed a witness result"
                        ));
                        failed = true;
                        break;
                    }
                }
                if failed {
                    break;
                }
            }
        }
    }

    if let Some(bound) = analysis.max_rows {
        for db in witnesses {
            let Ok(r) = reference_query(query, db) else {
                continue;
            };
            report.sema.bound_checks += 1;
            if r.rows.len() as u64 <= bound {
                report.sema.soundness_pass += 1;
            } else {
                report.sema.soundness_fail += 1;
                sema_failure(
                    report,
                    sql,
                    gs,
                    witnesses,
                    format!(
                        "sema bounded the result at {bound} row(s) but a witness returned {}",
                        r.rows.len()
                    ),
                );
                break;
            }
        }
    }
}

/// Record one sema soundness failure, shrinking to the smallest SQL on
/// which *any* sema claim still contradicts execution.
fn sema_failure(
    report: &mut CaseReport,
    sql: &str,
    gs: &GenSchema,
    witnesses: &[Database],
    detail: String,
) {
    let (minimized, minimized_tokens) = shrink_sql(sql, |s| sema_claims_refuted(s, gs, witnesses));
    report.failures.push(Failure {
        case: report.index,
        oracle: "sema".to_string(),
        transform: None,
        sql: sql.to_string(),
        detail,
        minimized,
        minimized_tokens,
    });
}

/// Shrink predicate: does execution on some witness refute any sema claim
/// (emptiness, conjunct redundancy, or row bound) about `s`?
fn sema_claims_refuted(s: &str, gs: &GenSchema, witnesses: &[Database]) -> bool {
    let Ok(q) = parse_query(s) else { return false };
    if !clean(&q, gs) {
        return false;
    }
    let analysis = squ_sema::analyze_query(&q, &gs.schema);
    if analysis.provably_empty {
        for db in witnesses {
            if let Ok(r) = reference_query(&q, db) {
                if !r.rows.is_empty() {
                    return true;
                }
            }
        }
    }
    if let SetExpr::Select(sel) = &q.body {
        if let Some(w) = &sel.selection {
            for &ci in &analysis.redundant_conjuncts {
                let mut dropped = q.clone();
                if let SetExpr::Select(ds) = &mut dropped.body {
                    ds.selection = squ_sema::analyze::drop_conjunct_at(w, ci);
                }
                for db in witnesses {
                    if let (Ok(a), Ok(b)) = (reference_query(&q, db), reference_query(&dropped, db))
                    {
                        if !a.result_equal(&b) {
                            return true;
                        }
                    }
                }
            }
        }
    }
    if let Some(bound) = analysis.max_rows {
        for db in witnesses {
            if let Ok(r) = reference_query(&q, db) {
                if r.rows.len() as u64 > bound {
                    return true;
                }
            }
        }
    }
    false
}

/// Does `sql` violate the round-trip law? Returns the violation detail.
///
/// The law, anchored at printed text: `sql` parses to `q`; `print(q)` is a
/// fixpoint of parse∘print; and reparsing the print yields `q` again.
fn roundtrip_violation(sql: &str) -> Option<String> {
    let q = match parse_query(sql) {
        Ok(q) => q,
        // the subject query always parses; mutants may not, and that is
        // not a round-trip violation
        Err(_) => return None,
    };
    let printed = print_query(&q);
    let q2 = match parse_query(&printed) {
        Ok(q2) => q2,
        Err(e) => return Some(format!("printed form fails to parse: {e}")),
    };
    if q2 != q {
        return Some("reparse of printed form differs from original AST".to_string());
    }
    let printed2 = print_query(&q2);
    if printed2 != printed {
        return Some("printer is not a fixpoint over parse".to_string());
    }
    None
}

fn oracle_roundtrip(report: &mut CaseReport, sql: &str) {
    match roundtrip_violation(sql) {
        None => report.counts.roundtrip_pass += 1,
        Some(detail) => {
            report.counts.roundtrip_fail += 1;
            let (minimized, minimized_tokens) =
                shrink_sql(sql, |s| roundtrip_violation(s).is_some());
            report.failures.push(Failure {
                case: report.index,
                oracle: "round-trip".to_string(),
                transform: None,
                sql: sql.to_string(),
                detail,
                minimized,
                minimized_tokens,
            });
        }
    }
}

/// Span-consistency + conditional round-trip over token-level mutants.
fn oracle_mutation(report: &mut CaseReport, sql: &str, rng: &mut StdRng) {
    for m in mutants_of(sql, rng, MUTANTS_PER_CASE) {
        let violation = check_span_consistency(&m.sql)
            .err()
            .or_else(|| check_reconstruction(&m.sql).err())
            .or_else(|| roundtrip_violation(&m.sql));
        match violation {
            None => report.counts.mutation_pass += 1,
            Some(detail) => {
                report.counts.mutation_fail += 1;
                let (minimized, minimized_tokens) = shrink_sql(&m.sql, |s| {
                    check_span_consistency(s).is_err()
                        || check_reconstruction(s).is_err()
                        || roundtrip_violation(s).is_some()
                });
                report.failures.push(Failure {
                    case: report.index,
                    oracle: "mutation".to_string(),
                    transform: Some(m.kind.to_string()),
                    sql: m.sql.clone(),
                    detail,
                    minimized,
                    minimized_tokens,
                });
            }
        }
    }
}

/// Outcome of comparing the two interpreters on one database.
enum DiffOutcome {
    Agree,
    Skip,
    Disagree(String),
}

/// Compare `execute_query` and `reference_query` on one witness database.
///
/// Both failing is agreement (the oracle does not compare error *kinds*:
/// evaluation order legitimately differs). A lone `ResourceLimit` is a
/// skip — the reference interpreter has no predicate pushdown, so it can
/// exhaust the intermediate-row budget on inputs the optimized engine
/// handles. Any other one-sided error, or differing rows, is a violation.
///
/// Engine-side [`squ_engine::ExecStats`] from the successful hybrid run
/// are folded into `eng` (failed runs contribute nothing, keeping the
/// tally deterministic regardless of which side errors first).
fn diff_on(q: &Query, db: &Database, eng: &mut EngineCounters) -> DiffOutcome {
    let fast = execute_query(q, db).map(|(r, s)| {
        eng.rows_scanned += s.rows_scanned;
        eng.join_pairs += s.join_pairs;
        eng.batches += s.batches;
        eng.index_probes += s.index_probes;
        eng.index_hits += s.index_hits;
        eng.subquery_evals += s.subquery_evals;
        eng.compiled += s.compiled;
        eng.fallbacks += s.fallbacks;
        eng.empty_prunes += s.empty_prunes;
        r
    });
    let slow = reference_query(q, db);
    match (fast, slow) {
        (Ok(a), Ok(b)) => {
            if relations_agree(&a, &b) {
                DiffOutcome::Agree
            } else {
                DiffOutcome::Disagree(format!(
                    "engine returned {} row(s), reference {} row(s), canonical digests {:#x} vs {:#x}",
                    a.rows.len(),
                    b.rows.len(),
                    a.canonical_digest(),
                    b.canonical_digest(),
                ))
            }
        }
        (Err(_), Err(_)) => DiffOutcome::Agree,
        (Ok(_), Err(ExecError::ResourceLimit)) | (Err(ExecError::ResourceLimit), Ok(_)) => {
            DiffOutcome::Skip
        }
        (Ok(_), Err(e)) => DiffOutcome::Disagree(format!("reference failed where engine ran: {e}")),
        (Err(e), Ok(_)) => DiffOutcome::Disagree(format!("engine failed where reference ran: {e}")),
    }
}

/// Row-for-row agreement when the query pins an order (ORDER BY up to
/// ties), canonical-order agreement otherwise. Because both interpreters
/// emit rows in the same pre-sort order and sort stably, comparing
/// canonically is sound for ordered queries too — and necessary for
/// unordered ones.
fn relations_agree(a: &Relation, b: &Relation) -> bool {
    a.columns.len() == b.columns.len() && a.canonical_digest() == b.canonical_digest()
}

fn oracle_differential(
    report: &mut CaseReport,
    query: &Query,
    sql: &str,
    gs: &GenSchema,
    witnesses: &[Database],
) {
    for db in witnesses {
        match diff_on(query, db, &mut report.engine) {
            DiffOutcome::Agree => report.counts.differential_pass += 1,
            DiffOutcome::Skip => report.counts.differential_skip += 1,
            DiffOutcome::Disagree(detail) => {
                report.counts.differential_fail += 1;
                let (minimized, minimized_tokens) = shrink_sql(sql, |s| {
                    let Ok(q) = parse_query(s) else { return false };
                    if !clean(&q, gs) {
                        return false;
                    }
                    // shrink probes run against a scratch tally so the
                    // reported counters reflect only the subject query
                    let mut scratch = EngineCounters::default();
                    witnesses
                        .iter()
                        .any(|db| matches!(diff_on(&q, db, &mut scratch), DiffOutcome::Disagree(_)))
                });
                report.failures.push(Failure {
                    case: report.index,
                    oracle: "differential".to_string(),
                    transform: None,
                    sql: sql.to_string(),
                    detail,
                    minimized,
                    minimized_tokens,
                });
                // one failure per case is enough signal; further witnesses
                // would shrink the same query again
                break;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn oracle_metamorphic(
    cfg: &FuzzConfig,
    report: &mut CaseReport,
    query: &Query,
    sql: &str,
    gs: &GenSchema,
    witnesses: &[Database],
    index: u64,
) {
    let catalog = transform_catalog();
    let all: Vec<&TransformInfo> = catalog.iter().chain(cfg.extra_transforms.iter()).collect();
    for (ti, tinfo) in all.iter().enumerate() {
        let tseed = mix(cfg.seed, mix(index, 0x7A0F_0000 ^ ti as u64));
        let mut trng = StdRng::seed_from_u64(tseed);
        let Some((q1, q2)) = tinfo.apply(query, &mut trng) else {
            continue; // transform not applicable to this query shape
        };
        if !clean(&q1, gs) || !clean(&q2, gs) {
            report.counts.metamorphic_skip += 1;
            continue;
        }
        let verdict = differential_verdict_skipping_limits(&q1, &q2, witnesses);
        check_certificate(report, tinfo, tseed, &q1, &q2, sql, gs, witnesses, verdict);
        match (tinfo.kind(), verdict) {
            (_, Verdict::Failed) => report.counts.metamorphic_skip += 1,
            (TransformKind::Preserving, Verdict::AgreedEverywhere) => {
                report.counts.preserving_pass += 1
            }
            (TransformKind::Preserving, Verdict::Differed) => {
                report.counts.preserving_fail += 1;
                let label = tinfo.label();
                let (minimized, minimized_tokens) = shrink_sql(sql, |s| {
                    let Ok(q) = parse_query(s) else { return false };
                    if !clean(&q, gs) {
                        return false;
                    }
                    let mut r = StdRng::seed_from_u64(tseed);
                    let Some((a, b)) = tinfo.apply(&q, &mut r) else {
                        return false;
                    };
                    clean(&a, gs)
                        && clean(&b, gs)
                        && differential_verdict_skipping_limits(&a, &b, witnesses)
                            == Verdict::Differed
                });
                report.failures.push(Failure {
                    case: report.index,
                    oracle: "metamorphic".to_string(),
                    transform: Some(label.to_string()),
                    sql: sql.to_string(),
                    detail: format!(
                        "transform `{label}` claims to preserve results but a witness distinguished the pair"
                    ),
                    minimized,
                    minimized_tokens,
                });
            }
            (TransformKind::Breaking, Verdict::Differed) => {
                report.counts.breaking_distinguished += 1
            }
            (TransformKind::Breaking, Verdict::AgreedEverywhere) => {
                report.counts.breaking_undistinguished += 1
            }
        }
    }
}

/// Cross-check a static pair certificate against the transform's label and
/// the executed verdict. Two contradictions are hard soundness failures:
///
/// - **Equivalent + Differed** — the certifier (i.e. the canonicalizer)
///   claimed result equality but a witness database distinguished the pair.
/// - **Inequivalent + preserving transform** — the certifier statically
///   convicted a transform that is equivalence-preserving by construction.
#[allow(clippy::too_many_arguments)]
fn check_certificate(
    report: &mut CaseReport,
    tinfo: &TransformInfo,
    tseed: u64,
    q1: &Query,
    q2: &Query,
    sql: &str,
    gs: &GenSchema,
    witnesses: &[Database],
    verdict: Verdict,
) {
    let cert = squ_sema::certify_pair(q1, q2, &gs.schema);
    match cert {
        Certificate::Equivalent(_) => report.sema.certified_equivalent += 1,
        Certificate::Inequivalent(_) => report.sema.certified_inequivalent += 1,
        Certificate::Unknown => report.sema.certified_unknown += 1,
    }
    let label = tinfo.label();
    let contradiction = match cert {
        Certificate::Equivalent(_) if verdict == Verdict::Differed => Some(format!(
            "pair from `{label}` was certified equivalent ({}) but a witness distinguished it",
            cert.reason().unwrap_or(""),
        )),
        Certificate::Inequivalent(_) if tinfo.kind() == TransformKind::Preserving => Some(format!(
            "preserving transform `{label}` was statically convicted ({})",
            cert.reason().unwrap_or(""),
        )),
        _ => None,
    };
    let Some(detail) = contradiction else {
        if cert != Certificate::Unknown {
            report.sema.soundness_pass += 1;
        }
        return;
    };
    report.sema.soundness_fail += 1;
    let (minimized, minimized_tokens) = shrink_sql(sql, |s| {
        let Ok(q) = parse_query(s) else { return false };
        if !clean(&q, gs) {
            return false;
        }
        let mut r = StdRng::seed_from_u64(tseed);
        let Some((a, b)) = tinfo.apply(&q, &mut r) else {
            return false;
        };
        if !clean(&a, gs) || !clean(&b, gs) {
            return false;
        }
        match squ_sema::certify_pair(&a, &b, &gs.schema) {
            Certificate::Equivalent(_) => {
                differential_verdict_skipping_limits(&a, &b, witnesses) == Verdict::Differed
            }
            Certificate::Inequivalent(_) => tinfo.kind() == TransformKind::Preserving,
            Certificate::Unknown => false,
        }
    });
    report.failures.push(Failure {
        case: report.index,
        oracle: "sema-certificate".to_string(),
        transform: Some(label.to_string()),
        sql: sql.to_string(),
        detail,
        minimized,
        minimized_tokens,
    });
}

/// [`squ_tasks::differential_verdict`] over both queries, except that a
/// `ResourceLimit` on either side skips that witness instead of failing
/// the pair (mirrors the differential oracle's budget policy).
fn differential_verdict_skipping_limits(q1: &Query, q2: &Query, witnesses: &[Database]) -> Verdict {
    let mut any = false;
    for db in witnesses {
        let r1 = execute_query(q1, db);
        let r2 = execute_query(q2, db);
        match (r1, r2) {
            (Ok((a, _)), Ok((b, _))) => {
                any = true;
                if !a.result_equal(&b) {
                    return Verdict::Differed;
                }
            }
            (Err(ExecError::ResourceLimit), _) | (_, Err(ExecError::ResourceLimit)) => continue,
            _ => return Verdict::Failed,
        }
    }
    if any {
        Verdict::AgreedEverywhere
    } else {
        Verdict::Failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::FuzzReport;
    use squ_parser::ast::{Expr, SetExpr};
    use squ_parser::CompareOp;

    #[test]
    fn a_small_seeded_run_is_clean_and_deterministic() {
        let cfg = FuzzConfig::new(11);
        let a: Vec<CaseReport> = (0..12).map(|i| run_case(&cfg, i)).collect();
        let b: Vec<CaseReport> = (0..12).map(|i| run_case(&cfg, i)).collect();
        assert_eq!(a, b, "same (seed, index) must reproduce byte-identically");
        let report = FuzzReport::from_cases(11, &a);
        assert!(
            report.is_clean(),
            "oracle violations on a clean build:\n{}",
            report.to_json()
        );
        assert!(report.counts.roundtrip_pass >= 12);
        assert!(report.counts.differential_pass > 0);
        assert!(report.counts.preserving_pass > 0);
        assert!(report.counts.breaking_distinguished > 0);
    }

    #[test]
    fn dialect_corpora_are_clean_and_rendered_in_their_dialect() {
        let base: Vec<CaseReport> = {
            let cfg = FuzzConfig::new(11);
            (0..8).map(|i| run_case(&cfg, i)).collect()
        };
        for d in Dialect::CONCRETE {
            let cfg = FuzzConfig::for_dialect(11, d);
            let cases: Vec<CaseReport> = (0..8).map(|i| run_case(&cfg, i)).collect();
            let report = FuzzReport::from_cases_in(11, d.name(), &cases);
            assert!(report.is_clean(), "{}:\n{}", d.name(), report.to_json());
            assert_eq!(report.counts.dialect_fail, 0);
            assert_eq!(report.counts.dialect_pass, 8, "{}", d.name());
            for (c, b) in cases.iter().zip(&base) {
                // the corpus entry is the subject translated into the
                // dialect and parses as that dialect's text
                assert!(
                    parse_query_dialect(&c.sql, d).is_ok(),
                    "{} corpus entry does not parse: {}",
                    d.name(),
                    c.sql
                );
                // the execution-facing oracles are untouched: only the
                // dialect tallies and the corpus text differ from a Squ run
                let mut counts = c.counts;
                counts.dialect_pass = 0;
                assert_eq!(counts, b.counts);
                assert_eq!(c.engine, b.engine);
                assert_eq!(c.sema, b.sema);
            }
        }
    }

    /// A transform that *claims* to preserve equivalence but flips the
    /// first comparison operator it finds — the harness must convict it
    /// and shrink the reproducer to a handful of tokens.
    fn flip_first_comparison(q: &Query, _rng: &mut StdRng) -> Option<(Query, Query)> {
        fn flip(e: &mut Expr) -> bool {
            match e {
                Expr::Compare { op, .. } => {
                    *op = match *op {
                        CompareOp::Lt => CompareOp::GtEq,
                        CompareOp::LtEq => CompareOp::Gt,
                        CompareOp::Gt => CompareOp::LtEq,
                        CompareOp::GtEq => CompareOp::Lt,
                        CompareOp::Eq => CompareOp::NotEq,
                        CompareOp::NotEq => CompareOp::Eq,
                    };
                    true
                }
                Expr::And(a, b) | Expr::Or(a, b) => flip(a) || flip(b),
                Expr::Not(inner) => flip(inner),
                _ => false,
            }
        }
        let mut q2 = q.clone();
        let sel = match &mut q2.body {
            SetExpr::Select(s) => s,
            SetExpr::SetOp { .. } => return None,
        };
        let flipped = match sel.selection.as_mut() {
            Some(pred) => flip(pred),
            None => false,
        };
        flipped.then(|| (q.clone(), q2))
    }

    #[test]
    fn an_unsound_transform_is_convicted_with_a_small_reproducer() {
        let mut cfg = FuzzConfig::new(7);
        cfg.extra_transforms.push(TransformInfo::custom(
            "flip-first-comparison",
            TransformKind::Preserving,
            flip_first_comparison,
        ));
        let mut convictions = Vec::new();
        for i in 0..24 {
            let r = run_case(&cfg, i);
            convictions.extend(
                r.failures
                    .into_iter()
                    .filter(|f| f.transform.as_deref() == Some("flip-first-comparison")),
            );
        }
        assert!(
            !convictions.is_empty(),
            "24 seeded cases never convicted the planted unsound transform"
        );
        let smallest = convictions
            .iter()
            .map(|f| f.minimized_tokens)
            .min()
            .unwrap_or(u64::MAX);
        assert!(
            smallest <= 20,
            "expected a reproducer of at most 20 tokens, smallest was {smallest}"
        );
        for f in &convictions {
            assert!(f.minimized_tokens > 0);
            assert!(!f.minimized.is_empty());
        }
    }
}
