//! Compiled-vs-interpreter benchmark over the fuzz generator stream.
//!
//! [`engine_bench`] replays exactly the queries, witness databases, and
//! transform pairs a fuzz run with the same `(seed, cases)` would
//! exercise — slot, RNG, and witness derivation mirror
//! [`crate::oracle::run_case`] — and times the two execution paths side
//! by side:
//!
//! * **compiled** — [`squ_engine::compile_query`] once per query, then
//!   [`squ_engine::CompiledQuery::execute`] across all witness databases
//!   (plans are database-independent, so this measures the intended
//!   compile-once / run-many shape);
//! * **interpreted** — [`squ_engine::execute_query_interpreted`] per
//!   witness, the tree-walking baseline.
//!
//! Every pair of runs is also compared for result agreement, so the
//! benchmark doubles as one more differential pass: `divergences` must be
//! zero on a healthy build. Timings are wall-clock and host-dependent;
//! everything else in the report is deterministic for `(seed, cases)`.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use squ_engine::{
    compile_query, execute_query_interpreted, witness_batch_cached, Database, ExecError, Relation,
};
use squ_parser::ast::{Query, Statement};
use squ_schema::analyze;
use squ_tasks::transform_catalog;

use crate::gen::{generate_schema, mix, GenSchema, SCHEMA_POOL};
use crate::oracle::subject_query;
use crate::report::EngineCounters;

/// Outcome of the compiled-vs-interpreter benchmark.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineBench {
    /// Cases replayed.
    pub cases: u64,
    /// Wall-clock spent in the compiled path, differential phase.
    pub differential_compiled: Duration,
    /// Wall-clock spent in the interpreter, differential phase.
    pub differential_interpreted: Duration,
    /// Wall-clock spent in the compiled path, equivalence-verify phase.
    pub equiv_compiled: Duration,
    /// Wall-clock spent in the interpreter, equivalence-verify phase.
    pub equiv_interpreted: Duration,
    /// Query executions timed per engine (both phases).
    pub executions: u64,
    /// Executions skipped because exactly one side hit its row budget.
    pub budget_skips: u64,
    /// Queries the compiler rejected (whole query fell back).
    pub compile_fallbacks: u64,
    /// Runs where compiled and interpreted results disagreed. Must be 0.
    pub divergences: u64,
    /// Compiled-path execution counters summed over the whole benchmark.
    pub counters: EngineCounters,
}

impl EngineBench {
    /// Interpreter-to-compiled wall-clock ratio for the differential
    /// phase (`> 1` means the compiled path is faster).
    pub fn differential_speedup(&self) -> f64 {
        ratio(self.differential_interpreted, self.differential_compiled)
    }

    /// Interpreter-to-compiled ratio for the equivalence-verify phase.
    pub fn equiv_speedup(&self) -> f64 {
        ratio(self.equiv_interpreted, self.equiv_compiled)
    }

    /// Interpreter-to-compiled ratio over both phases combined.
    pub fn overall_speedup(&self) -> f64 {
        ratio(
            self.differential_interpreted + self.equiv_interpreted,
            self.differential_compiled + self.equiv_compiled,
        )
    }
}

fn ratio(slow: Duration, fast: Duration) -> f64 {
    let f = fast.as_secs_f64();
    if f <= 0.0 {
        return f64::INFINITY;
    }
    slow.as_secs_f64() / f
}

/// One timed engine run: the result (or error) and how long it took.
type Timed = (Result<Relation, ExecError>, Duration);

/// Time the compiled path on `q` over `dbs`: one compilation, then one
/// execution per database. A compiler rejection falls back to the hybrid
/// entry point's behavior (interpret) but is tallied separately so the
/// report shows how much of the stream the compiler covered.
///
/// Before the timed loop, one untimed execution per database warms the
/// witness data (page-faults, cache lines): whichever engine touches a
/// fresh witness first would otherwise pay that one-time memory cost,
/// and since the compiled side runs first here, skipping the warm-up
/// would fold the machine's cold-start tax into the compiled bucket
/// while handing the interpreter pre-warmed caches. Both engines are
/// measured on warm data; the compiler's own one-time cost stays in the
/// timed bucket (charged to the first execution below).
fn run_compiled(q: &Query, dbs: &[Database], bench: &mut EngineBench) -> Vec<Timed> {
    let t0 = Instant::now();
    let cq = compile_query(q, &dbs[0]);
    let compile_cost = t0.elapsed();
    if cq.is_none() {
        bench.compile_fallbacks += 1;
    }
    for db in dbs {
        // untimed warm-up; counters come from the timed runs only, so
        // the deterministic `fuzz.bench.*` totals are unaffected
        let _ = match &cq {
            Some(cq) => cq.execute(db),
            None => execute_query_interpreted(q, db),
        };
    }
    let mut out = Vec::with_capacity(dbs.len());
    for (i, db) in dbs.iter().enumerate() {
        let t = Instant::now();
        let res = match &cq {
            Some(cq) => cq.execute(db),
            None => execute_query_interpreted(q, db),
        };
        let mut elapsed = t.elapsed();
        if i == 0 {
            // charge compilation to the first execution so the compiled
            // side never hides its one-time cost
            elapsed += compile_cost;
        }
        let res = res.map(|(r, s)| {
            bench.counters.rows_scanned += s.rows_scanned;
            bench.counters.join_pairs += s.join_pairs;
            bench.counters.batches += s.batches;
            bench.counters.index_probes += s.index_probes;
            bench.counters.index_hits += s.index_hits;
            bench.counters.subquery_evals += s.subquery_evals;
            bench.counters.compiled += s.compiled;
            bench.counters.fallbacks += s.fallbacks;
            bench.counters.empty_prunes += s.empty_prunes;
            r
        });
        out.push((res, elapsed));
    }
    out
}

/// Time the interpreter on `q` over `dbs`.
fn run_interpreted(q: &Query, dbs: &[Database]) -> Vec<Timed> {
    dbs.iter()
        .map(|db| {
            let t = Instant::now();
            let res = execute_query_interpreted(q, db).map(|(r, _)| r);
            (res, t.elapsed())
        })
        .collect()
}

/// Compare the per-database outcomes of the two engines, accumulating
/// their wall-clock into the given phase buckets and counting
/// divergences. Mirrors the differential oracle's policy: both-error
/// agrees, a lone `ResourceLimit` skips, anything else one-sided or any
/// row difference diverges.
fn score(
    compiled: Vec<Timed>,
    interpreted: Vec<Timed>,
    buckets: (&mut Duration, &mut Duration),
    bench: &mut EngineBench,
) {
    for ((c_res, c_dur), (i_res, i_dur)) in compiled.into_iter().zip(interpreted) {
        *buckets.0 += c_dur;
        *buckets.1 += i_dur;
        bench.executions += 1;
        match (c_res, i_res) {
            (Ok(a), Ok(b)) => {
                let agree = a.columns.len() == b.columns.len()
                    && a.canonical_digest() == b.canonical_digest();
                if !agree {
                    bench.divergences += 1;
                }
            }
            (Err(_), Err(_)) => {}
            (Ok(_), Err(ExecError::ResourceLimit)) | (Err(ExecError::ResourceLimit), Ok(_)) => {
                bench.budget_skips += 1;
            }
            _ => bench.divergences += 1,
        }
    }
}

/// Is `q` binder-clean against the generated schema?
fn clean(q: &Query, gs: &GenSchema) -> bool {
    analyze(&Statement::Query(q.clone()), &gs.schema).is_empty()
}

/// Replay `cases` cases of the fuzz stream for `seed` and time the
/// compiled engine against the interpreter on every differential and
/// metamorphic (equivalence-verify) execution.
pub fn engine_bench(seed: u64, cases: u64) -> EngineBench {
    let mut bench = EngineBench {
        cases,
        ..EngineBench::default()
    };
    let catalog = transform_catalog();
    for index in 0..cases {
        let slot = index % SCHEMA_POOL;
        let gs = generate_schema(seed, slot);
        let mut rng = StdRng::seed_from_u64(mix(seed, 0xCA5E_0000 ^ index));
        let (query, _sql) = subject_query(&mut rng, &gs);
        let witnesses = witness_batch_cached(&gs.schema, mix(seed, 0xB17C_0000 ^ slot));

        // differential phase: the subject query on every witness
        let compiled = run_compiled(&query, &witnesses, &mut bench);
        let interpreted = run_interpreted(&query, &witnesses);
        let (mut dc, mut di) = (bench.differential_compiled, bench.differential_interpreted);
        score(compiled, interpreted, (&mut dc, &mut di), &mut bench);
        bench.differential_compiled = dc;
        bench.differential_interpreted = di;

        // equivalence-verify phase: every applicable transform pair
        for (ti, tinfo) in catalog.iter().enumerate() {
            let tseed = mix(seed, mix(index, 0x7A0F_0000 ^ ti as u64));
            let mut trng = StdRng::seed_from_u64(tseed);
            let Some((q1, q2)) = tinfo.apply(&query, &mut trng) else {
                continue;
            };
            if !clean(&q1, &gs) || !clean(&q2, &gs) {
                continue;
            }
            for q in [&q1, &q2] {
                let compiled = run_compiled(q, &witnesses, &mut bench);
                let interpreted = run_interpreted(q, &witnesses);
                let (mut ec, mut ei) = (bench.equiv_compiled, bench.equiv_interpreted);
                score(compiled, interpreted, (&mut ec, &mut ei), &mut bench);
                bench.equiv_compiled = ec;
                bench.equiv_interpreted = ei;
            }
        }
    }
    bench
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_replays_cleanly_with_zero_divergences() {
        let b = engine_bench(11, 6);
        assert_eq!(b.divergences, 0, "compiled and interpreter must agree");
        assert!(b.executions > 0);
        assert!(
            b.counters.compiled > 0,
            "the compiler should cover part of the generated stream"
        );
        assert!(b.differential_compiled > Duration::ZERO);
        assert!(b.differential_interpreted > Duration::ZERO);
    }

    #[test]
    fn deterministic_everything_but_wall_clock() {
        let a = engine_bench(23, 4);
        let b = engine_bench(23, 4);
        assert_eq!(a.executions, b.executions);
        assert_eq!(a.budget_skips, b.budget_skips);
        assert_eq!(a.compile_fallbacks, b.compile_fallbacks);
        assert_eq!(a.divergences, b.divergences);
        assert_eq!(a.counters, b.counters);
    }
}
