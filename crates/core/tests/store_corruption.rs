//! Direct corruption-handling tests for `squ::store`.
//!
//! The store is a cache: every way an entry can rot on disk — truncation,
//! bit flips, a store root that cannot be written — must demote to a miss
//! (or a warning) and never a panic or a wrong payload.

use squ::store::{fp_fuzz, Store};
use std::fs;
use std::path::PathBuf;

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("squ-store-corrupt-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

/// The single entry file under `root`, assuming exactly one was saved.
fn sole_entry(root: &PathBuf) -> PathBuf {
    let mut found = Vec::new();
    for stage in fs::read_dir(root).expect("store root exists") {
        let stage = stage.expect("readable dir entry").path();
        if stage.is_dir() {
            for f in fs::read_dir(&stage).expect("stage dir readable") {
                found.push(f.expect("readable dir entry").path());
            }
        }
    }
    assert_eq!(found.len(), 1, "expected exactly one store entry");
    found.remove(0)
}

#[test]
fn truncated_entry_is_a_miss_not_a_panic() {
    let root = temp_root("truncate");
    let fp = fp_fuzz(1, 0);
    {
        let mut store = Store::open(&root);
        store.save("fuzz", "case0", fp, "{\"index\":0,\"payload\":\"intact\"}");
    }
    let path = sole_entry(&root);
    let full = fs::read_to_string(&path).expect("entry readable");

    // cut the file anywhere — inside the payload, inside the header, or
    // down to nothing — and the load must cleanly miss
    for keep in [full.len() - 3, full.len() / 2, 10, 0] {
        fs::write(&path, &full[..keep]).expect("rewrite entry");
        let mut store = Store::open(&root);
        assert_eq!(store.load("fuzz", "case0", fp), None, "keep={keep}");
        let s = store.stats().get("fuzz").copied().unwrap_or_default();
        assert_eq!((s.hits, s.misses), (0, 1), "keep={keep}");
        assert_eq!(s.bytes_read, 0, "keep={keep}");
    }

    // restore the original bytes: the entry must verify again
    fs::write(&path, &full).expect("restore entry");
    let mut store = Store::open(&root);
    assert!(store.load("fuzz", "case0", fp).is_some());
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn payload_tampering_fails_the_hash_check() {
    let root = temp_root("tamper");
    let fp = fp_fuzz(2, 5);
    {
        let mut store = Store::open(&root);
        store.save("fuzz", "case5", fp, "{\"value\":\"original\"}");
    }
    let path = sole_entry(&root);
    let full = fs::read_to_string(&path).expect("entry readable");

    // same length, different bytes: the byte-count check passes, the
    // payload hash must catch it
    let tampered = full.replace("original", "0riginal");
    assert_ne!(tampered, full, "the tamper must change the payload");
    assert_eq!(tampered.len(), full.len());
    fs::write(&path, &tampered).expect("rewrite entry");

    let mut store = Store::open(&root);
    assert_eq!(store.load("fuzz", "case5", fp), None);
    let s = store.stats().get("fuzz").copied().unwrap_or_default();
    assert_eq!((s.hits, s.misses), (0, 1));
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn unwritable_store_root_warns_and_degrades_to_miss() {
    // a store rooted *under a regular file* can never create its stage
    // directories, even for root: every save must warn (not panic, not
    // exit) and every load must miss
    let blocker =
        std::env::temp_dir().join(format!("squ-store-corrupt-blocker-{}", std::process::id()));
    fs::write(&blocker, "not a directory").expect("create blocker file");
    let root = blocker.join("store");

    let mut store = Store::open(&root);
    let fp = fp_fuzz(3, 0);
    store.save("fuzz", "case0", fp, "{\"doomed\":true}");
    assert_eq!(store.load("fuzz", "case0", fp), None);
    let s = store.stats().get("fuzz").copied().unwrap_or_default();
    assert_eq!(s.misses, 1);
    assert_eq!(s.bytes_written, 0, "a failed save must not count bytes");

    let _ = fs::remove_file(&blocker);
}

#[test]
fn undecodable_payload_demotes_the_hit_to_a_miss() {
    #[derive(serde::Serialize)]
    struct V1 {
        value: String,
    }
    #[derive(serde::Serialize, serde::Deserialize)]
    struct V2 {
        value: u64,
    }

    let root = temp_root("demote");
    let fp = fp_fuzz(4, 0);
    {
        let mut store = Store::open(&root);
        store.save_value(
            "fuzz",
            "case0",
            fp,
            &V1 {
                value: "a string, not a number".to_string(),
            },
        );
    }

    // the entry is intact on disk (hash verifies) but does not decode as
    // the newer shape: load_value must return None and the recorded hit
    // must be demoted so `total_misses` reports the rebuild
    let mut store = Store::open(&root);
    let got: Option<V2> = store.load_value("fuzz", "case0", fp);
    assert!(got.is_none());
    let s = store.stats().get("fuzz").copied().unwrap_or_default();
    assert_eq!((s.hits, s.misses), (0, 1));
    assert_eq!(s.bytes_read, 0, "demotion must also return the bytes");
    assert_eq!(store.total_misses(), 1);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn wrong_fingerprint_stage_or_name_is_a_miss() {
    let root = temp_root("mismatch");
    let fp = fp_fuzz(5, 1);
    {
        let mut store = Store::open(&root);
        store.save("fuzz", "case1", fp, "{}");
    }
    let mut store = Store::open(&root);
    // stale fingerprint (e.g. a version bump) — file name differs, miss
    assert_eq!(store.load("fuzz", "case1", fp_fuzz(5, 2)), None);
    // same fingerprint requested under another stage/name — miss
    assert_eq!(store.load("artifact", "case1", fp), None);
    assert_eq!(store.load("fuzz", "case2", fp), None);
    // the genuine key still hits
    assert!(store.load("fuzz", "case1", fp).is_some());
    let _ = fs::remove_dir_all(&root);
}
