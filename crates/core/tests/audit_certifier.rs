//! Integration tests for the audit's static equivalence certifier: the
//! paper-seed suite audits clean (the certifier never contradicts a
//! label), the certifier convicts a substantial fraction of
//! non-equivalence labels without executing a single query, and the
//! report is byte-identical for any job count.

use squ::{audit_suite, Suite, PAPER_SEED};
use std::sync::OnceLock;

fn suite() -> &'static Suite {
    static SUITE: OnceLock<Suite> = OnceLock::new();
    SUITE.get_or_init(|| Suite::new(PAPER_SEED))
}

/// The full paper-seed audit holds every invariant, including the new
/// label-vs-certificate consistency checks.
#[test]
fn paper_seed_audit_is_clean() {
    let report = audit_suite(suite(), 2);
    assert!(
        report.is_clean(),
        "audit violations: {:#?}",
        report.violations
    );
    assert!(report.checked > 1000, "suite too small: {}", report.checked);
}

/// Acceptance floor: the certifier statically convicts at least 30% of
/// non-equivalence-labeled pairs — inequivalence proven from the ASTs
/// alone, with no engine execution.
#[test]
fn certifier_convicts_at_least_thirty_percent_of_noneq_pairs() {
    let report = audit_suite(suite(), 2);
    let c = &report.certs;
    assert!(c.noneq_pairs > 100, "too few pairs: {}", c.noneq_pairs);
    assert!(
        c.conviction_rate() >= 30.0,
        "conviction rate {:.1}% ({}/{}) below the 30% floor",
        c.conviction_rate(),
        c.noneq_convicted,
        c.noneq_pairs
    );
    assert!(
        c.certified_equivalent > 0,
        "no pair certified equivalent at all"
    );
    assert_eq!(
        c.pairs,
        c.certified_equivalent + c.certified_inequivalent + c.certified_unknown,
        "certificate tallies must partition the pairs"
    );
}

/// Certifier tallies land in the serialized report and survive a JSON
/// round trip, and the whole report is thread-count independent.
#[test]
fn audit_report_is_jobs_independent_and_round_trips() {
    let a = audit_suite(suite(), 1);
    let b = audit_suite(suite(), 4);
    assert_eq!(a.to_json(), b.to_json());

    let back: squ::AuditReport =
        serde_json::from_str(&a.to_json()).expect("audit report deserializes");
    assert_eq!(back.certs, a.certs);
    assert!(a.to_json().contains("noneq_convicted"), "{}", a.to_json());
}
