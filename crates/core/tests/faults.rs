//! Integration tests for the fault-injection layer: the `none` profile is
//! byte-for-byte the plain pipeline, the report is identical for any job
//! count, and the fault seed actually steers the injector.

use squ::llm::FaultProfile;
use squ::{run_fault_report, Suite, PAPER_SEED};
use std::sync::OnceLock;

fn suite() -> &'static Suite {
    static SUITE: OnceLock<Suite> = OnceLock::new();
    SUITE.get_or_init(|| Suite::new(PAPER_SEED))
}

/// The committed baseline for CI's `--fault-gate`: under the `none`
/// profile every response is the simulator's own output and the
/// extractors parse all of them — the manual-review bucket is empty.
#[test]
fn none_profile_matches_todays_behavior() {
    let report = run_fault_report(suite(), FaultProfile::none(), 0, 2);
    assert!(
        report.calls > 10_000,
        "full sweep expected, got {}",
        report.calls
    );
    assert_eq!(report.attempts, report.calls, "none profile never retries");
    assert_eq!(report.exhausted, 0);
    assert_eq!(
        report.needs_review, 0,
        "none-profile needs_review baseline is 0"
    );
    assert_eq!(report.needs_review_rate, 0.0);
    for stats in &report.by_fault {
        assert_eq!(stats.calls, 0, "{} fired under none", stats.kind);
    }
    // the fault seed is irrelevant when no fault can fire (the report
    // records the seed itself, so normalize that field before comparing)
    let mut reseeded = run_fault_report(suite(), FaultProfile::none(), 99, 2);
    reseeded.fault_seed = 0;
    assert_eq!(report.to_json(), reseeded.to_json());
}

/// `faults.json` must be byte-identical whatever `--jobs` is.
#[test]
fn report_is_identical_for_any_job_count() {
    let sequential = run_fault_report(suite(), FaultProfile::light(), 7, 1);
    let parallel = run_fault_report(suite(), FaultProfile::light(), 7, 4);
    assert_eq!(sequential.to_json(), parallel.to_json());
}

/// The injector is seeded: a different fault seed draws different faults,
/// and under a faulty profile retries and review cases actually appear.
#[test]
fn fault_seed_steers_the_injector() {
    let a = run_fault_report(suite(), FaultProfile::heavy(), 0, 4);
    let b = run_fault_report(suite(), FaultProfile::heavy(), 1, 4);
    assert_ne!(a.to_json(), b.to_json());
    for report in [&a, &b] {
        assert!(report.attempts > report.calls, "heavy profile should retry");
        assert!(
            report.needs_review > 0,
            "heavy profile should corrupt some calls"
        );
        assert!(
            report
                .by_fault
                .iter()
                .any(|s| s.calls > 0 && s.survived > 0),
            "some corrupted calls should still extract"
        );
    }
}
