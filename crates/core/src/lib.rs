//! # squ — the SQL-understanding evaluation benchmark
//!
//! A full Rust reproduction of *Evaluating SQL Understanding in Large
//! Language Models* (EDBT 2025): four sampled SQL workloads, six derived
//! task datasets with machine-verified labels (the paper's five plus a
//! dialect-translation extension), five calibrated LLM simulators, the
//! prompt → response → extraction pipeline, and a reproduction function
//! for **every table and figure** in the paper.
//!
//! ```no_run
//! use squ::{run_experiment, ExperimentId, Suite, PAPER_SEED};
//!
//! let suite = Suite::new(PAPER_SEED);
//! let artifact = run_experiment(&suite, ExperimentId::Table6);
//! println!("{}\n{}", artifact.title, artifact.body);
//! ```
//!
//! Quick orientation:
//!
//! * [`Suite`] — builds all datasets from one master seed;
//! * [`pipeline`] — runs any [`squ_llm::LanguageModel`] over a task
//!   dataset and extracts predictions from its verbose responses;
//! * [`run_experiment`] / [`run_all`] — regenerate the paper's artifacts;
//! * [`render`] — plain-text table / bar-chart / CSV rendering.

#![warn(missing_docs)]

pub mod ablations;
pub mod audit;
pub mod experiments;
pub mod export;
pub mod faults;
pub mod fuzz;
pub mod par;
pub mod pipeline;
#[cfg(test)]
mod pipeline_tests;
pub mod registry;
pub mod render;
pub mod store;
mod suite;
pub mod synth;
pub mod timing;

pub use ablations::{run_ablation, run_all_ablations, AblationId};
pub use audit::{audit_suite, AuditReport, Violation};
pub use experiments::{run_all, run_experiment, Artifact, ExperimentId};
pub use export::{export_suite, Manifest};
pub use faults::{run_fault_report, FaultCell, FaultKindStats, FaultReport};
pub use fuzz::{run_engine_bench, run_fuzz, run_fuzz_dialect};
pub use registry::{registry, DynTask};
pub use store::{suite_fingerprint, Store};
pub use suite::{Suite, TaskSet, PAPER_SEED};
pub use synth::{run_synth, SynthConfig, SynthReport};

// Re-export the layers a downstream user composes with.
pub use squ_eval as eval;
pub use squ_llm as llm;
pub use squ_tasks as tasks;
pub use squ_workload as workload;
