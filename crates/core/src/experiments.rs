//! One reproduction function per paper artifact (every table and figure).
//!
//! Each experiment returns an [`Artifact`]: a title, a plain-text body
//! (tables / bar charts), and CSV data, ready for the repro harness to
//! print and persist.

use crate::pipeline::*;
use crate::render::{bar_chart, f2, TextTable};
use crate::suite::Suite;
use squ_eval::{BinaryCounts, Confusion, LocationStats, PropertySlice, SubtypeBreakdown};
use squ_llm::{LanguageModel, ModelId, SimulatedModel};
use squ_tasks::COST_THRESHOLD_MS;
use squ_workload::analysis::{correlation_matrix, dataset_histograms};
use squ_workload::Workload;

/// Identifier of one paper artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ExperimentId {
    Table1,
    Table2,
    Fig1,
    Fig2,
    Fig3,
    Fig4,
    Fig5,
    Table3,
    Fig6,
    Fig7,
    Table4,
    Fig8,
    Fig9,
    Table5,
    Table6,
    Fig10,
    Table7,
    Fig11,
    Fig12,
    CaseStudy,
}

impl ExperimentId {
    /// Every artifact, in paper order.
    pub const ALL: [ExperimentId; 20] = [
        ExperimentId::Table1,
        ExperimentId::Table2,
        ExperimentId::Fig1,
        ExperimentId::Fig2,
        ExperimentId::Fig3,
        ExperimentId::Fig4,
        ExperimentId::Fig5,
        ExperimentId::Table3,
        ExperimentId::Fig6,
        ExperimentId::Fig7,
        ExperimentId::Table4,
        ExperimentId::Fig8,
        ExperimentId::Fig9,
        ExperimentId::Table5,
        ExperimentId::Table6,
        ExperimentId::Fig10,
        ExperimentId::Table7,
        ExperimentId::Fig11,
        ExperimentId::Fig12,
        ExperimentId::CaseStudy,
    ];

    /// Short slug used for file names and `--only` filters.
    pub fn slug(&self) -> &'static str {
        match self {
            ExperimentId::Table1 => "table1",
            ExperimentId::Table2 => "table2",
            ExperimentId::Fig1 => "fig1",
            ExperimentId::Fig2 => "fig2",
            ExperimentId::Fig3 => "fig3",
            ExperimentId::Fig4 => "fig4",
            ExperimentId::Fig5 => "fig5",
            ExperimentId::Table3 => "table3",
            ExperimentId::Fig6 => "fig6",
            ExperimentId::Fig7 => "fig7",
            ExperimentId::Table4 => "table4",
            ExperimentId::Fig8 => "fig8",
            ExperimentId::Fig9 => "fig9",
            ExperimentId::Table5 => "table5",
            ExperimentId::Table6 => "table6",
            ExperimentId::Fig10 => "fig10",
            ExperimentId::Table7 => "table7",
            ExperimentId::Fig11 => "fig11",
            ExperimentId::Fig12 => "fig12",
            ExperimentId::CaseStudy => "casestudy",
        }
    }

    /// Parse a slug.
    pub fn from_slug(s: &str) -> Option<ExperimentId> {
        Self::ALL.iter().copied().find(|e| e.slug() == s)
    }
}

/// One reproduced artifact.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Artifact {
    /// Artifact slug.
    pub id: String,
    /// Human title matching the paper's caption.
    pub title: String,
    /// Rendered text body.
    pub body: String,
    /// CSV form of the main table, when tabular.
    pub csv: Option<String>,
}

/// Run one experiment against a suite.
pub fn run_experiment(suite: &Suite, id: ExperimentId) -> Artifact {
    match id {
        ExperimentId::Table1 => table1(),
        ExperimentId::Table2 => table2(suite),
        ExperimentId::Fig1 => fig_histograms(suite, Workload::Sdss, "fig1"),
        ExperimentId::Fig2 => fig_histograms(suite, Workload::SqlShare, "fig2"),
        ExperimentId::Fig3 => fig_histograms(suite, Workload::JoinOrder, "fig3"),
        ExperimentId::Fig4 => fig4(suite),
        ExperimentId::Fig5 => fig5(suite),
        ExperimentId::Table3 => table3(suite),
        ExperimentId::Fig6 => fig6(suite),
        ExperimentId::Fig7 => fig7(suite),
        ExperimentId::Table4 => table4(suite),
        ExperimentId::Fig8 => fig8(suite),
        ExperimentId::Fig9 => fig9(suite),
        ExperimentId::Table5 => table5(suite),
        ExperimentId::Table6 => table6(suite),
        ExperimentId::Fig10 => fig10(suite),
        ExperimentId::Table7 => table7(suite),
        ExperimentId::Fig11 => fig11(suite),
        ExperimentId::Fig12 => fig12(suite),
        ExperimentId::CaseStudy => case_study(),
    }
}

/// Run every experiment.
pub fn run_all(suite: &Suite) -> Vec<Artifact> {
    ExperimentId::ALL
        .iter()
        .map(|id| run_experiment(suite, *id))
        .collect()
}

fn model(id: ModelId) -> SimulatedModel {
    SimulatedModel::new(id)
}

fn task_workloads() -> [Workload; 3] {
    Workload::task_workloads()
}

// ---------------- Table 1 ----------------

fn table1() -> Artifact {
    let mut t = TextTable::new(&[
        "Skill",
        "syntax error",
        "missing token",
        "Q.perf. estimate",
        "Q.equiv.",
        "Q.explain.",
    ]);
    t.row_strs(&["Recognition", "x", "x", "", "", ""]);
    t.row_strs(&["Semantics", "", "", "", "x", "x"]);
    t.row_strs(&["Context", "", "x", "x", "", "x"]);
    t.row_strs(&["Coherence", "x", "", "x", "x", ""]);
    Artifact {
        id: "table1".into(),
        title: "Table 1: Skill-to-SQL task mapping".into(),
        csv: Some(t.to_csv()),
        body: t.render(),
    }
}

// ---------------- Table 2 ----------------

fn table2(suite: &Suite) -> Artifact {
    let mut t = TextTable::new(&[
        "Workload", "Original", "Sampled", "SELECT", "CREATE", "Aggr yes", "Aggr no", "Nest 0",
        "Nest >=1",
    ]);
    for w in [
        Workload::Sdss,
        Workload::SqlShare,
        Workload::JoinOrder,
        Workload::Spider,
    ] {
        let ds = suite.dataset(w);
        let selects = ds
            .queries
            .iter()
            .filter(|q| q.props.query_type == "SELECT")
            .count();
        let aggr = ds.queries.iter().filter(|q| q.props.aggregate).count();
        let nest0 = ds
            .queries
            .iter()
            .filter(|q| q.props.nestedness == 0)
            .count();
        t.row(&[
            w.name().to_string(),
            w.original_size().to_string(),
            ds.len().to_string(),
            selects.to_string(),
            (ds.len() - selects).to_string(),
            aggr.to_string(),
            (ds.len() - aggr).to_string(),
            nest0.to_string(),
            (ds.len() - nest0).to_string(),
        ]);
    }
    Artifact {
        id: "table2".into(),
        title: "Table 2: Workload statistics overview".into(),
        csv: Some(t.to_csv()),
        body: t.render(),
    }
}

// ---------------- Figures 1-3: property histograms ----------------

fn fig_histograms(suite: &Suite, w: Workload, slug: &str) -> Artifact {
    let ds = suite.dataset(w);
    let mut body = String::new();
    let mut csv = String::from("property,bucket,count\n");
    for h in dataset_histograms(ds) {
        body.push_str(&format!("-- {} --\n", h.property));
        let items: Vec<(String, f64)> = h
            .buckets
            .iter()
            .map(|(label, c)| (label.clone(), *c as f64))
            .collect();
        body.push_str(&bar_chart(&items, 40));
        body.push('\n');
        for (label, c) in &h.buckets {
            csv.push_str(&format!("{},{},{}\n", h.property, label, c));
        }
    }
    Artifact {
        id: slug.to_string(),
        title: format!(
            "Figure {}: {} query-property histograms",
            &slug[3..],
            w.name()
        ),
        body,
        csv: Some(csv),
    }
}

// ---------------- Figure 4: correlations ----------------

fn fig4(suite: &Suite) -> Artifact {
    let mut body = String::new();
    let mut csv = String::from("workload,prop_a,prop_b,pearson\n");
    for w in [
        Workload::Sdss,
        Workload::SqlShare,
        Workload::JoinOrder,
        Workload::Spider,
    ] {
        let ds = suite.dataset(w);
        let m = correlation_matrix(ds);
        body.push_str(&format!("== {} ==\n", w.name()));
        let mut t = TextTable::new(
            &std::iter::once("")
                .chain(m.labels.iter().map(|s| s.as_str()))
                .collect::<Vec<_>>(),
        );
        for (i, row_label) in m.labels.iter().enumerate() {
            let mut cells = vec![row_label.clone()];
            for j in 0..m.labels.len() {
                cells.push(f2(m.matrix[i][j]));
            }
            t.row(&cells);
        }
        body.push_str(&t.render());
        body.push_str("strongly correlated pairs (|r| >= 0.7):\n");
        for (a, b, r) in m.strong_pairs(0.7) {
            body.push_str(&format!("  {a} x {b}: {r:.2}\n"));
            csv.push_str(&format!("{},{a},{b},{r:.4}\n", w.name()));
        }
        body.push('\n');
    }
    Artifact {
        id: "fig4".into(),
        title: "Figure 4: Pairwise correlations between query properties".into(),
        body,
        csv: Some(csv),
    }
}

// ---------------- Figure 5: SDSS elapsed times ----------------

fn fig5(suite: &Suite) -> Artifact {
    let times: Vec<f64> = suite
        .sdss
        .queries
        .iter()
        .filter_map(|q| q.elapsed_ms)
        .collect();
    let edges = [1.0, 10.0, 50.0, 200.0, 1000.0, 10_000.0];
    let hist = squ_workload::analysis::histogram("elapsed_ms", &times, &edges);
    let items: Vec<(String, f64)> = hist
        .buckets
        .iter()
        .map(|(l, c)| (format!("{l} ms"), *c as f64))
        .collect();
    let high = times.iter().filter(|t| **t > COST_THRESHOLD_MS).count();
    let mut body = bar_chart(&items, 40);
    body.push_str(&format!(
        "\nthreshold {COST_THRESHOLD_MS} ms: {high} costly / {} cheap of {}\n",
        times.len() - high,
        times.len()
    ));
    let mut csv = String::from("bucket,count\n");
    for (l, c) in &hist.buckets {
        csv.push_str(&format!("{l},{c}\n"));
    }
    Artifact {
        id: "fig5".into(),
        title: "Figure 5: Elapsed time of sampled SDSS queries".into(),
        body,
        csv: Some(csv),
    }
}

// ---------------- Table 3: syntax_error (+type) ----------------

fn table3(suite: &Suite) -> Artifact {
    let mut t = TextTable::new(&[
        "Case",
        "Model",
        "SDSS P",
        "SDSS R",
        "SDSS F1",
        "SQLShare P",
        "SQLShare R",
        "SQLShare F1",
        "JOB P",
        "JOB R",
        "JOB F1",
    ]);
    for case in ["Syntax Error", "Syn. Error Type"] {
        for m in ModelId::ALL {
            let mut cells = vec![case.to_string(), m.name().to_string()];
            for w in task_workloads() {
                let outcomes = run_syntax(&model(m), dataset_id(w), suite.syntax_for(w));
                let (p, r, f1) = if case == "Syntax Error" {
                    let c = BinaryCounts::from_pairs(
                        outcomes.iter().map(|o| (o.example.has_error, o.said_error)),
                    );
                    (c.precision(), c.recall(), c.f1())
                } else {
                    // multi-class type identification over the positives
                    // the model detected (the paper's _type tasks measure
                    // classification quality, not re-detection)
                    let mut conf = Confusion::default();
                    for o in &outcomes {
                        if let (Some(truth), true) = (o.example.error_type, o.said_error) {
                            let pred = o
                                .said_type
                                .clone()
                                .unwrap_or_else(|| "unspecified".to_string());
                            conf.record(truth.label(), &pred);
                        }
                    }
                    conf.weighted_metrics()
                };
                cells.extend([f2(p), f2(r), f2(f1)]);
            }
            t.row(&cells);
        }
    }
    let csv_t = t.to_csv();
    Artifact {
        id: "table3".into(),
        title: "Table 3: Accuracy in syntax_error and syntax_error_type".into(),
        body: t.render(),
        csv: Some(csv_t),
    }
}

// ---------------- Figure 6: word_count vs cells (syntax, SDSS) ----------------

fn slice_block(title: &str, slice: &PropertySlice) -> String {
    let mut out = format!("-- {title} --\n");
    let mut t = TextTable::new(&["cell", "count", "avg", "median"]);
    for c in &slice.cells {
        t.row(&[
            c.cell.clone(),
            c.count.to_string(),
            f2(c.average),
            f2(c.median),
        ]);
    }
    out.push_str(&t.render());
    out
}

fn syntax_slice(suite: &Suite, m: ModelId, w: Workload, prop: &str) -> PropertySlice {
    let outcomes = run_syntax(&model(m), dataset_id(w), suite.syntax_for(w));
    PropertySlice::build(
        prop,
        outcomes.iter().map(|o| {
            (
                o.example.has_error,
                o.said_error,
                squ_workload::analysis::prop_value(&o.example.props, prop),
            )
        }),
    )
}

fn fig6(suite: &Suite) -> Artifact {
    let mut body = String::new();
    for m in [ModelId::Llama3, ModelId::Gemini] {
        let slice = syntax_slice(suite, m, Workload::Sdss, "word_count");
        body.push_str(&slice_block(
            &format!("{} / SDSS / word_count", m.name()),
            &slice,
        ));
        body.push('\n');
    }
    Artifact {
        id: "fig6".into(),
        title: "Figure 6: word_count vs model failure in syntax_error (SDSS)".into(),
        body,
        csv: None,
    }
}

// ---------------- Figure 7: FN by syntax error type ----------------

fn fig7(suite: &Suite) -> Artifact {
    let mut body = String::new();
    let mut csv = String::from("workload,model,error_type,positives,fn,fn_rate\n");
    for w in task_workloads() {
        body.push_str(&format!("== {} ==\n", w.name()));
        for m in ModelId::ALL {
            let outcomes = run_syntax(&model(m), dataset_id(w), suite.syntax_for(w));
            let b = SubtypeBreakdown::build(
                outcomes
                    .iter()
                    .filter_map(|o| o.example.error_type.map(|t| (t.label(), o.said_error))),
            );
            let items: Vec<(String, f64)> = b
                .rows
                .iter()
                .map(|r| (format!("{} {}", m.name(), r.subtype), r.fn_rate))
                .collect();
            body.push_str(&bar_chart(&items, 30));
            for r in &b.rows {
                csv.push_str(&format!(
                    "{},{},{},{},{},{:.4}\n",
                    w.name(),
                    m.name(),
                    r.subtype,
                    r.positives,
                    r.false_negatives,
                    r.fn_rate
                ));
            }
        }
        body.push('\n');
    }
    Artifact {
        id: "fig7".into(),
        title: "Figure 7: Relationship between syntax error type and FN".into(),
        body,
        csv: Some(csv),
    }
}

// ---------------- Table 4: miss_token (+type) ----------------

fn table4(suite: &Suite) -> Artifact {
    let mut t = TextTable::new(&[
        "Case",
        "Model",
        "SDSS P",
        "SDSS R",
        "SDSS F1",
        "SQLShare P",
        "SQLShare R",
        "SQLShare F1",
        "JOB P",
        "JOB R",
        "JOB F1",
    ]);
    for case in ["Missing Token", "Token Type"] {
        for m in ModelId::ALL {
            let mut cells = vec![case.to_string(), m.name().to_string()];
            for w in task_workloads() {
                let outcomes = run_token(&model(m), dataset_id(w), suite.tokens_for(w));
                let (p, r, f1) = if case == "Missing Token" {
                    let c = BinaryCounts::from_pairs(
                        outcomes
                            .iter()
                            .map(|o| (o.example.has_missing, o.said_missing)),
                    );
                    (c.precision(), c.recall(), c.f1())
                } else {
                    let mut conf = Confusion::default();
                    for o in &outcomes {
                        if let (Some(truth), true) = (o.example.token_type, o.said_missing) {
                            let pred = o
                                .said_type
                                .clone()
                                .unwrap_or_else(|| "unspecified".to_string());
                            conf.record(truth.label(), &pred);
                        }
                    }
                    conf.weighted_metrics()
                };
                cells.extend([f2(p), f2(r), f2(f1)]);
            }
            t.row(&cells);
        }
    }
    Artifact {
        id: "table4".into(),
        title: "Table 4: Accuracy for miss_token and miss_token_type".into(),
        csv: Some(t.to_csv()),
        body: t.render(),
    }
}

// ---------------- Figure 8: miss_token failures (GPT3.5, SQLShare) ----------------

fn fig8(suite: &Suite) -> Artifact {
    let outcomes = run_token(
        &model(ModelId::Gpt35),
        dataset_id(Workload::SqlShare),
        suite.tokens_for(Workload::SqlShare),
    );
    let mut body = String::new();
    for prop in ["word_count", "predicate_count", "nestedness", "table_count"] {
        let slice = PropertySlice::build(
            prop,
            outcomes.iter().map(|o| {
                (
                    o.example.has_missing,
                    o.said_missing,
                    squ_workload::analysis::prop_value(&o.example.props, prop),
                )
            }),
        );
        body.push_str(&slice_block(&format!("GPT3.5 / SQLShare / {prop}"), &slice));
        body.push('\n');
    }
    Artifact {
        id: "fig8".into(),
        title: "Figure 8: LLMs' failure in miss_token for SQLShare".into(),
        body,
        csv: None,
    }
}

// ---------------- Figure 9: FN by missing token type ----------------

fn fig9(suite: &Suite) -> Artifact {
    let mut body = String::new();
    let mut csv = String::from("workload,model,token_type,positives,fn,fn_rate\n");
    for w in task_workloads() {
        body.push_str(&format!("== {} ==\n", w.name()));
        for m in ModelId::ALL {
            let outcomes = run_token(&model(m), dataset_id(w), suite.tokens_for(w));
            let b = SubtypeBreakdown::build(
                outcomes
                    .iter()
                    .filter_map(|o| o.example.token_type.map(|t| (t.label(), o.said_missing))),
            );
            let items: Vec<(String, f64)> = b
                .rows
                .iter()
                .map(|r| (format!("{} {}", m.name(), r.subtype), r.fn_rate))
                .collect();
            body.push_str(&bar_chart(&items, 30));
            for r in &b.rows {
                csv.push_str(&format!(
                    "{},{},{},{},{},{:.4}\n",
                    w.name(),
                    m.name(),
                    r.subtype,
                    r.positives,
                    r.false_negatives,
                    r.fn_rate
                ));
            }
        }
        body.push('\n');
    }
    Artifact {
        id: "fig9".into(),
        title: "Figure 9: Relationship between missing token type and FN".into(),
        body,
        csv: Some(csv),
    }
}

// ---------------- Table 5: miss_token_loc ----------------

fn table5(suite: &Suite) -> Artifact {
    let mut t = TextTable::new(&[
        "Model",
        "SDSS MAE",
        "SDSS HR",
        "SQLShare MAE",
        "SQLShare HR",
        "JOB MAE",
        "JOB HR",
    ]);
    for m in ModelId::ALL {
        let mut cells = vec![m.name().to_string()];
        for w in task_workloads() {
            let outcomes = run_token(&model(m), dataset_id(w), suite.tokens_for(w));
            let stats = LocationStats::from_pairs(outcomes.iter().filter_map(|o| {
                match (o.example.position, o.said_position) {
                    (Some(t), Some(p)) => Some((t, p)),
                    _ => None,
                }
            }));
            cells.push(f2(stats.mae()));
            cells.push(f2(stats.hit_rate()));
        }
        t.row(&cells);
    }
    Artifact {
        id: "table5".into(),
        title: "Table 5: MAE and Hit Rate (HR) for miss_token_loc".into(),
        csv: Some(t.to_csv()),
        body: t.render(),
    }
}

// ---------------- Table 6: performance_pred ----------------

fn table6(suite: &Suite) -> Artifact {
    let mut t = TextTable::new(&["Model", "Prec.", "Rec.", "F1"]);
    for m in ModelId::ALL {
        let outcomes = run_perf(&model(m), suite.perf());
        let c = BinaryCounts::from_pairs(
            outcomes
                .iter()
                .map(|o| (o.example.is_costly, o.said_costly)),
        );
        t.row(&[
            m.name().to_string(),
            f2(c.precision()),
            f2(c.recall()),
            f2(c.f1()),
        ]);
    }
    Artifact {
        id: "table6".into(),
        title: "Table 6: Accuracy for performance_pred (SDSS)".into(),
        csv: Some(t.to_csv()),
        body: t.render(),
    }
}

// ---------------- Figure 10: perf failures (MistralAI) ----------------

fn fig10(suite: &Suite) -> Artifact {
    let outcomes = run_perf(&model(ModelId::MistralAi), suite.perf());
    let mut body = String::new();
    for prop in ["word_count", "column_count"] {
        let slice = PropertySlice::build(
            prop,
            outcomes.iter().map(|o| {
                (
                    o.example.is_costly,
                    o.said_costly,
                    squ_workload::analysis::prop_value(&o.example.props, prop),
                )
            }),
        );
        body.push_str(&slice_block(&format!("MistralAI / SDSS / {prop}"), &slice));
        body.push('\n');
    }
    Artifact {
        id: "fig10".into(),
        title: "Figure 10: MistralAI's failure in performance_pred".into(),
        body,
        csv: None,
    }
}

// ---------------- Table 7: query_equiv (+type) ----------------

fn table7(suite: &Suite) -> Artifact {
    let mut t = TextTable::new(&[
        "Case",
        "Model",
        "SDSS P",
        "SDSS R",
        "SDSS F1",
        "SQLShare P",
        "SQLShare R",
        "SQLShare F1",
        "JOB P",
        "JOB R",
        "JOB F1",
    ]);
    for case in ["Equivalence", "Equiv. Type"] {
        for m in ModelId::ALL {
            let mut cells = vec![case.to_string(), m.name().to_string()];
            for w in task_workloads() {
                let outcomes = run_equiv(&model(m), dataset_id(w), suite.equiv_for(w));
                let (p, r, f1) = if case == "Equivalence" {
                    let c = BinaryCounts::from_pairs(
                        outcomes
                            .iter()
                            .map(|o| (o.example.equivalent, o.said_equivalent)),
                    );
                    (c.precision(), c.recall(), c.f1())
                } else {
                    let mut conf = Confusion::default();
                    for o in &outcomes {
                        if o.example.equivalent && o.said_equivalent {
                            let pred = o
                                .said_type
                                .clone()
                                .unwrap_or_else(|| "unspecified".to_string());
                            conf.record(&o.example.transform, &pred);
                        }
                    }
                    conf.weighted_metrics()
                };
                cells.extend([f2(p), f2(r), f2(f1)]);
            }
            t.row(&cells);
        }
    }
    Artifact {
        id: "table7".into(),
        title: "Table 7: Accuracy in query_equiv and query_equiv_type".into(),
        csv: Some(t.to_csv()),
        body: t.render(),
    }
}

// ---------------- Figures 11/12: equiv failures ----------------

fn equiv_slice(suite: &Suite, m: ModelId, w: Workload, prop: &str) -> PropertySlice {
    let outcomes = run_equiv(&model(m), dataset_id(w), suite.equiv_for(w));
    PropertySlice::build(
        prop,
        outcomes.iter().map(|o| {
            (
                o.example.equivalent,
                o.said_equivalent,
                squ_workload::analysis::prop_value(&o.example.props, prop),
            )
        }),
    )
}

fn fig11(suite: &Suite) -> Artifact {
    let mut body = String::new();
    for (m, w) in [
        (ModelId::Gpt35, Workload::Sdss),
        (ModelId::Llama3, Workload::JoinOrder),
    ] {
        let slice = equiv_slice(suite, m, w, "word_count");
        body.push_str(&slice_block(
            &format!("{} / {} / word_count", m.name(), w.name()),
            &slice,
        ));
        body.push('\n');
    }
    Artifact {
        id: "fig11".into(),
        title: "Figure 11: word_count and LLM failures in query_equiv".into(),
        body,
        csv: None,
    }
}

fn fig12(suite: &Suite) -> Artifact {
    let mut body = String::new();
    for w in [Workload::Sdss, Workload::JoinOrder] {
        let slice = equiv_slice(suite, ModelId::MistralAi, w, "predicate_count");
        body.push_str(&slice_block(
            &format!("MistralAI / {} / predicate_count", w.name()),
            &slice,
        ));
        body.push('\n');
    }
    Artifact {
        id: "fig12".into(),
        title: "Figure 12: predicate_count and LLM failure in query_equiv".into(),
        body,
        csv: None,
    }
}

// ---------------- §4.5 case study ----------------

fn case_study() -> Artifact {
    use squ_llm::{GroundTruth, Request, Task};
    let mut body = String::new();
    for (name, sql, reference) in squ_tasks::case_study_queries() {
        let stmt = squ_parser::parse(sql).expect("case-study queries parse"); // lint:allow: generated/fixed SQL, parse covered by tests
        let facts = squ_tasks::key_facts(&stmt);
        let props = squ_workload::query_props(sql, &stmt);
        body.push_str(&format!(
            "== {name} ==\nSQL: {sql}\nReference: {reference}\n"
        ));
        for mid in ModelId::ALL {
            let m = model(mid);
            let req = Request {
                task: Task::Explain,
                dataset: squ_llm::DatasetId::Spider,
                example_id: format!("case-{name}"),
                prompt: sql.to_string(),
                truth: GroundTruth::Explain {
                    reference: reference.to_string(),
                    facts: facts.clone(),
                    sql: sql.to_string(),
                },
                props: props.clone(),
            };
            let explanation = m.respond(&req);
            let rubric = squ_eval::score_explanation(&explanation, &facts);
            body.push_str(&format!(
                "  {:<9} [{:.2}] {}\n",
                mid.name(),
                rubric.score,
                explanation
            ));
            if !rubric.missing.is_empty() {
                body.push_str(&format!(
                    "            missing: {}\n",
                    rubric.missing.join("; ")
                ));
            }
        }
        body.push('\n');
    }
    Artifact {
        id: "casestudy".into(),
        title: "Section 4.5: Query-explanation case study (Q15-Q18)".into(),
        body,
        csv: None,
    }
}
