//! Unit tests for the pipeline layer using scripted stub models — the
//! extraction and outcome mapping is exercised without any simulator in
//! the loop.

use crate::pipeline::*;
use squ_llm::{DatasetId, LanguageModel, Request};
use squ_tasks::{SyntaxErrorType, SyntaxExample, TokenExample, TokenType};
use squ_workload::QueryProps;

/// A model that replays a fixed response for every request.
struct Scripted(&'static str);

impl LanguageModel for Scripted {
    fn name(&self) -> &'static str {
        "scripted"
    }
    fn respond(&self, _req: &Request) -> String {
        self.0.to_string()
    }
}

fn props() -> QueryProps {
    QueryProps {
        char_count: 60,
        word_count: 10,
        query_type: "SELECT".into(),
        table_count: 1,
        join_count: 0,
        column_count: 2,
        function_count: 0,
        predicate_count: 1,
        nestedness: 0,
        aggregate: false,
    }
}

fn syntax_example(has_error: bool) -> SyntaxExample {
    SyntaxExample {
        query_id: "u-1".into(),
        schema_name: "sdss".into(),
        sql: "SELECT plate FROM SpecObj".into(),
        has_error,
        error_type: has_error.then_some(SyntaxErrorType::AggrAttr),
        expected_span: None,
        props: props(),
    }
}

fn token_example() -> TokenExample {
    TokenExample {
        query_id: "u-2".into(),
        schema_name: "sdss".into(),
        sql: "SELECT plate SpecObj".into(),
        has_missing: true,
        token_type: Some(TokenType::Keyword),
        removed_text: Some("FROM".into()),
        position: Some(2),
        removed_at: Some(13),
        props: props(),
    }
}

#[test]
fn syntax_outcome_maps_affirmative_response() {
    let m = Scripted("Yes, the query contains a syntax error (error type: aggr-attr).");
    let out = run_syntax(&m, DatasetId::Sdss, &[syntax_example(true)]);
    assert!(out[0].said_error);
    assert_eq!(out[0].said_type.as_deref(), Some("aggr-attr"));
    assert!(!out[0].needs_review);
}

#[test]
fn syntax_outcome_maps_negative_response() {
    let m = Scripted("No, the query does not contain any syntax errors.");
    let out = run_syntax(&m, DatasetId::Sdss, &[syntax_example(false)]);
    assert!(!out[0].said_error);
    assert!(out[0].said_type.is_none());
}

#[test]
fn unparseable_response_flags_review_and_defaults_negative() {
    let m = Scripted("I am a language model and cannot evaluate SQL.");
    let out = run_syntax(&m, DatasetId::Sdss, &[syntax_example(true)]);
    assert!(!out[0].said_error, "review default is the negative answer");
    assert!(out[0].needs_review);
}

#[test]
fn token_outcome_extracts_type_word_and_position() {
    let m = Scripted(
        "Yes — the query is incomplete. Missing token type: keyword. Missing word: FROM. Position: 2.",
    );
    let out = run_token(&m, DatasetId::Sdss, &[token_example()]);
    assert!(out[0].said_missing);
    assert_eq!(out[0].said_type.as_deref(), Some("keyword"));
    assert_eq!(out[0].said_position, Some(2));
    assert_eq!(out[0].said_word.as_deref(), Some("FROM"));
}

#[test]
fn negative_token_response_has_no_fields() {
    let m = Scripted("No, nothing seems to be missing from this query.");
    let out = run_token(&m, DatasetId::Sdss, &[token_example()]);
    assert!(!out[0].said_missing);
    assert!(out[0].said_type.is_none());
    assert!(out[0].said_position.is_none());
    assert!(out[0].said_word.is_none());
}

#[test]
fn dataset_id_mapping_is_total() {
    use squ_workload::Workload;
    assert_eq!(dataset_id(Workload::Sdss), DatasetId::Sdss);
    assert_eq!(dataset_id(Workload::SqlShare), DatasetId::SqlShare);
    assert_eq!(dataset_id(Workload::JoinOrder), DatasetId::JoinOrder);
    assert_eq!(dataset_id(Workload::Spider), DatasetId::Spider);
}

#[test]
fn all_models_registry_covers_the_paper() {
    let models = all_models();
    assert_eq!(models.len(), 5);
    let names: Vec<&str> = models.iter().map(|(_, m)| m.name()).collect();
    for expected in ["GPT4", "GPT3.5", "Llama3", "MistralAI", "Gemini"] {
        assert!(names.contains(&expected), "missing {expected}");
    }
}
