//! Ablation studies and paper-future-work extensions.
//!
//! Beyond the paper's own artifacts, these experiments probe the
//! benchmark's design choices (DESIGN.md §5/§7) and prototype the §6
//! future-work directions:
//!
//! * [`ablation_tilt`] — turn the simulators' complexity tilt off and show
//!   the Figure-6 FN-vs-TP length gap collapse (the slicing figures are
//!   emergent, not hard-coded);
//! * [`ablation_subtype`] — turn subtype weights off and show Figure 7's
//!   per-type difficulty ordering flatten;
//! * [`ablation_witness`] — vary the witness-batch size used for
//!   differential label verification and measure how many non-equivalence
//!   labels a smaller batch would miss (why the benchmark uses 5);
//! * [`ext_fewshot`] — the paper's §6 future work: few-shot and fine-tuned
//!   operating points modeled as error-rate reductions, re-run through the
//!   full pipeline.

use crate::pipeline::{dataset_id, run_syntax, run_syntax_client};
use crate::render::{f2, TextTable};
use crate::suite::Suite;
use crate::Artifact;
use squ_eval::{BinaryCounts, Cell, PropertySlice, SubtypeBreakdown};
use squ_llm::{FaultKind, FaultProfile, ModelId, SimConfig, SimulatedModel, Transport};
use squ_workload::Workload;

/// Identifier of one ablation/extension experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AblationId {
    Tilt,
    Subtype,
    Witness,
    FewShot,
    Baselines,
    Rubric,
    Prompt,
    Faults,
}

impl AblationId {
    /// All ablation/extension experiments.
    pub const ALL: [AblationId; 8] = [
        AblationId::Tilt,
        AblationId::Subtype,
        AblationId::Witness,
        AblationId::FewShot,
        AblationId::Baselines,
        AblationId::Rubric,
        AblationId::Prompt,
        AblationId::Faults,
    ];

    /// Slug for `--only` filters and file names.
    pub fn slug(&self) -> &'static str {
        match self {
            AblationId::Tilt => "ablation-tilt",
            AblationId::Subtype => "ablation-subtype",
            AblationId::Witness => "ablation-witness",
            AblationId::FewShot => "ext-fewshot",
            AblationId::Baselines => "ext-baselines",
            AblationId::Rubric => "ext-rubric",
            AblationId::Prompt => "ablation-prompt",
            AblationId::Faults => "ext-faults",
        }
    }

    /// Parse a slug.
    pub fn from_slug(s: &str) -> Option<AblationId> {
        Self::ALL.iter().copied().find(|a| a.slug() == s)
    }
}

/// Run one ablation/extension.
pub fn run_ablation(suite: &Suite, id: AblationId) -> Artifact {
    match id {
        AblationId::Tilt => ablation_tilt(suite),
        AblationId::Subtype => ablation_subtype(suite),
        AblationId::Witness => ablation_witness(suite),
        AblationId::FewShot => ext_fewshot(suite),
        AblationId::Baselines => ext_baselines(suite),
        AblationId::Rubric => ext_rubric(suite),
        AblationId::Prompt => ablation_prompt(suite),
        AblationId::Faults => ext_faults(suite),
    }
}

/// Run all ablations/extensions.
pub fn run_all_ablations(suite: &Suite) -> Vec<Artifact> {
    AblationId::ALL
        .iter()
        .map(|id| run_ablation(suite, *id))
        .collect()
}

/// Complexity-tilt ablation: FN-vs-TP word-count gap with tilt on / off.
pub fn ablation_tilt(suite: &Suite) -> Artifact {
    let mut t = TextTable::new(&["Model", "tilt", "TP avg wc", "FN avg wc", "gap", "F1"]);
    for m in [ModelId::Llama3, ModelId::Gemini] {
        for (label, cfg) in [
            ("on", SimConfig::default()),
            (
                "off",
                SimConfig {
                    tilt_scale: 0.0,
                    ..SimConfig::default()
                },
            ),
        ] {
            let model = SimulatedModel::with_config(m, cfg);
            let outcomes = run_syntax(
                &model,
                dataset_id(Workload::Sdss),
                suite.syntax_for(Workload::Sdss),
            );
            let slice = PropertySlice::build(
                "word_count",
                outcomes.iter().map(|o| {
                    (
                        o.example.has_error,
                        o.said_error,
                        o.example.props.word_count as f64,
                    )
                }),
            );
            let counts = BinaryCounts::from_pairs(
                outcomes.iter().map(|o| (o.example.has_error, o.said_error)),
            );
            let tp = slice.cell(Cell::Tp).average;
            let fn_ = slice.cell(Cell::Fn).average;
            t.row(&[
                m.name().to_string(),
                label.to_string(),
                f2(tp),
                f2(fn_),
                f2(fn_ - tp),
                f2(counts.f1()),
            ]);
        }
    }
    Artifact {
        id: AblationId::Tilt.slug().to_string(),
        title: "Ablation: complexity tilt — the Figure-6 length gap is emergent".into(),
        csv: Some(t.to_csv()),
        body: format!(
            "{}\nWith the tilt off, aggregate F1 is nearly unchanged but the\nFN-vs-TP length gap collapses: the slicing figures come from the\nmechanism, not from per-figure tuning.\n",
            t.render()
        ),
    }
}

/// Subtype-weight ablation: per-error-type FN-rate spread with weights on
/// and off (pooled over the five models, SDSS).
pub fn ablation_subtype(suite: &Suite) -> Artifact {
    let mut t = TextTable::new(&["weights", "error type", "positives", "FN rate"]);
    let mut spreads = Vec::new();
    for (label, cfg) in [
        ("on", SimConfig::default()),
        (
            "off",
            SimConfig {
                subtype_weights: false,
                ..SimConfig::default()
            },
        ),
    ] {
        let mut pairs = Vec::new();
        for m in ModelId::ALL {
            let model = SimulatedModel::with_config(m, cfg);
            let outcomes = run_syntax(
                &model,
                dataset_id(Workload::Sdss),
                suite.syntax_for(Workload::Sdss),
            );
            for o in outcomes {
                if let Some(ty) = o.example.error_type {
                    pairs.push((ty.label().to_string(), o.said_error));
                }
            }
        }
        let b = SubtypeBreakdown::build(pairs.iter().map(|(l, d)| (l.as_str(), *d)));
        let rates: Vec<f64> = b.rows.iter().map(|r| r.fn_rate).collect();
        let spread = rates.iter().cloned().fold(f64::MIN, f64::max)
            - rates.iter().cloned().fold(f64::MAX, f64::min);
        spreads.push((label, spread));
        for r in &b.rows {
            t.row(&[
                label.to_string(),
                r.subtype.clone(),
                r.positives.to_string(),
                f2(r.fn_rate),
            ]);
        }
    }
    Artifact {
        id: AblationId::Subtype.slug().to_string(),
        title: "Ablation: subtype difficulty weights (Figure 7 calibration)".into(),
        csv: Some(t.to_csv()),
        body: format!(
            "{}\nFN-rate spread across error types: on = {:.2}, off = {:.2}.\n",
            t.render(),
            spreads[0].1,
            spreads[1].1
        ),
    }
}

/// Witness-count ablation: how many of the benchmark's non-equivalent
/// pairs would a smaller witness batch fail to distinguish?
pub fn ablation_witness(suite: &Suite) -> Artifact {
    use squ_engine::execute_query;
    let mut t = TextTable::new(&["witnesses", "pairs checked", "distinguished", "missed %"]);
    // fresh witness batches, graded sizes
    for n in [1usize, 2, 3, 5] {
        let mut checked = 0usize;
        let mut distinguished = 0usize;
        for w in Workload::task_workloads() {
            for e in suite
                .equiv_for(w)
                .iter()
                .filter(|e| !e.equivalent)
                .step_by(3)
            {
                let (Ok(q1), Ok(q2)) = (
                    squ_parser::parse_query(&e.sql1),
                    squ_parser::parse_query(&e.sql2),
                ) else {
                    continue;
                };
                let schema = squ_workload::schema_for(w, &e.schema_name);
                let witnesses = squ_engine::witness_batch(&schema, 0xAB1A ^ checked as u64);
                let mut differs = false;
                let mut failed = false;
                for db in witnesses.iter().take(n) {
                    match (execute_query(&q1, db), execute_query(&q2, db)) {
                        (Ok((r1, _)), Ok((r2, _))) => {
                            if !r1.result_equal(&r2) {
                                differs = true;
                                break;
                            }
                        }
                        _ => {
                            failed = true;
                            break;
                        }
                    }
                }
                if failed {
                    continue;
                }
                checked += 1;
                distinguished += differs as usize;
            }
        }
        let missed = 100.0 * (checked - distinguished) as f64 / checked.max(1) as f64;
        t.row(&[
            n.to_string(),
            checked.to_string(),
            distinguished.to_string(),
            f2(missed),
        ]);
    }
    Artifact {
        id: AblationId::Witness.slug().to_string(),
        title: "Ablation: witness-batch size for differential label verification".into(),
        csv: Some(t.to_csv()),
        body: format!(
            "{}\nSingle witnesses miss a meaningful share of genuine\nnon-equivalences (a boundary literal change may not be exercised by\none random instance); five graded witnesses drive the miss rate toward\nzero, which is why the benchmark verifies on a batch.\n",
            t.render()
        ),
    }
}

/// §6 future-work extension: few-shot / fine-tuned operating points.
pub fn ext_fewshot(suite: &Suite) -> Artifact {
    let mut t = TextTable::new(&["Model", "zero-shot F1", "few-shot F1", "fine-tuned F1"]);
    for m in ModelId::ALL {
        let mut cells = vec![m.name().to_string()];
        for cfg in [
            SimConfig::default(),
            SimConfig::few_shot(),
            SimConfig::fine_tuned(),
        ] {
            let model = SimulatedModel::with_config(m, cfg);
            let outcomes = run_syntax(
                &model,
                dataset_id(Workload::Sdss),
                suite.syntax_for(Workload::Sdss),
            );
            let c = BinaryCounts::from_pairs(
                outcomes.iter().map(|o| (o.example.has_error, o.said_error)),
            );
            cells.push(f2(c.f1()));
        }
        t.row(&cells);
    }
    Artifact {
        id: AblationId::FewShot.slug().to_string(),
        title: "Extension (§6 future work): few-shot / fine-tuned operating points, syntax_error on SDSS"
            .into(),
        csv: Some(t.to_csv()),
        body: format!(
            "{}\nModeled as error-rate reductions (×0.55 few-shot, ×0.30\nfine-tuned) applied uniformly; the pipeline, prompts, and extraction\nare identical to the zero-shot runs. The projected ceiling narrows the\ngap between models — the paper's hypothesis that targeted adaptation\nmitigates the complexity limitations.\n",
            t.render()
        ),
    }
}

/// Classical baselines vs the LLMs: a majority-class answerer and a
/// parser/binder oracle, run through the *same* prompt → response →
/// extraction pipeline on SDSS syntax_error and miss_token.
///
/// The oracle is the ceiling by construction (the benchmark's labels are
/// verified by the same analysis); the interesting reading is the gap
/// between it and the best LLM — the deterministic-tooling headroom the
/// paper's data-management framing asks about.
pub fn ext_baselines(suite: &Suite) -> Artifact {
    use squ_llm::{LanguageModel, Request};

    struct AlwaysNo;
    impl LanguageModel for AlwaysNo {
        fn name(&self) -> &'static str {
            "majority-no"
        }
        fn respond(&self, _req: &Request) -> String {
            "No.".to_string()
        }
    }

    /// Answers syntax questions from the parser + binder; missing-token
    /// questions from parse success/failure with the error position.
    struct ParserOracle;
    impl LanguageModel for ParserOracle {
        fn name(&self) -> &'static str {
            "parser-oracle"
        }
        fn respond(&self, req: &Request) -> String {
            let sql = req.prompt.lines().last().unwrap_or("");
            let schema = squ_schema::schemas::sdss();
            match req.task {
                squ_llm::Task::Syntax => match squ_parser::parse(sql) {
                    Err(e) => format!("Yes, the query contains a syntax error: {e}."),
                    Ok(stmt) => match squ_schema::analyze(&stmt, &schema).first() {
                        Some(d) => format!(
                            "Yes, the query contains a syntax error. {} (error type: {}).",
                            d.message,
                            d.kind.paper_label().unwrap_or("other")
                        ),
                        None => "No, the query does not contain any syntax errors.".to_string(),
                    },
                },
                squ_llm::Task::MissToken => match squ_parser::parse(sql) {
                    Ok(stmt) => {
                        // a parseable query may still be semantically broken
                        // after token removal (e.g. a deleted alias)
                        if squ_schema::analyze(&stmt, &schema).is_empty() {
                            "No, nothing seems to be missing from this query.".to_string()
                        } else {
                            "Yes, a word is missing. The missing word is a column; most likely \"x\". Position: 0.".to_string()
                        }
                    }
                    Err(e) => {
                        let pos = e.word_index().unwrap_or(0);
                        format!(
                            "Yes, a word is missing. The missing word is a keyword; most likely \"FROM\". Position: {pos}."
                        )
                    }
                },
                _ => "No.".to_string(),
            }
        }
    }

    let mut t = TextTable::new(&["Task", "Model", "P", "R", "F1"]);
    let sdss_syntax = suite.syntax_for(Workload::Sdss);
    let sdss_tokens = suite.tokens_for(Workload::Sdss);
    let ds = dataset_id(Workload::Sdss);

    let mut syntax_row = |name: &str, model: &dyn squ_llm::LanguageModel| {
        let outcomes = run_syntax(model, ds, sdss_syntax);
        let c =
            BinaryCounts::from_pairs(outcomes.iter().map(|o| (o.example.has_error, o.said_error)));
        t.row(&[
            "syntax_error".to_string(),
            name.to_string(),
            f2(c.precision()),
            f2(c.recall()),
            f2(c.f1()),
        ]);
    };
    syntax_row("GPT4", &SimulatedModel::new(ModelId::Gpt4));
    syntax_row("Gemini", &SimulatedModel::new(ModelId::Gemini));
    syntax_row("majority-no", &AlwaysNo);
    syntax_row("parser-oracle", &ParserOracle);

    let mut token_row = |name: &str, model: &dyn squ_llm::LanguageModel| {
        let outcomes = crate::pipeline::run_token(model, ds, sdss_tokens);
        let c = BinaryCounts::from_pairs(
            outcomes
                .iter()
                .map(|o| (o.example.has_missing, o.said_missing)),
        );
        t.row(&[
            "miss_token".to_string(),
            name.to_string(),
            f2(c.precision()),
            f2(c.recall()),
            f2(c.f1()),
        ]);
    };
    token_row("GPT4", &SimulatedModel::new(ModelId::Gpt4));
    token_row("Gemini", &SimulatedModel::new(ModelId::Gemini));
    token_row("majority-no", &AlwaysNo);
    token_row("parser-oracle", &ParserOracle);

    // query_equiv: the canonical-normalizer baseline answers "equivalent"
    // iff the two queries' normal forms coincide — sound (perfect
    // precision) but incomplete (join↔subquery rewrites escape it)
    {
        let pairs = suite.equiv_for(Workload::Sdss);
        let mut normalizer = BinaryCounts::default();
        for e in pairs {
            let (Ok(q1), Ok(q2)) = (
                squ_parser::parse_query(&e.sql1),
                squ_parser::parse_query(&e.sql2),
            ) else {
                continue;
            };
            normalizer.record(e.equivalent, squ_tasks::normal_forms_equal(&q1, &q2));
        }
        t.row(&[
            "query_equiv".to_string(),
            "normalizer".to_string(),
            f2(normalizer.precision()),
            f2(normalizer.recall()),
            f2(normalizer.f1()),
        ]);
        let outcomes = crate::pipeline::run_equiv(&SimulatedModel::new(ModelId::Gpt4), ds, pairs);
        let c = BinaryCounts::from_pairs(
            outcomes
                .iter()
                .map(|o| (o.example.equivalent, o.said_equivalent)),
        );
        t.row(&[
            "query_equiv".to_string(),
            "GPT4".to_string(),
            f2(c.precision()),
            f2(c.recall()),
            f2(c.f1()),
        ]);
    }

    Artifact {
        id: AblationId::Baselines.slug().to_string(),
        title: "Extension: classical baselines through the same pipeline (SDSS)".into(),
        csv: Some(t.to_csv()),
        body: format!(
            "{}\nThe parser/binder oracle tops every LLM on the detection tasks, and\nthe canonical normalizer inverts the LLMs' equivalence error profile:\nperfect precision (normal-form equality is sound) at reduced recall\n(join↔subquery rewrites escape normalization). miss_token is not fully\nsaturated by the oracle either: some deletions (e.g. an alias token)\nleave a parseable query whose damage is semantic.\n",
            t.render()
        ),
    }
}

/// Quantitative companion to the paper's qualitative §4.5: mean rubric
/// score and per-fact-group miss rates over the full 200-query Spider set.
pub fn ext_rubric(suite: &Suite) -> Artifact {
    use crate::pipeline::run_explain;
    let mut t = TextTable::new(&[
        "Model",
        "mean score",
        "complete %",
        "missed attrs %",
        "missed tables %",
        "wrong ordering %",
    ]);
    for m in ModelId::ALL {
        let outcomes = run_explain(&SimulatedModel::new(m), suite.explain());
        let n = outcomes.len() as f64;
        let mean = outcomes.iter().map(|o| o.rubric.score).sum::<f64>() / n;
        let complete = outcomes.iter().filter(|o| o.rubric.is_complete()).count() as f64 / n;
        let miss = |needle: &str| {
            outcomes
                .iter()
                .filter(|o| o.rubric.missing.iter().any(|ms| ms.contains(needle)))
                .count() as f64
                / n
        };
        t.row(&[
            m.name().to_string(),
            f2(mean),
            f2(100.0 * complete),
            f2(100.0 * miss("selected attributes")),
            f2(100.0 * miss("table context")),
            f2(100.0 * miss("ordering direction")),
        ]);
    }
    Artifact {
        id: AblationId::Rubric.slug().to_string(),
        title: "Extension: quantitative rubric over the full query_exp set (Spider, 200 queries)"
            .into(),
        csv: Some(t.to_csv()),
        body: format!(
            "{}\nThe paper's case-study failure modes at corpus scale: attribute\ndropping dominates for the mid-tier models, table-context loss and\nordering misreads separate Gemini from the rest.\n",
            t.render()
        ),
    }
}

/// Prompt-variant ablation: mock-trial accuracy of each candidate prompt
/// (§3.4's tuning loop) per model on a 60-example SDSS syntax subset.
pub fn ablation_prompt(suite: &Suite) -> Artifact {
    use squ_llm::{prompts, GroundTruth, LanguageModel, Request, Task};
    let examples: Vec<_> = suite
        .syntax_for(Workload::Sdss)
        .iter()
        .take(60)
        .cloned()
        .collect();
    let mut t = TextTable::new(&["Model", "candidate", "mock accuracy", "selected"]);
    for m in [ModelId::Gpt4, ModelId::Gpt35, ModelId::Gemini] {
        let model = SimulatedModel::new(m);
        let tuned = prompts::tune_prompt(Task::Syntax, |instruction| {
            let pairs = examples.iter().map(|e| {
                let req = Request {
                    task: Task::Syntax,
                    dataset: squ_llm::DatasetId::Sdss,
                    example_id: format!("prompt-trial-{}", e.query_id),
                    prompt: prompts::render_prompt(instruction, &e.sql),
                    truth: GroundTruth::Syntax {
                        has_error: e.has_error,
                        error_type: e.error_type.map(|ty| ty.label().to_string()),
                    },
                    props: e.props.clone(),
                };
                let resp = model.respond(&req);
                (
                    e.has_error,
                    squ_llm::extract_binary(&resp).value().unwrap_or(false),
                )
            });
            BinaryCounts::from_pairs(pairs).accuracy()
        });
        for (cand, score) in &tuned.trials {
            let short: String = cand.chars().take(48).collect();
            t.row(&[
                m.name().to_string(),
                format!("{short}…"),
                f2(*score),
                if *cand == tuned.instruction { "*" } else { "" }.to_string(),
            ]);
        }
    }
    Artifact {
        id: AblationId::Prompt.slug().to_string(),
        title: "Ablation: prompt-candidate mock trials (§3.4 tuning loop)".into(),
        csv: Some(t.to_csv()),
        body: format!(
            "{}\nThe paper selected its prompts by exactly this procedure; the\nselected candidate (*) is the published one or statistically tied\nwith it.\n",
            t.render()
        ),
    }
}

/// Extension: the syntax task under an unreliable transport. Each model
/// is re-run on SDSS through a fault-injecting [`Transport`] at every
/// profile; the table shows how much of the paper's signal survives
/// response corruption and transient transport failures.
pub fn ext_faults(suite: &Suite) -> Artifact {
    let examples = suite.syntax_for(Workload::Sdss);
    let mut t = TextTable::new(&[
        "Model",
        "profile",
        "mean attempts",
        "exhausted %",
        "needs_review %",
        "accuracy",
    ]);
    for m in ModelId::ALL {
        for profile_name in FaultProfile::NAMES {
            let profile = match FaultProfile::by_name(profile_name) {
                Some(p) => p,
                None => continue,
            };
            let client = Transport::new(SimulatedModel::new(m), profile, 7);
            let outcomes = run_syntax_client(&client, dataset_id(Workload::Sdss), examples);
            let n = outcomes.len() as f64;
            let attempts: usize = outcomes.iter().map(|o| o.call.attempts as usize).sum();
            let exhausted = outcomes.iter().filter(|o| o.call.exhausted).count();
            let review = outcomes.iter().filter(|o| o.needs_review).count();
            let acc = BinaryCounts::from_pairs(
                outcomes.iter().map(|o| (o.example.has_error, o.said_error)),
            )
            .accuracy();
            t.row(&[
                m.name().to_string(),
                profile_name.to_string(),
                f2(attempts as f64 / n),
                f2(100.0 * exhausted as f64 / n),
                f2(100.0 * review as f64 / n),
                f2(acc),
            ]);
        }
    }
    let survived_kinds = {
        let client = Transport::new(SimulatedModel::new(ModelId::Gpt4), FaultProfile::heavy(), 7);
        let outcomes = run_syntax_client(&client, dataset_id(Workload::Sdss), examples);
        FaultKind::ALL
            .iter()
            .map(|k| {
                let hit = outcomes.iter().filter(|o| o.call.saw(*k)).count();
                let ok = outcomes
                    .iter()
                    .filter(|o| o.call.saw(*k) && !o.needs_review)
                    .count();
                format!("{}: {ok}/{hit}", k.name())
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    Artifact {
        id: AblationId::Faults.slug().to_string(),
        title: "Extension: fault-injected transport (SDSS syntax task)".into(),
        csv: Some(t.to_csv()),
        body: format!(
            "{}\nTransient faults (unavailable, latency spikes) are absorbed by the\nretry policy and leave accuracy untouched; response corruptions\n(refusal, truncation, echo) land in the manual-review bucket instead\nof silently flipping answers. Per-fault survival under `heavy`\n(GPT4): {survived_kinds}.\n",
            t.render()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::PAPER_SEED;
    use std::sync::OnceLock;

    fn suite() -> &'static Suite {
        static SUITE: OnceLock<Suite> = OnceLock::new();
        SUITE.get_or_init(|| Suite::new(PAPER_SEED))
    }

    #[test]
    fn tilt_ablation_collapses_gap() {
        let a = ablation_tilt(suite());
        // parse the CSV: rows are (model, tilt, tp, fn, gap, f1)
        let rows: Vec<Vec<String>> = a
            .csv
            .unwrap()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        for pair in rows.chunks(2) {
            let on_gap: f64 = pair[0][4].parse().unwrap();
            let off_gap: f64 = pair[1][4].parse().unwrap();
            assert!(
                on_gap > off_gap + 1.0,
                "{}: tilt-on gap {on_gap} not larger than tilt-off {off_gap}",
                pair[0][0]
            );
        }
    }

    #[test]
    fn subtype_ablation_reduces_spread() {
        let a = ablation_subtype(suite());
        let body = a.body;
        // the body's last line carries both spreads
        let nums: Vec<f64> = body
            .lines()
            .last()
            .unwrap()
            .split(|c: char| !c.is_ascii_digit() && c != '.')
            .filter_map(|s| s.trim_matches('.').parse().ok())
            .collect();
        assert!(nums.len() >= 2);
        assert!(
            nums[0] > nums[1],
            "spread on ({}) should exceed spread off ({})",
            nums[0],
            nums[1]
        );
    }

    #[test]
    fn fewshot_improves_every_model() {
        let a = ext_fewshot(suite());
        for line in a.csv.unwrap().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let zero: f64 = cells[1].parse().unwrap();
            let few: f64 = cells[2].parse().unwrap();
            let tuned: f64 = cells[3].parse().unwrap();
            assert!(few >= zero, "{}: few-shot regressed", cells[0]);
            assert!(tuned >= few, "{}: fine-tuned regressed", cells[0]);
        }
    }

    #[test]
    fn slugs_round_trip() {
        for id in AblationId::ALL {
            assert_eq!(AblationId::from_slug(id.slug()), Some(id));
        }
    }
}
