//! Dataset auditor: statically prove every ground-truth label the suite
//! emits, using `squ-lint` as the oracle.
//!
//! The suite's datasets carry labels that downstream evaluation treats as
//! ground truth — "this query has an aggregation error at bytes 7..12",
//! "these two queries are equivalent". The auditor re-derives each label
//! from the analyzer alone and reports every disagreement as a
//! [`Violation`]. The per-task invariants live with the tasks themselves
//! ([`squ_tasks::Task::audit`]); this module contributes the one check that
//! is not task-shaped — every sampled workload query must lint clean — and
//! the generic driver that fans all sections over the worker pool:
//!
//! * every sampled workload query, perf example, and explain example must
//!   lint clean (no error-severity diagnostics; `SQU1xx` warnings are
//!   counted but never fail an audit);
//! * every syntax-error positive must produce a diagnostic of the expected
//!   paper category whose span overlaps the labeled `expected_span`, and
//!   every syntax negative must lint clean;
//! * every token-deletion positive must be *detectable*: the analyzer
//!   reports at least one error, and any parse error locates within the
//!   parser's lookahead margin of the labeled word position (whole-predicate
//!   deletions — the paper's hard class — are exempt from detectability but
//!   still checked for label consistency);
//! * every equivalence pair must have both sides lint clean; equivalent
//!   pairs must additionally have identical binder resolution signatures,
//!   and non-equivalent pairs must differ textually;
//! * every equivalence pair runs through the `squ-sema` static certifier,
//!   whose verdict must never contradict the label — the report tallies
//!   how many non-equivalence labels the certifier proves without ever
//!   executing a query ([`CertStats`]).
//!
//! The report is deterministic: violations appear in canonical dataset
//! order, rule hits in a [`BTreeMap`], and nothing in the output depends
//! on the thread count used to run the audit.

use crate::suite::TaskSet;
use crate::{par, Suite};
use serde::{Deserialize, Serialize};
use squ_tasks::AuditCtx;
use squ_workload::{Dataset, Workload};
use std::collections::BTreeMap;

pub use squ_tasks::{CertStats, Violation};

/// Outcome of auditing one suite.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct AuditReport {
    /// Master seed of the audited suite.
    pub seed: u64,
    /// Total artifacts checked (queries, examples, and pair sides).
    pub checked: usize,
    /// How many times each `SQU0xx` rule fired across all lint passes,
    /// warnings included.
    pub rule_hits: BTreeMap<String, usize>,
    /// Static equivalence-certification tallies from the `squ-sema`
    /// certifier across every equivalence pair.
    pub certs: CertStats,
    /// Every invariant violation, in canonical dataset order.
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// True when every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Stable pretty-printed JSON for `target/repro/audit.json`.
    ///
    /// # Panics
    /// Never in practice: the report contains only maps/strings/numbers.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("audit report serializes") // lint:allow: plain data structs always serialize
    }
}

/// One unit of audit work: a sampled workload, or one `(task, workload)`
/// set checked through [`squ_tasks::Task::audit`]. The enum lets
/// heterogeneous checks share the deterministic worker pool, mirroring
/// suite construction.
enum AuditJob<'a> {
    Workload(&'a Dataset),
    Set(&'a TaskSet),
}

/// Audit every artifact of `suite` on up to `jobs` worker threads.
///
/// The result is byte-identical for every job count: each job accumulates
/// its own section and sections are merged in the fixed job-list order —
/// the four workloads, then every task set in canonical registry order.
pub fn audit_suite(suite: &Suite, jobs: usize) -> AuditReport {
    let mut job_list: Vec<AuditJob<'_>> = Vec::new();
    for w in [
        Workload::Sdss,
        Workload::SqlShare,
        Workload::JoinOrder,
        Workload::Spider,
    ] {
        job_list.push(AuditJob::Workload(suite.dataset(w)));
    }
    for set in suite.sets() {
        job_list.push(AuditJob::Set(set));
    }

    let sections = par::map(jobs, job_list, |job| match job {
        AuditJob::Workload(ds) => audit_workload(ds),
        AuditJob::Set(set) => {
            let mut ctx = AuditCtx::new(set.workload());
            set.task().audit(set.workload(), set.examples(), &mut ctx);
            ctx
        }
    });

    let mut report = AuditReport {
        seed: suite.seed,
        ..AuditReport::default()
    };
    for s in sections {
        report.checked += s.checked;
        for (code, n) in s.hits {
            *report.rule_hits.entry(code).or_insert(0) += n;
        }
        report.certs.absorb(&s.certs);
        report.violations.extend(s.violations);
    }
    report
}

/// Sampled workload queries must all lint clean.
fn audit_workload(ds: &Dataset) -> AuditCtx {
    let mut ctx = AuditCtx::new(ds.workload);
    let name = format!("workload/{}", ds.workload.name());
    for wq in &ds.queries {
        let report = ctx.lint(&wq.sql, &wq.schema_name);
        ctx.require_clean(&name, &wq.id, &report, &wq.sql);
    }
    ctx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_clean_and_stable_json() {
        let r = AuditReport::default();
        assert!(r.is_clean());
        let json = r.to_json();
        assert!(json.contains("\"violations\": []"), "{json}");
        assert!(json.contains("\"rule_hits\": {}"), "{json}");
    }

    #[test]
    fn violations_make_report_dirty() {
        let mut r = AuditReport::default();
        r.violations.push(Violation {
            dataset: "syntax/sdss".into(),
            query_id: "sdss-0001".into(),
            invariant: "positive-expected-diagnostic".into(),
            detail: "missing".into(),
        });
        assert!(!r.is_clean());
        assert!(r.to_json().contains("positive-expected-diagnostic"));
    }

    #[test]
    fn reports_round_trip_through_json() {
        let mut r = AuditReport {
            seed: 7,
            checked: 3,
            ..AuditReport::default()
        };
        r.rule_hits.insert("SQU011".into(), 2);
        r.violations.push(Violation {
            dataset: "perf/sdss".into(),
            query_id: "sdss-0002".into(),
            invariant: "clean-analysis".into(),
            detail: "[SQU011] in `x`".into(),
        });
        let json = r.to_json();
        let back: AuditReport = serde_json::from_str(&json).expect("audit report deserializes");
        assert_eq!(back.seed, 7);
        assert_eq!(back.checked, 3);
        assert_eq!(back.rule_hits.get("SQU011"), Some(&2));
        assert_eq!(back.violations, r.violations);
    }
}
