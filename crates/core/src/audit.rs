//! Dataset auditor: statically prove every ground-truth label the suite
//! emits, using `squ-lint` as the oracle.
//!
//! The suite's datasets carry labels that downstream evaluation treats as
//! ground truth — "this query has an aggregation error at bytes 7..12",
//! "these two queries are equivalent". The auditor re-derives each label
//! from the analyzer alone and reports every disagreement as a
//! [`Violation`]:
//!
//! * every sampled workload query, perf example, and explain example must
//!   lint clean (no error-severity diagnostics; `SQU1xx` warnings are
//!   counted but never fail an audit);
//! * every syntax-error positive must produce a diagnostic of the expected
//!   paper category whose span overlaps the labeled `expected_span`, and
//!   every syntax negative must lint clean;
//! * every token-deletion positive must be *detectable*: the analyzer
//!   reports at least one error, and any parse error locates within the
//!   parser's lookahead margin of the labeled word position (whole-predicate
//!   deletions — the paper's hard class — are exempt from detectability but
//!   still checked for label consistency);
//! * every equivalence pair must have both sides lint clean; equivalent
//!   pairs must additionally have identical binder resolution signatures,
//!   and non-equivalent pairs must differ textually.
//!
//! The report is deterministic: violations appear in canonical dataset
//! order, rule hits in a [`BTreeMap`], and nothing in the output depends
//! on the thread count used to run the audit.

use crate::{par, Suite};
use serde::Serialize;
use squ_lexer::word_index_at;
use squ_lint::{lint, LintReport};
use squ_tasks::{
    EquivExample, ExplainExample, PerfExample, SyntaxExample, TokenExample, TokenType,
};
use squ_workload::{schema_for, Dataset, Workload};
use std::collections::{BTreeMap, HashMap};

/// Word-distance slack allowed between a parse error's reported location
/// and a token deletion's labeled position. The recursive-descent parser
/// cannot reject before the deletion site, but bounded lookahead means the
/// error can surface up to two words earlier than the splice point.
const PARSE_LOCATION_SLACK: usize = 2;

/// One audited invariant that did not hold.
#[derive(Debug, Clone, Serialize, PartialEq, Eq)]
pub struct Violation {
    /// Which dataset the artifact came from, e.g. `syntax/sdss`.
    pub dataset: String,
    /// Source query id of the artifact.
    pub query_id: String,
    /// Machine-readable invariant name, e.g. `positive-expected-diagnostic`.
    pub invariant: String,
    /// Human-readable explanation.
    pub detail: String,
}

/// Outcome of auditing one suite.
#[derive(Debug, Clone, Serialize, Default)]
pub struct AuditReport {
    /// Master seed of the audited suite.
    pub seed: u64,
    /// Total artifacts checked (queries, examples, and pair sides).
    pub checked: usize,
    /// How many times each `SQU0xx` rule fired across all lint passes,
    /// warnings included.
    pub rule_hits: BTreeMap<String, usize>,
    /// Every invariant violation, in canonical dataset order.
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// True when every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Stable pretty-printed JSON for `target/repro/audit.json`.
    ///
    /// # Panics
    /// Never in practice: the report contains only maps/strings/numbers.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("audit report serializes") // lint:allow: plain data structs always serialize
    }
}

/// Per-job accumulator, merged in canonical order after the parallel pass.
#[derive(Default)]
struct Section {
    checked: usize,
    hits: BTreeMap<String, usize>,
    violations: Vec<Violation>,
}

impl Section {
    /// Lint `sql` and count rule hits; returns the report for the caller's
    /// invariant checks.
    fn lint(&mut self, sql: &str, schema: &squ_schema::Schema) -> LintReport {
        let report = lint(sql, schema);
        for d in &report.diagnostics {
            *self.hits.entry(d.code.to_string()).or_insert(0) += 1;
        }
        self.checked += 1;
        report
    }

    fn violation(&mut self, dataset: &str, query_id: &str, invariant: &str, detail: String) {
        self.violations.push(Violation {
            dataset: dataset.to_string(),
            query_id: query_id.to_string(),
            invariant: invariant.to_string(),
            detail,
        });
    }
}

/// Memoizing schema lookup: SQLShare/Spider resolve schemas by name from a
/// zoo, so per-example lookups inside one job are cached.
struct Schemas {
    workload: Workload,
    cache: HashMap<String, squ_schema::Schema>,
}

impl Schemas {
    fn new(workload: Workload) -> Schemas {
        Schemas {
            workload,
            cache: HashMap::new(),
        }
    }

    fn get(&mut self, name: &str) -> &squ_schema::Schema {
        let w = self.workload;
        self.cache
            .entry(name.to_string())
            .or_insert_with(|| schema_for(w, name))
    }
}

/// One unit of audit work; the enum lets heterogeneous checks share the
/// deterministic worker pool, mirroring suite construction.
enum AuditJob<'a> {
    Workload(&'a Dataset),
    Syntax(Workload, &'a [SyntaxExample]),
    Tokens(Workload, &'a [TokenExample]),
    Equiv(Workload, &'a [EquivExample]),
    Perf(&'a [PerfExample]),
    Explain(&'a [ExplainExample]),
}

/// Audit every artifact of `suite` on up to `jobs` worker threads.
///
/// The result is byte-identical for every job count: each job accumulates
/// its own section and sections are merged in the fixed job-list order.
pub fn audit_suite(suite: &Suite, jobs: usize) -> AuditReport {
    let mut job_list: Vec<AuditJob<'_>> = Vec::new();
    for w in [
        Workload::Sdss,
        Workload::SqlShare,
        Workload::JoinOrder,
        Workload::Spider,
    ] {
        job_list.push(AuditJob::Workload(suite.dataset(w)));
    }
    for (w, v) in &suite.syntax {
        job_list.push(AuditJob::Syntax(*w, v));
    }
    for (w, v) in &suite.tokens {
        job_list.push(AuditJob::Tokens(*w, v));
    }
    for (w, v) in &suite.equiv {
        job_list.push(AuditJob::Equiv(*w, v));
    }
    job_list.push(AuditJob::Perf(&suite.perf));
    job_list.push(AuditJob::Explain(&suite.explain));

    let sections = par::map(jobs, job_list, |job| match job {
        AuditJob::Workload(ds) => audit_workload(ds),
        AuditJob::Syntax(w, v) => audit_syntax(w, v),
        AuditJob::Tokens(w, v) => audit_tokens(w, v),
        AuditJob::Equiv(w, v) => audit_equiv(w, v),
        AuditJob::Perf(v) => audit_perf(v),
        AuditJob::Explain(v) => audit_explain(v),
    });

    let mut report = AuditReport {
        seed: suite.seed,
        ..AuditReport::default()
    };
    for s in sections {
        report.checked += s.checked;
        for (code, n) in s.hits {
            *report.rule_hits.entry(code).or_insert(0) += n;
        }
        report.violations.extend(s.violations);
    }
    report
}

/// Sampled workload queries must all lint clean.
fn audit_workload(ds: &Dataset) -> Section {
    let mut s = Section::default();
    let mut schemas = Schemas::new(ds.workload);
    let name = format!("workload/{}", ds.workload.name());
    for wq in &ds.queries {
        let report = s.lint(&wq.sql, schemas.get(&wq.schema_name));
        require_clean(&mut s, &name, &wq.id, &report, &wq.sql);
    }
    s
}

/// Syntax positives must carry the labeled diagnostic at the labeled span;
/// negatives must lint clean.
fn audit_syntax(w: Workload, examples: &[SyntaxExample]) -> Section {
    let mut s = Section::default();
    let mut schemas = Schemas::new(w);
    let name = format!("syntax/{}", w.name());
    for ex in examples {
        let report = s.lint(&ex.sql, schemas.get(&ex.schema_name));
        if !ex.has_error {
            require_clean(&mut s, &name, &ex.query_id, &report, &ex.sql);
            continue;
        }
        let (Some(ty), Some((start, end))) = (ex.error_type, ex.expected_span) else {
            s.violation(
                &name,
                &ex.query_id,
                "positive-label-complete",
                "positive example lacks error_type or expected_span".into(),
            );
            continue;
        };
        let code = ty.expected_diagnostic().code();
        let hit = report
            .diagnostics
            .iter()
            .any(|d| d.code == code && d.overlaps(start, end));
        if !hit {
            s.violation(
                &name,
                &ex.query_id,
                "positive-expected-diagnostic",
                format!(
                    "no {code} diagnostic overlapping bytes {start}..{end} (got {})",
                    render_codes(&report)
                ),
            );
        }
    }
    s
}

/// Token-deletion positives must be detectable by the analyzer (except the
/// whole-predicate class), with parse errors locating near the labeled
/// word position; negatives must lint clean.
fn audit_tokens(w: Workload, examples: &[TokenExample]) -> Section {
    let mut s = Section::default();
    let mut schemas = Schemas::new(w);
    let name = format!("tokens/{}", w.name());
    for ex in examples {
        let report = s.lint(&ex.sql, schemas.get(&ex.schema_name));
        if !ex.has_missing {
            require_clean(&mut s, &name, &ex.query_id, &report, &ex.sql);
            continue;
        }
        let (Some(ty), Some(position)) = (ex.token_type, ex.position) else {
            s.violation(
                &name,
                &ex.query_id,
                "positive-label-complete",
                "positive example lacks token_type or position".into(),
            );
            continue;
        };
        // The labeled position and the recorded splice offset must agree.
        // A deletion that removed the tail of a word (e.g. the column of a
        // `t.plate` qualified name) leaves the splice point on the word
        // boundary *after* the remaining fragment, so when the splice abuts
        // a preceding non-whitespace character the next word index is also
        // accepted.
        if let Some(at) = ex.removed_at {
            let wi = word_index_at(&ex.sql, at);
            let tail_of_word =
                at > 0 && !ex.sql.as_bytes()[at - 1].is_ascii_whitespace() && wi == position + 1;
            if wi != position && !tail_of_word {
                s.violation(
                    &name,
                    &ex.query_id,
                    "position-matches-splice",
                    format!("splice offset {at} is word {wi}, labeled position {position}"),
                );
            }
        }
        if ty == TokenType::Predicate {
            // The paper's hard class: deleting a whole predicate often
            // yields a valid query, so no detectability is required.
            continue;
        }
        if report.is_clean() {
            s.violation(
                &name,
                &ex.query_id,
                "positive-detectable",
                format!("deleting {ty} token left an analyzably-clean query"),
            );
            continue;
        }
        // Any parse error must locate at (or within lookahead slack of)
        // the deletion site — the parser cannot reject an intact prefix.
        for d in report.errors() {
            if d.code != "SQU001" && d.code != "SQU002" {
                continue; // binder errors point at uses, not the splice
            }
            let Some(span) = d.span else { continue };
            let wi = word_index_at(&ex.sql, span.start);
            if wi + PARSE_LOCATION_SLACK < position {
                s.violation(
                    &name,
                    &ex.query_id,
                    "parse-error-near-site",
                    format!(
                        "{} reported at word {wi}, {} words before labeled position {position}",
                        d.code,
                        position - wi
                    ),
                );
            }
        }
    }
    s
}

/// Both sides of every pair must lint clean; equivalent pairs must have
/// identical resolution signatures, non-equivalent pairs must differ.
fn audit_equiv(w: Workload, examples: &[EquivExample]) -> Section {
    let mut s = Section::default();
    let mut schemas = Schemas::new(w);
    let name = format!("equiv/{}", w.name());
    for ex in examples {
        let r1 = s.lint(&ex.sql1, schemas.get(&ex.schema_name));
        let r2 = s.lint(&ex.sql2, schemas.get(&ex.schema_name));
        require_clean(&mut s, &name, &ex.query_id, &r1, &ex.sql1);
        require_clean(&mut s, &name, &ex.query_id, &r2, &ex.sql2);
        if ex.equivalent {
            match (&r1.resolution, &r2.resolution) {
                (Some(a), Some(b)) if a == b => {}
                (Some(a), Some(b)) => s.violation(
                    &name,
                    &ex.query_id,
                    "equivalent-same-resolution",
                    format!(
                        "{} rewrite changed resolution: {} vs {}",
                        ex.transform,
                        a.render(),
                        b.render()
                    ),
                ),
                _ => s.violation(
                    &name,
                    &ex.query_id,
                    "equivalent-same-resolution",
                    format!("{} pair has an unanalyzable side", ex.transform),
                ),
            }
        } else if ex.sql1 == ex.sql2 {
            s.violation(
                &name,
                &ex.query_id,
                "non-equivalent-differs",
                format!("{} pair is textually identical", ex.transform),
            );
        }
    }
    s
}

/// Performance examples (real SDSS queries) must lint clean.
fn audit_perf(examples: &[PerfExample]) -> Section {
    let mut s = Section::default();
    let mut schemas = Schemas::new(Workload::Sdss);
    for ex in examples {
        let report = s.lint(&ex.sql, schemas.get("sdss"));
        require_clean(&mut s, "perf/sdss", &ex.query_id, &report, &ex.sql);
    }
    s
}

/// Explanation examples (Spider queries) must lint clean.
fn audit_explain(examples: &[ExplainExample]) -> Section {
    let mut s = Section::default();
    let mut schemas = Schemas::new(Workload::Spider);
    for ex in examples {
        let report = s.lint(&ex.sql, schemas.get(&ex.schema_name));
        require_clean(&mut s, "explain/spider", &ex.query_id, &report, &ex.sql);
    }
    s
}

/// Record a `clean-analysis` violation for every error-severity finding.
fn require_clean(s: &mut Section, dataset: &str, query_id: &str, report: &LintReport, sql: &str) {
    if report.is_clean() {
        return;
    }
    let detail = format!("{} in `{sql}`", render_codes(report));
    s.violation(dataset, query_id, "clean-analysis", detail);
}

/// Render a report's error codes for violation details, e.g. `[SQU011 x2]`.
fn render_codes(report: &LintReport) -> String {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for d in report.errors() {
        *counts.entry(d.code).or_insert(0) += 1;
    }
    if counts.is_empty() {
        return "[no errors]".to_string();
    }
    let parts: Vec<String> = counts
        .iter()
        .map(|(c, n)| {
            if *n == 1 {
                (*c).to_string()
            } else {
                format!("{c} x{n}")
            }
        })
        .collect();
    format!("[{}]", parts.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_clean_and_stable_json() {
        let r = AuditReport::default();
        assert!(r.is_clean());
        let json = r.to_json();
        assert!(json.contains("\"violations\": []"), "{json}");
        assert!(json.contains("\"rule_hits\": {}"), "{json}");
    }

    #[test]
    fn violations_make_report_dirty() {
        let mut r = AuditReport::default();
        r.violations.push(Violation {
            dataset: "syntax/sdss".into(),
            query_id: "sdss-0001".into(),
            invariant: "positive-expected-diagnostic".into(),
            detail: "missing".into(),
        });
        assert!(!r.is_clean());
        assert!(r.to_json().contains("positive-expected-diagnostic"));
    }

    #[test]
    fn render_codes_counts_errors() {
        use squ_schema::schemas::sdss;
        let schema = sdss();
        let report = lint("SELECT nosuch, nosuch2 FROM SpecObj", &schema);
        let rendered = render_codes(&report);
        assert_eq!(rendered, "[SQU011 x2]", "{rendered}");
        let clean = lint("SELECT plate FROM SpecObj", &schema);
        assert_eq!(render_codes(&clean), "[no errors]");
    }

    #[test]
    fn section_lint_counts_hits() {
        use squ_schema::schemas::sdss;
        let mut s = Section::default();
        s.lint("SELECT nosuch FROM SpecObj", &sdss());
        s.lint("SELECT plate FROM SpecObj", &sdss());
        assert_eq!(s.checked, 2);
        assert_eq!(s.hits.get("SQU011"), Some(&1));
    }
}
