//! Fault-injection measurement: the benchmark under an unreliable
//! transport (`repro --faults <profile>`).
//!
//! Every reviewable task dataset is run for every model through a
//! fault-injecting [`Transport`], and the outcomes are folded into a
//! [`FaultReport`]: per-call attempt counts, retry exhaustion, the
//! `needs_review` rate the paper routes to manual review, and — the
//! regression surface for the extraction layer — **per-fault-kind
//! survival**: of the calls whose response was corrupted by a given fault
//! kind, how many did the extractors still parse?
//!
//! The sweep is one generic loop over the task registry: every task whose
//! [`squ_tasks::TaskId::reviewable`] flag is set (the explanation task has
//! no `needs_review` notion and is excluded) contributes one cell per
//! `(model, workload)` pair through [`crate::registry::DynTask::call_facts`].
//!
//! The report is deterministic: all randomness hangs off
//! `(fault_seed, profile, model, task, example)` hashes and aggregation
//! happens in fixed (model × task) order, so the JSON artifact is
//! byte-identical for any `--jobs` count. Under the `none` profile the
//! transport is pass-through and the report must match the plain
//! pipeline's behavior exactly — `tests/faults.rs` pins that, and CI gates
//! on the committed `none`-profile baseline.

use crate::pipeline::dataset_id;
use crate::registry::{registry, DynTask};
use crate::suite::Suite;
use serde::{Deserialize, Serialize};
use squ_llm::{CallRecord, FaultKind, FaultProfile, ModelId, SimulatedModel, Transport};
use squ_workload::Workload;

/// Survival statistics for one fault kind.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct FaultKindStats {
    /// Stable fault-kind name (`truncation`, `refusal`, …).
    pub kind: String,
    /// Calls whose record saw this fault on at least one attempt.
    pub calls: usize,
    /// Of those, calls the extractors still parsed (`!needs_review`).
    pub survived: usize,
    /// `survived / calls` (1.0 when the kind never fired).
    pub survival_rate: f64,
    /// Of those, calls that ended in the manual-review bucket.
    pub needs_review_rate: f64,
}

/// One (model, task, dataset) cell of the report.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct FaultCell {
    /// Model display name.
    pub model: String,
    /// Task slug (`syntax_error`, `miss_token`, `query_equiv`,
    /// `performance_pred`).
    pub task: String,
    /// Dataset name.
    pub dataset: String,
    /// Logical calls made.
    pub calls: usize,
    /// Total attempts across those calls.
    pub attempts: usize,
    /// Calls that failed open after exhausting retries/budget.
    pub exhausted: usize,
    /// Calls routed to manual review.
    pub needs_review: usize,
}

/// The full fault-injection report behind `target/repro/faults.json`.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct FaultReport {
    /// Fault profile name.
    pub profile: String,
    /// Seed of the fault injector (independent of the suite seed).
    pub fault_seed: u64,
    /// Suite master seed.
    pub suite_seed: u64,
    /// Logical calls across all cells.
    pub calls: usize,
    /// Attempts across all cells (≥ `calls`; the excess is retries).
    pub attempts: usize,
    /// Calls that failed open.
    pub exhausted: usize,
    /// Calls in the manual-review bucket.
    pub needs_review: usize,
    /// `needs_review / calls`.
    pub needs_review_rate: f64,
    /// Per-fault-kind extraction survival, in [`FaultKind::ALL`] order.
    pub by_fault: Vec<FaultKindStats>,
    /// Per-(model, task, dataset) cells, in fixed enumeration order.
    pub cells: Vec<FaultCell>,
}

impl FaultReport {
    /// Pretty JSON (stable field and row order).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fault report serializes") // lint:allow: plain data structs always serialize
    }

    /// Survival stats for one kind, if it appears in the report.
    pub fn fault_stats(&self, kind: FaultKind) -> Option<&FaultKindStats> {
        self.by_fault.iter().find(|s| s.kind == kind.name())
    }
}

/// `(needs_review, call record)` — the per-call facts the report folds.
type CallFact = (bool, CallRecord);

/// One unit of fan-out work: a model over one task dataset.
#[derive(Clone, Copy)]
struct FaultJob {
    model: ModelId,
    task: &'static dyn DynTask,
    workload: Workload,
}

impl FaultJob {
    /// The dataset label of the report cell. Multi-workload tasks use the
    /// dataset display name; single-workload tasks keep the historical
    /// lowercase slug (`performance_pred` has always reported `sdss`).
    fn dataset_label(&self) -> String {
        if self.task.id().workloads().len() > 1 {
            dataset_id(self.workload).name().to_string()
        } else {
            self.workload.name().to_lowercase()
        }
    }
}

/// Run the full fault-injection sweep and fold the report.
///
/// Fans (model × task × dataset) cells over `jobs` worker threads;
/// results are aggregated in enumeration order, so the report — and its
/// JSON — is identical for any job count.
pub fn run_fault_report(
    suite: &Suite,
    profile: FaultProfile,
    fault_seed: u64,
    jobs: usize,
) -> FaultReport {
    let mut queue: Vec<FaultJob> = Vec::new();
    for model in ModelId::ALL {
        for w in Workload::task_workloads() {
            for task in registry() {
                if task.id().reviewable() && task.id().workloads().len() > 1 {
                    queue.push(FaultJob {
                        model,
                        task,
                        workload: w,
                    });
                }
            }
        }
        for task in registry() {
            if task.id().reviewable() && task.id().workloads().len() == 1 {
                queue.push(FaultJob {
                    model,
                    task,
                    workload: task.id().workloads()[0],
                });
            }
        }
    }

    let results: Vec<(FaultJob, Vec<CallFact>)> = crate::par::map(jobs, queue, |job| {
        let client = Transport::new(SimulatedModel::new(job.model), profile, fault_seed);
        let facts = suite
            .set(job.task.id(), job.workload)
            .map(|set| {
                job.task
                    .call_facts(&client, dataset_id(job.workload), set.examples())
            })
            .unwrap_or_default();
        (job, facts)
    });

    fold_report(suite.seed, profile, fault_seed, &results)
}

/// Fold per-call facts into the report (pure, order-preserving).
fn fold_report(
    suite_seed: u64,
    profile: FaultProfile,
    fault_seed: u64,
    results: &[(FaultJob, Vec<CallFact>)],
) -> FaultReport {
    let mut cells = Vec::with_capacity(results.len());
    let mut kind_calls = vec![0usize; FaultKind::ALL.len()];
    let mut kind_survived = vec![0usize; FaultKind::ALL.len()];
    let (mut calls, mut attempts, mut exhausted, mut needs_review) = (0, 0, 0, 0);

    for (job, facts) in results {
        let mut cell = FaultCell {
            model: job.model.name().to_string(),
            task: job.task.id().name().to_string(),
            dataset: job.dataset_label(),
            calls: facts.len(),
            attempts: 0,
            exhausted: 0,
            needs_review: 0,
        };
        for (review, rec) in facts {
            cell.attempts += rec.attempts as usize;
            cell.exhausted += rec.exhausted as usize;
            cell.needs_review += *review as usize;
            for (i, kind) in FaultKind::ALL.iter().enumerate() {
                if rec.saw(*kind) {
                    kind_calls[i] += 1;
                    kind_survived[i] += !review as usize;
                }
            }
        }
        calls += cell.calls;
        attempts += cell.attempts;
        exhausted += cell.exhausted;
        needs_review += cell.needs_review;
        cells.push(cell);
    }

    let by_fault = FaultKind::ALL
        .iter()
        .enumerate()
        .map(|(i, kind)| FaultKindStats {
            kind: kind.name().to_string(),
            calls: kind_calls[i],
            survived: kind_survived[i],
            survival_rate: if kind_calls[i] == 0 {
                1.0
            } else {
                kind_survived[i] as f64 / kind_calls[i] as f64
            },
            needs_review_rate: if kind_calls[i] == 0 {
                0.0
            } else {
                (kind_calls[i] - kind_survived[i]) as f64 / kind_calls[i] as f64
            },
        })
        .collect();

    FaultReport {
        profile: profile.name.to_string(),
        fault_seed,
        suite_seed,
        calls,
        attempts,
        exhausted,
        needs_review,
        needs_review_rate: if calls == 0 {
            0.0
        } else {
            needs_review as f64 / calls as f64
        },
        by_fault,
        cells,
    }
}
