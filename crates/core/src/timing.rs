//! Lightweight wall-clock phase timing.
//!
//! Spans and counters accumulate in a [`TimingSession`]: any layer can
//! wrap work in [`TimingSession::time`] (or [`TimingSession::record`] a
//! measured duration), and the owner decides at the end whether to
//! [`TimingSession::drain`] the spans into a human-readable report
//! ([`report`]) and machine-readable JSON ([`to_json`]).
//!
//! The module-level [`record`] / [`time`] / [`count`] / [`drain`]
//! functions delegate to one process-global **default session** — the
//! CLI path, where exactly one run owns the process and drains once at
//! exit. Concurrent owners (the evaluation server, tests running in
//! parallel) must *not* share that default: `drain` is destructive, so
//! one request's drain would steal another's spans. Each owner holds its
//! own `TimingSession` instead and drains only what it recorded.
//!
//! Span names are dotted paths (`suite.task.equiv.sdss`) so reports group
//! naturally when sorted.

use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One timed phase.
#[derive(Debug, Clone, Serialize)]
pub struct Span {
    /// Dotted phase name, e.g. `suite.workload.sdss`.
    pub name: String,
    /// Wall-clock milliseconds.
    pub ms: f64,
}

/// One named integer counter (e.g. engine rows scanned). Unlike spans,
/// counters are deterministic for a given run configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Counter {
    /// Dotted counter name, e.g. `fuzz.engine.rows_scanned`.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// A scoped span/counter registry.
///
/// Each concurrent owner — a server request, a test, a background job —
/// holds its own session, so recording and draining never interleave
/// across owners. The CLI path uses the process-global default session
/// through the module-level free functions, which keeps its single-run
/// `timings.json` byte-identical to the pre-session format.
#[derive(Debug, Default)]
pub struct TimingSession {
    spans: Mutex<Vec<Span>>,
    counters: Mutex<BTreeMap<String, u64>>,
}

impl TimingSession {
    /// An empty session.
    pub fn new() -> TimingSession {
        TimingSession::default()
    }

    /// Record an already-measured duration under `name`.
    pub fn record(&self, name: &str, elapsed: Duration) {
        let mut spans = self.spans.lock().expect("timing registry lock"); // lint:allow: poisoned only if a worker already panicked
        spans.push(Span {
            name: name.to_string(),
            ms: elapsed.as_secs_f64() * 1e3,
        });
    }

    /// Run `f`, recording its wall-clock time under `name`.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed());
        out
    }

    /// Add `value` to the counter named `name` (created at zero on first
    /// use). Counters live in a `BTreeMap`, so accumulation is O(log n)
    /// in the number of distinct counters and draining is already sorted.
    pub fn count(&self, name: &str, value: u64) {
        let mut counters = self.counters.lock().expect("timing counter lock"); // lint:allow: poisoned only if a worker already panicked
        match counters.get_mut(name) {
            Some(v) => *v += value,
            None => {
                counters.insert(name.to_string(), value);
            }
        }
    }

    /// Take all recorded counters, sorted by name.
    pub fn drain_counters(&self) -> Vec<Counter> {
        let counters = std::mem::take(&mut *self.counters.lock().expect("timing counter lock")); // lint:allow: poisoned only if a worker already panicked
        counters
            .into_iter()
            .map(|(name, value)| Counter { name, value })
            .collect()
    }

    /// Take all recorded spans, sorted by name (ties keep record order).
    /// Sorting makes the report stable however threads interleaved.
    pub fn drain(&self) -> Vec<Span> {
        let mut spans = std::mem::take(&mut *self.spans.lock().expect("timing registry lock")); // lint:allow: poisoned only if a worker already panicked
        spans.sort_by(|a, b| a.name.cmp(&b.name));
        spans
    }
}

/// The process-global default session behind the module-level functions.
/// Exactly one logical run (the CLI) should drain it; concurrent owners
/// create their own [`TimingSession`].
pub fn default_session() -> &'static TimingSession {
    static DEFAULT: OnceLock<TimingSession> = OnceLock::new();
    DEFAULT.get_or_init(TimingSession::new)
}

/// Record an already-measured duration under `name` (default session).
pub fn record(name: &str, elapsed: Duration) {
    default_session().record(name, elapsed);
}

/// Run `f`, recording its wall-clock time under `name` (default session).
pub fn time<T>(name: &str, f: impl FnOnce() -> T) -> T {
    default_session().time(name, f)
}

/// Add `value` to the counter named `name` (default session).
pub fn count(name: &str, value: u64) {
    default_session().count(name, value);
}

/// Take the default session's counters, sorted by name.
pub fn drain_counters() -> Vec<Counter> {
    default_session().drain_counters()
}

/// Take the default session's spans, sorted by name.
pub fn drain() -> Vec<Span> {
    default_session().drain()
}

/// Render spans as an aligned plain-text table.
pub fn report(spans: &[Span]) -> String {
    let width = spans.iter().map(|s| s.name.len()).max().unwrap_or(0);
    let mut out = String::new();
    for span in spans {
        out.push_str(&format!(
            "{:<width$}  {:>10.1} ms\n",
            span.name,
            span.ms,
            width = width
        ));
    }
    out
}

/// Render spans, counters, and run metadata as a JSON document:
/// `{"jobs": N, "total_ms": T, "spans": […], "counters": […]}`.
pub fn to_json(spans: &[Span], counters: &[Counter], jobs: usize, total: Duration) -> String {
    let doc = TimingsDoc {
        jobs,
        total_ms: total.as_secs_f64() * 1e3,
        spans: spans.to_vec(),
        counters: counters.to_vec(),
    };
    serde_json::to_string_pretty(&doc).expect("timings serialize") // lint:allow: plain data structs always serialize
}

#[derive(Serialize)]
struct TimingsDoc {
    jobs: usize,
    total_ms: f64,
    spans: Vec<Span>,
    counters: Vec<Counter>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_drains_sorted() {
        time("test.timing.z", || {
            std::thread::sleep(Duration::from_millis(2))
        });
        time("test.timing.a", || ());
        record("test.timing.m", Duration::from_millis(5));
        // other tests share the process-global registry; judge only ours
        let spans: Vec<Span> = drain()
            .into_iter()
            .filter(|s| s.name.starts_with("test.timing."))
            .collect();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["test.timing.a", "test.timing.m", "test.timing.z"]
        );
        assert!(spans[1].ms >= 5.0);
    }

    #[test]
    fn report_and_json_render() {
        let spans = vec![
            Span {
                name: "suite.total".into(),
                ms: 1234.5,
            },
            Span {
                name: "x".into(),
                ms: 0.25,
            },
        ];
        let text = report(&spans);
        assert!(text.contains("suite.total") && text.contains("1234.5 ms"));
        let counters = vec![Counter {
            name: "fuzz.engine.rows_scanned".into(),
            value: 42,
        }];
        let json = to_json(&spans, &counters, 8, Duration::from_millis(1500));
        let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(doc["jobs"], 8u64);
        assert_eq!(doc["spans"][0]["name"], "suite.total");
        assert!(doc["total_ms"].as_f64().unwrap() >= 1500.0);
        assert_eq!(doc["counters"][0]["name"], "fuzz.engine.rows_scanned");
        assert_eq!(doc["counters"][0]["value"], 42u64);
    }

    #[test]
    fn sessions_are_isolated_from_each_other_and_the_default() {
        let a = TimingSession::new();
        let b = TimingSession::new();
        a.record("session.a", Duration::from_millis(1));
        a.count("session.a.counter", 2);
        b.record("session.b", Duration::from_millis(1));
        time("session.global", || ());
        // draining one session never steals another's spans
        let a_spans = a.drain();
        assert_eq!(a_spans.len(), 1);
        assert_eq!(a_spans[0].name, "session.a");
        assert_eq!(a.drain_counters().len(), 1);
        let b_spans = b.drain();
        assert_eq!(b_spans.len(), 1);
        assert_eq!(b_spans[0].name, "session.b");
        // ... and the default session still holds the global span
        let global: Vec<Span> = drain()
            .into_iter()
            .filter(|s| s.name.starts_with("session."))
            .collect();
        assert_eq!(global.len(), 1);
        assert_eq!(global[0].name, "session.global");
        // a drained session is empty, not poisoned
        assert!(a.drain().is_empty());
        assert!(a.drain_counters().is_empty());
    }

    #[test]
    fn concurrent_session_drains_do_not_interleave() {
        // two owners record + drain in parallel; each must get exactly
        // its own spans back — the bug class the global drain had
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|owner| {
                    scope.spawn(move || {
                        let session = TimingSession::new();
                        for i in 0..50 {
                            session.record(&format!("owner{owner}.span{i}"), Duration::ZERO);
                            session.count(&format!("owner{owner}.counter"), 1);
                        }
                        let spans = session.drain();
                        let counters = session.drain_counters();
                        (owner, spans, counters)
                    })
                })
                .collect();
            for h in handles {
                let (owner, spans, counters) = h.join().expect("session thread");
                assert_eq!(spans.len(), 50);
                let prefix = format!("owner{owner}.");
                assert!(spans.iter().all(|s| s.name.starts_with(&prefix)));
                assert_eq!(counters.len(), 1);
                assert_eq!(counters[0].value, 50);
            }
        });
    }

    #[test]
    fn counters_accumulate_and_drain_sorted() {
        count("test.counter.b", 3);
        count("test.counter.a", 1);
        count("test.counter.b", 4);
        let counters: Vec<Counter> = drain_counters()
            .into_iter()
            .filter(|c| c.name.starts_with("test.counter."))
            .collect();
        let pairs: Vec<(&str, u64)> = counters
            .iter()
            .map(|c| (c.name.as_str(), c.value))
            .collect();
        assert_eq!(pairs, vec![("test.counter.a", 1), ("test.counter.b", 7)]);
    }
}
