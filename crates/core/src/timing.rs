//! Lightweight wall-clock phase timing.
//!
//! A process-global span registry: any layer can wrap work in
//! [`time`] (or [`record`] a measured duration), and the driver decides at
//! the end whether to [`drain`] the spans into a human-readable report
//! ([`report`]) and machine-readable JSON ([`to_json`]). When nothing
//! drains the registry the overhead is one mutex push per span.
//!
//! Span names are dotted paths (`suite.task.equiv.sdss`) so reports group
//! naturally when sorted.

use serde::Serialize;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One timed phase.
#[derive(Debug, Clone, Serialize)]
pub struct Span {
    /// Dotted phase name, e.g. `suite.workload.sdss`.
    pub name: String,
    /// Wall-clock milliseconds.
    pub ms: f64,
}

/// One named integer counter (e.g. engine rows scanned). Unlike spans,
/// counters are deterministic for a given run configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Counter {
    /// Dotted counter name, e.g. `fuzz.engine.rows_scanned`.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

fn registry() -> &'static Mutex<Vec<Span>> {
    static SPANS: OnceLock<Mutex<Vec<Span>>> = OnceLock::new();
    SPANS.get_or_init(|| Mutex::new(Vec::new()))
}

fn counter_registry() -> &'static Mutex<Vec<Counter>> {
    static COUNTERS: OnceLock<Mutex<Vec<Counter>>> = OnceLock::new();
    COUNTERS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Record an already-measured duration under `name`.
pub fn record(name: &str, elapsed: Duration) {
    let mut spans = registry().lock().expect("timing registry lock"); // lint:allow: poisoned only if a worker already panicked
    spans.push(Span {
        name: name.to_string(),
        ms: elapsed.as_secs_f64() * 1e3,
    });
}

/// Run `f`, recording its wall-clock time under `name`.
pub fn time<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    record(name, start.elapsed());
    out
}

/// Add `value` to the counter named `name` (created at zero on first use).
pub fn count(name: &str, value: u64) {
    let mut counters = counter_registry().lock().expect("timing counter lock"); // lint:allow: poisoned only if a worker already panicked
    match counters.iter_mut().find(|c| c.name == name) {
        Some(c) => c.value += value,
        None => counters.push(Counter {
            name: name.to_string(),
            value,
        }),
    }
}

/// Take all recorded counters, sorted by name.
pub fn drain_counters() -> Vec<Counter> {
    let mut counters =
        std::mem::take(&mut *counter_registry().lock().expect("timing counter lock")); // lint:allow: poisoned only if a worker already panicked
    counters.sort_by(|a, b| a.name.cmp(&b.name));
    counters
}

/// Take all recorded spans, sorted by name (ties keep record order).
/// Sorting makes the report stable however threads interleaved.
pub fn drain() -> Vec<Span> {
    let mut spans = std::mem::take(&mut *registry().lock().expect("timing registry lock")); // lint:allow: poisoned only if a worker already panicked
    spans.sort_by(|a, b| a.name.cmp(&b.name));
    spans
}

/// Render spans as an aligned plain-text table.
pub fn report(spans: &[Span]) -> String {
    let width = spans.iter().map(|s| s.name.len()).max().unwrap_or(0);
    let mut out = String::new();
    for span in spans {
        out.push_str(&format!(
            "{:<width$}  {:>10.1} ms\n",
            span.name,
            span.ms,
            width = width
        ));
    }
    out
}

/// Render spans, counters, and run metadata as a JSON document:
/// `{"jobs": N, "total_ms": T, "spans": […], "counters": […]}`.
pub fn to_json(spans: &[Span], counters: &[Counter], jobs: usize, total: Duration) -> String {
    let doc = TimingsDoc {
        jobs,
        total_ms: total.as_secs_f64() * 1e3,
        spans: spans.to_vec(),
        counters: counters.to_vec(),
    };
    serde_json::to_string_pretty(&doc).expect("timings serialize") // lint:allow: plain data structs always serialize
}

#[derive(Serialize)]
struct TimingsDoc {
    jobs: usize,
    total_ms: f64,
    spans: Vec<Span>,
    counters: Vec<Counter>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_drains_sorted() {
        time("test.timing.z", || {
            std::thread::sleep(Duration::from_millis(2))
        });
        time("test.timing.a", || ());
        record("test.timing.m", Duration::from_millis(5));
        // other tests share the process-global registry; judge only ours
        let spans: Vec<Span> = drain()
            .into_iter()
            .filter(|s| s.name.starts_with("test.timing."))
            .collect();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["test.timing.a", "test.timing.m", "test.timing.z"]
        );
        assert!(spans[1].ms >= 5.0);
    }

    #[test]
    fn report_and_json_render() {
        let spans = vec![
            Span {
                name: "suite.total".into(),
                ms: 1234.5,
            },
            Span {
                name: "x".into(),
                ms: 0.25,
            },
        ];
        let text = report(&spans);
        assert!(text.contains("suite.total") && text.contains("1234.5 ms"));
        let counters = vec![Counter {
            name: "fuzz.engine.rows_scanned".into(),
            value: 42,
        }];
        let json = to_json(&spans, &counters, 8, Duration::from_millis(1500));
        let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(doc["jobs"], 8u64);
        assert_eq!(doc["spans"][0]["name"], "suite.total");
        assert!(doc["total_ms"].as_f64().unwrap() >= 1500.0);
        assert_eq!(doc["counters"][0]["name"], "fuzz.engine.rows_scanned");
        assert_eq!(doc["counters"][0]["value"], 42u64);
    }

    #[test]
    fn counters_accumulate_and_drain_sorted() {
        count("test.counter.b", 3);
        count("test.counter.a", 1);
        count("test.counter.b", 4);
        let counters: Vec<Counter> = drain_counters()
            .into_iter()
            .filter(|c| c.name.starts_with("test.counter."))
            .collect();
        let pairs: Vec<(&str, u64)> = counters
            .iter()
            .map(|c| (c.name.as_str(), c.value))
            .collect();
        assert_eq!(pairs, vec![("test.counter.a", 1), ("test.counter.b", 7)]);
    }
}
