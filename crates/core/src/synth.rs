//! Streaming, sharded, distribution-targeted workload synthesis.
//!
//! [`run_synth`] drives [`squ_workload::QueryStream`] to an arbitrary
//! size without ever materializing the workload: candidates are generated
//! in rounds, each round's index range is split into contiguous shards
//! ([`par::shard_ranges`]) built across `--jobs` workers, and every shard
//! returns only an order-independent [`ShardSummary`] — bucket tallies,
//! mergeable quantile sketches, and the `(index, fingerprint)` pairs of
//! the candidates it accepted. Peak memory is therefore bounded by the
//! round budget, never by `N`.
//!
//! **Byte-identity.** The final [`SynthReport`] is identical for any
//! `--jobs` *and any shard count* because every moving part is either a
//! pure function of `(seed, index)` (stream items, accept/reject draws)
//! or a commutative-exact merge (sketch bucket addition, histogram sums),
//! and shard ranges are contiguous — concatenating their accepted lists
//! in shard order *is* index order. Shard- and job-dependent data (shard
//! count, RSS, wall-clock) goes to `timings.json` instead; the report's
//! chunk fingerprints are the partition-independent identity any shard
//! layout must reproduce.
//!
//! **Feedback.** With a `--target` spec, round 0 only calibrates (the
//! [`Controller`] measures the candidate distribution and accepts
//! nothing); later rounds accept/reject per bucket and anneal the
//! generation profile, steering the accepted histogram toward the target.
//!
//! **Fingerprints.** Accepted items are folded into fixed-size chunks of
//! [`SYNTH_CHUNK`] by accepted rank (`fp_item = hash(index, sql,
//! schema)`, XOR within a chunk), and the chunk fingerprints fold into
//! one total. Chunks cover exactly the first `n` accepted items; the
//! sketches and histograms cover *all* accepted candidates (the final
//! round may overshoot slightly), which `accepted_considered` records.

use crate::par::{self, shard_ranges};
use crate::store::{fp_synth_shard, fp_synth_spec, Fingerprint, Store};
use crate::timing;
use serde::{Deserialize, Serialize};
use squ_engine::RUNTIME_BUCKET_EDGES_MS;
use squ_workload::analysis::default_edges;
use squ_workload::sketch::{exact_quantile, QuantileSketch};
use squ_workload::stream::StreamCursor;
use squ_workload::target::{
    accepts, axis_value, AcceptRule, AxisReport, Controller, RoundCounts, RoundPlan,
};
use squ_workload::{synth_profile, QueryStream, TargetSpec, Workload};

/// Accepted items are fingerprint-folded in chunks of this many.
pub const SYNTH_CHUNK: u64 = 1 << 16;
/// Hard per-round candidate budget: bounds every per-round allocation
/// (and so peak RSS) independently of `n`.
pub const ROUND_MAX: u64 = 1 << 17;
/// Give up steering after this many rounds.
pub const MAX_ROUNDS: u32 = 64;
/// Exact values are retained for the sketch spot-check only up to this
/// requested size.
pub const SKETCH_CHECK_MAX: u64 = 10_000;

/// Properties summarized with quantile sketches.
const SKETCH_PROPS: [&str; 4] = ["runtime_ms", "char_count", "predicate_count", "join_count"];
/// Properties always histogrammed in the report (the paper's four
/// structural axes plus the engine's runtime buckets).
const HIST_PROPS: [&str; 5] = [
    "table_count",
    "join_count",
    "predicate_count",
    "nestedness",
    "runtime_ms",
];
/// Store stage name for shard summaries.
const STAGE: &str = "synth";

/// Histogram edges of a report property.
fn hist_edges(property: &str) -> Vec<f64> {
    if property == "runtime_ms" {
        RUNTIME_BUCKET_EDGES_MS.to_vec()
    } else {
        default_edges(property)
    }
}

/// One synthesis run's inputs.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Workload whose character the stream mimics.
    pub base: Workload,
    /// Stream seed.
    pub seed: u64,
    /// Requested number of accepted queries.
    pub n: u64,
    /// Shard count (each round's range splits into this many partitions).
    pub shards: usize,
    /// Worker threads building shards.
    pub jobs: usize,
    /// Raw `--target` spec JSON, if any.
    pub target_json: Option<String>,
}

/// Everything one shard reports back from one round. Merging summaries
/// is order-independent (sums, exact sketch merges, and concatenation of
/// index-sorted accepted lists), which is what makes any shard count
/// reproduce the unsharded build.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardSummary {
    /// Target-axis tallies (empty without a target).
    pub counts: RoundCounts,
    /// Accepted-query histograms over [`HIST_PROPS`].
    pub hist: Vec<Vec<u64>>,
    /// Accepted-query sketches over [`SKETCH_PROPS`].
    pub sketches: Vec<QuantileSketch>,
    /// `(stream index, item fingerprint)` of accepted candidates, in
    /// ascending index order.
    pub accepted: Vec<(u64, u64)>,
    /// Exact accepted values per sketch property (only for small runs,
    /// for the sketch spot-check; empty otherwise).
    pub exact: Vec<Vec<f64>>,
}

/// Sketch-vs-exact spot check (small runs only).
#[derive(Debug, Clone, Serialize)]
pub struct SketchCheck {
    /// Largest relative error observed over all sketched properties and
    /// checked quantiles.
    pub max_rel_err: f64,
    /// The documented bound the errors are held to.
    pub bound: f64,
    /// Did every check stay within the bound?
    pub pass: bool,
}

/// Quantile summary of one sketched property.
#[derive(Debug, Clone, Serialize)]
pub struct SketchSummary {
    /// Property name.
    pub property: String,
    /// Values summarized.
    pub count: u64,
    /// Exact minimum.
    pub min: f64,
    /// Exact maximum.
    pub max: f64,
    /// Median (within the sketch's relative-error bound).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Histogram of one report property.
#[derive(Debug, Clone, Serialize)]
pub struct HistogramSummary {
    /// Property name.
    pub property: String,
    /// Bucket edges.
    pub edges: Vec<f64>,
    /// Accepted-query counts per bucket.
    pub counts: Vec<u64>,
}

/// The shard-count- and job-count-invariant synthesis report
/// (`target/repro/synth.json`).
#[derive(Debug, Clone, Serialize)]
pub struct SynthReport {
    /// Base workload name.
    pub base: String,
    /// Stream seed.
    pub seed: u64,
    /// Requested size `n`.
    pub requested: u64,
    /// Accepted candidates actually summarized (≥ `requested` unless
    /// exhausted: the final round may overshoot).
    pub accepted_considered: u64,
    /// Candidates generated across all rounds.
    pub candidates: u64,
    /// Rounds run.
    pub rounds: u32,
    /// Accepted / candidates over steering rounds.
    pub acceptance_rate: f64,
    /// Did the accepted distribution reach the target tolerance?
    /// (Trivially true without a target.)
    pub converged: bool,
    /// True if `MAX_ROUNDS` elapsed before `n` acceptances.
    pub exhausted: bool,
    /// The normalized target spec, if any.
    pub target: Option<TargetSpec>,
    /// Per-axis target-vs-achieved summaries (empty without a target).
    pub axes: Vec<AxisReport>,
    /// Histograms over [`HIST_PROPS`].
    pub histograms: Vec<HistogramSummary>,
    /// Quantile summaries over [`SKETCH_PROPS`].
    pub sketches: Vec<SketchSummary>,
    /// XOR-folded item fingerprints per accepted-rank chunk of
    /// [`SYNTH_CHUNK`] (hex); covers exactly the first `requested` items.
    pub chunks: Vec<String>,
    /// Fold of the chunk fingerprints (hex): the dataset identity.
    pub fingerprint: String,
    /// Sketch-vs-exact spot check (small runs only).
    pub sketch_check: Option<SketchCheck>,
}

impl SynthReport {
    /// Pretty JSON rendering (the `synth.json` bytes).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("synth report serializes") // lint:allow: plain data structs always serialize
    }
}

/// Fingerprint of one accepted stream item.
fn fp_item(index: u64, sql: &str, schema_name: &str) -> u64 {
    Fingerprint::new("synth-item")
        .num(index)
        .push(sql)
        .push(schema_name)
        .finish()
}

/// Build one shard of one round: walk the stream over `[start,
/// start + len)` under the round's profile, tally every candidate, and
/// summarize the accepted ones.
fn run_shard(
    cfg: &SynthConfig,
    spec: Option<&TargetSpec>,
    plan: &RoundPlan,
    start: u64,
    len: u64,
    collect_exact: bool,
) -> ShardSummary {
    let stream = QueryStream::with_profile(cfg.base, plan.profile.clone(), cfg.seed);
    let mut iter = stream.iter_from(StreamCursor {
        seed: cfg.seed,
        index: start,
    });
    let mut counts = RoundCounts::for_spec(spec);
    let mut hist: Vec<Vec<u64>> = HIST_PROPS
        .iter()
        .map(|p| vec![0u64; hist_edges(p).len() + 1])
        .collect();
    let hist_edge_sets: Vec<Vec<f64>> = HIST_PROPS.iter().map(|p| hist_edges(p)).collect();
    let mut sketches = vec![QuantileSketch::new(); SKETCH_PROPS.len()];
    let mut accepted = Vec::new();
    let mut exact: Vec<Vec<f64>> = vec![Vec::new(); SKETCH_PROPS.len()];
    for index in start..start + len {
        let q = iter.next().expect("stream is infinite"); // lint:allow: StreamIter::next always yields
        let values: Vec<f64> = spec
            .map(|s| s.axes.iter().map(|a| axis_value(&q, &a.property)).collect())
            .unwrap_or_default();
        let take = accepts(&plan.accept, cfg.seed, index, &values);
        counts.record(spec, &values, take);
        if !take {
            continue;
        }
        for (h, (prop, edges)) in hist.iter_mut().zip(HIST_PROPS.iter().zip(&hist_edge_sets)) {
            let b = squ_workload::target::bucket_index(edges, axis_value(&q, prop));
            h[b] += 1;
        }
        for (i, prop) in SKETCH_PROPS.iter().enumerate() {
            let v = axis_value(&q, prop);
            sketches[i].insert(v);
            if collect_exact {
                exact[i].push(v);
            }
        }
        accepted.push((index, fp_item(index, &q.sql, &q.schema_name)));
    }
    ShardSummary {
        counts,
        hist,
        sketches,
        accepted,
        exact,
    }
}

/// Deterministic candidate budget for the next round, derived only from
/// the controller's merged state (so it is identical for any sharding).
fn round_budget(
    cfg: &SynthConfig,
    plan: &RoundPlan,
    controller: &Controller,
    accepted: u64,
) -> u64 {
    let remaining = cfg.n.saturating_sub(accepted);
    match &plan.accept {
        AcceptRule::All => remaining.min(ROUND_MAX),
        AcceptRule::Calibrate => (cfg.n / 2).clamp(256, 8192),
        AcceptRule::Probs(_) => {
            // expect acceptance near the measured steering rate (or the
            // plan's own expected rate before any steering round)
            let rate = if controller.rounds() > 1 {
                controller.acceptance_rate().max(0.01)
            } else {
                expected_rate(plan).max(0.01)
            };
            // Ramp: early steering rounds stay small so the controller
            // corrects course before most of `n` is committed — the first
            // steering probabilities are computed against the calibration
            // profile's candidate mix, which annealing immediately shifts.
            let ramp = accepted.max(512) * 4;
            // Corrective rounds (n reached but the cumulative accepted
            // distribution still off-target) work in `n / 8` slices.
            let goal = if remaining == 0 && !controller.converged() {
                cfg.n / 8
            } else {
                remaining
            };
            (((goal as f64 / rate) * 1.1) as u64).clamp(1024, ROUND_MAX.min(ramp))
        }
    }
}

/// Expected acceptance rate of a plan before it has run: per axis, the
/// mean of its bucket probabilities (candidate-weighted only after the
/// first steering round; uniform here), multiplied across axes.
fn expected_rate(plan: &RoundPlan) -> f64 {
    match &plan.accept {
        AcceptRule::All => 1.0,
        AcceptRule::Calibrate => 0.0,
        AcceptRule::Probs(axes) => axes
            .iter()
            .map(|a| a.probs.iter().sum::<f64>() / a.probs.len().max(1) as f64)
            .product(),
    }
}

/// Peak resident set size of this process in KiB (`VmHWM` from
/// `/proc/self/status`), or 0 where unavailable.
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|text| {
            text.lines().find_map(|line| {
                line.strip_prefix("VmHWM:")?
                    .trim()
                    .trim_end_matches(" kB")
                    .trim()
                    .parse::<u64>()
                    .ok()
            })
        })
        .unwrap_or(0)
}

/// Run one synthesis (see the module docs). `store` caches per-shard
/// round summaries keyed by [`fp_synth_shard`], so an interrupted run
/// resumes without regenerating finished shards.
pub fn run_synth(cfg: &SynthConfig, mut store: Option<&mut Store>) -> Result<SynthReport, String> {
    let spec = cfg
        .target_json
        .as_deref()
        .map(TargetSpec::from_json)
        .transpose()?;
    if cfg.n == 0 {
        return Err("synth: requested size must be at least 1".into());
    }
    if cfg.shards == 0 {
        return Err("synth: shard count must be at least 1".into());
    }
    let spec_fp = fp_synth_spec(
        cfg.seed,
        cfg.n,
        cfg.base,
        cfg.target_json.as_deref().unwrap_or(""),
    );
    let collect_exact = cfg.n <= SKETCH_CHECK_MAX;

    let mut controller = Controller::new(synth_profile(cfg.base), spec.clone());
    let mut merged_sketches = vec![QuantileSketch::new(); SKETCH_PROPS.len()];
    let mut merged_hist: Vec<Vec<u64>> = HIST_PROPS
        .iter()
        .map(|p| vec![0u64; hist_edges(p).len() + 1])
        .collect();
    let mut exact: Vec<Vec<f64>> = vec![Vec::new(); SKETCH_PROPS.len()];
    let mut chunks: Vec<u64> = Vec::new();
    let mut chunk_acc = 0u64;
    let mut rank = 0u64; // accepted items folded into chunks (≤ n)
    let mut accepted_total = 0u64;
    let mut candidates_total = 0u64;
    let mut next_index = 0u64;

    // Run until `n` items are accepted AND the cumulative accepted
    // distribution is within tolerance: once `n` is reached, further
    // corrective rounds only widen `accepted_considered` (the chunk
    // fingerprints stay fixed at the first `n`).
    while (accepted_total < cfg.n || !controller.converged()) && controller.rounds() < MAX_ROUNDS {
        let plan = controller.plan();
        let budget = round_budget(cfg, &plan, &controller, accepted_total);
        let ranges = shard_ranges(next_index, budget, cfg.shards);

        // prefetch cached shard summaries; compute the misses in parallel
        let mut slots: Vec<Option<ShardSummary>> = Vec::with_capacity(cfg.shards);
        let mut pending: Vec<(usize, (u64, u64))> = Vec::new();
        for (k, &range) in ranges.iter().enumerate() {
            let cached = store.as_mut().and_then(|s| {
                s.load_value::<ShardSummary>(
                    STAGE,
                    &shard_name(plan.round, k, cfg.shards),
                    fp_synth_shard(spec_fp, plan.round, k, cfg.shards),
                )
            });
            if cached.is_none() {
                pending.push((k, range));
            }
            slots.push(cached);
        }
        let computed = par::map(cfg.jobs, pending, |(k, (start, len))| {
            (
                k,
                run_shard(cfg, spec.as_ref(), &plan, start, len, collect_exact),
            )
        });
        for (k, summary) in computed {
            if let Some(s) = store.as_mut() {
                s.save_value(
                    STAGE,
                    &shard_name(plan.round, k, cfg.shards),
                    fp_synth_shard(spec_fp, plan.round, k, cfg.shards),
                    &summary,
                );
            }
            slots[k] = Some(summary);
        }

        // merge in shard order: ranges are contiguous and ascending, so
        // this is index order for any shard count
        let mut round_counts = RoundCounts::for_spec(spec.as_ref());
        for slot in slots {
            let summary = slot.expect("every shard slot filled"); // lint:allow: compute loop fills every miss
            round_counts.merge(&summary.counts);
            for (m, s) in merged_sketches.iter_mut().zip(&summary.sketches) {
                m.merge(s);
            }
            for (m, h) in merged_hist.iter_mut().zip(&summary.hist) {
                for (a, b) in m.iter_mut().zip(h) {
                    *a += b;
                }
            }
            for (e, v) in exact.iter_mut().zip(&summary.exact) {
                e.extend_from_slice(v);
            }
            for &(index, fp) in &summary.accepted {
                if rank < cfg.n {
                    chunk_acc ^= fp.rotate_left((index % 63) as u32);
                    rank += 1;
                    if rank % SYNTH_CHUNK == 0 {
                        chunks.push(chunk_acc);
                        chunk_acc = 0;
                    }
                }
            }
            accepted_total += summary.accepted.len() as u64;
        }
        candidates_total += round_counts.candidates;
        controller.observe(&round_counts);
        next_index += budget;
    }
    if rank > 0 && rank % SYNTH_CHUNK != 0 {
        chunks.push(chunk_acc);
    }

    let mut total_fp = Fingerprint::new("synth-total");
    total_fp.num(spec_fp).num(rank);
    for &c in &chunks {
        total_fp.num(c);
    }

    let sketch_check = collect_exact.then(|| {
        let bound = QuantileSketch::RELATIVE_ERROR + 1e-9;
        let mut max_rel_err = 0.0_f64;
        for (sketch, values) in merged_sketches.iter().zip(&exact) {
            for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
                let (Some(approx), Some(exact)) = (sketch.quantile(q), exact_quantile(values, q))
                else {
                    continue;
                };
                let err = if exact.abs() < 1e-12 {
                    approx.abs()
                } else {
                    (approx - exact).abs() / exact.abs()
                };
                max_rel_err = max_rel_err.max(err);
            }
        }
        SketchCheck {
            max_rel_err,
            bound,
            pass: max_rel_err <= bound,
        }
    });

    timing::count("synth.candidates", candidates_total);
    timing::count("synth.accepted", accepted_total);
    timing::count("synth.rounds", u64::from(controller.rounds()));
    timing::count("synth.shards", cfg.shards as u64);
    timing::count("synth.peak_rss_kb", peak_rss_kb());

    Ok(SynthReport {
        base: cfg.base.name().to_string(),
        seed: cfg.seed,
        requested: cfg.n,
        accepted_considered: accepted_total,
        candidates: candidates_total,
        rounds: controller.rounds(),
        acceptance_rate: controller.acceptance_rate(),
        converged: controller.converged(),
        exhausted: accepted_total < cfg.n,
        target: spec,
        axes: controller.axis_reports(),
        histograms: HIST_PROPS
            .iter()
            .zip(merged_hist)
            .map(|(p, counts)| HistogramSummary {
                property: (*p).to_string(),
                edges: hist_edges(p),
                counts,
            })
            .collect(),
        sketches: SKETCH_PROPS
            .iter()
            .zip(&merged_sketches)
            .map(|(p, s)| SketchSummary {
                property: (*p).to_string(),
                count: s.count(),
                min: s.min().unwrap_or(0.0),
                max: s.max().unwrap_or(0.0),
                p50: s.quantile(0.50).unwrap_or(0.0),
                p90: s.quantile(0.90).unwrap_or(0.0),
                p99: s.quantile(0.99).unwrap_or(0.0),
            })
            .collect(),
        chunks: chunks.iter().map(|c| format!("{c:016x}")).collect(),
        fingerprint: format!("{:016x}", total_fp.finish()),
        sketch_check,
    })
}

/// Store entry name of one shard summary.
fn shard_name(round: u32, shard: usize, shards: usize) -> String {
    format!("r{round}-{shard}of{shards}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: u64, shards: usize, jobs: usize) -> SynthConfig {
        SynthConfig {
            base: Workload::Sdss,
            seed: 2023,
            n,
            shards,
            jobs,
            target_json: None,
        }
    }

    #[test]
    fn report_is_identical_across_shard_and_job_counts() {
        let baseline = run_synth(&cfg(600, 1, 1), None).unwrap().to_json();
        for (shards, jobs) in [(3, 1), (3, 4), (8, 2)] {
            let got = run_synth(&cfg(600, shards, jobs), None).unwrap().to_json();
            assert_eq!(got, baseline, "shards={shards} jobs={jobs}");
        }
    }

    #[test]
    fn untargeted_run_accepts_everything_in_one_pass_per_budget() {
        let report = run_synth(&cfg(500, 2, 2), None).unwrap();
        assert_eq!(report.accepted_considered, 500);
        assert_eq!(report.candidates, 500);
        assert!((report.acceptance_rate - 1.0).abs() < 1e-12);
        assert!(report.converged);
        assert!(!report.exhausted);
        assert_eq!(report.chunks.len(), 1);
        assert!(report.sketch_check.as_ref().unwrap().pass);
        // histograms summarize exactly the accepted set
        for h in &report.histograms {
            assert_eq!(h.counts.iter().sum::<u64>(), 500, "{}", h.property);
        }
    }

    #[test]
    fn store_resume_reproduces_the_report() {
        let dir = std::env::temp_dir().join(format!("squ-synth-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut store = Store::open(&dir);
        let cold = run_synth(&cfg(400, 3, 2), Some(&mut store))
            .unwrap()
            .to_json();
        let warm = run_synth(&cfg(400, 3, 2), Some(&mut store))
            .unwrap()
            .to_json();
        assert_eq!(cold, warm);
        let stats = store.stats().get(STAGE).copied().unwrap_or_default();
        assert!(stats.hits >= 3, "warm run served from the store: {stats:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn targeted_run_calibrates_then_steers() {
        let target = r#"{"tolerance": 0.1, "axes": [{"property": "nestedness", "edges": [1.0], "weights": [0.6, 0.4]}]}"#;
        let mut c = cfg(300, 2, 2);
        c.target_json = Some(target.to_string());
        let report = run_synth(&c, None).unwrap();
        assert!(
            report.rounds >= 2,
            "calibration plus at least one steering round"
        );
        assert!(report.accepted_considered >= 300);
        assert!(report.candidates > report.accepted_considered);
        assert_eq!(report.axes.len(), 1);
        assert!(report.acceptance_rate > 0.0 && report.acceptance_rate < 1.0);
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        let mut c = cfg(0, 1, 1);
        assert!(run_synth(&c, None).unwrap_err().contains("size"));
        c.n = 10;
        c.shards = 0;
        assert!(run_synth(&c, None).unwrap_err().contains("shard"));
        c.shards = 1;
        c.target_json = Some("not json".into());
        assert!(run_synth(&c, None).unwrap_err().contains("target spec"));
    }

    #[test]
    fn peak_rss_reads_proc_on_linux() {
        #[cfg(target_os = "linux")]
        assert!(peak_rss_kb() > 0);
        #[cfg(not(target_os = "linux"))]
        let _ = peak_rss_kb();
    }
}
