//! Benchmark dataset export.
//!
//! The paper publishes its task-driven benchmark ("Our SQL task-driven
//! data benchmark is publicly available"); this module writes the same
//! deliverable: one JSON-lines file per task dataset plus a manifest, so
//! the labeled data can be consumed without Rust. Task files come from one
//! generic loop over [`Suite::sets`]; the records themselves are rendered
//! by [`crate::registry::DynTask::export_lines`].

use crate::suite::Suite;
use serde::Serialize;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Summary of one exported file.
#[derive(Debug, Clone, Serialize)]
pub struct ExportedFile {
    /// File name relative to the export directory.
    pub file: String,
    /// Which task the records belong to.
    pub task: String,
    /// Which workload the records derive from.
    pub workload: String,
    /// Number of JSONL records.
    pub records: usize,
}

/// Manifest of a full export.
#[derive(Debug, Clone, Serialize)]
pub struct Manifest {
    /// Master seed the suite was built with.
    pub seed: u64,
    /// The exported files.
    pub files: Vec<ExportedFile>,
}

/// Lowercased, dash-free workload slug for file names.
fn slug(name: &str) -> String {
    name.to_lowercase().replace('-', "")
}

fn write_lines(
    dir: &Path,
    name: &str,
    task: &str,
    workload: &str,
    lines: &[String],
) -> std::io::Result<ExportedFile> {
    let path = dir.join(name);
    let mut f = fs::File::create(&path)?;
    for line in lines {
        writeln!(f, "{line}")?;
    }
    Ok(ExportedFile {
        file: name.to_string(),
        task: task.to_string(),
        workload: workload.to_string(),
        records: lines.len(),
    })
}

/// Export every dataset of `suite` as JSONL under `dir`, returning the
/// manifest (also written to `manifest.json`).
pub fn export_suite(suite: &Suite, dir: &Path) -> std::io::Result<Manifest> {
    fs::create_dir_all(dir)?;
    let mut files = Vec::new();

    for w in [
        squ_workload::Workload::Sdss,
        squ_workload::Workload::SqlShare,
        squ_workload::Workload::JoinOrder,
        squ_workload::Workload::Spider,
    ] {
        let ds = suite.dataset(w);
        let lines: Vec<String> = ds
            .queries
            .iter()
            .map(|q| serde_json::to_string(q).expect("benchmark records serialize")) // lint:allow: plain data structs always serialize
            .collect();
        let name = format!("workload_{}.jsonl", slug(w.name()));
        files.push(write_lines(dir, &name, "workload", w.name(), &lines)?);
    }
    for set in suite.sets() {
        let id = set.task().id();
        let w = set.workload();
        let name = format!("{}_{}.jsonl", id.file_stem(), slug(w.name()));
        let lines = set.task().export_lines(set.examples());
        files.push(write_lines(dir, &name, id.name(), w.name(), &lines)?);
    }

    let manifest = Manifest {
        seed: suite.seed,
        files,
    };
    fs::write(
        dir.join("manifest.json"),
        serde_json::to_string_pretty(&manifest).expect("manifest serializes"), // lint:allow: plain data structs always serialize
    )?;
    Ok(manifest)
}

/// Default export directory.
pub fn default_export_dir() -> PathBuf {
    PathBuf::from("target/benchmark-export")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::PAPER_SEED;
    use std::sync::OnceLock;

    fn suite() -> &'static Suite {
        static SUITE: OnceLock<Suite> = OnceLock::new();
        SUITE.get_or_init(|| Suite::new(PAPER_SEED))
    }

    #[test]
    fn export_writes_all_datasets() {
        let dir = std::env::temp_dir().join(format!("squ-export-{}", std::process::id()));
        let manifest = export_suite(suite(), &dir).expect("export succeeds");
        // 4 workloads + 3 syntax + 3 token + 3 equiv + perf + explain
        // + 3 translate = 18
        assert_eq!(manifest.files.len(), 18);
        assert!(manifest
            .files
            .iter()
            .any(|f| f.file == "dialect_translate_sdss.jsonl"));
        let total: usize = manifest.files.iter().map(|f| f.records).sum();
        assert!(total > 2000, "only {total} records exported");
        // manifest exists and round-trips as JSON
        let manifest_text = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&manifest_text).unwrap();
        assert_eq!(parsed["seed"], PAPER_SEED);

        // a record is valid JSON with the expected fields
        let syntax = std::fs::read_to_string(dir.join("syntax_sdss.jsonl")).unwrap();
        let first: serde_json::Value =
            serde_json::from_str(syntax.lines().next().unwrap()).unwrap();
        assert!(first.get("sql").is_some());
        assert!(first.get("has_error").is_some());

        std::fs::remove_dir_all(&dir).ok();
    }
}
