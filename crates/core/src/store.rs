//! Content-addressed artifact store behind `repro --resume`.
//!
//! Every stage output of a reproduction run — sampled workloads, derived
//! task datasets, paper artifacts, audit/fault reports — can be persisted
//! under `target/repro/store/` keyed by a **fingerprint** of everything
//! that determines its bytes: the master seed, the task id, the builder's
//! version tag, and the fingerprints of its upstream stages. Fingerprints
//! are computed from those inputs alone (never from wall-clock or file
//! contents), so a stage's key is known before the stage runs and a warm
//! run can skip the work entirely.
//!
//! Entries are one file each: a JSON header line carrying the fingerprint
//! and an FNV-1a hash of the payload, then the payload itself (the stage
//! output serialized with the vendored serde stack). A load verifies both;
//! any mismatch — truncation, corruption, a stale fingerprint — is treated
//! as a miss and the stage is rebuilt and re-written. Hits therefore
//! reproduce the original bytes exactly or not at all.
//!
//! The store keeps per-stage hit/miss/byte counters for `--store-stats`.

use crate::registry::{registry, DynTask};
use serde::{Deserialize, Serialize};
use squ_workload::Workload;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Bump to invalidate every stored entry (file-format changes).
/// Format 2: fingerprint parts carry one-byte type tags (see
/// [`Fingerprint::push`]), so entries keyed by untagged format-1 prints
/// self-invalidate.
const STORE_FORMAT: u32 = 2;
/// Version tag of the workload samplers.
const WORKLOAD_VERSION: u32 = 1;
/// Version tag of the paper-artifact experiments.
const ARTIFACT_VERSION: u32 = 1;
/// Version tag of the dataset auditor.
const AUDIT_VERSION: u32 = 2;
/// Version tag of the fault-injection sweep.
const FAULTS_VERSION: u32 = 1;
/// Version tag of the ablation studies.
const ABLATION_VERSION: u32 = 1;
/// Bump when the fuzz generator, oracles, or case-report format change.
/// Version 4: per-dialect corpora (the case report gained dialect tallies).
const FUZZ_VERSION: u32 = 4;
/// Bump when the streaming synthesis pipeline (stream layout, controller
/// math, shard-summary format) changes.
const SYNTH_VERSION: u32 = 1;

/// 64-bit FNV-1a over a byte stream.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Hash a payload (for corruption detection on load).
fn payload_hash(payload: &str) -> u64 {
    let mut h = Fnv::new();
    h.write(payload.as_bytes());
    h.finish()
}

/// Fingerprint builder: feeds type-tagged, length-delimited parts into
/// FNV-1a so `("ab","c")` and `("a","bc")` hash differently — and so do
/// parts of different *types*. Without the tags `push("")` and `num(0)`
/// fed identical bytes, as did any 8-byte string vs. a `num` pair.
pub struct Fingerprint(Fnv);

/// Type tag preceding every string part.
const PART_STR: u8 = 1;
/// Type tag preceding every integer part.
const PART_NUM: u8 = 2;

impl Fingerprint {
    /// Start a fingerprint for one stage kind.
    pub fn new(tag: &str) -> Fingerprint {
        let mut fp = Fingerprint(Fnv::new());
        fp.0.write(&STORE_FORMAT.to_le_bytes());
        fp.push(tag);
        fp
    }

    /// Mix in one string part.
    pub fn push(&mut self, part: &str) -> &mut Self {
        self.0.write(&[PART_STR]);
        self.0.write(&(part.len() as u64).to_le_bytes());
        self.0.write(part.as_bytes());
        self
    }

    /// Mix in one integer part (seeds, version tags, upstream prints).
    pub fn num(&mut self, n: u64) -> &mut Self {
        self.0.write(&[PART_NUM]);
        self.0.write(&n.to_le_bytes());
        self
    }

    /// The 64-bit fingerprint.
    pub fn finish(&self) -> u64 {
        self.0.finish()
    }
}

/// Fingerprint of one sampled workload: `(format, seed, workload,
/// sampler version)`.
pub fn fp_workload(seed: u64, w: Workload) -> u64 {
    Fingerprint::new("workload")
        .num(u64::from(WORKLOAD_VERSION))
        .push(w.name())
        .num(seed)
        .finish()
}

/// Fingerprint of one derived task dataset: `(format, seed, task id,
/// builder version, upstream workload fingerprint)`.
pub fn fp_dataset(seed: u64, task: &dyn DynTask, w: Workload) -> u64 {
    Fingerprint::new("dataset")
        .push(task.id().name())
        .num(u64::from(task.version()))
        .push(w.name())
        .num(seed)
        .num(fp_workload(seed, w))
        .finish()
}

/// Fingerprint of the whole suite: folds every workload and dataset
/// fingerprint, so any builder bump invalidates all downstream stages.
pub fn suite_fingerprint(seed: u64) -> u64 {
    let mut fp = Fingerprint::new("suite");
    fp.num(seed);
    for w in [
        Workload::Sdss,
        Workload::SqlShare,
        Workload::JoinOrder,
        Workload::Spider,
    ] {
        fp.num(fp_workload(seed, w));
    }
    for task in registry() {
        for w in task.id().workloads() {
            fp.num(fp_dataset(seed, task, *w));
        }
    }
    fp.finish()
}

/// Fingerprint of one paper/ablation artifact.
pub fn fp_artifact(seed: u64, slug: &str, ablation: bool) -> u64 {
    let (tag, version) = if ablation {
        ("ablation", ABLATION_VERSION)
    } else {
        ("artifact", ARTIFACT_VERSION)
    };
    Fingerprint::new(tag)
        .num(u64::from(version))
        .push(slug)
        .num(suite_fingerprint(seed))
        .finish()
}

/// Fingerprint of the audit report.
pub fn fp_audit(seed: u64) -> u64 {
    Fingerprint::new("audit")
        .num(u64::from(AUDIT_VERSION))
        .num(suite_fingerprint(seed))
        .finish()
}

/// Fingerprint of one fault-injection report.
pub fn fp_faults(seed: u64, profile: &str, fault_seed: u64) -> u64 {
    Fingerprint::new("faults")
        .num(u64::from(FAULTS_VERSION))
        .push(profile)
        .num(fault_seed)
        .num(suite_fingerprint(seed))
        .finish()
}

/// Fingerprint of one fuzz case. Deliberately independent of the suite:
/// a case is fully determined by `(fuzz seed, index)` plus the
/// generator/oracle version, so fuzz results survive suite rebuilds.
pub fn fp_fuzz(fuzz_seed: u64, index: u64) -> u64 {
    fp_fuzz_dialect(fuzz_seed, index, "squ")
}

/// Fingerprint of one fuzz case of a per-dialect corpus run: [`fp_fuzz`]
/// with the corpus dialect folded in, so `--dialect` runs never collide
/// with each other or with the default `squ` corpus.
pub fn fp_fuzz_dialect(fuzz_seed: u64, index: u64, dialect: &str) -> u64 {
    Fingerprint::new("fuzz")
        .num(u64::from(FUZZ_VERSION))
        .num(fuzz_seed)
        .num(index)
        .push(dialect)
        .finish()
}

/// Fingerprint of one synthesis run's *specification*: everything that
/// determines its output — base workload, stream seed, requested size,
/// and the raw target-spec text (or "" without a target). Like
/// [`fp_fuzz`], deliberately independent of the suite: a synthesis run
/// is fully determined by its own inputs.
pub fn fp_synth_spec(seed: u64, n: u64, base: Workload, target_json: &str) -> u64 {
    Fingerprint::new("synth")
        .num(u64::from(SYNTH_VERSION))
        .push(base.name())
        .num(seed)
        .num(n)
        .push(target_json)
        .finish()
}

/// Fingerprint of one shard of one synthesis round:
/// `fp_spec ⊕ round ⊕ shard_index ⊕ shard_count`. The shard count is
/// folded in so a `3-of-8` partition never collides with `3-of-4` —
/// shard summaries are only reusable under the exact same partition.
pub fn fp_synth_shard(spec_fp: u64, round: u32, shard: usize, shards: usize) -> u64 {
    Fingerprint::new("synth-shard")
        .num(spec_fp)
        .num(u64::from(round))
        .num(shard as u64)
        .num(shards as u64)
        .finish()
}

/// Per-stage hit/miss/byte counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StageStats {
    /// Entries served from the store.
    pub hits: usize,
    /// Entries that had to be (re)built: absent, stale, or corrupt.
    pub misses: usize,
    /// Payload bytes read on hits.
    pub bytes_read: u64,
    /// Payload bytes written after misses.
    pub bytes_written: u64,
}

/// Header line preceding every payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Header {
    stage: String,
    name: String,
    fingerprint: String,
    payload_hash: String,
    bytes: u64,
}

/// Write `contents` to `path` atomically: a uniquely named tempfile in
/// the same directory, then `rename` into place. A concurrent reader —
/// two `repro` processes, or two server requests sharing the store as a
/// hot cache — sees either the previous entry or the complete new one,
/// never a torn prefix that would demote to a miss and trigger a rebuild
/// storm.
fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    let dir = path.parent().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "entry path has no parent")
    })?;
    fs::create_dir_all(dir)?;
    // pid + process-wide sequence keep concurrent writers (threads or
    // processes) on distinct temp names; rename is what makes the final
    // path atomic, the name only avoids temp-file collisions
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let file_name = path.file_name().and_then(|n| n.to_str()).unwrap_or("entry");
    let tmp = dir.join(format!(".{file_name}.{}-{seq}.tmp", std::process::id()));
    fs::write(&tmp, contents)?;
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(())
}

/// The on-disk artifact store.
pub struct Store {
    root: PathBuf,
    stats: BTreeMap<String, StageStats>,
}

impl Store {
    /// Open (or lazily create) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Store {
        Store {
            root: root.into(),
            stats: BTreeMap::new(),
        }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of one entry.
    fn entry_path(&self, stage: &str, name: &str, fp: u64) -> PathBuf {
        self.root.join(stage).join(format!("{name}-{fp:016x}.json"))
    }

    fn stage_stats(&mut self, stage: &str) -> &mut StageStats {
        self.stats.entry(stage.to_string()).or_default()
    }

    /// Load one stage payload, verifying fingerprint and payload hash.
    /// Any mismatch (absent, stale, truncated, corrupted) is a miss.
    pub fn load(&mut self, stage: &str, name: &str, fp: u64) -> Option<String> {
        let path = self.entry_path(stage, name, fp);
        let verified = fs::read_to_string(&path).ok().and_then(|text| {
            let (header_line, payload) = text.split_once('\n')?;
            let header: Header = serde_json::from_str(header_line).ok()?;
            let intact = header.stage == stage
                && header.name == name
                && header.fingerprint == format!("{fp:016x}")
                && header.bytes == payload.len() as u64
                && header.payload_hash == format!("{:016x}", payload_hash(payload));
            intact.then(|| payload.to_string())
        });
        let s = self.stage_stats(stage);
        match verified {
            Some(payload) => {
                s.hits += 1;
                s.bytes_read += payload.len() as u64;
                Some(payload)
            }
            None => {
                s.misses += 1;
                None
            }
        }
    }

    /// Persist one stage payload under its fingerprint.
    pub fn save(&mut self, stage: &str, name: &str, fp: u64, payload: &str) {
        let header = Header {
            stage: stage.to_string(),
            name: name.to_string(),
            fingerprint: format!("{fp:016x}"),
            payload_hash: format!("{:016x}", payload_hash(payload)),
            bytes: payload.len() as u64,
        };
        let header_line = serde_json::to_string(&header).expect("store header serializes"); // lint:allow: plain data structs always serialize
        let path = self.entry_path(stage, name, fp);
        if let Err(e) = write_atomic(&path, &format!("{header_line}\n{payload}")) {
            // The store is a cache: failing to persist must never fail the
            // run, but the user should know resume won't help next time.
            eprintln!(
                "warning: could not write store entry {}: {e}",
                path.display()
            );
            return;
        }
        self.stage_stats(stage).bytes_written += payload.len() as u64;
    }

    /// Typed wrapper over [`Store::load`] (compact-JSON payloads).
    pub fn load_value<T: Deserialize>(&mut self, stage: &str, name: &str, fp: u64) -> Option<T> {
        let payload = self.load(stage, name, fp)?;
        match serde_json::from_str(&payload) {
            Ok(v) => Some(v),
            Err(e) => {
                // Undecodable despite an intact hash: a format drift bug.
                // Demote the recorded hit to a miss and rebuild.
                eprintln!("warning: store entry {stage}/{name} undecodable: {e}");
                let s = self.stage_stats(stage);
                s.hits -= 1;
                s.bytes_read -= payload.len() as u64;
                s.misses += 1;
                None
            }
        }
    }

    /// Typed wrapper over [`Store::save`].
    pub fn save_value<T: Serialize>(&mut self, stage: &str, name: &str, fp: u64, value: &T) {
        let payload = serde_json::to_string(value).expect("store payloads serialize"); // lint:allow: plain data structs always serialize
        self.save(stage, name, fp, &payload);
    }

    /// Per-stage counters accumulated by this `Store` instance.
    pub fn stats(&self) -> &BTreeMap<String, StageStats> {
        &self.stats
    }

    /// Total misses across all stages (0 on a fully warm run).
    pub fn total_misses(&self) -> usize {
        self.stats.values().map(|s| s.misses).sum()
    }

    /// Plain-text stats table for `--store-stats`.
    pub fn render_stats(&self) -> String {
        let mut out = format!("artifact store ({})\n", self.root.display());
        out.push_str(&format!(
            "  {:<10} {:>6} {:>6} {:>12} {:>14}\n",
            "stage", "hits", "misses", "bytes_read", "bytes_written"
        ));
        for (stage, s) in &self.stats {
            out.push_str(&format!(
                "  {:<10} {:>6} {:>6} {:>12} {:>14}\n",
                stage, s.hits, s.misses, s.bytes_read, s.bytes_written
            ));
        }
        let (hits, misses): (usize, usize) = self
            .stats
            .values()
            .fold((0, 0), |(h, m), s| (h + s.hits, m + s.misses));
        out.push_str(&format!("  total: {hits} hits, {misses} misses\n"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!("squ-store-{tag}-{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        Store::open(dir)
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        assert_eq!(
            fp_workload(7, Workload::Sdss),
            fp_workload(7, Workload::Sdss)
        );
        assert_ne!(
            fp_workload(7, Workload::Sdss),
            fp_workload(8, Workload::Sdss)
        );
        assert_ne!(
            fp_workload(7, Workload::Sdss),
            fp_workload(7, Workload::Spider)
        );
        assert_ne!(suite_fingerprint(7), suite_fingerprint(8));
        assert_ne!(
            fp_artifact(7, "table3", false),
            fp_artifact(7, "table4", false)
        );
        assert_ne!(fp_faults(7, "none", 0), fp_faults(7, "heavy", 0));
        assert_ne!(fp_faults(7, "none", 0), fp_faults(7, "none", 1));
        // per-dialect fuzz corpora key separately from each other and from
        // the default squ corpus
        assert_eq!(fp_fuzz(5, 2), fp_fuzz_dialect(5, 2, "squ"));
        assert_ne!(fp_fuzz(5, 2), fp_fuzz_dialect(5, 2, "tsql"));
        assert_ne!(
            fp_fuzz_dialect(5, 2, "mysql"),
            fp_fuzz_dialect(5, 2, "tsql")
        );
    }

    #[test]
    fn synth_fingerprints_key_on_every_input() {
        let spec = fp_synth_spec(7, 1000, Workload::Sdss, "");
        assert_eq!(spec, fp_synth_spec(7, 1000, Workload::Sdss, ""));
        assert_ne!(spec, fp_synth_spec(8, 1000, Workload::Sdss, ""));
        assert_ne!(spec, fp_synth_spec(7, 2000, Workload::Sdss, ""));
        assert_ne!(spec, fp_synth_spec(7, 1000, Workload::Spider, ""));
        assert_ne!(
            spec,
            fp_synth_spec(7, 1000, Workload::Sdss, "{\"axes\":[]}")
        );
        // shard summaries are only reusable under the exact partition:
        // round, index, and count all key the entry
        let shard = fp_synth_shard(spec, 0, 1, 3);
        assert_eq!(shard, fp_synth_shard(spec, 0, 1, 3));
        assert_ne!(shard, fp_synth_shard(spec, 1, 1, 3));
        assert_ne!(shard, fp_synth_shard(spec, 0, 2, 3));
        assert_ne!(shard, fp_synth_shard(spec, 0, 1, 8));
        assert_ne!(
            shard,
            fp_synth_shard(fp_synth_spec(9, 1, Workload::Sdss, ""), 0, 1, 3)
        );
    }

    #[test]
    fn part_types_are_disambiguated() {
        // the format-1 collisions, pinned fixed: an empty string part vs a
        // zero integer part...
        assert_ne!(
            Fingerprint::new("t").push("").finish(),
            Fingerprint::new("t").num(0).finish()
        );
        // ...and any 8-byte string vs the (len, value) pair of a num
        let s = "ABCDEFGH";
        let as_num = u64::from_le_bytes(*b"ABCDEFGH");
        assert_ne!(
            Fingerprint::new("t").push(s).finish(),
            Fingerprint::new("t").num(8).num(as_num).finish()
        );
        // adjacent-part boundaries still matter
        assert_ne!(
            Fingerprint::new("t").push("ab").push("c").finish(),
            Fingerprint::new("t").push("a").push("bc").finish()
        );
        // tagging is deterministic
        assert_eq!(
            Fingerprint::new("t").push("x").num(3).finish(),
            Fingerprint::new("t").push("x").num(3).finish()
        );
    }

    #[test]
    fn concurrent_writer_never_tears_a_reader() {
        // One key hammered from a writer thread while a reader polls it:
        // with atomic tempfile+rename writes every load observes a
        // complete entry (old or new), so after the first save lands the
        // reader must never see a miss. Payload sizes differ wildly so a
        // torn write would fail the header's byte/hash check.
        let root = std::env::temp_dir().join(format!(
            "squ-store-stress-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&root).ok();
        let small = "s".repeat(8);
        let large = "L".repeat(64 * 1024);
        {
            let mut w = Store::open(&root);
            w.save("artifact", "hot", 99, &small);
        }
        const ROUNDS: usize = 300;
        std::thread::scope(|scope| {
            let (root_w, small_w, large_w) = (&root, &small, &large);
            scope.spawn(move || {
                let mut w = Store::open(root_w);
                for i in 0..ROUNDS {
                    let payload = if i % 2 == 0 { large_w } else { small_w };
                    w.save("artifact", "hot", 99, payload);
                }
            });
            let reader = scope.spawn(move || {
                let mut r = Store::open(root_w);
                let mut hits = 0;
                for _ in 0..ROUNDS {
                    match r.load("artifact", "hot", 99) {
                        Some(p) => {
                            assert!(
                                p == *small_w || p == *large_w,
                                "torn or foreign payload ({} bytes)",
                                p.len()
                            );
                            hits += 1;
                        }
                        None => panic!("reader saw a miss: torn store write"),
                    }
                }
                hits
            });
            assert_eq!(reader.join().expect("reader thread"), ROUNDS);
        });
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn save_then_load_hits() {
        let mut store = temp_store("roundtrip");
        assert_eq!(store.load("artifact", "t", 42), None);
        store.save("artifact", "t", 42, "payload bytes");
        assert_eq!(
            store.load("artifact", "t", 42).as_deref(),
            Some("payload bytes")
        );
        let s = store.stats()["artifact"];
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.bytes_written, 13);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn corrupted_payload_is_a_miss() {
        let mut store = temp_store("corrupt");
        store.save("dataset", "syntax_sdss", 7, r#"[{"k":1}]"#);
        let path = store.entry_path("dataset", "syntax_sdss", 7);
        let mangled = fs::read_to_string(&path)
            .unwrap()
            .replace("\"k\":1", "\"k\":2");
        fs::write(&path, mangled).unwrap();
        assert_eq!(store.load("dataset", "syntax_sdss", 7), None);
        assert_eq!(store.stats()["dataset"].misses, 1);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn wrong_fingerprint_is_a_miss() {
        let mut store = temp_store("stale");
        store.save("audit", "audit", 1, "{}");
        assert_eq!(store.load("audit", "audit", 2), None);
        assert!(store.total_misses() >= 1);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn stats_render_mentions_every_stage() {
        let mut store = temp_store("render");
        store.save("workload", "sdss", 3, "x");
        store.load("workload", "sdss", 3);
        let table = store.render_stats();
        assert!(table.contains("workload"), "{table}");
        assert!(table.contains("total: 1 hits, 0 misses"), "{table}");
        fs::remove_dir_all(store.root()).ok();
    }
}
